// Unit tests for fpna::core: the paper's variability metrics (Vs, Vermv,
// Vc), the run context, and the run-to-run variability harness.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "fpna/core/chunking.hpp"
#include "fpna/core/eval_context.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/fp/summation.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------- Vs ----

TEST(Vs, ZeroIffBitwiseEqual) {
  EXPECT_EQ(vs(1.5, 1.5), 0.0);
  EXPECT_EQ(vs(0.0, 0.0), 0.0);
  EXPECT_NE(vs(1.5, 1.5000000000000002), 0.0);
}

TEST(Vs, MatchesPaperFormula) {
  EXPECT_DOUBLE_EQ(vs(3.0, 2.0), 1.0 - 3.0 / 2.0);
  EXPECT_DOUBLE_EQ(vs(-3.0, 2.0), 1.0 - 1.5);  // |nd/d|
}

TEST(Vs, SignedZerosAreNotVariability) {
  EXPECT_EQ(vs(0.0, -0.0), 0.0);
}

TEST(Vs, ZeroReferenceGivesInfinity) {
  EXPECT_TRUE(std::isinf(vs(1.0, 0.0)));
}

TEST(Vs, NanPropagates) {
  EXPECT_TRUE(std::isnan(vs(kNaN, 1.0)));
  EXPECT_TRUE(std::isnan(vs(1.0, kNaN)));
  EXPECT_EQ(vs(kNaN, kNaN), 0.0);  // bitwise-equal NaNs: reproducible
}

TEST(Vs, MagnitudeScalesWithRelativeError) {
  const double d = 1.0;
  EXPECT_LT(std::fabs(vs(1.0 + 1e-15, d)), std::fabs(vs(1.0 + 1e-12, d)));
}

// -------------------------------------------------------------- Vermv ----

TEST(Vermv, ZeroForIdenticalArrays) {
  const std::vector<double> a{1.0, -2.0, 3.5};
  EXPECT_EQ(vermv(a, a), 0.0);
}

TEST(Vermv, MatchesHandComputation) {
  const std::vector<double> a{2.0, 4.0};
  const std::vector<double> b{2.0, 5.0};
  // (0 + |4-5|/4) / 2
  EXPECT_DOUBLE_EQ(vermv(a, b), 0.125);
}

TEST(Vermv, ZeroDenominatorFallsBackToOther) {
  const std::vector<double> a{0.0};
  const std::vector<double> b{7.0};
  EXPECT_DOUBLE_EQ(vermv(a, b), 1.0);
}

TEST(Vermv, SignedZeroPairContributesNothing) {
  const std::vector<double> a{0.0, 1.0};
  const std::vector<double> b{-0.0, 1.0};
  EXPECT_EQ(vermv(a, b), 0.0);
}

TEST(Vermv, ShapeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(vermv(a, b), std::invalid_argument);
}

TEST(Vermv, EmptyArraysAreIdentical) {
  const std::vector<double> empty;
  EXPECT_EQ(vermv(empty, empty), 0.0);
}

TEST(Vermv, FloatOverloadAtFloatScale) {
  // One float ulp at 1.0f is ~1.19e-7: the scale of the paper's Table 5.
  const std::vector<float> a{1.0f, 1.0f};
  const std::vector<float> b{std::nextafter(1.0f, 2.0f), 1.0f};
  const double v = vermv(std::span<const float>(a), std::span<const float>(b));
  EXPECT_NEAR(v, 5.96e-8, 1e-9);
}

// ----------------------------------------------------------------- Vc ----

TEST(Vc, CountsDifferingFraction) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = a;
  b[1] = 2.0000001;
  b[3] = -4.0;
  EXPECT_DOUBLE_EQ(vc(a, b), 0.5);
}

TEST(Vc, BitwiseSensitivity) {
  const std::vector<double> a{0.0};
  const std::vector<double> b{-0.0};
  EXPECT_DOUBLE_EQ(vc(a, b), 1.0);  // count metric is strictly bitwise
}

TEST(Vc, IdenticalNansDoNotCount) {
  const std::vector<double> a{kNaN};
  const std::vector<double> b{kNaN};
  EXPECT_EQ(vc(a, b), 0.0);
}

TEST(BitwiseEqualSpan, LengthMismatchIsUnequal) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_FALSE(bitwise_equal(std::span<const double>(a),
                             std::span<const double>(b)));
}

// Property sweep: the metric axioms of SII hold for arbitrary random
// array pairs - V == 0 iff bitwise identical, Vc symmetric and within
// [0, 1], Vermv non-negative, perturbing one element moves both metrics.
class MetricAxioms : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MetricAxioms, HoldOnRandomArrays) {
  const std::size_t n = GetParam();
  util::Xoshiro256pp rng(n * 2654435761u + 1);
  const util::UniformReal dist(-1e3, 1e3);
  std::vector<double> a(n);
  for (auto& x : a) x = dist(rng);

  // Identity axioms.
  EXPECT_EQ(vermv(a, a), 0.0);
  EXPECT_EQ(vc(a, a), 0.0);
  EXPECT_TRUE(bitwise_equal(std::span<const double>(a),
                            std::span<const double>(a)));

  // Perturb one element by one ulp: both metrics strictly positive, Vc
  // exactly 1/n, Vc symmetric.
  std::vector<double> b = a;
  b[n / 2] = std::nextafter(b[n / 2], 1e9);
  EXPECT_GT(vermv(a, b), 0.0);
  EXPECT_DOUBLE_EQ(vc(a, b), 1.0 / static_cast<double>(n));
  EXPECT_DOUBLE_EQ(vc(a, b), vc(b, a));

  // Range axioms.
  std::vector<double> c(n);
  for (auto& x : c) x = dist(rng);
  const double count = vc(a, c);
  EXPECT_GE(count, 0.0);
  EXPECT_LE(count, 1.0);
  EXPECT_GE(vermv(a, c), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MetricAxioms,
                         ::testing::Values(1u, 2u, 17u, 256u, 4096u));

// ---------------------------------------------------------- RunContext ----

TEST(RunContext, SameIdentitySameStream) {
  RunContext a(123, 7);
  RunContext b(123, 7);
  EXPECT_EQ(a.seed(), b.seed());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rng()(), b.rng()());
}

TEST(RunContext, DifferentRunsDifferentStreams) {
  RunContext a(123, 7);
  RunContext b(123, 8);
  EXPECT_NE(a.seed(), b.seed());
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.rng()() == b.rng()());
  EXPECT_LT(equal, 3);
}

TEST(RunContext, ForkGivesDecorrelatedComponentStreams) {
  RunContext ctx(55, 0);
  auto s1 = ctx.fork(1);
  auto s2 = ctx.fork(2);
  auto s1_again = RunContext(55, 0).fork(1);
  EXPECT_EQ(s1(), s1_again());
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (s1() == s2());
  EXPECT_LT(equal, 3);
}

// ------------------------------------------------------------- harness ----

// A non-deterministic "kernel": serial sum of a fixed array after a
// run-seeded shuffle (the paper's model of an async reduction).
std::vector<double> fixed_data() {
  std::vector<double> v(2000);
  util::Xoshiro256pp rng(4242);
  const util::UniformReal dist(-1e6, 1e6);
  for (auto& x : v) x = dist(rng);
  return v;
}

double nd_sum_kernel(RunContext& ctx) {
  auto v = fixed_data();
  auto rng = ctx.fork(0);
  util::shuffle(v, rng);
  return fp::sum_serial(v);
}

double d_sum_kernel(RunContext&) { return fp::sum_serial(fixed_data()); }

TEST(ScalarHarness, DetectsVariability) {
  const auto report =
      measure_scalar_variability(d_sum_kernel, nd_sum_kernel, 50, 1);
  EXPECT_EQ(report.runs, 50u);
  EXPECT_EQ(report.vs_samples.size(), 50u);
  EXPECT_GT(report.vs_summary.max, report.vs_summary.min);
  EXPECT_LT(report.reproducible_fraction, 1.0);
  EXPECT_EQ(report.reference_value, fp::sum_serial(fixed_data()));
}

TEST(ScalarHarness, DeterministicKernelScoresZero) {
  const auto report =
      measure_scalar_variability(d_sum_kernel, d_sum_kernel, 20, 1);
  for (const double v : report.vs_samples) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(report.reproducible_fraction, 1.0);
}

TEST(ScalarHarness, FirstRunReferenceMode) {
  const auto report = measure_scalar_variability(
      d_sum_kernel, nd_sum_kernel, 30, 9, Reference::kFirstRun);
  EXPECT_EQ(report.runs, 30u);
  // Reference is B_0, which the ND kernel reproduces only by accident.
  EXPECT_LT(report.reproducible_fraction, 1.0);
}

TEST(ScalarHarness, ReplaysExactly) {
  const auto a = measure_scalar_variability(d_sum_kernel, nd_sum_kernel, 20, 3);
  const auto b = measure_scalar_variability(d_sum_kernel, nd_sum_kernel, 20, 3);
  EXPECT_EQ(a.vs_samples, b.vs_samples);
}

std::vector<double> nd_array_kernel(RunContext& ctx) {
  // Two shuffled sub-sums: an array output with elementwise variability.
  auto v = fixed_data();
  auto rng = ctx.fork(1);
  util::shuffle(v, rng);
  const std::span<const double> s(v);
  return {fp::sum_serial(s.first(1000)), fp::sum_serial(s.subspan(1000)),
          42.0};
}

std::vector<double> d_array_kernel(RunContext&) {
  const auto v = fixed_data();
  const std::span<const double> s(v);
  return {fp::sum_serial(s.first(1000)), fp::sum_serial(s.subspan(1000)),
          42.0};
}

TEST(ArrayHarness, PerElementMetrics) {
  const auto report =
      measure_array_variability(d_array_kernel, nd_array_kernel, 40, 5);
  EXPECT_EQ(report.elements, 3u);
  EXPECT_EQ(report.vc_samples.size(), 40u);
  // The constant third element never differs: Vc <= 2/3.
  for (const double c : report.vc_samples) EXPECT_LE(c, 2.0 / 3.0 + 1e-12);
  EXPECT_GT(report.vc_summary.mean, 0.0);
  EXPECT_GT(report.vermv_summary.mean, 0.0);
}

TEST(ArrayHarness, SizeChangeThrows) {
  int call = 0;
  const ArrayKernel shrinking = [&call](RunContext&) {
    return std::vector<double>(static_cast<std::size_t>(3 - call++), 0.0);
  };
  EXPECT_THROW(measure_array_variability(shrinking, shrinking, 3, 1),
               std::runtime_error);
}

TEST(Certification, PassesDeterministicKernel) {
  const auto result = certify_deterministic(d_array_kernel, 20, 11);
  EXPECT_TRUE(result.deterministic);
}

TEST(Certification, FailsNonDeterministicKernel) {
  const auto result = certify_deterministic(nd_array_kernel, 20, 11);
  EXPECT_FALSE(result.deterministic);
  EXPECT_GT(result.first_divergence, 0u);
}

TEST(Certification, ScalarWrapper) {
  EXPECT_TRUE(certify_deterministic_scalar(d_sum_kernel, 10, 2).deterministic);
  EXPECT_FALSE(
      certify_deterministic_scalar(nd_sum_kernel, 10, 2).deterministic);
}

TEST(CountUnique, CountsDistinctBitPatterns) {
  const std::vector<std::vector<double>> outputs{
      {1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0000000001}, {-0.0, 2.0}, {0.0, 2.0}};
  EXPECT_EQ(count_unique_outputs(outputs), 4u);  // +-0 are distinct patterns
}

TEST(CountUnique, EmptyAndSingleton) {
  EXPECT_EQ(count_unique_outputs({}), 0u);
  EXPECT_EQ(count_unique_outputs({{1.0}}), 1u);
}

// ----------------------------------------- EvalContext reduction specs --

// The ReductionSpec migration contract: a default context is the native
// serial spec; assigning a bare AlgorithmId (the deprecated scalar shim)
// still compiles and still means native dtypes; with_accumulator accepts
// the full spec.
TEST(EvalContext, ReductionSpecDefaultsAndShim) {
  const EvalContext ctx;
  EXPECT_FALSE(ctx.accumulator.has_value());
  EXPECT_EQ(ctx.reduction_in_effect(), fp::ReductionSpec{});
  EXPECT_EQ(ctx.accumulator_in_effect(), fp::AlgorithmId::kSerial);

  EvalContext scalar;
  scalar.accumulator = fp::AlgorithmId::kKahan;  // shim: implicit spec
  EXPECT_EQ(scalar.accumulator_in_effect(), fp::AlgorithmId::kKahan);
  EXPECT_TRUE(scalar.reduction_in_effect().native());

  const EvalContext mixed = ctx.with_accumulator(fp::ReductionSpec{
      fp::AlgorithmId::kKahan, fp::Dtype::kBf16, fp::Dtype::kF32});
  EXPECT_EQ(mixed.reduction_in_effect().storage, fp::Dtype::kBf16);
  EXPECT_EQ(mixed.reduction_in_effect().accumulate, fp::Dtype::kF32);
  EXPECT_EQ(mixed.accumulator_in_effect(), fp::AlgorithmId::kKahan);

  // An explicit kSerial stays distinguishable from "unset" (the TPRC
  // historic-default rule).
  const EvalContext serial = ctx.with_accumulator(fp::AlgorithmId::kSerial);
  EXPECT_TRUE(serial.accumulator.has_value());
}

// ------------------------------------------------------------ chunking --

TEST(Chunking, EvenChunksPartitionContiguouslyAndNearEvenly) {
  for (const std::size_t total : {0u, 1u, 7u, 64u, 1000u, 4097u}) {
    for (const std::size_t parts : {1u, 2u, 3u, 7u, 16u, 5000u}) {
      SCOPED_TRACE(std::to_string(total) + "/" + std::to_string(parts));
      const auto ranges = even_chunks(total, parts);
      ASSERT_EQ(ranges.size(), parts);
      std::size_t expect_begin = 0, min_len = total, max_len = 0;
      for (std::size_t c = 0; c < parts; ++c) {
        EXPECT_EQ(ranges[c].first, expect_begin);
        EXPECT_LE(ranges[c].first, ranges[c].second);
        // The closed-form single-chunk accessors agree with the scan.
        EXPECT_EQ(even_chunk(total, parts, c), ranges[c]);
        EXPECT_EQ(even_chunk_size(total, parts, c),
                  ranges[c].second - ranges[c].first);
        const std::size_t len = ranges[c].second - ranges[c].first;
        min_len = std::min(min_len, len);
        max_len = std::max(max_len, len);
        expect_begin = ranges[c].second;
      }
      EXPECT_EQ(expect_begin, total);           // exact partition
      EXPECT_LE(max_len - min_len, 1u);         // near-even
      // Longer chunks come first (the OpenMP static-schedule shape).
      EXPECT_EQ(ranges.front().second - ranges.front().first, max_len);
    }
  }
  EXPECT_THROW(even_chunks(10, 0), std::invalid_argument);
  EXPECT_THROW(even_chunk(10, 4, 4), std::invalid_argument);
}

TEST(Chunking, CeilChunkCoversWithFixedStride) {
  for (const std::size_t total : {0u, 1u, 10u, 63u, 64u, 65u}) {
    for (const std::size_t parts : {1u, 2u, 7u, 100u}) {
      SCOPED_TRACE(std::to_string(total) + "/" + std::to_string(parts));
      const std::size_t stride = (total + parts - 1) / parts;
      std::size_t covered = 0;
      for (std::size_t c = 0; c < parts; ++c) {
        const auto [begin, end] = ceil_chunk(total, parts, c);
        EXPECT_EQ(begin, std::min(total, c * stride));
        EXPECT_EQ(end, std::min(total, begin + stride));
        covered += end - begin;
      }
      EXPECT_EQ(covered, total);
    }
  }
  EXPECT_THROW(ceil_chunk(10, 0, 0), std::invalid_argument);
}

// The invariant the header documents: ThreadPool::parallel_for cannot
// include core/chunking.hpp (util sits below core), so this test pins
// that its hand-rolled near-even split places every boundary exactly
// where core::even_chunk does.
TEST(Chunking, ParallelForBoundariesAgreeWithEvenChunk) {
  util::ThreadPool pool(3);
  for (const std::size_t n : {1u, 5u, 64u, 1001u}) {
    for (const std::size_t chunks : {1u, 2u, 7u, 64u}) {
      SCOPED_TRACE(std::to_string(n) + "/" + std::to_string(chunks));
      // parallel_for clamps the chunk count to n; mirror that policy.
      const std::size_t effective = std::min(chunks, n);
      std::vector<std::pair<std::size_t, std::size_t>> observed(effective);
      std::mutex mutex;
      pool.parallel_for(
          n,
          [&](std::size_t begin, std::size_t end, std::size_t c) {
            const std::lock_guard lock(mutex);
            observed[c] = {begin, end};
          },
          chunks);
      EXPECT_EQ(observed, even_chunks(n, effective));
    }
  }
}

TEST(Chunking, SizeDerivedPartsIsAPureFunctionOfTheShape) {
  // ~64k scalar ops per chunk, at least one row each, never zero chunks
  // for nonzero work.
  EXPECT_EQ(size_derived_parts(0, 100), 0u);
  EXPECT_EQ(size_derived_parts(1, 1), 1u);
  EXPECT_EQ(size_derived_parts(1024, 64), 1u);     // 64k work -> one chunk
  EXPECT_EQ(size_derived_parts(2048, 64), 2u);
  EXPECT_EQ(size_derived_parts(10, 1 << 20), 10u);  // huge rows: 1 row/chunk
  EXPECT_EQ(size_derived_parts(100, 0), 1u);        // zero work clamps
  // Same shape, same count - regardless of any pool or host property.
  EXPECT_EQ(size_derived_parts(12345, 678), size_derived_parts(12345, 678));
}

}  // namespace
}  // namespace fpna::core
