#pragma once
// RunContext: the identity of one "run" of a non-deterministic kernel.
//
// On real hardware, run-to-run variability comes from the scheduler's
// arbitrary ordering decisions. In this toolkit every such decision is
// drawn from the RunContext's generator, so a run is exactly replayable
// from (master_seed, run_index) while different run indices reproduce the
// run-to-run variability the paper measures.

#include <cstdint>

#include "fpna/util/rng.hpp"

namespace fpna::core {

class RunContext {
 public:
  /// Derives an independent stream for run `run_index` of an experiment
  /// identified by `master_seed`.
  RunContext(std::uint64_t master_seed, std::uint64_t run_index) noexcept
      : run_index_(run_index), seed_(derive(master_seed, run_index)),
        rng_(seed_) {}

  /// Directly seeded context (single-run uses).
  explicit RunContext(std::uint64_t seed) noexcept
      : run_index_(0), seed_(seed), rng_(seed) {}

  std::uint64_t run_index() const noexcept { return run_index_; }
  std::uint64_t seed() const noexcept { return seed_; }
  util::Xoshiro256pp& rng() noexcept { return rng_; }

  /// A child stream for a named sub-component (e.g. one kernel launch in a
  /// multi-kernel pipeline), decorrelated from the parent stream.
  util::Xoshiro256pp fork(std::uint64_t component_id) noexcept {
    return util::Xoshiro256pp(derive(seed_, 0x9e3779b9ULL + component_id));
  }

 private:
  static std::uint64_t derive(std::uint64_t seed,
                              std::uint64_t index) noexcept {
    std::uint64_t s = seed ^ (0xd1342543de82ef95ULL * (index + 1));
    return util::splitmix64(s);
  }

  std::uint64_t run_index_;
  std::uint64_t seed_;
  util::Xoshiro256pp rng_;
};

}  // namespace fpna::core
