#pragma once
// The accumulation-algorithm identifiers and their declared contracts -
// split from accumulator.hpp so that light-weight context headers
// (core::EvalContext and everything layered on it) can name an algorithm
// without compiling the whole accumulation layer.

#include <cstddef>
#include <cstdint>

namespace fpna::fp {

enum class AlgorithmId : std::uint8_t {
  kSerial = 0,
  kPairwise,
  kKahan,
  kNeumaier,
  kKlein,
  kDoubleDouble,
  kVectorized,
  kBinned,
  kSuperaccumulator,
};

inline constexpr std::size_t kNumAlgorithms = 9;

const char* to_string(AlgorithmId id) noexcept;

/// Contract an algorithm declares when it registers; property-tested for
/// every registered algorithm in tests/fp_test.cpp.
struct AlgorithmTraits {
  /// Same input order => bitwise identical result. True for every
  /// algorithm in the registry (the toolkit measures *order* sensitivity,
  /// not nondeterminism of the kernels themselves).
  bool deterministic_fixed_order = true;
  /// Bitwise identical under any permutation of the input.
  bool permutation_invariant = false;
  /// merge() of streaming state loses no information (so chunked/sharded
  /// evaluation is bitwise independent of the chunking).
  bool exact_merge = false;
};

/// Declared traits for an id (throws on an id outside the enum).
const AlgorithmTraits& traits_of(AlgorithmId id);

}  // namespace fpna::fp
