#include "fpna/obs/recorder.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "fpna/obs/clock.hpp"

namespace fpna::obs {

namespace {

std::uint64_t next_recorder_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Thread-local scope stack. Scopes are logical labels, not tied to any
// one recorder: a fired bucket pushes "bucket/<id>" once and every
// record the firing emits - whichever recorder receives it - lands
// under that scope.
std::vector<std::string>& scope_stack() {
  static thread_local std::vector<std::string> stack;
  return stack;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* digits = "0123456789abcdef";
          out += "\\u00";
          out += digits[(c >> 4) & 0xf];
          out += digits[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void emit_args(std::ofstream& out, const std::vector<TraceArg>& args) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    out << (i == 0 ? "" : ", ") << '"' << json_escape(args[i].key) << "\": ";
    if (args[i].is_number) {
      out << args[i].text;
    } else {
      out << '"' << json_escape(args[i].text) << '"';
    }
  }
  out << "}";
}

std::string format_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) * 1e-3);
  return buf;
}

}  // namespace

void Fingerprint::feed(double x) noexcept {
  feed(std::bit_cast<std::uint64_t>(x));
}

void Fingerprint::feed(float x) noexcept {
  feed(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(x)));
}

std::string hex64(std::uint64_t bits) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(bits >> (4 * i)) & 0xf];
  }
  return out;
}

bool provenance_less(const StampedProvenance& a, const StampedProvenance& b) {
  return std::tie(a.frame, a.scope, a.record.site, a.record.kind,
                  a.record.index, a.record.sub_index, a.seq, a.record.bits) <
         std::tie(b.frame, b.scope, b.record.site, b.record.kind,
                  b.record.index, b.record.sub_index, b.seq, b.record.bits);
}

// --------------------------------------------------------------- spans --

Span::Span(Recorder* recorder, std::string_view name) noexcept
    : recorder_(recorder) {
  if (recorder_ != nullptr) {
    event_.name = name;
    event_.start_ns = now_ns();
  }
}

Span::~Span() {
  if (recorder_ != nullptr) {
    event_.duration_ns = now_ns() - event_.start_ns;
    recorder_->emit(std::move(event_));
  }
}

void Span::arg(std::string_view key, std::int64_t value) {
  if (recorder_ == nullptr) return;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  event_.args.push_back({std::string(key), buf, true});
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (recorder_ == nullptr) return;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  event_.args.push_back({std::string(key), buf, true});
}

void Span::arg(std::string_view key, double value) {
  if (recorder_ == nullptr) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  event_.args.push_back({std::string(key), buf, true});
}

void Span::arg(std::string_view key, std::string_view value) {
  if (recorder_ == nullptr) return;
  event_.args.push_back({std::string(key), std::string(value), false});
}

// -------------------------------------------------------------- scopes --

ScopeGuard::ScopeGuard(std::string_view segment) {
  scope_stack().emplace_back(segment);
}

ScopeGuard::~ScopeGuard() { scope_stack().pop_back(); }

std::string current_scope() {
  const auto& stack = scope_stack();
  std::string joined;
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (i != 0) joined += '/';
    joined += stack[i];
  }
  return joined;
}

// ------------------------------------------------------------ recorder --

struct Recorder::Shard {
  std::mutex mutex;
  std::thread::id owner;
  std::uint32_t tid = 0;  // display id: shard creation order
  std::vector<TraceEvent> events;
  std::vector<StampedProvenance> provenance;
  std::uint64_t seq_frame = 0;  // frame the seq counters belong to
  // seq is per (thread, frame, scope), not per (thread, frame): a pool
  // may hand the same scoped unit of work (a bucket firing) to different
  // workers on different runs, and a per-scope counter keeps the stamped
  // seq a function of the *logical* record stream, not of which other
  // scopes the worker happened to execute first.
  std::map<std::string, std::uint64_t, std::less<>> next_seq;
};

Recorder::Recorder() : id_(next_recorder_id()) {}

Recorder::~Recorder() = default;

Recorder::Shard& Recorder::local_shard() {
  // One-entry cache: the hot path (same thread, same recorder) is a
  // pair of loads. On a miss we take the registry lock and find or
  // create this thread's shard - recorder ids are never reused, so a
  // stale cache entry can't alias a new recorder at the same address.
  struct Cache {
    std::uint64_t recorder_id = 0;
    Shard* shard = nullptr;
  };
  static thread_local Cache cache;
  if (cache.recorder_id == id_) return *cache.shard;

  const std::thread::id self = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) {
    if (shard->owner == self) {
      cache = {id_, shard.get()};
      return *shard;
    }
  }
  auto shard = std::make_unique<Shard>();
  shard->owner = self;
  shard->tid = static_cast<std::uint32_t>(shards_.size());
  Shard* raw = shard.get();
  shards_.push_back(std::move(shard));
  cache = {id_, raw};
  return *raw;
}

void Recorder::emit(TraceEvent&& event) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.events.push_back(std::move(event));
}

void Recorder::instant(std::string_view name, std::vector<TraceArg> args) {
  TraceEvent event;
  event.name = name;
  event.phase = TraceEvent::Phase::kInstant;
  event.start_ns = now_ns();
  event.args = std::move(args);
  emit(std::move(event));
}

void Recorder::provenance(ProvenanceRecord record) {
  Shard& shard = local_shard();
  StampedProvenance stamped;
  stamped.frame = frame_.load(std::memory_order_relaxed);
  stamped.scope = current_scope();
  stamped.record = std::move(record);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.seq_frame != stamped.frame) {
    shard.seq_frame = stamped.frame;
    shard.next_seq.clear();
  }
  stamped.seq = shard.next_seq[stamped.scope]++;
  shard.provenance.push_back(std::move(stamped));
}

void Recorder::advance_frame() noexcept {
  frame_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Recorder::frame() const noexcept {
  return frame_.load(std::memory_order_relaxed);
}

std::size_t Recorder::event_count() const {
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    total += shard->events.size();
  }
  return total;
}

std::size_t Recorder::provenance_count() const {
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    total += shard->provenance.size();
  }
  return total;
}

std::vector<TraceEvent> Recorder::events() const {
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  std::vector<TraceEvent> all;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    all.insert(all.end(), shard->events.begin(), shard->events.end());
  }
  return all;
}

std::vector<StampedProvenance> Recorder::sorted_provenance() const {
  std::vector<StampedProvenance> all;
  {
    const std::lock_guard<std::mutex> lock(shards_mutex_);
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      all.insert(all.end(), shard->provenance.begin(),
                 shard->provenance.end());
    }
  }
  std::sort(all.begin(), all.end(), provenance_less);
  return all;
}

void Recorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  out << "{\"traceEvents\": [";
  bool first = true;
  const std::lock_guard<std::mutex> lock(shards_mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const TraceEvent& event : shard->events) {
      out << (first ? "" : ",") << "\n  {\"name\": \""
          << json_escape(event.name) << "\", ";
      if (event.phase == TraceEvent::Phase::kComplete) {
        out << "\"ph\": \"X\", \"ts\": " << format_us(event.start_ns)
            << ", \"dur\": " << format_us(event.duration_ns);
      } else {
        out << "\"ph\": \"i\", \"s\": \"t\", \"ts\": "
            << format_us(event.start_ns);
      }
      out << ", \"pid\": 0, \"tid\": " << shard->tid << ", \"args\": ";
      emit_args(out, event.args);
      out << "}";
      first = false;
    }
  }
  out << (first ? "]}" : "\n]}") << "\n";
  if (!out) {
    throw std::runtime_error("write_chrome_trace: write failed: " + path);
  }
}

void Recorder::write_provenance_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_provenance_jsonl: cannot open " + path);
  }
  for (const StampedProvenance& p : sorted_provenance()) {
    out << "{\"frame\": " << p.frame << ", \"scope\": \""
        << json_escape(p.scope) << "\", \"site\": \""
        << json_escape(p.record.site) << "\", \"kind\": \""
        << json_escape(p.record.kind) << "\", \"index\": " << p.record.index
        << ", \"sub_index\": " << p.record.sub_index << ", \"spec\": \""
        << json_escape(p.record.spec) << "\", \"seq\": " << p.seq
        << ", \"bits\": \"" << hex64(p.record.bits)
        << "\", \"elements\": " << p.record.elements << "}\n";
  }
  if (!out) {
    throw std::runtime_error("write_provenance_jsonl: write failed: " + path);
  }
}

}  // namespace fpna::obs
