#pragma once
// Bit-level views of IEEE-754 doubles. Variability metrics in this toolkit
// are defined on *bitwise* equality (paper SII), so tests and the metrics
// layer need exact bit comparisons and ULP distances rather than
// tolerance-based ones.

#include <bit>
#include <cstdint>
#include <cmath>
#include <limits>

namespace fpna::fp {

inline std::uint64_t to_bits(double x) noexcept {
  return std::bit_cast<std::uint64_t>(x);
}

inline double from_bits(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

/// True iff x and y have identical bit patterns. Distinguishes +0.0 from
/// -0.0 and treats identical NaN payloads as equal (unlike operator==).
inline bool bitwise_equal(double x, double y) noexcept {
  return to_bits(x) == to_bits(y);
}

inline bool is_negative_zero(double x) noexcept {
  return to_bits(x) == 0x8000000000000000ULL;
}

/// Maps the double line onto a monotone signed integer line: the usual
/// trick of flipping negative values so that integer distance equals the
/// count of representable doubles between two values.
inline std::int64_t monotone_index(double x) noexcept {
  const auto bits = static_cast<std::int64_t>(to_bits(x));
  return bits >= 0 ? bits
                   : static_cast<std::int64_t>(0x8000000000000000ULL) - bits;
}

/// Number of representable doubles between x and y (0 iff bitwise equal,
/// after collapsing -0.0 onto +0.0). Returns INT64_MAX if either is NaN.
inline std::int64_t ulp_distance(double x, double y) noexcept {
  if (std::isnan(x) || std::isnan(y)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  const std::int64_t ix = monotone_index(x == 0.0 ? 0.0 : x);
  const std::int64_t iy = monotone_index(y == 0.0 ? 0.0 : y);
  // The monotone indices of finite doubles are small enough that the
  // subtraction cannot overflow for same-sign pairs; for opposite-sign
  // pairs saturate defensively.
  const std::int64_t d = ix >= iy ? ix - iy : iy - ix;
  return d < 0 ? std::numeric_limits<std::int64_t>::max() : d;
}

// --- float (binary32) views: the dense dl kernels accumulate in float,
// so their ulp columns must count representable *floats*, not doubles. --

inline std::uint32_t to_bits32(float x) noexcept {
  return std::bit_cast<std::uint32_t>(x);
}

/// True iff x and y have identical binary32 bit patterns.
inline bool bitwise_equal32(float x, float y) noexcept {
  return to_bits32(x) == to_bits32(y);
}

/// Number of representable floats between x and y (0 iff bitwise equal,
/// after collapsing -0.0f onto +0.0f). Returns INT64_MAX if either is NaN.
inline std::int64_t ulp_distance32(float x, float y) noexcept {
  if (std::isnan(x) || std::isnan(y)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  const auto monotone = [](float v) noexcept {
    const auto bits =
        static_cast<std::int32_t>(to_bits32(v == 0.0f ? 0.0f : v));
    constexpr std::int64_t kSignBit = -(std::int64_t{1} << 31);
    return bits >= 0 ? static_cast<std::int64_t>(bits)
                     : kSignBit - static_cast<std::int64_t>(bits);
  };
  const std::int64_t ix = monotone(x), iy = monotone(y);
  return ix >= iy ? ix - iy : iy - ix;
}

/// Unit in the last place of x (spacing to the next representable value
/// away from zero). ulp(0) is the smallest denormal.
inline double ulp(double x) noexcept {
  if (std::isnan(x) || std::isinf(x)) return std::numeric_limits<double>::quiet_NaN();
  const double ax = std::fabs(x);
  const double next =
      std::nextafter(ax, std::numeric_limits<double>::infinity());
  return next - ax;
}

}  // namespace fpna::fp
