#pragma once
// The one monotonic clock every layer times against. Before this module
// the tree grew three timing conventions - util::Timer's private
// steady_clock, the trainer's ad-hoc measurement loop and the benches'
// per-table stopwatches. obs::now_ns() is the single source all of them
// route through, and the zero point (process start, captured on first
// use) is what makes trace timestamps from different threads land on one
// timeline.

#include <chrono>
#include <cstdint>

namespace fpna::obs {

namespace detail {
inline std::chrono::steady_clock::time_point process_epoch() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace detail

/// Monotonic nanoseconds since the process epoch (first call wins the
/// zero point; call order only shifts the origin, never the deltas).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detail::process_epoch())
          .count());
}

/// Microseconds since the process epoch (the unit Chrome trace events
/// carry).
inline double now_us() noexcept {
  return static_cast<double>(now_ns()) * 1e-3;
}

}  // namespace fpna::obs
