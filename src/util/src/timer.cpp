#include "fpna/util/timer.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

namespace fpna::util {

std::string TimingStats::mean_std_string(double unit_scale,
                                         int precision) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << mean_seconds * unit_scale << "(" << stddev_seconds * unit_scale
      << ")";
  return out.str();
}

TimingStats time_repeated(const std::function<void()>& fn, std::size_t reps,
                          std::size_t warmup) {
  for (std::size_t i = 0; i < warmup; ++i) fn();

  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const Timer timer;
    fn();
    samples.push_back(timer.elapsed_seconds());
  }

  TimingStats stats;
  stats.repetitions = reps;
  if (reps == 0) return stats;

  double sum = 0.0;
  stats.min_seconds = std::numeric_limits<double>::infinity();
  stats.max_seconds = -std::numeric_limits<double>::infinity();
  for (double s : samples) {
    sum += s;
    stats.min_seconds = std::min(stats.min_seconds, s);
    stats.max_seconds = std::max(stats.max_seconds, s);
  }
  stats.mean_seconds = sum / static_cast<double>(reps);

  double sq = 0.0;
  for (double s : samples) {
    const double d = s - stats.mean_seconds;
    sq += d * d;
  }
  stats.stddev_seconds =
      reps > 1 ? std::sqrt(sq / static_cast<double>(reps - 1)) : 0.0;
  return stats;
}

}  // namespace fpna::util
