#pragma once
// Internal machinery for the lane-blocked intrinsics tier. Three pieces:
//
//  * LaneWords<Base>: maps an accumulator's private state onto an ordered
//    word list (through detail::SimdLaneAccess) so a generic driver can
//    gather L lanes' state into vector registers and scatter it back;
//  * Step<Vec>: one algorithm's per-element update written against a
//    minimal vector-ops wrapper - the SAME IEEE op sequence as the scalar
//    add(), one lane per register slot, which is what makes the fast path
//    bitwise identical to the emulation;
//  * the per-ISA entry points (simd_detail::avx2 / ::avx512): defined in
//    simd_avx2.cpp / simd_avx512.cpp, which CMake compiles with -mavx2 /
//    -mavx512f on x86 (see src/CMakeLists.txt). Those TUs are only ever
//    entered after simd.cpp's runtime CPUID check, so the flags never
//    leak unsupported instructions onto the startup path.
//
// The Vec wrapper contract (each ISA TU defines its own):
//   using scalar; static constexpr int kWidth; using mask;
//   load/store/zero/add/sub/abs; ge_abs(a,b) -> mask (|a| >= |b|,
//   ordered-quiet: false on NaN, matching the scalar `abs(a) >= abs(b)`
//   branch including its NaN and signed-zero behaviour); select(m, t, f).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "fpna/fp/accumulator.hpp"

namespace fpna::fp::simd_detail {

using detail::SimdLaneAccess;

// ------------------------------------------------- state word mapping --

template <typename Base>
struct LaneWords;

template <typename T>
struct LaneWords<SerialAccumulator<T>> {
  static constexpr int kWords = 1;
  static T& word(SerialAccumulator<T>& a, int) noexcept {
    return SimdLaneAccess::sum(a);
  }
};

template <typename T>
struct LaneWords<KahanAccumulator<T>> {
  static constexpr int kWords = 2;
  static T& word(KahanAccumulator<T>& a, int w) noexcept {
    return w == 0 ? SimdLaneAccess::sum(a) : SimdLaneAccess::comp(a);
  }
};

template <typename T>
struct LaneWords<NeumaierAccumulator<T>> {
  static constexpr int kWords = 2;
  static T& word(NeumaierAccumulator<T>& a, int w) noexcept {
    return w == 0 ? SimdLaneAccess::sum(a) : SimdLaneAccess::comp(a);
  }
};

template <typename T>
struct LaneWords<KleinAccumulator<T>> {
  static constexpr int kWords = 3;
  static T& word(KleinAccumulator<T>& a, int w) noexcept {
    return w == 0   ? SimdLaneAccess::sum(a)
           : w == 1 ? SimdLaneAccess::cs(a)
                    : SimdLaneAccess::ccs(a);
  }
};

// ------------------------------------------------- per-element steps --

// Each step runs the scalar add()'s op sequence on a whole register of
// lanes. st[] is the state word array (same order as LaneWords).

template <typename Vec>
struct SerialStep {
  static constexpr int kWords = 1;  // sum
  static void step(Vec* st, Vec x) noexcept { st[0] = Vec::add(st[0], x); }
};

template <typename Vec>
struct KahanStep {
  static constexpr int kWords = 2;  // sum, comp
  static void step(Vec* st, Vec x) noexcept {
    const Vec y = Vec::sub(x, st[1]);
    const Vec t = Vec::add(st[0], y);
    st[1] = Vec::sub(Vec::sub(t, st[0]), y);
    st[0] = t;
  }
};

template <typename Vec>
struct NeumaierStep {
  static constexpr int kWords = 2;  // sum, comp
  static void step(Vec* st, Vec x) noexcept {
    const Vec s = st[0];
    const Vec t = Vec::add(s, x);
    // Branchless transcription of the |sum| >= |x| branch pair: both
    // arms compute (comp + (big - t)) + small with big/small selected by
    // the compare, so a blend IS the branch. GE ordered-quiet is false
    // for NaN, exactly like the scalar compare.
    const typename Vec::mask m = Vec::ge_abs(s, x);
    const Vec big = Vec::select(m, s, x);
    const Vec small = Vec::select(m, x, s);
    st[1] = Vec::add(Vec::add(st[1], Vec::sub(big, t)), small);
    st[0] = t;
  }
};

template <typename Vec>
struct KleinStep {
  static constexpr int kWords = 3;  // sum, cs, ccs
  static void step(Vec* st, Vec x) noexcept {
    const Vec s = st[0];
    const Vec t = Vec::add(s, x);
    const typename Vec::mask m1 = Vec::ge_abs(s, x);
    // Klein associates the correction as (big - t) + small (unlike
    // Neumaier's (comp + (big - t)) + small) - transcribed exactly.
    const Vec c = Vec::add(Vec::sub(Vec::select(m1, s, x), t),
                           Vec::select(m1, x, s));
    st[0] = t;
    const Vec cs = st[1];
    const Vec t2 = Vec::add(cs, c);
    const typename Vec::mask m2 = Vec::ge_abs(cs, c);
    const Vec cc = Vec::add(Vec::sub(Vec::select(m2, cs, c), t2),
                            Vec::select(m2, c, cs));
    st[1] = t2;
    st[2] = Vec::add(st[2], cc);
  }
};

// ------------------------------------------------------------ drivers --

/// Generic lane-blocked span kernel over R registers of Vec (L =
/// R * Vec::kWidth lanes): scalar prologue to round-robin phase 0,
/// gather state words into registers, one Step per vector row (element
/// i*L + r*W + w updates lane r*W + w - the same element->lane map as
/// the emulation), scatter state back, scalar tail for the last n mod L
/// elements. Every scalar element on the prologue/tail goes through
/// Base::add itself, so there is nothing to keep in sync.
template <typename Vec, int R, template <typename> class StepT,
          typename Base>
void run_span(Base* lanes, std::size_t& next,
              const typename Base::value_type* x, std::size_t n) {
  using T = typename Base::value_type;
  using Step = StepT<Vec>;
  using Words = LaneWords<Base>;
  static_assert(std::is_same_v<typename Vec::scalar, T>);
  static_assert(Words::kWords == Step::kWords);
  constexpr int W = Vec::kWidth;
  constexpr std::size_t L = static_cast<std::size_t>(W) * R;

  while (next != 0 && n != 0) {
    lanes[next].add(*x++);
    next = (next + 1) % L;
    --n;
  }
  if (n == 0) return;

  const std::size_t rows = n / L;
  if (rows != 0) {
    alignas(64) T buf[L];
    Vec st[R][Step::kWords];
    for (int w = 0; w < Step::kWords; ++w) {
      for (std::size_t l = 0; l < L; ++l) buf[l] = Words::word(lanes[l], w);
      for (int r = 0; r < R; ++r) st[r][w] = Vec::load(buf + r * W);
    }
    for (std::size_t i = 0; i < rows; ++i) {
      for (int r = 0; r < R; ++r) Step::step(st[r], Vec::load(x + r * W));
      x += L;
    }
    for (int w = 0; w < Step::kWords; ++w) {
      for (int r = 0; r < R; ++r) Vec::store(st[r][w], buf + r * W);
      for (std::size_t l = 0; l < L; ++l) Words::word(lanes[l], w) = buf[l];
    }
    n -= rows * L;
  }
  for (std::size_t i = 0; i < n; ++i) lanes[i].add(x[i]);
  next = n;  // n < L here
}

/// Pairwise is stateful beyond a few words (binary-counter cascade), so
/// the vector path only runs while the lanes are in lockstep: phase 0
/// and every lane at the same base-block fill. Then all lanes fill their
/// 32-element base blocks in vector registers and push simultaneously
/// (push_block stays per-lane scalar - it touches the O(log n) cascade).
/// Returns false when the lanes are desynchronised (e.g. after a
/// mid-block scalar tail); the caller emulates, which re-synchronises
/// nothing but stays bit-correct by definition.
template <typename Vec, int R, typename T>
bool run_pairwise(PairwiseAccumulator<T>* lanes, std::size_t& next,
                  const T* x, std::size_t n) {
  static_assert(std::is_same_v<typename Vec::scalar, T>);
  constexpr int W = Vec::kWidth;
  constexpr std::size_t L = static_cast<std::size_t>(W) * R;
  constexpr std::size_t kBase = PairwiseAccumulator<T>::kBase;

  if (next != 0) return false;
  std::size_t bc = SimdLaneAccess::block_count(lanes[0]);
  for (std::size_t l = 1; l < L; ++l) {
    if (SimdLaneAccess::block_count(lanes[l]) != bc) return false;
  }

  alignas(64) T buf[L];
  for (std::size_t l = 0; l < L; ++l) {
    buf[l] = SimdLaneAccess::block(lanes[l]);
  }
  Vec bl[R];
  for (int r = 0; r < R; ++r) bl[r] = Vec::load(buf + r * W);

  std::size_t rows = n / L;
  const std::size_t rem = n - rows * L;
  while (rows != 0) {
    const std::size_t take = std::min(rows, kBase - bc);
    for (std::size_t i = 0; i < take; ++i) {
      for (int r = 0; r < R; ++r) {
        bl[r] = Vec::add(bl[r], Vec::load(x + r * W));
      }
      x += L;
    }
    bc += take;
    rows -= take;
    if (bc == kBase) {
      for (int r = 0; r < R; ++r) Vec::store(bl[r], buf + r * W);
      for (std::size_t l = 0; l < L; ++l) {
        SimdLaneAccess::push_block(lanes[l], buf[l]);
      }
      for (int r = 0; r < R; ++r) bl[r] = Vec::zero();
      bc = 0;
    }
  }
  for (int r = 0; r < R; ++r) Vec::store(bl[r], buf + r * W);
  for (std::size_t l = 0; l < L; ++l) {
    SimdLaneAccess::block(lanes[l]) = buf[l];
    SimdLaneAccess::block_count(lanes[l]) = bc;
  }
  for (std::size_t i = 0; i < rem; ++i) lanes[i].add(x[i]);
  next = rem;
  return true;
}

// ------------------------------------------------- per-ISA entry points --

// Coverage (false for anything else; the dispatcher falls through to the
// next tier, then to the emulation):
//   avx2:   f64 L in {4, 8, 16}, f32 L in {8, 16}
//   avx512: f64 L in {8, 16},    f32 L in {16}
// Only called after simd.cpp verified the CPU feature.

#define FPNA_SIMD_ARCH_DECLS                                               \
  bool add_span(SerialAccumulator<double>* lanes, std::size_t lane_count,  \
                std::size_t& next, const double* x, std::size_t n);        \
  bool add_span(SerialAccumulator<float>* lanes, std::size_t lane_count,   \
                std::size_t& next, const float* x, std::size_t n);         \
  bool add_span(KahanAccumulator<double>* lanes, std::size_t lane_count,   \
                std::size_t& next, const double* x, std::size_t n);        \
  bool add_span(KahanAccumulator<float>* lanes, std::size_t lane_count,    \
                std::size_t& next, const float* x, std::size_t n);         \
  bool add_span(NeumaierAccumulator<double>* lanes,                        \
                std::size_t lane_count, std::size_t& next, const double* x,\
                std::size_t n);                                            \
  bool add_span(NeumaierAccumulator<float>* lanes, std::size_t lane_count, \
                std::size_t& next, const float* x, std::size_t n);         \
  bool add_span(KleinAccumulator<double>* lanes, std::size_t lane_count,   \
                std::size_t& next, const double* x, std::size_t n);        \
  bool add_span(KleinAccumulator<float>* lanes, std::size_t lane_count,    \
                std::size_t& next, const float* x, std::size_t n);         \
  bool add_span(PairwiseAccumulator<double>* lanes,                        \
                std::size_t lane_count, std::size_t& next, const double* x,\
                std::size_t n);                                            \
  bool add_span(PairwiseAccumulator<float>* lanes, std::size_t lane_count, \
                std::size_t& next, const float* x, std::size_t n);         \
  bool add_i64(std::int64_t* dst, const std::int64_t* src, std::size_t n);

namespace avx2 {
FPNA_SIMD_ARCH_DECLS
}
namespace avx512 {
FPNA_SIMD_ARCH_DECLS
}

}  // namespace fpna::fp::simd_detail
