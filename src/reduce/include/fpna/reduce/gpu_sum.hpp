#pragma once
// The paper's six parallel-sum implementations (SIII.A, Table 2), executed
// on the simulated device. Values come from running the kernels through
// the block engine (so atomic results depend on the run's commit order
// exactly as on hardware); times come from the analytic cost model.
//
//   AO    atomicAdd per element                       non-deterministic
//   SPA   block tree + atomicAdd of block partials    non-deterministic
//   SPTR  block tree + retirement counter + tree tail deterministic
//   SPRG  block tree + retirement counter + serial    deterministic
//   TPRC  two kernels on one stream + host final sum  deterministic
//   CU    vendor CUB/hipCUB-style library sum         deterministic
//
// The EvalContext overload threads the registry-selected accumulator into
// every accumulation the kernels perform (per-thread grid-stride sums, the
// AO commit loop, the SPRG serial tail, the TPRC host sum); the serial
// default reproduces the historic values bit for bit. CU models a vendor
// black box and pins its internal algorithm (registry serial + tree).

#include <cstddef>
#include <span>

#include "fpna/core/eval_context.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/sim/cost_model.hpp"
#include "fpna/sim/device.hpp"

namespace fpna::reduce {

struct GpuSumResult {
  double value = 0.0;
  /// Modelled kernel time from the device's cost model, microseconds.
  double modeled_time_us = 0.0;
  sim::SumMethod method = sim::SumMethod::kSPTR;
  std::size_t nt = 0;
  std::size_t nb = 0;
};

/// Runs one n-element FP64 sum on `device` with grid (nb blocks x nt
/// threads). `ctx.run` must be set - it supplies the launch's scheduling
/// entropy; deterministic methods produce bitwise-identical values for
/// every run (certified in tests). `ctx.accumulator` selects the inner
/// accumulation algorithm.
GpuSumResult gpu_sum(sim::SimDevice& device, std::span<const double> data,
                     sim::SumMethod method, const core::EvalContext& ctx,
                     std::size_t nt = 256, std::size_t nb = 0);

/// Historic entry point: RunContext only, serial accumulator.
GpuSumResult gpu_sum(sim::SimDevice& device, std::span<const double> data,
                     sim::SumMethod method, core::RunContext& ctx,
                     std::size_t nt = 256, std::size_t nb = 0);

/// Failure-injection variant of SPTR used by tests and docs: skips the
/// __threadfence/retirement handshake, so the tail reduction may read
/// partials that are not yet published. The engine models the race by
/// treating unpublished partials as stale zeros for blocks that commit
/// after the reader - demonstrating why Listing 1 needs the fence.
GpuSumResult gpu_sum_sptr_missing_fence(sim::SimDevice& device,
                                        std::span<const double> data,
                                        core::RunContext& ctx,
                                        std::size_t nt = 256,
                                        std::size_t nb = 0);

/// Default block count used when nb == 0: ceil(n / nt), matching the
/// paper's one-element-per-thread launches, capped so tiny inputs still
/// get one block.
std::size_t default_grid_blocks(std::size_t n, std::size_t nt) noexcept;

}  // namespace fpna::reduce
