#pragma once
// CollectiveSchedule: the explicit wire plan of a reduce-scatter +
// allgather allreduce. The paper's reproducibility story hinges on *who
// combines what, in which order, over the wire* - so instead of letting a
// backend improvise its message pattern, a schedule names every
// point-to-point message and every combine (operand order included) up
// front. Both backends then execute the same plan verbatim:
//
//   * SimProcessGroup walks the messages over in-process rank buffers
//     (certifying the schedule's bits against the allgather backend);
//   * MpiProcessGroup turns each message into a real MPI_Isend/MPI_Recv
//     with O(n) traffic per rank instead of the allgather's O(n*P).
//
// Two schedules are provided:
//
//   * ring       - chunk c of the buffer (collective::ring_chunk
//                  boundaries) accumulates along the ring starting at rank
//                  (c+1) % P; per-element association identical to
//                  collective::allreduce_ring, so the wire path reproduces
//                  the allgather backend's kRing bits exactly;
//   * butterfly  - recursive-halving reduce-scatter whose stage order
//                  (distance 1, 2, 4, ...) and lower-rank-first combine
//                  operands reproduce collective::allreduce_recursive_
//                  doubling's association per element, with the usual
//                  MPICH pre-fold for non-power-of-two rank counts.
//
// The reproducible (superaccumulator) exchange runs over either schedule:
// messages then carry fp::Superaccumulator wire words instead of rounded
// values, merges are exact, and the single final rounding at the shard
// owner makes the result bitwise identical to the allgather backend's
// exact path for every ReductionSpec - the schedule choice moves traffic,
// never bits.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "fpna/collective/allreduce.hpp"
#include "fpna/obs/metrics.hpp"

namespace fpna::comm {

/// Which message pattern a ProcessGroup's deterministic collectives
/// travel. kAllgather is the PR 2 backend (gather all rank buffers,
/// combine locally); kRing / kButterfly route through CollectiveSchedule.
enum class WirePath {
  kAllgather,
  kRing,
  kButterfly,
};

const char* to_string(WirePath path) noexcept;
/// Parses "allgather" / "ring" / "butterfly"; throws std::invalid_argument
/// (listing the valid names) on anything else.
WirePath parse_wire_path(std::string_view name);

/// Half-open element range of the flat buffer.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin == end; }
};

/// One point-to-point message of the schedule. Messages are ordered by
/// `step`; the executors may process a step's messages in vector order
/// because every schedule guarantees that no in-step payload range is
/// written by an earlier message of the same step.
struct Message {
  std::size_t step = 0;
  std::size_t sender = 0;
  std::size_t receiver = 0;
  ShardRange range;
  /// true: receiver combines the payload into its buffer (reduce-scatter
  /// phase); false: receiver copies it verbatim (allgather phase).
  bool reduce = false;
  /// Combine operand order: incoming + local (true) vs local + incoming
  /// (false). Fixing this per message is what pins the association - and
  /// therefore the bits - of the whole collective.
  bool incoming_left = false;
};

class CollectiveSchedule {
 public:
  /// Ring reduce-scatter + ring allgather over `ranks` ranks and
  /// `elements` flat elements. Shard boundaries follow
  /// collective::ring_chunk; rank r owns chunk r.
  static CollectiveSchedule ring(std::size_t ranks, std::size_t elements);

  /// Recursive-halving reduce-scatter + recursive-doubling allgather.
  /// Stage order and combine operands reproduce
  /// collective::allreduce_recursive_doubling bit for bit; shard
  /// ownership follows the nested halving (rank bits, LSB first, select
  /// halves), with ranks beyond the largest power of two pre-folding into
  /// their partner and owning empty shards.
  static CollectiveSchedule butterfly(std::size_t ranks,
                                      std::size_t elements);

  /// The schedule carrying `algorithm` over `wire`: kRing must travel the
  /// ring schedule and kRecursiveDoubling the butterfly (each is the only
  /// O(n) message pattern that reproduces its association), while the
  /// order-invariant kReproducible rides whichever `wire` names. Throws
  /// std::invalid_argument for kArrivalTree / kAllgather (no schedule:
  /// arrival-order combining has no fixed plan, and the allgather backend
  /// is the non-scheduled path).
  static CollectiveSchedule for_algorithm(collective::Algorithm algorithm,
                                          WirePath wire, std::size_t ranks,
                                          std::size_t elements);

  WirePath path() const noexcept { return path_; }
  std::size_t ranks() const noexcept { return ranks_; }
  std::size_t elements() const noexcept { return elements_; }

  /// Post-reduce-scatter ownership: shards()[r] is the range rank r holds
  /// fully reduced. Shards partition [0, elements) (butterfly extras own
  /// empty ranges).
  const std::vector<ShardRange>& shards() const noexcept { return shards_; }

  /// All messages, reduce-scatter phase first, then the allgather copies,
  /// ordered by step.
  const std::vector<Message>& messages() const noexcept { return messages_; }
  /// messages()[0 .. reduce_message_count) is the reduce-scatter phase.
  std::size_t reduce_message_count() const noexcept { return reduce_count_; }

  /// Elements rank `rank` sends across the whole schedule (the traffic
  /// model: multiply by the per-element wire size). O(n) for both
  /// schedules, vs the allgather backend's (P-1)*n.
  std::size_t elements_sent(std::size_t rank) const noexcept;

 private:
  CollectiveSchedule() = default;

  WirePath path_ = WirePath::kAllgather;
  std::size_t ranks_ = 0;
  std::size_t elements_ = 0;
  std::vector<ShardRange> shards_;
  std::vector<Message> messages_;
  std::size_t reduce_count_ = 0;
};

// ------------------------------------------------------------- traffic --

/// Per-rank wire accounting, accumulated across collectives.
struct Traffic {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages = 0;
};

/// Thread-safe per-rank traffic counters (bucketed_allreduce may issue
/// concurrent collectives on the pool when overlap is enabled).
///
/// The counts live in obs::Counter shards - the run-wide counting
/// mechanism - and this class is only the per-rank *view* that keeps the
/// historic Traffic accessor API. Pass an external obs::Metrics (e.g. a
/// Recorder's) to surface "comm.traffic.rank<r>.*" in that registry's
/// snapshot (and hence the bench metrics table); by default the ledger
/// owns a private registry. Recording is lock-free either way - the old
/// ledger mutex is gone, so overlapped bucket firings never serialise on
/// accounting.
class TrafficLedger {
 public:
  explicit TrafficLedger(std::size_t ranks, obs::Metrics* metrics = nullptr);

  /// One call per message: sender + receiver + message count.
  void record_message(std::size_t sender, std::size_t receiver,
                      std::uint64_t bytes);
  /// Bulk accounting for one rank (an MPI phase, or the modelled
  /// allgather-backend exchange).
  void record_exchange(std::size_t rank, std::uint64_t bytes_sent,
                       std::uint64_t bytes_received, std::uint64_t messages);

  Traffic of_rank(std::size_t rank) const;
  Traffic total() const;
  void reset();

 private:
  struct RankCounters {
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* messages = nullptr;
  };

  std::unique_ptr<obs::Metrics> owned_;  // null when viewing external metrics
  std::vector<RankCounters> per_rank_;
};

}  // namespace fpna::comm
