#include "fpna/util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace fpna::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t chunks) {
  if (n == 0) return;
  if (chunks == 0) chunks = size();
  chunks = std::min(chunks, n);
  // Near-even split: the first n % chunks chunks get one extra element.
  // This is the same rule as core::even_chunk (util sits below core in
  // the module graph, so it cannot include that header); core_test pins
  // the boundary agreement. Keep in sync with core/chunking.hpp.
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(submit([&body, begin, end, c] { body(begin, end, c); }));
    begin = end;
  }
  // Join every chunk before propagating: rethrowing mid-join would let
  // still-running chunks outlive `body` and the caller's captures.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace fpna::util
