#pragma once
// Histogram / empirical PDF estimation, used to regenerate the probability
// density figures (paper Figs. 1-2) and as the input to the KL-divergence
// normality criterion the paper applies in SIII.C.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace fpna::stats {

class Histogram {
 public:
  /// Fixed-range histogram with `bins` equal-width bins over [lo, hi].
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds a histogram spanning the sample range (slightly widened so the
  /// max lands inside the last bin).
  static Histogram from_samples(std::span<const double> samples,
                                std::size_t bins);

  void add(double x) noexcept;
  void add(std::span<const double> samples) noexcept {
    for (double x : samples) add(x);
  }

  std::size_t bins() const noexcept { return counts_.size(); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double bin_width() const noexcept { return width_; }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  double bin_center(std::size_t bin) const;

  /// Probability density estimate at bin center: count / (total * width).
  double density(std::size_t bin) const;

  /// Probability mass of the bin: count / total.
  double mass(std::size_t bin) const;

  /// gnuplot-ready "center density" lines.
  std::string to_series() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Kullback-Leibler divergence D(P_hist || Q) between the histogram's
/// empirical distribution and a normal N(mu, sigma) discretised over the
/// same bins (paper SIII.C uses KL against a fitted normal to decide
/// whether SPA/AO variability is Gaussian). Empty bins contribute zero;
/// result is in nats.
double kl_divergence_vs_normal(const Histogram& hist, double mu,
                               double sigma);

/// Standard normal CDF.
double normal_cdf(double z) noexcept;

}  // namespace fpna::stats
