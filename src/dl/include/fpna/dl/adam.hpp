#pragma once
// Adam optimizer (Kingma & Ba), deterministic: update order is the fixed
// parameter registration order and all arithmetic is scalar FP32, so two
// trainings diverge only if their gradients differ - which isolates the
// index_add non-determinism as the sole source of run-to-run variability
// in the training experiments.

#include <cstddef>
#include <vector>

#include "fpna/dl/linalg.hpp"

namespace fpna::dl {

struct AdamConfig {
  float lr = 0.01f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  explicit Adam(AdamConfig config = {}) : config_(config) {}

  /// Registers a parameter/gradient pair; returns its slot. Must be
  /// called once per parameter before the first step, in a fixed order.
  std::size_t add_parameter(Matrix* parameter, Matrix* gradient);

  /// One update over all registered parameters.
  void step();

  std::size_t step_count() const noexcept { return steps_; }
  const AdamConfig& config() const noexcept { return config_; }

 private:
  struct Slot {
    Matrix* parameter;
    Matrix* gradient;
    std::vector<float> m;
    std::vector<float> v;
  };

  AdamConfig config_;
  std::vector<Slot> slots_;
  std::size_t steps_ = 0;
};

}  // namespace fpna::dl
