// Unit and property tests for fpna::comm: the process-group runtime, the
// gradient bucketing engine, the bucketed/sharded allreduce and the
// data-parallel trainer built on them. The reproducibility certifications
// here are the toolkit's distributed-training version of the paper's
// Table-style determinism columns.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "fpna/comm/bucketed_allreduce.hpp"
#include "fpna/comm/bucketing.hpp"
#include "fpna/comm/process_group.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/dl/data_parallel.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/util/rng.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::comm {
namespace {

// ------------------------------------------------------- BucketAssigner --

TEST(BucketAssigner, RejectsZeroCapacity) {
  EXPECT_THROW(BucketAssigner(0), std::invalid_argument);
}

TEST(BucketAssigner, EmptyTensorListGivesNoBuckets) {
  EXPECT_TRUE(BucketAssigner(16).assign({}).empty());
}

TEST(BucketAssigner, PacksGreedilyUpToCapacity) {
  const std::vector<std::size_t> sizes{4, 4, 4, 4, 4};
  const auto buckets = BucketAssigner(8).assign(sizes);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].first_tensor, 0u);
  EXPECT_EQ(buckets[0].tensor_count, 2u);
  EXPECT_EQ(buckets[0].elements, 8u);
  EXPECT_EQ(buckets[1].first_tensor, 2u);
  EXPECT_EQ(buckets[1].tensor_count, 2u);
  EXPECT_EQ(buckets[2].first_tensor, 4u);
  EXPECT_EQ(buckets[2].tensor_count, 1u);
  EXPECT_EQ(buckets[2].elements, 4u);
}

TEST(BucketAssigner, OversizedTensorShipsAloneInItsOwnBucket) {
  const std::vector<std::size_t> sizes{2, 100, 2};
  const auto buckets = BucketAssigner(8).assign(sizes);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[1].first_tensor, 1u);
  EXPECT_EQ(buckets[1].tensor_count, 1u);
  EXPECT_EQ(buckets[1].elements, 100u);
  EXPECT_EQ(buckets[2].first_tensor, 2u);
}

TEST(BucketAssigner, PartitionsEveryTensorExactlyOnce) {
  const std::vector<std::size_t> sizes{7, 1, 0, 13, 5, 29, 3, 0, 11};
  for (const std::size_t cap : {1u, 8u, 16u, 1000u}) {
    const auto buckets = BucketAssigner(cap).assign(sizes);
    std::size_t next = 0;
    std::size_t elements = 0;
    for (const auto& bucket : buckets) {
      EXPECT_EQ(bucket.first_tensor, next);
      next += bucket.tensor_count;
      elements += bucket.elements;
    }
    EXPECT_EQ(next, sizes.size());
    EXPECT_EQ(elements,
              std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}));
  }
}

TEST(BucketAssigner, ZeroSizeTensorsRideAlong) {
  const std::vector<std::size_t> sizes{0, 0, 0};
  const auto buckets = BucketAssigner(4).assign(sizes);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].tensor_count, 3u);
  EXPECT_EQ(buckets[0].elements, 0u);
}

// --------------------------------------------------------- ProcessGroup --

collective::RankData random_rank_data(std::size_t ranks, std::size_t n,
                                      std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(-1e8, 1e8);
  collective::RankData data(ranks, std::vector<double>(n));
  for (auto& rank : data) {
    for (auto& x : rank) x = dist(rng);
  }
  return data;
}

TEST(ProcessGroup, SimValidatesRankCount) {
  EXPECT_THROW(SimProcessGroup(0), std::invalid_argument);
  SimProcessGroup pg(4);
  EXPECT_EQ(pg.size(), 4u);
  EXPECT_EQ(pg.local_contributions(), 4u);
  EXPECT_STREQ(pg.backend(), "sim");
  const core::EvalContext ctx;
  EXPECT_THROW(pg.allreduce(random_rank_data(3, 8, 1),
                            collective::Algorithm::kRing, ctx),
               std::invalid_argument);
}

TEST(ProcessGroup, SimDelegatesToCollectiveBitwise) {
  SimProcessGroup pg(5);
  const auto data = random_rank_data(5, 64, 3);
  const core::EvalContext ctx;
  const auto ring = pg.allreduce(data, collective::Algorithm::kRing, ctx);
  const auto expect = collective::allreduce_ring(data);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(ring[i], expect[i]));
  }
}

TEST(ProcessGroup, ExactElementwiseMatchesReproducibleCollective) {
  const auto data = random_rank_data(7, 96, 5);
  const auto via_registry = exact_elementwise_allreduce(
      data, fp::AlgorithmId::kSuperaccumulator);
  const auto historic = collective::allreduce_reproducible(data);
  for (std::size_t i = 0; i < historic.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(via_registry[i], historic[i]));
  }
}

TEST(ProcessGroup, ReproducibleRejectsNonExactMergeAccumulator) {
  SimProcessGroup pg(3);
  const auto data = random_rank_data(3, 8, 7);
  core::EvalContext ctx;
  ctx.accumulator = fp::AlgorithmId::kKahan;
  EXPECT_THROW(
      pg.allreduce(data, collective::Algorithm::kReproducible, ctx),
      std::invalid_argument);
  // The exact-merge algorithms both carry the exchange.
  ctx.accumulator = fp::AlgorithmId::kBinned;
  EXPECT_NO_THROW(
      pg.allreduce(data, collective::Algorithm::kReproducible, ctx));
}

// --------------------------------------------------- bucketed_allreduce --

std::vector<TensorList<double>> random_rank_tensors(
    std::size_t ranks, const std::vector<std::size_t>& sizes,
    std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(-1e8, 1e8);
  std::vector<TensorList<double>> tensors(ranks);
  for (auto& rank : tensors) {
    rank.resize(sizes.size());
    for (std::size_t t = 0; t < sizes.size(); ++t) {
      rank[t].resize(sizes[t]);
      for (auto& x : rank[t]) x = dist(rng);
    }
  }
  return tensors;
}

const std::vector<std::size_t> kSizes{130, 7, 0, 64, 33, 257, 1};

TEST(BucketedAllreduce, MatchesUnbucketedCollectivePerTensor) {
  // Recursive doubling pairs *ranks* independently of an element's
  // position in the buffer, and the reproducible exchange is
  // order-invariant outright: for both, any bucket cap gives the bits of
  // the whole-tensor collective. (Ring is position-dependent - covered by
  // RingBitsMoveWithBucketLayout below.)
  SimProcessGroup pg(4);
  const auto tensors = random_rank_tensors(4, kSizes, 11);
  const core::EvalContext ctx;
  for (const auto algorithm : {collective::Algorithm::kRecursiveDoubling,
                               collective::Algorithm::kReproducible}) {
    for (const std::size_t cap : {1u, 64u, 100000u}) {
      BucketedConfig config;
      config.bucket_cap_elements = cap;
      const auto reduced =
          bucketed_allreduce(pg, tensors, algorithm, ctx, config);
      ASSERT_EQ(reduced.size(), kSizes.size());
      for (std::size_t t = 0; t < kSizes.size(); ++t) {
        collective::RankData one(4);
        for (std::size_t r = 0; r < 4; ++r) one[r] = tensors[r][t];
        const auto expect = pg.allreduce(one, algorithm, ctx);
        ASSERT_EQ(reduced[t].size(), kSizes[t]);
        for (std::size_t i = 0; i < kSizes[t]; ++i) {
          EXPECT_TRUE(fp::bitwise_equal(reduced[t][i], expect[i]))
              << collective::to_string(algorithm) << " cap " << cap;
        }
      }
    }
  }
}

TEST(BucketedAllreduce, RingBitsMoveWithBucketLayout) {
  // The ring reduce-scatter walks chunk c starting at rank (c+1) % P, so
  // an element's combining order over ranks depends on its *offset in the
  // reduced buffer* - and therefore on the bucket cap. Re-bucketing a
  // gradient exchange re-rounds a ring allreduce: the DDP re-layout
  // hazard, absent from the reproducible path by construction.
  SimProcessGroup pg(4);
  const auto tensors = random_rank_tensors(4, kSizes, 11);
  const core::EvalContext ctx;
  const auto with_cap = [&](std::size_t cap) {
    BucketedConfig config;
    config.bucket_cap_elements = cap;
    return bucketed_allreduce(pg, tensors, collective::Algorithm::kRing,
                              ctx, config);
  };
  const auto narrow = with_cap(1);       // every tensor its own bucket
  const auto wide = with_cap(100000);    // one flat bucket
  // cap=1 buckets are single tensors: bitwise equal to the per-tensor
  // ring collective.
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    collective::RankData one(4);
    for (std::size_t r = 0; r < 4; ++r) one[r] = tensors[r][t];
    const auto expect = pg.allreduce(one, collective::Algorithm::kRing, ctx);
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      EXPECT_TRUE(fp::bitwise_equal(narrow[t][i], expect[i]));
    }
  }
  // The flat layout re-rounds somewhere.
  bool any_moved = false;
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      if (!fp::bitwise_equal(narrow[t][i], wide[t][i])) any_moved = true;
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(BucketedAllreduce, EmptyTensorListReturnsEmpty) {
  SimProcessGroup pg(3);
  const std::vector<TensorList<double>> tensors(3);
  const core::EvalContext ctx;
  EXPECT_TRUE(
      bucketed_allreduce(pg, tensors, collective::Algorithm::kRing, ctx)
          .empty());
}

TEST(BucketedAllreduce, ValidatesShapesAndRankCount) {
  SimProcessGroup pg(2);
  const core::EvalContext ctx;
  // Wrong number of rank lists.
  EXPECT_THROW(bucketed_allreduce(pg, random_rank_tensors(3, kSizes, 13),
                                  collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  // Mismatched tensor sizes across ranks.
  auto ragged = random_rank_tensors(2, kSizes, 13);
  ragged[1][0].pop_back();
  EXPECT_THROW(bucketed_allreduce(pg, ragged,
                                  collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  // Arrival tree needs a run identity.
  EXPECT_THROW(bucketed_allreduce(pg, random_rank_tensors(2, kSizes, 13),
                                  collective::Algorithm::kArrivalTree, ctx),
               std::invalid_argument);
}

TEST(BucketedAllreduce, OverlapChangesWallClockNotBits) {
  SimProcessGroup pg(6);
  const auto tensors = random_rank_tensors(6, kSizes, 17);
  util::ThreadPool pool(4);
  for (const auto algorithm : {collective::Algorithm::kRing,
                               collective::Algorithm::kArrivalTree,
                               collective::Algorithm::kReproducible}) {
    for (const std::size_t cap : {32u, 256u}) {
      const auto reduce_with = [&](bool overlap, std::uint64_t run_index) {
        core::RunContext run(23, run_index);
        core::EvalContext ctx;
        ctx.run = &run;
        ctx.pool = &pool;
        BucketedConfig config;
        config.bucket_cap_elements = cap;
        config.overlap = overlap;
        return bucketed_allreduce(pg, tensors, algorithm, ctx, config);
      };
      const auto inline_bits = reduce_with(false, 0);
      const auto overlapped = reduce_with(true, 0);
      for (std::size_t t = 0; t < kSizes.size(); ++t) {
        for (std::size_t i = 0; i < kSizes[t]; ++i) {
          EXPECT_TRUE(
              fp::bitwise_equal(inline_bits[t][i], overlapped[t][i]))
              << collective::to_string(algorithm) << " cap " << cap;
        }
      }
    }
  }
}

TEST(BucketedAllreduce, PerBucketContextHookSelectsAccumulators) {
  // Bucket 0 rides the superaccumulator exchange, bucket 1+ the binned
  // sum: both exact-merge, so both are arrival-invariant, and the hook
  // demonstrably reaches each bucket (binned and superaccumulator round
  // identically here, so equality with the unhooked run certifies the
  // plumbing rather than moving bits).
  SimProcessGroup pg(4);
  const auto tensors = random_rank_tensors(4, kSizes, 19);
  const core::EvalContext ctx;
  BucketedConfig config;
  config.bucket_cap_elements = 128;
  std::vector<std::size_t> hooked;
  config.context_hook = [&](std::size_t b, core::EvalContext& bctx) {
    hooked.push_back(b);
    bctx.accumulator = b == 0 ? fp::AlgorithmId::kSuperaccumulator
                              : fp::AlgorithmId::kBinned;
  };
  const auto reduced = bucketed_allreduce(
      pg, tensors, collective::Algorithm::kReproducible, ctx, config);
  EXPECT_GT(hooked.size(), 1u);
  const auto unhooked = bucketed_allreduce(
      pg, tensors, collective::Algorithm::kReproducible, ctx,
      BucketedConfig{.bucket_cap_elements = 128});
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      EXPECT_TRUE(fp::bitwise_equal(reduced[t][i], unhooked[t][i]));
    }
  }
}

// ------------------------------------------- sharded_bucketed_allreduce --

std::vector<TensorList<double>> ill_conditioned_samples(
    std::size_t samples, const std::vector<std::size_t>& sizes,
    std::uint64_t seed) {
  // Large magnitude spread with cancellation: every re-association of the
  // sample contributions is visible in the low-order bits.
  util::Xoshiro256pp rng(seed);
  std::vector<TensorList<double>> grads(samples);
  for (auto& sample : grads) {
    sample.resize(sizes.size());
    for (std::size_t t = 0; t < sizes.size(); ++t) {
      sample[t].resize(sizes[t]);
      for (auto& x : sample[t]) {
        const double mag =
            std::ldexp(1.0, static_cast<int>(rng() % 60) - 30);
        x = ((rng() & 1) ? mag : -mag) *
            (1.0 + static_cast<double>(rng() % 1000) * 1e-3);
      }
    }
  }
  return grads;
}

std::vector<std::size_t> owner_map(std::size_t samples, std::size_t ranks,
                                   std::uint64_t seed) {
  // Deliberately uneven: a seeded random assignment, so some ranks own
  // many samples and (for small sample counts) some own none.
  util::Xoshiro256pp rng(seed);
  std::vector<std::size_t> owner(samples);
  for (auto& r : owner) r = rng() % ranks;
  return owner;
}

TEST(ShardedBucketedAllreduce, ReproducibleBitsInvariantToEverything) {
  // The tentpole certification: identical bits for every (rank count,
  // bucket cap, arrival order, shard split) combination.
  const auto samples = ill_conditioned_samples(24, kSizes, 29);
  const core::EvalContext base_ctx;
  SimProcessGroup one(1);
  const std::vector<std::size_t> all_zero(24, 0);
  const auto reference = sharded_bucketed_allreduce(
      one, samples, all_zero, collective::Algorithm::kReproducible,
      base_ctx, {});
  for (const std::size_t ranks : {1u, 2u, 3u, 8u, 24u}) {
    SimProcessGroup pg(ranks);
    for (const std::size_t cap : {1u, 100u, 1u << 20}) {
      for (const std::uint64_t split_seed : {1u, 2u, 3u}) {
        for (const std::uint64_t run_index : {0u, 1u}) {
          core::RunContext run(31, run_index);
          core::EvalContext ctx;
          ctx.run = &run;
          const auto reduced = sharded_bucketed_allreduce(
              pg, samples, owner_map(24, ranks, split_seed),
              collective::Algorithm::kReproducible, ctx,
              BucketedConfig{.bucket_cap_elements = cap});
          for (std::size_t t = 0; t < kSizes.size(); ++t) {
            for (std::size_t i = 0; i < kSizes[t]; ++i) {
              EXPECT_TRUE(
                  fp::bitwise_equal(reduced[t][i], reference[t][i]))
                  << "ranks " << ranks << " cap " << cap << " split "
                  << split_seed << " run " << run_index;
            }
          }
        }
      }
    }
  }
}

TEST(ShardedBucketedAllreduce, ArrivalTreeMovesWithArrivalOrder) {
  const auto samples = ill_conditioned_samples(24, kSizes, 37);
  SimProcessGroup pg(8);
  const auto owner = owner_map(24, 8, 4);
  const auto kernel = [&](core::RunContext& run) {
    core::EvalContext ctx;
    ctx.run = &run;
    const auto reduced = sharded_bucketed_allreduce(
        pg, samples, owner, collective::Algorithm::kArrivalTree, ctx,
        BucketedConfig{.bucket_cap_elements = 64});
    std::vector<double> flat;
    for (const auto& tensor : reduced) {
      flat.insert(flat.end(), tensor.begin(), tensor.end());
    }
    return flat;
  };
  EXPECT_FALSE(core::certify_deterministic(kernel, 8, 41).deterministic);
}

TEST(ShardedBucketedAllreduce, RoundedAlgorithmsMoveWithShardSplit) {
  // The deterministic-but-rounded collectives commit to the shard
  // association: a different owner map generally lands on different bits
  // (the re-layout hazard the reproducible path removes).
  const auto samples = ill_conditioned_samples(24, kSizes, 43);
  SimProcessGroup pg(6);
  const core::EvalContext ctx;
  const auto a = sharded_bucketed_allreduce(
      pg, samples, owner_map(24, 6, 1), collective::Algorithm::kRing, ctx,
      {});
  const auto b = sharded_bucketed_allreduce(
      pg, samples, owner_map(24, 6, 2), collective::Algorithm::kRing, ctx,
      {});
  bool any_moved = false;
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      if (!fp::bitwise_equal(a[t][i], b[t][i])) any_moved = true;
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(ShardedBucketedAllreduce, Validation) {
  SimProcessGroup pg(2);
  const core::EvalContext ctx;
  const auto samples = ill_conditioned_samples(4, {8}, 47);
  const std::vector<TensorList<double>> no_samples;
  EXPECT_THROW(sharded_bucketed_allreduce(pg, no_samples, {},
                                          collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  const std::vector<std::size_t> short_owner(3, 0);
  EXPECT_THROW(
      sharded_bucketed_allreduce(pg, samples, short_owner,
                                 collective::Algorithm::kRing, ctx),
      std::invalid_argument);
  const std::vector<std::size_t> bad_owner{0, 1, 2, 0};
  EXPECT_THROW(
      sharded_bucketed_allreduce(pg, samples, bad_owner,
                                 collective::Algorithm::kRing, ctx),
      std::out_of_range);
}

}  // namespace
}  // namespace fpna::comm

// --------------------------------------------------- data-parallel dl --

namespace fpna::dl {
namespace {

DatasetConfig tiny_config() {
  auto config = DatasetConfig::small();
  config.num_nodes = 120;
  config.num_undirected_edges = 300;
  config.num_features = 32;
  config.words_per_node = 5;
  return config;
}

TEST(DataParallel, ShardMasksPartitionTrainingNodes) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  for (const auto split :
       {ShardSplit::kRoundRobin, ShardSplit::kContiguous}) {
    // 7 ranks over the training nodes: shards are uneven by construction.
    const auto masks = shard_train_mask(ds.train_mask, 7, split);
    ASSERT_EQ(masks.size(), 7u);
    std::size_t covered = 0;
    bool uneven = false;
    std::size_t first_count = 0;
    for (std::size_t r = 0; r < masks.size(); ++r) {
      std::size_t count = 0;
      for (std::size_t v = 0; v < ds.train_mask.size(); ++v) {
        EXPECT_TRUE(!masks[r][v] || ds.train_mask[v]);
        if (masks[r][v]) ++count;
      }
      if (r == 0) {
        first_count = count;
      } else if (count != first_count) {
        uneven = true;
      }
      covered += count;
    }
    EXPECT_EQ(covered, static_cast<std::size_t>(ds.train_count()));
    EXPECT_TRUE(uneven);  // 120 * 0.6 = 72 training nodes, 72 % 7 != 0
  }
}

TEST(DataParallel, SingleRankMatchesSerialTrainerBitwise) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  TrainConfig base;
  base.epochs = 4;
  base.hidden = 8;

  core::RunContext serial_run(53, 0);
  const auto serial = train(ds, base, serial_run);

  for (const auto algorithm : {collective::Algorithm::kReproducible,
                               collective::Algorithm::kRing}) {
    DataParallelConfig config;
    config.base = base;
    config.ranks = 1;
    config.algorithm = algorithm;
    core::RunContext run(53, 0);
    const auto parallel = train_data_parallel(ds, config, run);
    ASSERT_EQ(parallel.final_weights.size(), serial.final_weights.size());
    for (std::size_t i = 0; i < serial.final_weights.size(); ++i) {
      EXPECT_TRUE(fp::bitwise_equal(parallel.final_weights[i],
                                    serial.final_weights[i]))
          << collective::to_string(algorithm);
    }
    ASSERT_EQ(parallel.epoch_losses.size(), serial.epoch_losses.size());
    for (std::size_t e = 0; e < serial.epoch_losses.size(); ++e) {
      EXPECT_TRUE(fp::bitwise_equal(parallel.epoch_losses[e],
                                    serial.epoch_losses[e]));
    }
  }
}

TEST(DataParallel, ReproducibleTrainingIsRunToRunBitStable) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 3;
  config.base.hidden = 8;
  config.ranks = 5;
  config.bucket_cap_elements = 64;  // many buckets
  const auto kernel = [&](core::RunContext& run) {
    return train_data_parallel(ds, config, run).final_weights;
  };
  EXPECT_TRUE(core::certify_deterministic(kernel, 4, 59).deterministic);
}

TEST(DataParallel, ArrivalTreeTrainsUniqueModels) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 3;
  config.base.hidden = 8;
  config.ranks = 5;
  config.algorithm = collective::Algorithm::kArrivalTree;
  std::vector<std::vector<double>> weights;
  for (std::uint64_t r = 0; r < 6; ++r) {
    core::RunContext run(61, r);
    weights.push_back(train_data_parallel(ds, config, run).final_weights);
  }
  // Distributed analogue of the paper's SV.B: every run a unique model,
  // even though every rank's local computation is deterministic.
  EXPECT_EQ(core::count_unique_outputs(weights), weights.size());
}

TEST(DataParallel, OverlapDoesNotMoveTrainingBits) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  util::ThreadPool pool(4);
  DataParallelConfig config;
  config.base.epochs = 3;
  config.base.hidden = 8;
  config.ranks = 4;
  config.bucket_cap_elements = 64;
  core::RunContext run_a(67, 0);
  const auto inline_weights =
      train_data_parallel(ds, config, run_a).final_weights;
  config.overlap = true;
  config.pool = &pool;
  core::RunContext run_b(67, 0);
  const auto overlapped =
      train_data_parallel(ds, config, run_b).final_weights;
  ASSERT_EQ(inline_weights.size(), overlapped.size());
  for (std::size_t i = 0; i < inline_weights.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(inline_weights[i], overlapped[i]));
  }
}

TEST(DataParallel, UnevenContiguousShardsStillCertify) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 2;
  config.base.hidden = 4;
  config.ranks = 7;  // 72 training nodes -> shards of 11 and 10
  config.split = ShardSplit::kContiguous;
  const auto kernel = [&](core::RunContext& run) {
    return train_data_parallel(ds, config, run).final_weights;
  };
  EXPECT_TRUE(core::certify_deterministic(kernel, 3, 71).deterministic);
}

TEST(DataParallel, Validation) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 0;
  core::RunContext run(73, 0);
  EXPECT_THROW(train_data_parallel(ds, config, run), std::invalid_argument);
  config.base.epochs = 1;
  config.ranks = 3;
  comm::SimProcessGroup mismatched(2);
  EXPECT_THROW(train_data_parallel(ds, config, run, mismatched),
               std::invalid_argument);
}

}  // namespace
}  // namespace fpna::dl
