#pragma once
// Descriptive statistics for variability samples: single-pass (Welford)
// moments, quantiles, and bootstrap confidence intervals. The paper
// reports variability as mean(std) pairs and extrema (max |Vs|); these are
// the primitives behind those numbers.

#include <cstddef>
#include <span>
#include <vector>

#include "fpna/util/rng.hpp"

namespace fpna::stats {

/// Numerically stable streaming moments (Welford's algorithm), including
/// third/fourth central moments for skewness/kurtosis.
class Welford {
 public:
  void add(double x) noexcept;
  void merge(const Welford& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Population skewness g1; 0 for degenerate samples.
  double skewness() const noexcept;
  /// Excess kurtosis g2 (normal -> 0).
  double excess_kurtosis() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double skewness = 0.0;
  double excess_kurtosis = 0.0;
};

Summary summarize(std::span<const double> samples) noexcept;

/// Linear-interpolated quantile, q in [0, 1]. Copies and sorts internally.
double quantile(std::span<const double> samples, double q);

struct BootstrapCi {
  double lower = 0.0;
  double upper = 0.0;
  double point = 0.0;
};

/// Percentile-bootstrap CI for the sample mean.
BootstrapCi bootstrap_mean_ci(std::span<const double> samples,
                              std::size_t resamples, double confidence,
                              util::Xoshiro256pp& rng);

}  // namespace fpna::stats
