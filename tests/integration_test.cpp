// Cross-module integration tests: the full experimental pipelines that
// the bench harnesses run, exercised end-to-end at reduced scale so CI
// verifies every paper-facing claim stays true.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/fp/summation.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/reduce/cpu_sum.hpp"
#include "fpna/reduce/gpu_sum.hpp"
#include "fpna/sim/lpu.hpp"
#include "fpna/stats/fit.hpp"
#include "fpna/stats/histogram.hpp"
#include "fpna/stats/normality.hpp"
#include "fpna/tensor/indexed_ops.hpp"
#include "fpna/tensor/workload.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/rng.hpp"

namespace fpna {
namespace {

std::vector<double> uniform_array(std::size_t n, std::uint64_t seed,
                                  double lo = 0.0, double hi = 10.0) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// Table 1 pipeline: permutation variability of plain serial sums grows
// with n and sits at the 1e-16..1e-15 Vs scale for N(0,1) data.
TEST(Integration, Table1PermutationScale) {
  util::Xoshiro256pp rng(1);
  util::Normal dist(0.0, 1.0);
  for (const std::size_t n : {1000u, 100000u}) {
    std::vector<double> v(n);
    for (auto& x : v) x = dist(rng);
    const double s_d = fp::sum_serial(v);
    util::Xoshiro256pp shuffle_rng(2);
    double max_abs_vs = 0.0;
    for (int rep = 0; rep < 10; ++rep) {
      util::shuffle(v, shuffle_rng);
      max_abs_vs =
          std::max(max_abs_vs, std::fabs(core::vs(fp::sum_serial(v), s_d)));
    }
    EXPECT_GT(max_abs_vs, 0.0);
    EXPECT_LT(max_abs_vs, 1e-9);  // still a relative-rounding-scale effect
  }
}

// Fig 1 / Fig 2 pipeline: SPA variability is Gaussian-like, AO is not.
// Uses many blocks (nt = 16 over 64k elements) so the SPA rounding lattice
// has enough distinct levels for a smooth histogram - at tiny sizes the
// discreteness of achievable roundings dominates any KL comparison.
TEST(Integration, SpaIsMoreGaussianThanAo) {
  const auto data = uniform_array(65536, 3);
  sim::SimDevice device(sim::DeviceProfile::v100());

  const auto collect = [&](sim::SumMethod method) {
    const auto d = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, sim::SumMethod::kSPTR, ctx, 16)
          .value;
    };
    const auto nd = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, method, ctx, 16).value;
    };
    return core::measure_scalar_variability(d, nd, 400, 7).vs_samples;
  };

  const auto spa = collect(sim::SumMethod::kSPA);
  const auto ao = collect(sim::SumMethod::kAO);

  const auto spa_jb = stats::jarque_bera(spa);
  const auto ao_jb = stats::jarque_bera(ao);
  // AO's contention-mixture scheduling yields much stronger departure
  // from normality than SPA's wave shuffling.
  EXPECT_GT(ao_jb.statistic, 4.0 * spa_jb.statistic);

  const auto spa_summary = stats::summarize(spa);
  const auto ao_summary = stats::summarize(ao);
  const auto spa_hist = stats::Histogram::from_samples(spa, 20);
  const auto ao_hist = stats::Histogram::from_samples(ao, 20);
  const double spa_kl = stats::kl_divergence_vs_normal(
      spa_hist, spa_summary.mean, spa_summary.stddev);
  const double ao_kl = stats::kl_divergence_vs_normal(
      ao_hist, ao_summary.mean, ao_summary.stddev);
  EXPECT_GT(ao_kl, spa_kl);
}

// SIII.C pipeline: max |Vs| grows roughly like sqrt(n) for uniform data.
TEST(Integration, PowerLawExponentNearHalf) {
  sim::SimDevice device(sim::DeviceProfile::v100());
  std::vector<double> sizes, max_vs;
  for (const std::size_t n : {1000u, 4000u, 16000u, 64000u}) {
    const auto data = uniform_array(n, 100 + n);
    const auto d = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, sim::SumMethod::kSPTR, ctx, 64)
          .value;
    };
    const auto nd = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, sim::SumMethod::kSPA, ctx, 64)
          .value;
    };
    const auto report = core::measure_scalar_variability(d, nd, 120, 11);
    double mv = 0.0;
    for (const double v : report.vs_samples) mv = std::max(mv, std::fabs(v));
    sizes.push_back(static_cast<double>(n));
    max_vs.push_back(mv);
  }
  const auto fit = stats::power_law_fit(sizes, max_vs);
  // Random-walk rounding error: exponent in a loose band around 1/2.
  EXPECT_GT(fit.alpha, 0.1);
  EXPECT_LT(fit.alpha, 0.9);
  EXPECT_GT(fit.r_squared, 0.6);
}

// Table 5 pipeline: ND ops show nonzero Vermv at the FP32 rounding scale;
// deterministic reference never varies.
TEST(Integration, TensorOpVariabilityPipeline) {
  util::Xoshiro256pp rng(13);
  auto w = tensor::make_scatter_workload<float>(3000, 0.5, rng);

  const auto to_doubles = [](const tensor::TensorF& t) {
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(t.numel()));
    for (const float v : t.data()) out.push_back(v);
    return out;
  };

  const core::ArrayKernel d_kernel = [&](core::RunContext&) {
    return to_doubles(
        tensor::scatter_reduce(w.self, 0, w.index, w.src, tensor::Reduce::kSum));
  };
  const core::ArrayKernel nd_kernel = [&](core::RunContext& run) {
    const auto ctx = tensor::nd_context(run);
    return to_doubles(tensor::scatter_reduce(w.self, 0, w.index, w.src,
                                             tensor::Reduce::kSum, true, ctx));
  };

  const auto report =
      core::measure_array_variability(d_kernel, nd_kernel, 50, 17);
  EXPECT_GT(report.vermv_summary.mean, 0.0);
  EXPECT_LT(report.vermv_summary.mean, 1e-4);  // FP32 rounding scale
  EXPECT_GT(report.vc_summary.mean, 0.0);
  EXPECT_LE(report.vc_summary.max, 1.0);
  EXPECT_TRUE(core::certify_deterministic(d_kernel, 5, 19).deterministic);
}

// Fig 3/4 trend: variability increases with reduction ratio for
// index_add (approximately linear in the paper).
TEST(Integration, IndexAddVcIncreasesWithRatio) {
  const auto vc_at = [](double ratio) {
    util::Xoshiro256pp rng(17);
    auto w = tensor::make_index_add_workload<float>(80, ratio, rng);
    const auto det = tensor::index_add(w.self, 0, w.index, w.source);
    double total = 0.0;
    constexpr int kRuns = 15;
    for (std::uint64_t r = 0; r < kRuns; ++r) {
      core::RunContext run(23, r);
      const auto ctx = tensor::nd_context(run);
      const auto out = tensor::index_add(w.self, 0, w.index, w.source, 1.0f, ctx);
      total += core::vc(det.data(), out.data());
    }
    return total / kRuns;
  };
  const double low = vc_at(0.2);
  const double high = vc_at(1.0);
  EXPECT_GT(high, low);
}

// Table 7 pipeline: the four training/inference determinism combinations
// are ordered exactly as in the paper.
TEST(Integration, Table7Ordering) {
  auto config = dl::DatasetConfig::small();
  config.num_nodes = 150;
  config.num_undirected_edges = 400;
  config.num_features = 48;
  const auto ds = dl::make_synthetic_citation_dataset(config);

  dl::TrainConfig tc;
  tc.epochs = 5;
  tc.hidden = 8;

  const auto run_condition = [&](bool det_train, bool det_infer,
                                 std::size_t runs) {
    // Reference: fully deterministic pipeline.
    dl::TrainConfig ref_config = tc;
    ref_config.deterministic = true;
    core::RunContext ref_run(900, 0);
    const auto ref_model = dl::train(ds, ref_config, ref_run);
    const tensor::OpContext det_ctx;
    const dl::Matrix ref = dl::infer(ref_model.model, ds, det_ctx);

    double vermv_total = 0.0, vc_total = 0.0;
    for (std::uint64_t r = 0; r < runs; ++r) {
      dl::TrainConfig cfg = tc;
      cfg.deterministic = det_train;
      core::RunContext train_run(1000 + r, r);
      const auto trained = dl::train(ds, cfg, train_run);
      core::RunContext infer_run(2000 + r, r);
      tensor::OpContext ctx;
      if (!det_infer) ctx = tensor::nd_context(infer_run);
      const dl::Matrix out = dl::infer(trained.model, ds, ctx);
      vermv_total += core::vermv(ref.data(), out.data());
      vc_total += core::vc(ref.data(), out.data());
    }
    return std::pair<double, double>{vermv_total / runs, vc_total / runs};
  };

  const auto dd = run_condition(true, true, 3);
  const auto dnd = run_condition(true, false, 3);
  const auto ndd = run_condition(false, true, 3);
  const auto ndnd = run_condition(false, false, 3);

  EXPECT_EQ(dd.first, 0.0);   // D/D is bitwise reproducible
  EXPECT_EQ(dd.second, 0.0);
  EXPECT_GT(dnd.second, 0.0);  // ND inference alone already varies
  EXPECT_GT(ndd.second, 0.0);  // ND training alone too
  // Paper Table 7: ND training contributes more than ND inference, and
  // ND/ND is the worst.
  EXPECT_GT(ndd.first, dnd.first);
  EXPECT_GE(ndnd.first, ndd.first * 0.8);  // allow sampling noise
}

// Reproducible-summation guarantee survives the full pipeline: GPU sums,
// CPU sums and the superaccumulator agree to within rounding, and the
// superaccumulator is exactly permutation invariant.
TEST(Integration, CrossStackSumConsistency) {
  const auto data = uniform_array(50000, 19, -100.0, 100.0);
  const double exact = fp::Superaccumulator::sum(data);

  sim::SimDevice device(sim::DeviceProfile::gh200());
  core::RunContext ctx(21, 0);
  for (const auto method :
       {sim::SumMethod::kCU, sim::SumMethod::kSPTR, sim::SumMethod::kSPRG,
        sim::SumMethod::kTPRC, sim::SumMethod::kSPA, sim::SumMethod::kAO}) {
    const auto result = reduce::gpu_sum(device, data, method, ctx, 128);
    EXPECT_NEAR(result.value, exact, std::fabs(exact) * 1e-10 + 1e-8)
        << sim::to_string(method);
  }
  EXPECT_NEAR(reduce::cpu_sum_serial(data), exact, 1e-8);
  EXPECT_NEAR(reduce::cpu_sum_chunked_deterministic(data, 8), exact, 1e-8);
  EXPECT_EQ(reduce::cpu_sum_reproducible(data, 8), exact);
}

// LPU end-to-end: deterministic inference with fixed modelled latency.
TEST(Integration, LpuPipelineDeterminism) {
  auto config = dl::DatasetConfig::small();
  config.num_nodes = 100;
  config.num_undirected_edges = 250;
  config.num_features = 32;
  const auto ds = dl::make_synthetic_citation_dataset(config);

  dl::TrainConfig tc;
  tc.epochs = 3;
  tc.hidden = 8;
  tc.deterministic = true;
  core::RunContext run(25, 0);
  const auto trained = dl::train(ds, tc, run);

  // "Running on the LPU" = deterministic ops + static-schedule timing.
  const tensor::OpContext det_ctx;
  const dl::Matrix a = dl::infer(trained.model, ds, det_ctx);
  const dl::Matrix b = dl::infer(trained.model, ds, det_ctx);
  EXPECT_TRUE(a.bitwise_equal(b));

  const sim::LpuDevice lpu;
  const auto dims = dl::ModelDims::of(ds, tc.hidden);
  const double t1 = dl::lpu_inference_ms(lpu, dims);
  const double t2 = dl::lpu_inference_ms(lpu, dims);
  EXPECT_EQ(t1, t2);  // cycle-exact, not a measurement
  EXPECT_GT(t1, 0.0);
}

}  // namespace
}  // namespace fpna
