// Unit tests for fpna::dl: graph, synthetic dataset, linear algebra,
// layers (with numerical gradient checks), Adam, and the trainer.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/reduction_spec.hpp"
#include "fpna/fp/simd.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/util/thread_pool.hpp"
#include "fpna/dl/adam.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/graph.hpp"
#include "fpna/dl/layers.hpp"
#include "fpna/dl/linalg.hpp"
#include "fpna/dl/loss_scale.hpp"
#include "fpna/dl/model.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/sim/lpu.hpp"
#include "fpna/tensor/workload.hpp"

namespace fpna::dl {
namespace {

// --------------------------------------------------------------- graph --

TEST(Graph, DegreesAndValidity) {
  Graph g;
  g.num_nodes = 4;
  g.add_undirected_edge(0, 1);
  g.add_edge(2, 1);
  EXPECT_EQ(g.num_edges(), 3);
  const auto deg = g.in_degrees();
  EXPECT_EQ(deg[1], 2);
  EXPECT_EQ(deg[0], 1);
  EXPECT_EQ(deg[3], 0);
  EXPECT_TRUE(g.valid());
  EXPECT_THROW(g.add_edge(0, 7), std::out_of_range);
}

// ------------------------------------------------------------- dataset --

TEST(Dataset, ShapesMatchConfig) {
  const auto config = DatasetConfig::small();
  const auto ds = make_synthetic_citation_dataset(config);
  EXPECT_EQ(ds.num_nodes(), config.num_nodes);
  EXPECT_EQ(ds.num_features(), config.num_features);
  EXPECT_EQ(ds.graph.num_edges(), 2 * config.num_undirected_edges);
  EXPECT_EQ(ds.num_classes, config.num_classes);
  EXPECT_TRUE(ds.graph.valid());
  EXPECT_GT(ds.train_count(), 0);
  EXPECT_LT(ds.train_count(), ds.num_nodes());
}

TEST(Dataset, IsDeterministicInSeed) {
  const auto a = make_synthetic_citation_dataset(DatasetConfig::small());
  const auto b = make_synthetic_citation_dataset(DatasetConfig::small());
  EXPECT_TRUE(a.features.bitwise_equal(b.features));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.graph.edge_src, b.graph.edge_src);
}

TEST(Dataset, DifferentSeedsDiffer) {
  auto config = DatasetConfig::small();
  const auto a = make_synthetic_citation_dataset(config);
  config.seed += 1;
  const auto b = make_synthetic_citation_dataset(config);
  EXPECT_FALSE(a.features.bitwise_equal(b.features));
}

TEST(Dataset, EdgesAreHomophilous) {
  const auto ds = make_synthetic_citation_dataset(DatasetConfig::small());
  std::int64_t same = 0;
  for (std::int64_t e = 0; e < ds.graph.num_edges(); ++e) {
    const auto u = static_cast<std::size_t>(ds.graph.edge_src[e]);
    const auto v = static_cast<std::size_t>(ds.graph.edge_dst[e]);
    same += ds.labels[u] == ds.labels[v];
  }
  const double fraction =
      static_cast<double>(same) / static_cast<double>(ds.graph.num_edges());
  EXPECT_GT(fraction, 0.6);  // homophily makes classes learnable
}

TEST(Dataset, FeaturesAreRowNormalisedIndicators) {
  const auto config = DatasetConfig::small();
  const auto ds = make_synthetic_citation_dataset(config);
  for (std::int64_t v = 0; v < 5; ++v) {
    double norm_sq = 0.0;
    for (std::int64_t f = 0; f < ds.num_features(); ++f) {
      norm_sq += ds.features.at({v, f}) * ds.features.at({v, f});
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-5);
  }
}

// -------------------------------------------------------------- linalg --

TEST(Linalg, MatmulIdentity) {
  const auto a = Matrix::from_data(tensor::Shape{2, 2}, {1, 2, 3, 4});
  const auto eye = Matrix::from_data(tensor::Shape{2, 2}, {1, 0, 0, 1});
  EXPECT_TRUE(matmul(a, eye).bitwise_equal(a));
}

TEST(Linalg, MatmulKnown) {
  const auto a = Matrix::from_data(tensor::Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const auto b = Matrix::from_data(tensor::Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  const auto c = matmul(a, b);
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Linalg, TransposeVariantsAgree) {
  util::Xoshiro256pp rng(1);
  const auto a = tensor::random_uniform<float>(tensor::Shape{5, 4}, -1, 1, rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{5, 6}, -1, 1, rng);
  // a^T b via matmul_transpose_a must equal manual transpose + matmul.
  Matrix at(tensor::Shape{4, 5});
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) at.at({j, i}) = a.at({i, j});
  }
  const auto direct = matmul(at, b);
  const auto fused = matmul_transpose_a(a, b);
  for (std::int64_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct.flat(i), fused.flat(i), 1e-5);
  }
}

TEST(Linalg, MatmulTransposeB) {
  util::Xoshiro256pp rng(2);
  const auto a = tensor::random_uniform<float>(tensor::Shape{3, 4}, -1, 1, rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{5, 4}, -1, 1, rng);
  const auto c = matmul_transpose_b(a, b);  // [3,5]
  EXPECT_EQ(c.shape(), (tensor::Shape{3, 5}));
  float manual = 0.0f;
  for (std::int64_t k = 0; k < 4; ++k) manual += a.at({1, k}) * b.at({2, k});
  EXPECT_NEAR(c.at({1, 2}), manual, 1e-6);
}

TEST(Linalg, BiasAndColumnSums) {
  auto a = Matrix::from_data(tensor::Shape{2, 2}, {1, 2, 3, 4});
  const auto bias = Matrix::from_data(tensor::Shape{2}, {10, 20});
  add_bias_rows(a, bias);
  EXPECT_EQ(a.at({1, 1}), 24.0f);
  const auto sums = column_sums(a);
  EXPECT_EQ(sums.at({0}), 24.0f);
  EXPECT_EQ(sums.at({1}), 46.0f);
}

TEST(Linalg, GatherRows) {
  const auto x = Matrix::from_data(tensor::Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  const auto out = gather_rows(x, {2, 0, 2});
  EXPECT_EQ(out.shape(), (tensor::Shape{3, 2}));
  EXPECT_EQ(out.at({0, 0}), 5.0f);
  EXPECT_EQ(out.at({1, 1}), 2.0f);
  EXPECT_EQ(out.at({2, 0}), 5.0f);
  EXPECT_THROW(gather_rows(x, {3}), std::out_of_range);
}

// ------------------------------------------- pool-parallel dense kernels --

// The tentpole contract: routing the dense kernel family through
// EvalContext.pool is bitwise identical to serial *by construction* - for
// every registry accumulator and every thread count. Row-blocked outer
// loops mean each output element's accumulation stream never crosses a
// chunk boundary.
TEST(Linalg, PooledKernelsBitwiseEqualSerialForEveryAccumulator) {
  util::Xoshiro256pp rng(321);
  auto a = tensor::random_uniform<float>(tensor::Shape{37, 23}, -1e4, 1e4,
                                         rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{23, 19}, -1e4,
                                               1e4, rng);
  const auto d = tensor::random_uniform<float>(tensor::Shape{37, 19}, -1e4,
                                               1e4, rng);
  const auto bt = tensor::random_uniform<float>(tensor::Shape{19, 23}, -1e4,
                                                1e4, rng);
  // Exact zeros exercise the kernels' sparsity skip on both paths.
  for (std::int64_t i = 0; i < a.numel(); i += 7) a.flat(i) = 0.0f;

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    for (const auto& entry : fp::AlgorithmRegistry::instance().entries()) {
      core::EvalContext serial_ctx;
      serial_ctx.accumulator = entry.id;
      const core::EvalContext pool_ctx = serial_ctx.with_pool(&pool);
      const std::string label = entry.name + " @" + std::to_string(threads);

      EXPECT_TRUE(matmul(a, b, pool_ctx)
                      .bitwise_equal(matmul(a, b, serial_ctx)))
          << label;
      EXPECT_TRUE(matmul_transpose_a(a, d, pool_ctx)
                      .bitwise_equal(matmul_transpose_a(a, d, serial_ctx)))
          << label;
      EXPECT_TRUE(matmul_transpose_b(a, bt, pool_ctx)
                      .bitwise_equal(matmul_transpose_b(a, bt, serial_ctx)))
          << label;
      EXPECT_TRUE(
          add(d, d, pool_ctx).bitwise_equal(add(d, d, serial_ctx)))
          << label;
      EXPECT_TRUE(column_sums(a, pool_ctx)
                      .bitwise_equal(column_sums(a, serial_ctx)))
          << label;
      EXPECT_TRUE(gather_rows(a, {5, 0, 5, 36}, pool_ctx)
                      .bitwise_equal(gather_rows(a, {5, 0, 5, 36})))
          << label;
    }
  }
}

// The dtype axis: pooled execution stays bitwise identical to serial for
// mixed-precision specs too - the storage/accumulate dtypes change which
// value every element takes, never how the row blocks partition it.
TEST(Linalg, PooledKernelsBitwiseEqualSerialForDtypeSpecs) {
  util::Xoshiro256pp rng(654);
  const auto a = tensor::random_uniform<float>(tensor::Shape{29, 31}, -1e3,
                                               1e3, rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{31, 17}, -1e3,
                                               1e3, rng);
  for (const char* name : {"serial@bf16:f32", "kahan@bf16:f32",
                           "serial@bf16:bf16", "serial@f32:f64",
                           "superaccumulator@bf16:f32"}) {
    const fp::ReductionSpec spec = fp::parse_reduction_spec(name);
    for (const std::size_t threads : {2u, 8u}) {
      util::ThreadPool pool(threads);
      core::EvalContext serial_ctx;
      serial_ctx.accumulator = spec;
      const core::EvalContext pool_ctx = serial_ctx.with_pool(&pool);
      const std::string label =
          std::string(name) + " @" + std::to_string(threads);
      EXPECT_TRUE(matmul(a, b, pool_ctx)
                      .bitwise_equal(matmul(a, b, serial_ctx)))
          << label;
      EXPECT_TRUE(column_sums(a, pool_ctx)
                      .bitwise_equal(column_sums(a, serial_ctx)))
          << label;
    }
  }
}

// The SIMD lane axis: a lane-blocked spec names one re-association, so
// pooled execution must still equal serial bit for bit at every thread
// count, and the forced scalar lane-emulation must equal whatever the
// host's intrinsics dispatch produced.
TEST(Linalg, PooledKernelsBitwiseEqualSerialForLaneBlockedSpecs) {
  util::Xoshiro256pp rng(777);
  const auto a = tensor::random_uniform<float>(tensor::Shape{33, 27}, -1e3,
                                               1e3, rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{27, 21}, -1e3,
                                               1e3, rng);
  for (const char* name : {"serial@simd4", "serial@simd8", "kahan@simd4",
                           "kahan@simd8", "klein@simd16",
                           "kahan@simd8:bf16:f32"}) {
    const fp::ReductionSpec spec = fp::parse_reduction_spec(name);
    core::EvalContext serial_ctx;
    serial_ctx.accumulator = spec;
    const dl::Matrix reference = matmul(a, b, serial_ctx);
    const dl::Matrix ref_cols = column_sums(a, serial_ctx);

    fp::set_simd_force_scalar(true);
    const bool emul_matmul = matmul(a, b, serial_ctx).bitwise_equal(reference);
    const bool emul_cols =
        column_sums(a, serial_ctx).bitwise_equal(ref_cols);
    fp::set_simd_force_scalar(std::nullopt);
    EXPECT_TRUE(emul_matmul) << name;
    EXPECT_TRUE(emul_cols) << name;

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      util::ThreadPool pool(threads);
      const core::EvalContext pool_ctx = serial_ctx.with_pool(&pool);
      const std::string label =
          std::string(name) + " @" + std::to_string(threads);
      EXPECT_TRUE(matmul(a, b, pool_ctx).bitwise_equal(reference)) << label;
      EXPECT_TRUE(column_sums(a, pool_ctx).bitwise_equal(ref_cols)) << label;
    }
  }
}

// Lanes survive the split-k chunk spec reconstruction (the bf16 path
// rebuilds the spec with native storage - it must keep the lane count,
// or splits would silently fall back to the scalar association).
TEST(Linalg, SplitKPreservesLaneBlockingUnderBf16Storage) {
  util::Xoshiro256pp rng(778);
  const auto a = tensor::random_uniform<float>(tensor::Shape{17, 40}, -1e3,
                                               1e3, rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{40, 11}, -1e3,
                                               1e3, rng);
  core::EvalContext ctx;
  ctx.accumulator = fp::parse_reduction_spec("kahan@simd8:bf16:f32");
  // splits == 1 copies the single partial: bitwise the plain matmul under
  // the same spec, which only holds if the chunk spec kept lanes == 8.
  EXPECT_TRUE(dl::matmul_split_k(a, b, 1, ctx)
                  .bitwise_equal(dl::matmul(a, b, ctx)));
  // And the deterministic multi-split path stays run-to-run stable.
  EXPECT_TRUE(dl::matmul_split_k(a, b, 4, ctx)
                  .bitwise_equal(dl::matmul_split_k(a, b, 4, ctx)));
}

// bf16 storage semantics are operand quantization: running the native
// serial kernel on pre-quantized operands must reproduce the
// serial@bf16:f32 kernel bit for bit (products of bf16 values are exact
// in binary32, and both paths fold them in the same ascending-p order).
TEST(Linalg, Bf16StorageMatmulMatchesQuantizedOperandReference) {
  util::Xoshiro256pp rng(987);
  auto a = tensor::random_uniform<float>(tensor::Shape{13, 21}, -50.0, 50.0,
                                         rng);
  auto b = tensor::random_uniform<float>(tensor::Shape{21, 9}, -50.0, 50.0,
                                         rng);
  for (std::int64_t i = 0; i < a.numel(); i += 5) a.flat(i) = 0.0f;

  core::EvalContext bf16_ctx;
  bf16_ctx.accumulator = fp::parse_reduction_spec("serial@bf16:f32");
  const auto mixed = matmul(a, b, bf16_ctx);

  auto qa = a;
  auto qb = b;
  for (std::int64_t i = 0; i < qa.numel(); ++i) {
    qa.flat(i) = static_cast<float>(fp::bf16(qa.flat(i)));
  }
  for (std::int64_t i = 0; i < qb.numel(); ++i) {
    qb.flat(i) = static_cast<float>(fp::bf16(qb.flat(i)));
  }
  const auto reference = matmul(qa, qb, core::EvalContext{});
  EXPECT_TRUE(mixed.bitwise_equal(reference));
}

// The defaulted context reproduces the seed's hand-rolled loops: pooled
// kSerial lands on the same pinned values as MatmulKnown.
TEST(Linalg, PooledSerialDefaultMatchesKnownValues) {
  const auto a = Matrix::from_data(tensor::Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  const auto b = Matrix::from_data(tensor::Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  util::ThreadPool pool(4);
  core::EvalContext ctx;
  ctx.pool = &pool;
  const auto c = matmul(a, b, ctx);
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(Linalg, SplitKDeterministicPathIsStableAndSplitsOneIsMatmul) {
  util::Xoshiro256pp rng(77);
  const auto a = tensor::random_uniform<float>(tensor::Shape{12, 64}, -1e8,
                                               1e8, rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{64, 9}, -1e8,
                                               1e8, rng);
  const core::EvalContext det;
  EXPECT_TRUE(matmul_split_k(a, b, 1, det).bitwise_equal(matmul(a, b, det)));
  const auto once = matmul_split_k(a, b, 8, det);
  EXPECT_TRUE(matmul_split_k(a, b, 8, det).bitwise_equal(once));
  // Pooled split-k re-associates identically (the combine order is fixed
  // per call, not per thread).
  util::ThreadPool pool(4);
  core::EvalContext pool_ctx;
  pool_ctx.pool = &pool;
  EXPECT_TRUE(matmul_split_k(a, b, 8, pool_ctx).bitwise_equal(once));
  EXPECT_THROW(matmul_split_k(a, b, 0, det), std::invalid_argument);
}

// Paper Table 1, extended to the dense kernels: shuffling the k-split
// combine order moves the low bits of ill-conditioned products.
TEST(Linalg, SplitKShufflesProduceDistinctBitPatterns) {
  util::Xoshiro256pp rng(78);
  const auto a = tensor::random_uniform<float>(tensor::Shape{16, 96}, -1e8,
                                               1e8, rng);
  const auto b = tensor::random_uniform<float>(tensor::Shape{96, 8}, -1e8,
                                               1e8, rng);
  std::set<std::vector<float>> patterns;
  for (std::uint64_t r = 0; r < 10; ++r) {
    core::RunContext run(55, r);
    const auto ctx = core::EvalContext::nondeterministic_on(run);
    const auto shuffled = matmul_split_k(a, b, 8, ctx);
    patterns.insert(
        std::vector<float>(shuffled.data().begin(), shuffled.data().end()));
  }
  EXPECT_GE(patterns.size(), 2u);
}

// -------------------------------------------------------------- layers --

Graph line_graph(std::int64_t n) {
  Graph g;
  g.num_nodes = n;
  for (std::int64_t i = 0; i + 1 < n; ++i) g.add_undirected_edge(i, i + 1);
  return g;
}

TEST(Layers, MeanAggregateAveragesNeighbours) {
  const Graph g = line_graph(3);  // 0-1-2
  const auto x = Matrix::from_data(tensor::Shape{3, 1}, {1.0f, 2.0f, 4.0f});
  const tensor::OpContext ctx;
  const auto h = mean_aggregate(x, g, ctx);
  EXPECT_EQ(h.at({0, 0}), 2.0f);   // neighbour of 0 is 1
  EXPECT_EQ(h.at({1, 0}), 2.5f);   // mean(1, 4)
  EXPECT_EQ(h.at({2, 0}), 2.0f);   // neighbour of 2 is 1
}

TEST(Layers, IsolatedNodeAggregatesToZero) {
  Graph g;
  g.num_nodes = 2;
  const auto x = Matrix::from_data(tensor::Shape{2, 1}, {3.0f, 4.0f});
  const tensor::OpContext ctx;
  const auto h = mean_aggregate(x, g, ctx);
  EXPECT_EQ(h.at({0, 0}), 0.0f);
  EXPECT_EQ(h.at({1, 0}), 0.0f);
}

TEST(Layers, ReluAndBackward) {
  const auto x = Matrix::from_data(tensor::Shape{1, 3}, {-1.0f, 0.0f, 2.0f});
  const auto y = relu(x);
  EXPECT_EQ(y.at({0, 0}), 0.0f);
  EXPECT_EQ(y.at({0, 2}), 2.0f);
  const auto d = Matrix::from_data(tensor::Shape{1, 3}, {5.0f, 5.0f, 5.0f});
  const auto dz = relu_backward(x, d);
  EXPECT_EQ(dz.at({0, 0}), 0.0f);
  EXPECT_EQ(dz.at({0, 1}), 0.0f);  // derivative at 0 defined as 0
  EXPECT_EQ(dz.at({0, 2}), 5.0f);
}

TEST(Layers, LogSoftmaxRowsNormalises) {
  const auto x = Matrix::from_data(tensor::Shape{1, 3}, {1.0f, 2.0f, 3.0f});
  const auto lp = log_softmax_rows(x);
  double total = 0.0;
  for (std::int64_t c = 0; c < 3; ++c) total += std::exp(lp.at({0, c}));
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Shift invariance.
  const auto y = Matrix::from_data(tensor::Shape{1, 3}, {101.f, 102.f, 103.f});
  const auto lp2 = log_softmax_rows(y);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(lp.at({0, c}), lp2.at({0, c}), 1e-5);
  }
}

TEST(Layers, NllLossGradientIsSoftmaxMinusOnehot) {
  const auto logits = Matrix::from_data(tensor::Shape{1, 2}, {0.0f, 0.0f});
  const auto lp = log_softmax_rows(logits);
  const auto r = nll_loss_masked(lp, {1}, {1});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-6);
  EXPECT_NEAR(r.d_logits.at({0, 0}), 0.5f, 1e-6);
  EXPECT_NEAR(r.d_logits.at({0, 1}), -0.5f, 1e-6);
}

TEST(Layers, NllLossRespectsMask) {
  const auto logits =
      Matrix::from_data(tensor::Shape{2, 2}, {0.0f, 10.0f, 0.0f, 10.0f});
  const auto lp = log_softmax_rows(logits);
  const auto r = nll_loss_masked(lp, {0, 1}, {0, 1});  // only row 1 counts
  EXPECT_NEAR(r.loss, -lp.at({1, 1}), 1e-6);
  EXPECT_EQ(r.d_logits.at({0, 0}), 0.0f);
}

// The GNN aggregation pair (gather + index_add + row scaling) on the pool
// is bitwise identical to serial for every accumulator and thread count -
// the backward direction is the paper's index_add with edge roles swapped.
TEST(Layers, PooledAggregationBitwiseEqualsSerialForEveryAccumulator) {
  auto config = DatasetConfig::small();
  config.num_nodes = 60;
  config.num_undirected_edges = 150;
  config.num_features = 9;
  const auto ds = make_synthetic_citation_dataset(config);
  util::Xoshiro256pp rng(9);
  const auto d_out = tensor::random_uniform<float>(
      tensor::Shape{ds.num_nodes(), 9}, -1e3, 1e3, rng);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    for (const auto& entry : fp::AlgorithmRegistry::instance().entries()) {
      core::EvalContext serial_ctx;
      serial_ctx.accumulator = entry.id;
      const core::EvalContext pool_ctx = serial_ctx.with_pool(&pool);
      const std::string label = entry.name + " @" + std::to_string(threads);
      EXPECT_TRUE(
          mean_aggregate(ds.features, ds.graph, pool_ctx)
              .bitwise_equal(mean_aggregate(ds.features, ds.graph,
                                            serial_ctx)))
          << label;
      EXPECT_TRUE(mean_aggregate_backward(d_out, ds.graph, pool_ctx)
                      .bitwise_equal(mean_aggregate_backward(d_out, ds.graph,
                                                             serial_ctx)))
          << label;
    }
  }
}

// Numerical gradient check of the full model loss w.r.t. a few weights.
TEST(Layers, GradientCheckThroughModel) {
  auto config = DatasetConfig::small();
  config.num_nodes = 24;
  config.num_undirected_edges = 40;
  config.num_features = 12;
  config.words_per_node = 4;
  const auto ds = make_synthetic_citation_dataset(config);

  GraphSageModel model(ds.num_features(), 5, ds.num_classes, 7);
  const tensor::OpContext ctx;

  const auto loss_at = [&]() {
    const Matrix lp = model.forward(ds.features, ds.graph, ctx, nullptr);
    return nll_loss_masked(lp, ds.labels, ds.train_mask).loss;
  };

  GraphSageModel::ForwardCache cache;
  const Matrix lp = model.forward(ds.features, ds.graph, ctx, &cache);
  const auto loss = nll_loss_masked(lp, ds.labels, ds.train_mask);
  model.zero_grad();
  model.backward(cache, loss.d_logits, ds.graph, ctx);

  // Check a scatter of weight coordinates in both layers.
  struct Probe {
    Matrix* w;
    Matrix* g;
    std::int64_t i;
  };
  const std::vector<Probe> probes{
      {&model.conv1.lin_self.weight, &model.conv1.lin_self.grad_weight, 3},
      {&model.conv1.lin_neigh.weight, &model.conv1.lin_neigh.grad_weight, 11},
      {&model.conv2.lin_self.weight, &model.conv2.lin_self.grad_weight, 0},
      {&model.conv2.lin_self.bias, &model.conv2.lin_self.grad_bias, 2},
      {&model.conv2.lin_neigh.weight, &model.conv2.lin_neigh.grad_weight, 8},
  };
  for (const auto& probe : probes) {
    const float eps = 1e-3f;
    const float original = probe.w->flat(probe.i);
    probe.w->flat(probe.i) = original + eps;
    const double up = loss_at();
    probe.w->flat(probe.i) = original - eps;
    const double down = loss_at();
    probe.w->flat(probe.i) = original;
    const double numeric = (up - down) / (2.0 * eps);
    const double analytic = probe.g->flat(probe.i);
    EXPECT_NEAR(analytic, numeric, 5e-3 + 0.05 * std::fabs(numeric));
  }
}

// ---------------------------------------------------------------- adam --

TEST(Adam, ConvergesOnQuadratic) {
  // Minimise f(w) = 0.5 * (w - 3)^2 elementwise.
  Matrix w(tensor::Shape{4}, 0.0f);
  Matrix g(tensor::Shape{4}, 0.0f);
  Adam opt(AdamConfig{.lr = 0.1f});
  opt.add_parameter(&w, &g);
  for (int step = 0; step < 500; ++step) {
    for (std::int64_t i = 0; i < 4; ++i) g.flat(i) = w.flat(i) - 3.0f;
    opt.step();
  }
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_NEAR(w.flat(i), 3.0f, 1e-2);
}

TEST(Adam, ValidatesShapes) {
  Matrix w(tensor::Shape{4}, 0.0f);
  Matrix g(tensor::Shape{3}, 0.0f);
  Adam opt;
  EXPECT_THROW(opt.add_parameter(&w, &g), std::invalid_argument);
  EXPECT_THROW(opt.add_parameter(nullptr, &g), std::invalid_argument);
}

TEST(Adam, DeterministicUpdates) {
  const auto run_once = [] {
    Matrix w(tensor::Shape{8}, 1.0f);
    Matrix g(tensor::Shape{8}, 0.0f);
    Adam opt(AdamConfig{.lr = 0.05f});
    opt.add_parameter(&w, &g);
    for (int s = 0; s < 50; ++s) {
      for (std::int64_t i = 0; i < 8; ++i) {
        g.flat(i) = 0.3f * w.flat(i) + static_cast<float>(i) * 0.01f;
      }
      opt.step();
    }
    return w;
  };
  EXPECT_TRUE(run_once().bitwise_equal(run_once()));
}

// --------------------------------------------------------------- model --

TEST(Model, InitialisationIsSeedDeterministic) {
  const GraphSageModel a(32, 8, 7, 99);
  const GraphSageModel b(32, 8, 7, 99);
  EXPECT_EQ(a.flattened_weights(), b.flattened_weights());
  const GraphSageModel c(32, 8, 7, 100);
  EXPECT_NE(a.flattened_weights(), c.flattened_weights());
}

TEST(Model, LayersUseDifferentInitStreams) {
  const GraphSageModel m(8, 8, 8, 1);
  // conv1 and conv2 have same-shape self weights here; they must differ.
  EXPECT_FALSE(m.conv1.lin_self.weight.bitwise_equal(m.conv2.lin_self.weight));
}

TEST(Model, GradientSinkEmitsEveryParameterInReverseLayerOrder) {
  // The DDP readiness signal: backward must announce each parameter's
  // gradient exactly once, in backward_gradient_order() (conv2 before
  // conv1), with the buffer already holding its final value, and the
  // sink-instrumented backward must not move any bits.
  util::Xoshiro256pp rng(7);
  const util::UniformReal dist(-1.0, 1.0);
  const std::int64_t nodes = 12;
  Graph graph;
  graph.num_nodes = nodes;
  for (std::int64_t v = 0; v + 1 < nodes; ++v) {
    graph.edge_src.push_back(v);
    graph.edge_dst.push_back(v + 1);
    graph.edge_src.push_back(v + 1);
    graph.edge_dst.push_back(v);
  }
  Matrix features(tensor::Shape{nodes, 6}, 0.0f);
  for (auto& x : features.vec()) x = static_cast<float>(dist(rng));
  Matrix d_logits(tensor::Shape{nodes, 3}, 0.0f);
  for (auto& x : d_logits.vec()) x = static_cast<float>(dist(rng));

  GraphSageModel model(6, 4, 3, 11);
  const tensor::OpContext ctx;
  GraphSageModel::ForwardCache cache;
  (void)model.forward(features, graph, ctx, &cache);

  model.zero_grad();
  model.backward(cache, d_logits, graph, ctx);
  std::vector<Matrix> reference;
  for (auto& [param, grad] : model.parameters()) {
    (void)param;
    reference.push_back(*grad);
  }

  model.zero_grad();
  std::vector<std::size_t> emitted;
  std::vector<Matrix> at_emission;
  const auto params = model.parameters();
  model.backward(cache, d_logits, graph, ctx, [&](const Matrix* grad) {
    for (std::size_t t = 0; t < params.size(); ++t) {
      if (params[t].second == grad) {
        emitted.push_back(t);
        at_emission.push_back(*grad);
        return;
      }
    }
    FAIL() << "sink saw an unknown gradient buffer";
  });
  EXPECT_EQ(emitted, model.backward_gradient_order());
  ASSERT_EQ(at_emission.size(), reference.size());
  for (std::size_t k = 0; k < emitted.size(); ++k) {
    // The buffer was final at emission time: identical to the plain
    // backward's result for that parameter.
    EXPECT_TRUE(at_emission[k].bitwise_equal(reference[emitted[k]]))
        << "parameter " << emitted[k];
  }
}

// ------------------------------------------------------------- trainer --

DatasetConfig tiny_config() {
  auto config = DatasetConfig::small();
  config.num_nodes = 120;
  config.num_undirected_edges = 300;
  config.num_features = 32;
  config.words_per_node = 5;
  return config;
}

TEST(Trainer, DeterministicTrainingIsBitwiseReproducible) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  TrainConfig config;
  config.epochs = 5;
  config.hidden = 8;
  config.deterministic = true;

  const auto kernel = [&](core::RunContext& run) {
    return train(ds, config, run).final_weights;
  };
  const auto cert = core::certify_deterministic(kernel, 4, 17);
  EXPECT_TRUE(cert.deterministic);
}

// End to end: a trainer given a thread pool produces the exact bits of
// the serial trainer - for the default and a non-trivial accumulator.
TEST(Trainer, PooledTrainingBitwiseEqualsSerial) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  util::ThreadPool pool(4);
  for (const auto accumulator :
       {fp::AlgorithmId::kSerial, fp::AlgorithmId::kPairwise}) {
    TrainConfig config;
    config.epochs = 3;
    config.hidden = 8;
    config.accumulator = accumulator;

    core::RunContext run_serial(19, 0);
    const auto serial = train(ds, config, run_serial);

    config.pool = &pool;
    core::RunContext run_pooled(19, 0);
    const auto pooled = train(ds, config, run_pooled);

    EXPECT_EQ(pooled.final_weights, serial.final_weights);
    EXPECT_EQ(pooled.epoch_losses, serial.epoch_losses);
    EXPECT_DOUBLE_EQ(pooled.train_accuracy, serial.train_accuracy);
  }
}

// The paper's DL dtype setting end to end: training under
// kahan@bf16:f32 is run-to-run reproducible, pool-invariant bit for bit,
// and actually engages the dtype axis (the trained weights differ from
// the native f32 run).
TEST(Trainer, MixedPrecisionTrainingIsReproducibleAndPoolInvariant) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  util::ThreadPool pool(4);
  TrainConfig config;
  config.epochs = 2;
  config.hidden = 8;
  config.accumulator =
      fp::ReductionSpec{fp::AlgorithmId::kKahan, fp::Dtype::kBf16,
                        fp::Dtype::kF32};

  core::RunContext run_serial(29, 0);
  const auto serial = train(ds, config, run_serial);

  config.pool = &pool;
  core::RunContext run_pooled(29, 0);
  const auto pooled = train(ds, config, run_pooled);
  EXPECT_EQ(pooled.final_weights, serial.final_weights);
  EXPECT_EQ(pooled.epoch_losses, serial.epoch_losses);

  core::RunContext run_again(29, 1);
  config.pool = nullptr;
  const auto again = train(ds, config, run_again);
  EXPECT_EQ(again.final_weights, serial.final_weights);

  TrainConfig native = config;
  native.accumulator = fp::AlgorithmId::kKahan;
  core::RunContext run_native(29, 0);
  const auto native_result = train(ds, native, run_native);
  EXPECT_NE(native_result.final_weights, serial.final_weights);
}

TEST(Trainer, NonDeterministicTrainingProducesUniqueModels) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  TrainConfig config;
  config.epochs = 5;
  config.hidden = 8;
  config.deterministic = false;

  std::vector<std::vector<double>> weights;
  for (std::uint64_t r = 0; r < 8; ++r) {
    core::RunContext run(23, r);
    weights.push_back(train(ds, config, run).final_weights);
  }
  // Paper SV.B: every ND-trained model is unique.
  EXPECT_EQ(core::count_unique_outputs(weights), weights.size());
}

TEST(Trainer, LossDecreasesAndFits) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  TrainConfig config;
  config.epochs = 30;
  config.hidden = 16;
  config.deterministic = true;
  core::RunContext run(29, 0);
  const auto result = train(ds, config, run);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
  // Homophilous features + labels are learnable well above chance (1/7).
  EXPECT_GT(result.train_accuracy, 0.5);
}

TEST(Trainer, SnapshotsPerEpoch) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  TrainConfig config;
  config.epochs = 3;
  config.hidden = 4;
  config.snapshot_epochs = true;
  core::RunContext run(31, 0);
  const auto result = train(ds, config, run);
  EXPECT_EQ(result.epoch_weights.size(), 3u);
  EXPECT_EQ(result.epoch_weights.back(), result.final_weights);
}

// -------------------------------------------------------- loss scaling --

TEST(LossScale, ScalerValidatesConfig) {
  EXPECT_NO_THROW(LossScaler{LossScaleConfig::none()});
  EXPECT_NO_THROW(LossScaler{LossScaleConfig::static_scale(1536.0f)});
  EXPECT_THROW(LossScaler{LossScaleConfig::static_scale(0.0f)},
               std::invalid_argument);
  EXPECT_THROW(LossScaler{LossScaleConfig::static_scale(-2.0f)},
               std::invalid_argument);
  auto bad = LossScaleConfig::dynamic(1024.0f);
  bad.backoff_factor = 1.5f;
  EXPECT_THROW(LossScaler{bad}, std::invalid_argument);
  bad = LossScaleConfig::dynamic(1024.0f);
  bad.growth_interval = 0;
  EXPECT_THROW(LossScaler{bad}, std::invalid_argument);
  bad = LossScaleConfig::dynamic(1024.0f);
  bad.min_scale = 8.0f;
  bad.max_scale = 4.0f;
  EXPECT_THROW(LossScaler{bad}, std::invalid_argument);
}

// The dynamic state machine is a pure function of the finiteness
// sequence: backoff halves on a non-finite step (which is skipped),
// growth doubles after growth_interval consecutive finite steps, and
// both respect the [min_scale, max_scale] clamp.
TEST(LossScale, DynamicBackoffHalvesAndGrowthRecovers) {
  auto config = LossScaleConfig::dynamic(1024.0f);
  config.growth_interval = 4;
  LossScaler scaler(config);
  EXPECT_FLOAT_EQ(scaler.scale(), 1024.0f);

  EXPECT_FALSE(scaler.update(false));  // overflow: skip + backoff
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);
  EXPECT_FALSE(scaler.update(false));
  EXPECT_FLOAT_EQ(scaler.scale(), 256.0f);
  EXPECT_EQ(scaler.skipped_steps(), 2);

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(scaler.update(true));
    EXPECT_FLOAT_EQ(scaler.scale(), 256.0f);  // streak not yet complete
  }
  EXPECT_TRUE(scaler.update(true));  // 4th finite step: grow
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);

  // A non-finite step resets the streak as well as backing off.
  EXPECT_FALSE(scaler.update(false));
  EXPECT_FLOAT_EQ(scaler.scale(), 256.0f);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(scaler.update(true));
  EXPECT_FLOAT_EQ(scaler.scale(), 256.0f);
  EXPECT_TRUE(scaler.update(true));
  EXPECT_FLOAT_EQ(scaler.scale(), 512.0f);
  EXPECT_EQ(scaler.skipped_steps(), 3);
}

TEST(LossScale, DynamicClampsToMinAndMax) {
  auto config = LossScaleConfig::dynamic(4.0f);
  config.min_scale = 2.0f;
  config.max_scale = 8.0f;
  config.growth_interval = 1;
  LossScaler scaler(config);
  (void)scaler.update(false);
  (void)scaler.update(false);
  EXPECT_FLOAT_EQ(scaler.scale(), 2.0f);  // clamped at min
  for (int i = 0; i < 4; ++i) (void)scaler.update(true);
  EXPECT_FLOAT_EQ(scaler.scale(), 8.0f);  // clamped at max
}

TEST(LossScale, StaticModeSkipsButKeepsScale) {
  LossScaler scaler(LossScaleConfig::static_scale(1536.0f));
  EXPECT_FALSE(scaler.update(false));
  EXPECT_FLOAT_EQ(scaler.scale(), 1536.0f);
  EXPECT_TRUE(scaler.update(true));
  EXPECT_EQ(scaler.skipped_steps(), 1);
}

TEST(LossScale, UnscaleQuantizesThroughAccumulateDtype) {
  // Pure-bf16 spec: the unscaled gradient is re-quantized onto the bf16
  // grid (the accumulate dtype's grid, where the unscaled run's
  // gradients already live).
  Matrix grad(tensor::Shape{1, 3}, 0.0f);
  grad.flat(0) = static_cast<float>(fp::bf16(0.625f)) * 3.0f;
  grad.flat(1) = static_cast<float>(fp::bf16(-1.375f)) * 3.0f;
  grad.flat(2) = 0.0f;
  unscale_gradient(grad, 3.0f,
                   fp::parse_reduction_spec("serial@bf16:bf16"));
  for (std::int64_t i = 0; i < grad.numel(); ++i) {
    EXPECT_EQ(grad.flat(i),
              static_cast<float>(fp::bf16(grad.flat(i))))
        << "element " << i << " left the bf16 grid";
  }

  // bf16:f32 spec: f32 accumulate makes the quantize the identity; a
  // power-of-two unscale is then exact, off-grid values stay put.
  Matrix mixed(tensor::Shape{1, 2}, 0.0f);
  const float off_grid = 0.6254321f;  // not a bf16 value
  mixed.flat(0) = off_grid * 4.0f;
  mixed.flat(1) = -off_grid * 4.0f;
  unscale_gradient(mixed, 4.0f,
                   fp::parse_reduction_spec("serial@bf16:f32"));
  EXPECT_EQ(mixed.flat(0), off_grid);
  EXPECT_EQ(mixed.flat(1), -off_grid);
}

// scale == 1 in static mode must be a bitwise no-op on training: the
// entire scaling path (the d_logits multiply, the finiteness scan, the
// unscale) degenerates to the historic trainer.
TEST(Trainer, StaticScaleOneIsBitwiseIdentity) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  for (const char* spec : {"serial", "serial@bf16:bf16"}) {
    TrainConfig config;
    config.epochs = 4;
    config.hidden = 8;
    config.accumulator = fp::parse_reduction_spec(spec);

    core::RunContext run_plain(37, 0);
    const auto plain = train(ds, config, run_plain);

    config.loss_scale = LossScaleConfig::static_scale(1.0f);
    core::RunContext run_scaled(37, 1);
    const auto scaled = train(ds, config, run_scaled);

    EXPECT_EQ(scaled.final_weights, plain.final_weights) << spec;
    EXPECT_EQ(scaled.epoch_losses, plain.epoch_losses) << spec;
    EXPECT_EQ(scaled.skipped_steps, 0);
  }
}

// Binary floating point is exactly homogeneous under multiplication by
// 2^k: a power-of-two loss scale shifts every exponent in the gradient
// path and never touches a mantissa, so (absent overflow) the scaled
// training reproduces the unscaled training bit for bit - for the
// native, mixed bf16:f32 and pure bf16 regimes alike. This is the
// certified floor that makes a *non*-power-of-two scale the interesting
// knob.
TEST(Trainer, PowerOfTwoScaleIsBitwiseNeutral) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  for (const char* spec :
       {"serial", "serial@bf16:f32", "serial@bf16:bf16", "kahan@bf16:bf16"}) {
    TrainConfig config;
    config.epochs = 4;
    config.hidden = 8;
    config.accumulator = fp::parse_reduction_spec(spec);

    core::RunContext run_plain(41, 0);
    const auto plain = train(ds, config, run_plain);

    for (const float scale : {2.0f, 1024.0f, 0.5f}) {
      config.loss_scale = LossScaleConfig::static_scale(scale);
      core::RunContext run_scaled(41, 1);
      const auto scaled = train(ds, config, run_scaled);
      EXPECT_EQ(scaled.final_weights, plain.final_weights)
          << spec << " scale " << scale;
      EXPECT_EQ(scaled.epoch_loss_scale.back(), scale);
    }
  }
}

// A non-power-of-two scale changes every mantissa, so every bf16
// quantization in the backward pass rounds on a shifted grid: the
// trajectory genuinely diverges - deterministically, pool-invariantly
// and identically for scales sharing a mantissa (1536 = 3 * 2^9).
TEST(Trainer, NonPowerOfTwoScaleReroundsDeterministically) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  util::ThreadPool pool(4);
  TrainConfig config;
  config.epochs = 4;
  config.hidden = 8;
  config.accumulator = fp::parse_reduction_spec("serial@bf16:bf16");

  core::RunContext run_plain(43, 0);
  const auto plain = train(ds, config, run_plain);

  config.loss_scale = LossScaleConfig::static_scale(1536.0f);
  core::RunContext run_scaled(43, 1);
  const auto scaled = train(ds, config, run_scaled);
  EXPECT_NE(scaled.final_weights, plain.final_weights);

  // Run-to-run bitwise stable...
  core::RunContext run_again(43, 2);
  const auto again = train(ds, config, run_again);
  EXPECT_EQ(again.final_weights, scaled.final_weights);

  // ...pool-invariant...
  config.pool = &pool;
  core::RunContext run_pooled(43, 3);
  const auto pooled = train(ds, config, run_pooled);
  EXPECT_EQ(pooled.final_weights, scaled.final_weights);
  config.pool = nullptr;

  // ...and a function of the scale's mantissa only: 3 and 3 * 2^9
  // produce the same bits.
  config.loss_scale = LossScaleConfig::static_scale(3.0f);
  core::RunContext run_three(43, 4);
  const auto three = train(ds, config, run_three);
  EXPECT_EQ(three.final_weights, scaled.final_weights);
}

// End to end overflow drill: an absurdly large initial scale overflows
// the scaled gradients to inf, the dynamic scaler skips those steps and
// backs off until the gradients are finite again, and training then
// proceeds normally - deterministically, with the whole scale
// trajectory recorded.
TEST(Trainer, DynamicScalerRecoversFromEngineeredOverflow) {
  auto ds = make_synthetic_citation_dataset(tiny_config());
  // The tiny model's gradients are too tame to overflow even at the
  // largest representable power-of-two scale, so amplify the input
  // features: the first layer's dW = X^T dL picks up the factor
  // directly, pushing the scaled gradients past f32's 3.4e38.
  for (auto& v : ds.features.vec()) v *= 4096.0f;
  TrainConfig config;
  config.epochs = 12;
  config.hidden = 8;
  config.accumulator = fp::parse_reduction_spec("serial@bf16:bf16");
  config.loss_scale = LossScaleConfig::dynamic(0x1p127f);
  config.loss_scale.growth_interval = 1 << 20;  // no growth inside the run

  core::RunContext run(47, 0);
  const auto result = train(ds, config, run);

  EXPECT_GT(result.skipped_steps, 0);
  EXPECT_LT(result.epoch_loss_scale.back(), 0x1p127f);
  // The recorded scale trajectory is the backoff staircase: each skipped
  // epoch halves the next epoch's scale.
  for (int e = 1; e < config.epochs; ++e) {
    const float prev = result.epoch_loss_scale[static_cast<std::size_t>(e - 1)];
    const float curr = result.epoch_loss_scale[static_cast<std::size_t>(e)];
    EXPECT_TRUE(curr == prev || curr == 0.5f * prev);
  }
  // Once recovered, the trainer actually trains: finite weights, loss
  // drops from the first post-recovery epoch to the last.
  for (const double w : result.final_weights) {
    EXPECT_TRUE(std::isfinite(w));
  }
  const auto first_kept =
      static_cast<std::size_t>(result.skipped_steps);  // epochs skipped first
  ASSERT_LT(first_kept, result.epoch_losses.size());
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses[first_kept]);

  // Same seed, same config: the recovery path itself is reproducible.
  core::RunContext run_again(47, 1);
  const auto again = train(ds, config, run_again);
  EXPECT_EQ(again.final_weights, result.final_weights);
  EXPECT_EQ(again.epoch_loss_scale, result.epoch_loss_scale);
  EXPECT_EQ(again.skipped_steps, result.skipped_steps);
}

// The trainer reports the scaler's state through the obs metrics
// registry when a recorder is attached (and the nullptr default stays
// the certified zero-event path).
TEST(Trainer, LossScaleMetricsLandInRecorder) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  obs::Recorder recorder;
  TrainConfig config;
  config.epochs = 2;
  config.hidden = 4;
  config.loss_scale = LossScaleConfig::static_scale(1536.0f);
  config.recorder = &recorder;
  core::RunContext run(53, 0);
  (void)train(ds, config, run);

  bool saw_scale_gauge = false;
  for (const auto& row : recorder.metrics().snapshot()) {
    if (row.name == "dl.loss_scale.scale") saw_scale_gauge = true;
  }
  EXPECT_TRUE(saw_scale_gauge);
}

TEST(Trainer, InferenceDvsNd) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  TrainConfig config;
  config.epochs = 3;
  config.hidden = 8;
  core::RunContext train_run(37, 0);
  const auto result = train(ds, config, train_run);

  const tensor::OpContext det;
  const Matrix a = infer(result.model, ds, det);
  const Matrix b = infer(result.model, ds, det);
  EXPECT_TRUE(a.bitwise_equal(b));

  bool varies = false;
  for (std::uint64_t r = 0; r < 10 && !varies; ++r) {
    core::RunContext run(41, r);
    const auto ctx = tensor::nd_context(run);
    varies = !infer(result.model, ds, ctx).bitwise_equal(a);
  }
  EXPECT_TRUE(varies);
}

TEST(Trainer, AccuracyHelper) {
  const auto scores =
      Matrix::from_data(tensor::Shape{2, 2}, {0.9f, 0.1f, 0.2f, 0.8f});
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(scores, {1, 0}), 0.0);
  const std::vector<char> mask{1, 0};
  EXPECT_DOUBLE_EQ(accuracy(scores, {0, 0}, &mask), 1.0);
}

// ---------------------------------------------------------- timing model --

TEST(TimingModel, Table8Shape) {
  const auto h100 = sim::DeviceProfile::h100();
  const auto ds = make_synthetic_citation_dataset(DatasetConfig::cora());
  const auto dims = ModelDims::of(ds, 16);

  const double nd_ms = modeled_gpu_inference_ms(h100, dims, false);
  const double d_ms = modeled_gpu_inference_ms(h100, dims, true);
  EXPECT_GT(d_ms, nd_ms);              // determinism costs time on GPU
  EXPECT_GT(d_ms / nd_ms, 1.3);
  EXPECT_LT(d_ms / nd_ms, 3.0);
  EXPECT_NEAR(nd_ms, 2.17, 1.0);       // paper magnitudes

  const sim::LpuDevice lpu;
  const double lpu_ms = lpu_inference_ms(lpu, dims);
  EXPECT_LT(lpu_ms, nd_ms / 10.0);     // LPU ~30x faster than GPU
  EXPECT_NEAR(lpu_ms, 0.066, 0.05);
}

TEST(TimingModel, MeasuredDenseForwardIsPositiveAndCached) {
  ModelDims dims;
  dims.nodes = 128;
  dims.edges = 256;
  dims.features = 32;
  dims.hidden = 8;
  dims.classes = 4;
  const double first = measured_dense_forward_us(dims);
  EXPECT_GT(first, 0.0);
  // Cached per (dims, pool width): the second lookup returns the same
  // measurement instead of re-timing.
  EXPECT_EQ(measured_dense_forward_us(dims), first);
}

TEST(TimingModel, TrainingShape) {
  const auto h100 = sim::DeviceProfile::h100();
  const auto ds = make_synthetic_citation_dataset(DatasetConfig::cora());
  const auto dims = ModelDims::of(ds, 16);
  const double d = modeled_gpu_training_s(h100, dims, 10, true);
  const double nd = modeled_gpu_training_s(h100, dims, 10, false);
  EXPECT_GT(d, nd);
  EXPECT_GT(d / nd, 2.0);
  EXPECT_LT(d / nd, 4.0);
  EXPECT_NEAR(nd, 0.18, 0.1);
}

}  // namespace
}  // namespace fpna::dl
