#include "fpna/dl/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace fpna::dl {

std::size_t Adam::add_parameter(Matrix* parameter, Matrix* gradient) {
  if (parameter == nullptr || gradient == nullptr) {
    throw std::invalid_argument("Adam::add_parameter: null");
  }
  if (!parameter->same_shape(*gradient)) {
    throw std::invalid_argument(
        "Adam::add_parameter: parameter/gradient shape mismatch");
  }
  Slot slot;
  slot.parameter = parameter;
  slot.gradient = gradient;
  slot.m.assign(static_cast<std::size_t>(parameter->numel()), 0.0f);
  slot.v.assign(static_cast<std::size_t>(parameter->numel()), 0.0f);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void Adam::step() {
  ++steps_;
  const auto t = static_cast<float>(steps_);
  const float bias1 = 1.0f - std::pow(config_.beta1, t);
  const float bias2 = 1.0f - std::pow(config_.beta2, t);

  for (auto& slot : slots_) {
    auto params = slot.parameter->data();
    auto grads = slot.gradient->data();
    for (std::size_t i = 0; i < params.size(); ++i) {
      float g = grads[i];
      if (config_.weight_decay != 0.0f) {
        g += config_.weight_decay * params[i];
      }
      slot.m[i] = config_.beta1 * slot.m[i] + (1.0f - config_.beta1) * g;
      slot.v[i] = config_.beta2 * slot.v[i] + (1.0f - config_.beta2) * g * g;
      const float m_hat = slot.m[i] / bias1;
      const float v_hat = slot.v[i] / bias2;
      params[i] -= config_.lr * m_hat / (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

}  // namespace fpna::dl
