// AVX2 tier of the lane-blocked accumulators. This translation unit is
// compiled with -mavx2 on x86 (see src/CMakeLists.txt) and with nothing
// special elsewhere, in which case every entry point is a stub returning
// false. The runtime CPUID check in simd.cpp guarantees no function here
// executes on a host without AVX2.
//
// Register shapes: __m256d holds 4 f64 lanes, __m256 holds 8 f32 lanes;
// wider lane counts use R consecutive registers (f64: L=8 -> 2, L=16 ->
// 4; f32: L=16 -> 2). All arithmetic is plain IEEE add/sub - no FMA, no
// reassociation - so each register slot runs exactly the scalar
// algorithm's op sequence and the results match the emulation bit for
// bit (property-tested in fp_test, gated in the microbench JSON).

#include "simd_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace fpna::fp::simd_detail {

namespace {

struct VecD {
  using scalar = double;
  using mask = __m256d;
  static constexpr int kWidth = 4;
  __m256d v;

  static VecD load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
  static void store(VecD a, double* p) noexcept { _mm256_storeu_pd(p, a.v); }
  static VecD zero() noexcept { return {_mm256_setzero_pd()}; }
  static VecD add(VecD a, VecD b) noexcept {
    return {_mm256_add_pd(a.v, b.v)};
  }
  static VecD sub(VecD a, VecD b) noexcept {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  /// Sign-mask clear: +0.0 for -0.0, which the ordered-quiet GE compare
  /// cannot distinguish from the scalar abs_'s -0.0 (IEEE compares treat
  /// the zeros as equal), and NaN stays NaN (compare false) - so the
  /// branch selection matches the scalar code on every input.
  static VecD abs(VecD a) noexcept {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
  }
  static mask ge_abs(VecD a, VecD b) noexcept {
    return _mm256_cmp_pd(abs(a).v, abs(b).v, _CMP_GE_OQ);
  }
  static VecD select(mask m, VecD t, VecD f) noexcept {
    return {_mm256_blendv_pd(f.v, t.v, m)};
  }
};

struct VecS {
  using scalar = float;
  using mask = __m256;
  static constexpr int kWidth = 8;
  __m256 v;

  static VecS load(const float* p) noexcept { return {_mm256_loadu_ps(p)}; }
  static void store(VecS a, float* p) noexcept { _mm256_storeu_ps(p, a.v); }
  static VecS zero() noexcept { return {_mm256_setzero_ps()}; }
  static VecS add(VecS a, VecS b) noexcept {
    return {_mm256_add_ps(a.v, b.v)};
  }
  static VecS sub(VecS a, VecS b) noexcept {
    return {_mm256_sub_ps(a.v, b.v)};
  }
  static VecS abs(VecS a) noexcept {
    return {_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)};
  }
  static mask ge_abs(VecS a, VecS b) noexcept {
    return _mm256_cmp_ps(abs(a).v, abs(b).v, _CMP_GE_OQ);
  }
  static VecS select(mask m, VecS t, VecS f) noexcept {
    return {_mm256_blendv_ps(f.v, t.v, m)};
  }
};

template <template <typename> class Step, typename Base>
bool span_f64(Base* lanes, std::size_t lane_count, std::size_t& next,
              const double* x, std::size_t n) {
  switch (lane_count) {
    case 4: run_span<VecD, 1, Step>(lanes, next, x, n); return true;
    case 8: run_span<VecD, 2, Step>(lanes, next, x, n); return true;
    case 16: run_span<VecD, 4, Step>(lanes, next, x, n); return true;
    default: return false;
  }
}

template <template <typename> class Step, typename Base>
bool span_f32(Base* lanes, std::size_t lane_count, std::size_t& next,
              const float* x, std::size_t n) {
  switch (lane_count) {
    case 8: run_span<VecS, 1, Step>(lanes, next, x, n); return true;
    case 16: run_span<VecS, 2, Step>(lanes, next, x, n); return true;
    default: return false;
  }
}

}  // namespace

namespace avx2 {

bool add_span(SerialAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<SerialStep>(lanes, lane_count, next, x, n);
}
bool add_span(SerialAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<SerialStep>(lanes, lane_count, next, x, n);
}
bool add_span(KahanAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<KahanStep>(lanes, lane_count, next, x, n);
}
bool add_span(KahanAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<KahanStep>(lanes, lane_count, next, x, n);
}
bool add_span(NeumaierAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<NeumaierStep>(lanes, lane_count, next, x, n);
}
bool add_span(NeumaierAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<NeumaierStep>(lanes, lane_count, next, x, n);
}
bool add_span(KleinAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<KleinStep>(lanes, lane_count, next, x, n);
}
bool add_span(KleinAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<KleinStep>(lanes, lane_count, next, x, n);
}
bool add_span(PairwiseAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  switch (lane_count) {
    case 4: return run_pairwise<VecD, 1>(lanes, next, x, n);
    case 8: return run_pairwise<VecD, 2>(lanes, next, x, n);
    case 16: return run_pairwise<VecD, 4>(lanes, next, x, n);
    default: return false;
  }
}
bool add_span(PairwiseAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  switch (lane_count) {
    case 8: return run_pairwise<VecS, 1>(lanes, next, x, n);
    case 16: return run_pairwise<VecS, 2>(lanes, next, x, n);
    default: return false;
  }
}

bool add_i64(std::int64_t* dst, const std::int64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi64(a, b));
  }
  for (; i < n; ++i) dst[i] += src[i];
  return true;
}

}  // namespace avx2

}  // namespace fpna::fp::simd_detail

#else  // !defined(__AVX2__): link-compatible stubs, never selected.

namespace fpna::fp::simd_detail::avx2 {

bool add_span(SerialAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(SerialAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(KahanAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(KahanAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(NeumaierAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(NeumaierAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(KleinAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(KleinAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(PairwiseAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(PairwiseAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_i64(std::int64_t*, const std::int64_t*, std::size_t) {
  return false;
}

}  // namespace fpna::fp::simd_detail::avx2

#endif
