#include "fpna/sim/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace fpna::sim {

const char* to_string(SumMethod method) noexcept {
  switch (method) {
    case SumMethod::kCU: return "CU";
    case SumMethod::kSPTR: return "SPTR";
    case SumMethod::kSPRG: return "SPRG";
    case SumMethod::kTPRC: return "TPRC";
    case SumMethod::kSPA: return "SPA";
    case SumMethod::kAO: return "AO";
  }
  return "?";
}

bool is_deterministic(SumMethod method) noexcept {
  switch (method) {
    case SumMethod::kCU:
    case SumMethod::kSPTR:
    case SumMethod::kSPRG:
    case SumMethod::kTPRC:
      return true;
    case SumMethod::kSPA:
    case SumMethod::kAO:
      return false;
  }
  return false;
}

int kernel_count(SumMethod method) noexcept {
  switch (method) {
    case SumMethod::kCU: return 2;
    case SumMethod::kSPTR:
    case SumMethod::kSPRG:
    case SumMethod::kSPA:
    case SumMethod::kAO:
      return 1;
    case SumMethod::kTPRC: return 2;
  }
  return 0;
}

const char* synchronization_method(SumMethod method) noexcept {
  switch (method) {
    case SumMethod::kCU:
    case SumMethod::kSPTR:
    case SumMethod::kSPRG:
      return "__threadfence";
    case SumMethod::kTPRC: return "stream synchronization";
    case SumMethod::kSPA:
    case SumMethod::kAO:
      return "atomicAdd";
  }
  return "?";
}

double estimated_sum_time_us(const DeviceProfile& p, SumMethod method,
                             std::size_t n, std::size_t nt, std::size_t nb) {
  if (n == 0 || nt == 0 || nb == 0) {
    throw std::invalid_argument("estimated_sum_time_us: zero-sized launch");
  }
  const auto dn = static_cast<double>(n);
  const auto dnb = static_cast<double>(nb);

  // Streaming the input once through HBM, perfectly coalesced.
  const double mem_us = dn * 8.0 / p.mem_bandwidth_gb_s * 1e-3;
  const double launch_us = p.kernel_launch_us;

  switch (method) {
    case SumMethod::kAO:
      // Every element is a same-address atomic: fully serialised; memory
      // traffic hides behind the atomic pipeline.
      return launch_us + dn * p.atomic_same_address_ns * 1e-3;

    case SumMethod::kSPA:
      // Block tree in shared memory (hidden behind the global stream),
      // then one same-address atomic per block.
      return launch_us + mem_us + dnb * p.atomic_same_address_ns * 1e-3;

    case SumMethod::kSPTR:
      // Partials published with __threadfence; the retiring block reduces
      // nb partials with the shared-memory tree.
      return launch_us + mem_us +
             dnb * (p.threadfence_ns_per_block + p.tail_reduce_ns_per_partial) *
                 1e-3;

    case SumMethod::kSPRG:
      // Same handshake as SPTR but the tail is a serial recursive sum:
      // no tree parallelism in the final stage.
      return launch_us + mem_us +
             dnb * (p.threadfence_ns_per_block +
                    1.3 * p.tail_reduce_ns_per_partial) *
                 1e-3;

    case SumMethod::kTPRC:
      // Two launches on one stream, a device-to-host copy of nb partials,
      // and a host-side serial sum.
      return 2.0 * launch_us + mem_us + p.d2h_latency_us +
             dnb * 8.0 / p.d2h_bandwidth_gb_s * 1e-3 +
             dnb * p.host_sum_ns_per_element * 1e-3;

    case SumMethod::kCU: {
      // Vendor library: tree-style two-pass with internally chosen
      // parameters; modelled as an SPTR-like pass with the calibrated
      // library overhead factor.
      const double base =
          launch_us + mem_us + dnb * p.tail_reduce_ns_per_partial * 1e-3;
      return base * p.cub_overhead_factor;
    }
  }
  throw std::invalid_argument("estimated_sum_time_us: unknown method");
}

std::optional<double> estimated_indexed_op_time_us(const DeviceProfile& p,
                                                   IndexedOpKind op,
                                                   std::size_t contributions,
                                                   bool deterministic) {
  const auto n = static_cast<double>(contributions);
  // Launch-dominated bases calibrated against Table 6 (H100): the
  // scatter_reduce kernels are tiny and pay mostly fixed cost; index_add
  // streams its contributions. The deterministic index_add sorts by
  // destination first (n log n through the radix/merge pipeline).
  const double clock_scale = 1.76 / p.clock_ghz;  // H100 reference clock
  switch (op) {
    case IndexedOpKind::kScatterReduceSum:
      if (deterministic) return std::nullopt;  // no deterministic GPU kernel
      return (30.0 + n * 0.2e-3) * clock_scale;
    case IndexedOpKind::kScatterReduceMean:
      if (deterministic) return std::nullopt;
      // Two passes (sum + count) plus the divide.
      return (74.4 + n * 0.5e-3) * clock_scale;
    case IndexedOpKind::kIndexAdd: {
      if (!deterministic) return (5.0 + n * 8e-6) * clock_scale;
      const double log_n = n > 2.0 ? std::log2(n) : 1.0;
      return (20.0 + n * log_n * 7e-6) * clock_scale;
    }
  }
  throw std::invalid_argument("estimated_indexed_op_time_us: unknown op");
}

}  // namespace fpna::sim
