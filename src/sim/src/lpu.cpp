#include "fpna/sim/lpu.hpp"

#include <cmath>

namespace fpna::sim {

const char* to_string(LpuOp op) noexcept {
  switch (op) {
    case LpuOp::kScatterReduceSum: return "scatter_reduce(sum)";
    case LpuOp::kScatterReduceMean: return "scatter_reduce(mean)";
    case LpuOp::kIndexAdd: return "index_add";
    case LpuOp::kIndexCopy: return "index_copy";
    case LpuOp::kIndexPut: return "index_put";
    case LpuOp::kScatter: return "scatter";
    case LpuOp::kCumsum: return "cumsum";
    case LpuOp::kConvTranspose1d: return "conv_transpose1d";
    case LpuOp::kConvTranspose2d: return "conv_transpose2d";
    case LpuOp::kConvTranspose3d: return "conv_transpose3d";
    case LpuOp::kSageConvInference: return "sageconv_inference";
  }
  return "?";
}

namespace {

// Per-op static costs: a fixed pipeline fill plus deterministic per-element
// streaming costs through the memory and vector units. Constants are
// calibrated so the paper's Table 6 workloads land at the reported
// magnitudes: scatter_reduce(sum) n=1000 -> 10.5us, scatter_reduce(mean)
// n=1000 -> 28.9us, index_add 1000x1000 -> 12.0us, and the GraphSAGE
// forward pass -> 66us (Table 8).
struct OpCost {
  double fill_us;          // pipeline fill / program dispatch
  double read_ns_per_elt;  // MEM read stream
  double alu_ns_per_elt;   // VXM compute stream
  double write_ns_per_elt; // MEM write stream
};

OpCost cost_for(LpuOp op) noexcept {
  switch (op) {
    case LpuOp::kScatterReduceSum: return {9.9, 0.2, 0.2, 0.2};
    case LpuOp::kScatterReduceMean: return {28.3, 0.2, 0.2, 0.2};
    case LpuOp::kIndexAdd: return {2.0, 0.004, 0.002, 0.004};
    case LpuOp::kIndexCopy: return {2.0, 0.004, 0.0, 0.004};
    case LpuOp::kIndexPut: return {2.2, 0.004, 0.0, 0.004};
    case LpuOp::kScatter: return {2.0, 0.004, 0.0, 0.004};
    case LpuOp::kCumsum: return {4.0, 0.01, 0.02, 0.01};
    case LpuOp::kConvTranspose1d: return {6.0, 0.02, 0.05, 0.02};
    case LpuOp::kConvTranspose2d: return {8.0, 0.02, 0.05, 0.02};
    case LpuOp::kConvTranspose3d: return {12.0, 0.02, 0.05, 0.02};
    case LpuOp::kSageConvInference: return {50.0, 0.0003, 0.0004, 0.0003};
  }
  return {1.0, 0.01, 0.01, 0.01};
}

std::uint64_t to_cycles(double us, double clock_ghz) noexcept {
  return static_cast<std::uint64_t>(std::llround(us * clock_ghz * 1e3));
}

}  // namespace

LpuProgram LpuDevice::compile(LpuOp op, std::size_t elements) const {
  const OpCost c = cost_for(op);
  const auto n = static_cast<double>(elements);

  LpuProgram program;
  program.op = op;
  program.elements = elements;
  program.stages = {
      {"ICU.dispatch", to_cycles(c.fill_us, kClockGhz)},
      {"MEM.read", to_cycles(n * c.read_ns_per_elt * 1e-3, kClockGhz)},
      {"VXM.compute", to_cycles(n * c.alu_ns_per_elt * 1e-3, kClockGhz)},
      {"MEM.write", to_cycles(n * c.write_ns_per_elt * 1e-3, kClockGhz)},
  };
  return program;
}

}  // namespace fpna::sim
