// Unit tests for fpna::stats: streaming moments, quantiles, histograms,
// KL divergence, normality tests and least-squares fits.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fpna/stats/descriptive.hpp"
#include "fpna/stats/fit.hpp"
#include "fpna/stats/histogram.hpp"
#include "fpna/stats/normality.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::stats {
namespace {

std::vector<double> normal_samples(std::size_t n, double mu, double sigma,
                                   std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  util::Normal dist(mu, sigma);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

std::vector<double> uniform_samples(std::size_t n, double lo, double hi,
                                    std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// ------------------------------------------------------------- Welford --

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  Welford w;
  for (const double x : v) w.add(x);
  EXPECT_EQ(w.count(), 5u);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 2.5);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 5.0);
}

TEST(Welford, DegenerateCases) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.variance(), 0.0);
  w.add(7.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.mean(), 7.0);
  EXPECT_EQ(w.skewness(), 0.0);
}

TEST(Welford, StableForLargeOffset) {
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  Welford w;
  for (int i = 0; i < 1000; ++i) w.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(w.variance(), 0.25 * 1000.0 / 999.0, 1e-6);
}

TEST(Welford, MergeEqualsSequential) {
  const auto v = normal_samples(10000, 3.0, 2.0, 1);
  Welford whole;
  for (const double x : v) whole.add(x);

  Welford a, b;
  for (std::size_t i = 0; i < 3333; ++i) a.add(v[i]);
  for (std::size_t i = 3333; i < v.size(); ++i) b.add(v[i]);
  a.merge(b);

  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_NEAR(a.skewness(), whole.skewness(), 1e-7);
  EXPECT_NEAR(a.excess_kurtosis(), whole.excess_kurtosis(), 1e-7);
}

TEST(Welford, NormalSampleMomentsAreNormalish) {
  const auto v = normal_samples(200000, 0.0, 1.0, 2);
  const Summary s = summarize(v);
  EXPECT_NEAR(s.mean, 0.0, 0.02);
  EXPECT_NEAR(s.stddev, 1.0, 0.02);
  EXPECT_NEAR(s.skewness, 0.0, 0.05);
  EXPECT_NEAR(s.excess_kurtosis, 0.0, 0.1);
}

TEST(Welford, UniformKurtosisIsNegative) {
  const auto v = uniform_samples(100000, 0.0, 1.0, 3);
  const Summary s = summarize(v);
  EXPECT_NEAR(s.excess_kurtosis, -1.2, 0.1);  // theory: -6/5
}

// ------------------------------------------------------------ quantile --

TEST(Quantile, ExactOrderStatistics) {
  const std::vector<double> v{3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.1), 1.0);
}

TEST(Quantile, Validation) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(Bootstrap, CoversTrueMean) {
  const auto v = normal_samples(2000, 5.0, 1.0, 4);
  util::Xoshiro256pp rng(99);
  const auto ci = bootstrap_mean_ci(v, 500, 0.95, rng);
  EXPECT_LT(ci.lower, 5.0);
  EXPECT_GT(ci.upper, 5.0);
  EXPECT_LT(ci.upper - ci.lower, 0.2);
  EXPECT_NEAR(ci.point, 5.0, 0.1);
}

// ----------------------------------------------------------- histogram --

TEST(Histogram, CountsAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.55);  // all in bin 0
  EXPECT_EQ(h.count(0), 100u);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_DOUBLE_EQ(h.density(0), 1.0);  // all mass in one unit-width bin
  EXPECT_DOUBLE_EQ(h.mass(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 1.0, 4);
  h.add(-1.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, FromSamplesCoversRange) {
  const auto v = uniform_samples(10000, -2.0, 3.0, 5);
  const auto h = Histogram::from_samples(v, 50);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.total(), 10000u);
}

TEST(Histogram, DegenerateConstantSample) {
  const std::vector<double> v(100, 3.0);
  const auto h = Histogram::from_samples(v, 10);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.underflow() + h.overflow(), 0u);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
}

// -------------------------------------------------------- KL divergence --

TEST(KlDivergence, NearZeroForNormalSamples) {
  const auto v = normal_samples(100000, 1.0, 2.0, 6);
  const auto h = Histogram::from_samples(v, 60);
  const double kl = kl_divergence_vs_normal(h, 1.0, 2.0);
  EXPECT_LT(kl, 0.01);
}

TEST(KlDivergence, LargeForUniformVsNormal) {
  const auto v = uniform_samples(100000, -1.0, 1.0, 7);
  const auto h = Histogram::from_samples(v, 60);
  const Summary s = summarize(v);
  const double kl = kl_divergence_vs_normal(h, s.mean, s.stddev);
  // Theoretical KL(U || fitted N) ~ 0.097 nats; well above the normal
  // case's noise floor.
  EXPECT_GT(kl, 0.05);
}

TEST(KlDivergence, RanksNormalAboveBimodal) {
  // Bimodal mixture: far from normal.
  auto v = normal_samples(50000, -3.0, 0.5, 8);
  const auto right = normal_samples(50000, 3.0, 0.5, 9);
  v.insert(v.end(), right.begin(), right.end());
  const Summary s = summarize(v);
  const auto h = Histogram::from_samples(v, 60);
  const double kl_bimodal = kl_divergence_vs_normal(h, s.mean, s.stddev);

  const auto g = normal_samples(100000, 0.0, 1.0, 10);
  const auto hg = Histogram::from_samples(g, 60);
  const double kl_normal = kl_divergence_vs_normal(hg, 0.0, 1.0);

  EXPECT_GT(kl_bimodal, 10.0 * kl_normal);
}

// ----------------------------------------------------------- normality --

TEST(KsTest, AcceptsNormalSamples) {
  const auto v = normal_samples(5000, 0.0, 1.0, 11);
  const auto r = ks_test_normal(v, 0.0, 1.0);
  EXPECT_LT(r.statistic, 0.03);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(KsTest, RejectsUniformSamples) {
  const auto v = uniform_samples(5000, -1.7320508, 1.7320508, 12);  // var 1
  const auto r = ks_test_normal(v, 0.0, 1.0);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(KsTest, Validation) {
  EXPECT_THROW(ks_test_normal({}, 0.0, 1.0), std::invalid_argument);
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(ks_test_normal(v, 0.0, 0.0), std::invalid_argument);
}

TEST(JarqueBera, AcceptsNormalRejectsExponential) {
  const auto good = normal_samples(20000, 0.0, 1.0, 13);
  EXPECT_GT(jarque_bera(good).p_value, 0.01);

  util::Xoshiro256pp rng(14);
  const util::Exponential dist(1.0);
  std::vector<double> skewed(20000);
  for (auto& x : skewed) x = dist(rng);
  EXPECT_LT(jarque_bera(skewed).p_value, 1e-6);
}

// ---------------------------------------------------------------- fits --

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, Validation) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(linear_fit(one, one), std::invalid_argument);
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(linear_fit(x, y), std::invalid_argument);
}

TEST(PowerLawFit, RecoversExactExponent) {
  // y = 3 n^0.5
  std::vector<double> x, y;
  for (const double n : {1e2, 1e3, 1e4, 1e5, 1e6}) {
    x.push_back(n);
    y.push_back(3.0 * std::sqrt(n));
  }
  const auto fit = power_law_fit(x, y);
  EXPECT_NEAR(fit.alpha, 0.5, 1e-10);
  EXPECT_NEAR(fit.beta, 3.0, 1e-8);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PowerLawFit, RecoversNoisyExponent) {
  util::Xoshiro256pp rng(15);
  util::Normal noise(0.0, 0.05);
  std::vector<double> x, y;
  for (double n = 100; n <= 1e6; n *= 2) {
    x.push_back(n);
    y.push_back(0.7 * std::pow(n, 0.63) * std::exp(noise(rng)));
  }
  const auto fit = power_law_fit(x, y);
  EXPECT_NEAR(fit.alpha, 0.63, 0.05);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(PowerLawFit, RejectsNonPositive) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0, -2.0};
  EXPECT_THROW(power_law_fit(x, y), std::invalid_argument);
}

}  // namespace
}  // namespace fpna::stats
