#pragma once
// Deterministic dataflow accelerator model (the paper's Groq LPU stand-in).
//
// The LPU property the paper leverages is architectural: execution is
// statically scheduled at compile time, so (a) results are bitwise
// deterministic - there is no runtime arbiter to reorder floating-point
// accumulations - and (b) the kernel runtime is a *fixed number of cycles*
// known ahead of time ("the runtime ... is reported as a fixed number
// since the cycle-by-cycle execution is determined ahead of time", SIV).
//
// The model preserves both properties: an op "compiles" to a static stage
// program whose cycle count is a pure function of the op and its shape,
// and execution applies the deterministic CPU implementation of the op.
// Latency-table constants are calibrated to the magnitudes of the paper's
// Tables 6 and 8.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fpna::sim {

enum class LpuOp {
  kScatterReduceSum,
  kScatterReduceMean,
  kIndexAdd,
  kIndexCopy,
  kIndexPut,
  kScatter,
  kCumsum,
  kConvTranspose1d,
  kConvTranspose2d,
  kConvTranspose3d,
  kSageConvInference,
};

const char* to_string(LpuOp op) noexcept;

/// One stage of a statically scheduled program: a fixed cycle count
/// attached to a named functional unit.
struct LpuStage {
  std::string unit;      // e.g. "MEM.read", "VXM.accumulate"
  std::uint64_t cycles;  // fixed at compile time
};

struct LpuProgram {
  LpuOp op;
  std::size_t elements = 0;
  std::vector<LpuStage> stages;

  std::uint64_t total_cycles() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : stages) total += s.cycles;
    return total;
  }
};

class LpuDevice {
 public:
  LpuDevice() = default;

  std::string name() const { return "GroqLPU"; }
  double clock_ghz() const noexcept { return kClockGhz; }

  /// "Compiles" an op over `elements` units of work into a static stage
  /// program. Pure function of (op, elements): the same shape always
  /// yields the same program, hence the same cycle count.
  LpuProgram compile(LpuOp op, std::size_t elements) const;

  /// Fixed runtime of the compiled program in microseconds.
  double op_time_us(LpuOp op, std::size_t elements) const {
    return static_cast<double>(compile(op, elements).total_cycles()) /
           (kClockGhz * 1e3);
  }

 private:
  static constexpr double kClockGhz = 0.9;  // 900 MHz nominal
};

}  // namespace fpna::sim
