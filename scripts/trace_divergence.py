#!/usr/bin/env python3
"""First-divergence localizer over two provenance.jsonl files.

Each line of a provenance file (obs::Recorder::write_provenance_jsonl) is
one bit-provenance record: a fingerprint of the exact bit pattern some
site produced, keyed by *logical* coordinates (frame / scope / site /
kind / index / sub_index / spec) that are invariant to thread count and
OS scheduling. Two runs of a reproducible configuration therefore emit
identical files; when a run is NOT reproducible, the earliest record
whose bits differ names the first site where the computations parted -
which kernel, which chunk, which bucket, which wire step.

Usage:
    trace_divergence.py A.jsonl B.jsonl [--context N] [--quiet]

Exit codes: 0 identical, 1 diverged (or structurally mismatched),
2 usage/IO error.
"""

import argparse
import json
import sys

# The canonical record ordering (must match obs::provenance_less): every
# component is a logical coordinate, so sorting makes line order itself
# reproducible and lets us walk both files in lockstep.
KEY_FIELDS = ("frame", "scope", "site", "kind", "index", "sub_index",
              "spec", "seq")


def load_records(path):
    records = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as err:
                    raise SystemExit(
                        f"error: {path}:{lineno}: not valid JSON: {err}")
                records.append(rec)
    except OSError as err:
        raise SystemExit(f"error: cannot read {path}: {err}")
    records.sort(key=lambda r: tuple(r.get(f, "") for f in KEY_FIELDS))
    return records


def key_of(rec):
    return tuple(rec.get(f, "") for f in KEY_FIELDS)


def describe(rec):
    """Human-oriented site description: kernel, kind, and coordinates."""
    parts = [f"site={rec.get('site', '?')}", f"kind={rec.get('kind', '?')}"]
    index = rec.get("index", -1)
    sub_index = rec.get("sub_index", -1)
    if index is not None and index >= 0:
        kind = rec.get("kind", "")
        label = {"chunk": "chunk", "row_block": "block", "bucket": "bucket",
                 "wire_step": "step", "partial": "partial",
                 "combine_step": "step"}.get(kind, "index")
        parts.append(f"{label}={index}")
    if sub_index is not None and sub_index >= 0:
        kind = rec.get("kind", "")
        sub_label = {"wire_step": "receiver",
                     "combine_step": "operand"}.get(kind, "sub_index")
        parts.append(f"{sub_label}={sub_index}")
    scope = rec.get("scope", "")
    if scope:
        parts.append(f"scope={scope}")
    frame = rec.get("frame", 0)
    if frame:
        parts.append(f"frame={frame}")
    spec = rec.get("spec", "")
    if spec:
        parts.append(f"spec={spec}")
    parts.append(f"elements={rec.get('elements', '?')}")
    return " ".join(str(p) for p in parts)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Report the earliest divergent bit-provenance record "
                    "between two runs.")
    parser.add_argument("file_a")
    parser.add_argument("file_b")
    parser.add_argument("--context", type=int, default=0, metavar="N",
                        help="also print up to N further divergent records")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the all-clear message")
    args = parser.parse_args(argv)

    a = load_records(args.file_a)
    b = load_records(args.file_b)

    # Structural mismatch (a record present in only one run) is itself a
    # divergence: the runs executed different logical work.
    keys_a = {key_of(r) for r in a}
    keys_b = {key_of(r) for r in b}
    only_a = sorted(keys_a - keys_b)
    only_b = sorted(keys_b - keys_a)

    by_key_b = {key_of(r): r for r in b}
    divergent = []
    for rec in a:
        other = by_key_b.get(key_of(rec))
        if other is None:
            continue
        if rec.get("bits") != other.get("bits"):
            divergent.append((rec, other))

    if not divergent and not only_a and not only_b:
        if not args.quiet:
            print(f"identical: {len(a)} provenance records match bit for bit")
        return 0

    if divergent:
        first, other = divergent[0]
        print("FIRST DIVERGENCE")
        print(f"  {describe(first)}")
        print(f"  bits A: {first.get('bits')}")
        print(f"  bits B: {other.get('bits')}")
        print(f"  ({len(divergent)} divergent record(s) of "
              f"{len(a)} compared)")
        for extra_a, extra_b in divergent[1:1 + max(0, args.context)]:
            print(f"  also: {describe(extra_a)} "
                  f"A={extra_a.get('bits')} B={extra_b.get('bits')}")
    if only_a:
        print(f"records only in {args.file_a}: {len(only_a)} "
              f"(first: {only_a[0]})")
    if only_b:
        print(f"records only in {args.file_b}: {len(only_b)} "
              f"(first: {only_b[0]})")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
