// Ablation (DESIGN.md SS4.2): accuracy, cost and order-stability of the
// summation algorithms - why the binned superaccumulator is the right
// reference ("gold") sum for determinism certification. For each
// *registered* algorithm (the table is driven by fp::AlgorithmRegistry, so
// a newly registered accumulator shows up here automatically): error vs
// the exact sum, wall-clock throughput, the spread of results over input
// shuffles (0 = reproducible), and the traits it declared at registration.
//
// Flags: --size --shuffles --seed --csv

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/table.hpp"
#include "fpna/util/timer.hpp"

using namespace fpna;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.integer("size", 1000000));
  const auto shuffles = static_cast<std::size_t>(cli.integer("shuffles", 8));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Ablation: accumulator accuracy / cost / order-stability (" +
                   std::to_string(size) + " FP64 from N(0,1e6))");

  auto data = bench::normal_array(size, 0.0, 1e6, seed);
  const double exact =
      fp::AlgorithmRegistry::sum("superaccumulator", data);

  util::Table table({"algorithm", "abs error vs exact", "ulps", "Melem/s",
                     "spread over shuffles (ulps)", "perm-invariant?"});
  for (const auto& algo : fp::AlgorithmRegistry::instance().entries()) {
    const double value = algo.reduce(data);
    const double err = std::fabs(value - exact);
    const auto ulps = fp::ulp_distance(value, exact);

    const auto stats =
        util::time_repeated([&] { (void)algo.reduce(data); }, 3, 1);
    const double melem_s =
        static_cast<double>(size) / stats.mean_seconds / 1e6;

    // Order-stability: max ulp distance between shuffled evaluations.
    util::Xoshiro256pp rng(seed + 1);
    auto copy = data;
    std::int64_t spread = 0;
    for (std::size_t s = 0; s < shuffles; ++s) {
      util::shuffle(copy, rng);
      spread = std::max(spread, fp::ulp_distance(algo.reduce(copy), value));
    }
    table.add_row({algo.name, util::sci(err, 3), std::to_string(ulps),
                   util::fixed(melem_s, 1), std::to_string(spread),
                   algo.traits.permutation_invariant ? "yes" : "no"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nExpected: the superaccumulator and the binned sum combine "
           "(near-)exact rounding with exact order-invariance (0 spread), "
           "with the binned sum markedly cheaper; compensated "
           "sums are accurate but still order-sensitive at the last ulp; "
           "the serial sum is both least accurate and most "
           "order-sensitive.\n";
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
