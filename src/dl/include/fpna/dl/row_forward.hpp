#pragma once
// Row-wise forward kernels: the per-request building blocks of the
// batch-invariant inference server (src/serve).
//
// Each function computes ONE output row as a pure function of that row's
// inputs, the weights and the context's fp::ReductionSpec. Every inner
// reduction is a per-row stream - one accumulator per output unit fed in
// a fixed input order - so nothing about the result can depend on which
// batch the row rides in, how large that batch is, or which thread runs
// it. This is the "reduction boundaries derive from the row, never the
// batch" construction the serving determinism contract rests on.
//
// The loops deliberately mirror the full-matrix kernels element for
// element (matmul's ascending-k stream with its av == 0.0f sparsity skip,
// index_add's quantized self-seeded per-destination fold, log_softmax's
// row max/exp/serial-sum), so serving a deployed node reproduces the
// offline full-graph forward's row bitwise - for every algorithm, dtype
// and lane spec (certified in serve_test).

#include <cstdint>
#include <span>
#include <vector>

#include "fpna/core/eval_context.hpp"
#include "fpna/dl/linalg.hpp"
#include "fpna/dl/model.hpp"

namespace fpna::dl {

/// out[j] = dot(x, W[:, j]) for j in [0, W.cols) - one row of dl::matmul,
/// overwriting `out`. Each output unit folds x[p] * W[p, j] in ascending p
/// through the spec's accumulator with the same storage quantization of
/// both operands and the same quantized-av == 0.0f sparsity skip as the
/// full kernel; the native serial spec folds in place from 0.0f exactly
/// like matmul's zero-initialised output. Composition (bias +=, the float
/// add() between the self and neighbour branches) is the caller's job,
/// mirroring SageConv::forward's op sequence.
void linear_row(std::span<const float> x, const Matrix& weight,
                std::span<float> out, const core::EvalContext& ctx);

/// out[c] = (1/ids.size()) * sum over ids (in list order) of
/// table[id, c], the per-row form of mean_aggregate: the sum seeds with
/// quantize(0.0f) (index_add's self-seed on a zero destination), folds
/// the gathered values in list order through the spec's accumulator, and
/// the mean divides by the float reciprocal afterwards (scale_rows'
/// discipline). An empty id list writes zeros (a degree-0 node).
/// Throws std::out_of_range on an id outside the table.
void mean_rows_into(const Matrix& table, std::span<const std::int64_t> ids,
                    std::span<float> out, const core::EvalContext& ctx);

/// In-place row log-softmax: bitwise the one-row case of
/// log_softmax_rows (row max, float exp-sum, subtract log-normaliser).
void log_softmax_row(std::span<float> row);

/// In-place ReLU on one row.
void relu_row(std::span<float> row);

}  // namespace fpna::dl
