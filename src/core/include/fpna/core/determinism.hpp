#pragma once
// The toolkit's analogue of torch.use_deterministic_algorithms (paper SIV):
// a process-wide switch that forces every op onto its deterministic
// implementation. Ops that have no deterministic implementation raise
// instead - mirroring the RuntimeError the paper reports receiving from
// PyTorch for scatter_reduce, which is precisely the kind of
// documentation/behaviour gap SIV calls out.
//
// Lives in core (not tensor) so that every layer that consults an
// EvalContext - reduce, collective, tensor, dl - shares the one switch;
// fpna/tensor/determinism.hpp re-exports these names for existing callers.

#include <stdexcept>
#include <string>

namespace fpna::core {

class DeterminismContext {
 public:
  /// Globally request deterministic implementations (default: false).
  static void use_deterministic_algorithms(bool enabled) noexcept {
    deterministic_ = enabled;
  }
  static bool deterministic() noexcept { return deterministic_; }

 private:
  inline static bool deterministic_ = false;
};

/// RAII scope guard for the global switch.
class DeterminismGuard {
 public:
  explicit DeterminismGuard(bool enabled) noexcept
      : previous_(DeterminismContext::deterministic()) {
    DeterminismContext::use_deterministic_algorithms(enabled);
  }
  ~DeterminismGuard() {
    DeterminismContext::use_deterministic_algorithms(previous_);
  }
  DeterminismGuard(const DeterminismGuard&) = delete;
  DeterminismGuard& operator=(const DeterminismGuard&) = delete;

 private:
  bool previous_;
};

/// Thrown when deterministic mode is on but an op only has a
/// non-deterministic implementation for the requested configuration.
class NoDeterministicImplementation : public std::runtime_error {
 public:
  explicit NoDeterministicImplementation(const std::string& op)
      : std::runtime_error(op +
                           " does not have a deterministic implementation; "
                           "see DeterminismContext::use_deterministic_"
                           "algorithms") {}
};

}  // namespace fpna::core
