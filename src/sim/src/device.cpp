#include "fpna/sim/device.hpp"

namespace fpna::sim {

LaunchRecord SimDevice::launch(const LaunchConfig& config,
                               util::Xoshiro256pp& rng,
                               const BlockKernel& kernel) {
  if (config.grid_blocks == 0) {
    throw std::invalid_argument("SimDevice::launch: empty grid");
  }
  if (config.threads_per_block == 0) {
    throw std::invalid_argument("SimDevice::launch: empty block");
  }

  LaunchRecord record;
  record.blocks = config.grid_blocks;
  record.commit_order = scheduler_.block_commit_order(config.grid_blocks, rng);

  std::vector<double> shared(config.shared_doubles, 0.0);
  for (std::size_t pos = 0; pos < record.commit_order.size(); ++pos) {
    const std::size_t block_id = record.commit_order[pos];
    std::fill(shared.begin(), shared.end(), 0.0);
    BlockCtx ctx(block_id, pos, config,
                 std::span<double>(shared.data(), shared.size()), rng);
    kernel(ctx);
    if (ctx.fenced()) ++record.fenced_blocks;
  }
  return record;
}

}  // namespace fpna::sim
