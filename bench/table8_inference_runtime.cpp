// Reproduces Table 8: GraphSAGE inference runtime, deterministic vs
// non-deterministic kernels on the H100 profile, and the statically
// scheduled Groq LPU model. GPU numbers come from the device cost model
// (framework dispatch + aggregation kernels, calibrated at Cora scale);
// the LPU number is the fixed cycle count of the compiled program. The
// harness also verifies the determinism claims by executing the actual
// inference kernels under the selected ReductionSpec.
//
// Flags: --seed --full --csv --json=<path>
//        --accumulator=<spec>  (executed determinism check's reduction
//                               spec, e.g. kahan@simd8:bf16:f32; the
//                               registry grammar of fp::ReductionSpec)

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/sim/lpu.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");
  const std::string json_path = cli.text("json", "");
  const fp::ReductionSpec spec =
      fp::parse_reduction_spec(cli.text("accumulator", "serial"));

  // Timing is evaluated at paper (Cora) scale regardless of --full; the
  // executed determinism check uses a smaller dataset by default.
  const auto cora = dl::make_synthetic_citation_dataset(
      dl::DatasetConfig::cora());
  const auto dims = dl::ModelDims::of(cora, 16);
  const auto h100 = sim::DeviceProfile::h100();
  const sim::LpuDevice lpu;

  util::banner(std::cout,
               "Table 8: GraphSAGE inference runtime, H100 profile vs Groq "
               "LPU model (Cora-scale: " + std::to_string(dims.nodes) +
                   " nodes, " + std::to_string(dims.edges) + " edges)");

  util::Table table({"Inference", "H100 (ms)", "Groq (ms)"});
  table.add_row({"Deterministic",
                 util::fixed(dl::modeled_gpu_inference_ms(h100, dims, true), 2),
                 util::fixed(dl::lpu_inference_ms(lpu, dims), 3)});
  table.add_row(
      {"Non Deterministic",
       util::fixed(dl::modeled_gpu_inference_ms(h100, dims, false), 2),
       "N/A"});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Execute the inference kernels to verify the determinism column, under
  // the --accumulator spec (bit-reproducibility is a property of every
  // spec, not just the native default).
  const auto ds = dl::make_synthetic_citation_dataset(
      full ? dl::DatasetConfig::cora() : dl::DatasetConfig::small());
  dl::TrainConfig config;
  config.epochs = 5;
  config.hidden = 16;
  config.deterministic = true;
  core::RunContext train_run(seed, 0);
  const auto trained = dl::train(ds, config, train_run);

  tensor::OpContext det_ctx;
  det_ctx.accumulator = spec;
  const dl::Matrix a = dl::infer(trained.model, ds, det_ctx);
  const dl::Matrix b = dl::infer(trained.model, ds, det_ctx);
  const bool reproducible = a.bitwise_equal(b);
  bench::BitFingerprint logits_bits;
  for (std::int64_t i = 0; i < a.numel(); ++i) logits_bits.feed(a.flat(i));
  std::cout << "\ndeterministic inference (" << fp::to_string(spec)
            << ") bitwise reproducible: " << (reproducible ? "yes" : "NO")
            << "  bits " << logits_bits.hex() << "\n";

  std::size_t nd_identical = 0;
  constexpr std::size_t kNdRuns = 10;
  for (std::uint64_t r = 0; r < kNdRuns; ++r) {
    core::RunContext run(seed + 1, r);
    auto ctx = tensor::nd_context(run);
    const dl::Matrix nd = dl::infer(trained.model, ds, ctx);
    nd_identical += nd.bitwise_equal(a);
  }
  std::cout << "non-deterministic inference runs bitwise equal to "
               "reference: "
            << nd_identical << " / " << kNdRuns << "\n";

  if (!json_path.empty()) {
    util::Table determinism({"accumulator", "dataset", "logits bits",
                             "nd runs equal", "reproducible"});
    determinism.add_row({fp::to_string(spec), full ? "cora" : "small",
                         logits_bits.hex(),
                         std::to_string(nd_identical) + "/" +
                             std::to_string(kNdRuns),
                         reproducible ? "yes" : "NO"});
    bench::write_json(json_path, "table8_inference_runtime",
                      {{"runtime", &table}, {"determinism", &determinism}});
  }

  std::cout << "\nPaper reference (Table 8): H100 deterministic 3.92 ms, "
               "non-deterministic 2.17 ms; Groq LPU 0.066 ms - 30x faster "
               "than the fastest GPU implementation and deterministic by "
               "construction.\n";
  return (bench::warn_unconsumed(cli) == 0 && reproducible) ? 0 : 1;
}
