#pragma once
// ProcessGroup: the data-parallel process-group runtime (paper SVI: "in HPC
// and distributed settings there will also be inter-chip and inter-node
// communication, such as with MPI, leading to more runtime variation").
//
// A ProcessGroup is a handle on a P-rank job that can allreduce rank
// contributions with any of the collective algorithms. Two backends share
// one surface:
//
//   * SimProcessGroup - plays all P ranks in-process. The caller passes
//     all P contributions.
//   * MpiProcessGroup (#ifdef FPNA_HAVE_MPI) - one OS process per rank on
//     a real cluster. The caller passes its single local contribution.
//
// Each group is constructed on a WirePath (see schedule.hpp):
//
//   * kAllgather gathers the rank buffers (ordered by rank id) and runs
//     one shared local combine, so every rank observes bitwise-identical
//     results and the sim/MPI backends agree bit for bit - semantics
//     certified at O(n*P) traffic per rank;
//   * kRing / kButterfly execute an explicit CollectiveSchedule through
//     the reduce_scatter / allgather shard primitives: point-to-point
//     messages, O(n) traffic per rank, and per-step combine orders drawn
//     from the schedule so the bits are *identical to the allgather
//     backend* for every algorithm and ReductionSpec (certified in
//     comm_test and under mpirun in CI). The non-schedulable arrival-tree
//     algorithm always falls back to the allgather combine.
//
// The reproducible algorithm honours the EvalContext's registry-selected
// accumulator. On the allgather wire any *exact-merge* algorithm
// (superaccumulator, binned) may carry the exchange; on a schedule wire
// the exact state itself travels the messages as fp::Superaccumulator
// wire words, so only the superaccumulator (bounded serialized state) is
// accepted there - binned's exact state is its whole input buffer, which
// has no O(1)-per-element wire form. Selecting a non-exact-merge
// accumulator for the reproducible path throws on every wire.
//
// Every group keeps a per-rank TrafficLedger (bytes sent/received and
// message counts, modelled identically for both backends) so the O(n) vs
// O(n*P) claim is measured, not asserted.

#include <cstddef>
#include <memory>
#include <vector>

#include "fpna/collective/allreduce.hpp"
#include "fpna/comm/schedule.hpp"
#include "fpna/core/eval_context.hpp"
#include "fpna/fp/algorithm_id.hpp"

namespace fpna::comm {

/// Element-wise allreduce through an exact-merge registry accumulator: for
/// every element, each rank's value streams into one exact state, and the
/// single final rounding makes the result bitwise independent of rank
/// order, rank count and any merge tree. The spec's dtype axes apply too:
/// rank values are quantized to the storage dtype before entering the
/// exact state (bf16 gradients on the wire), and the state rounds to the
/// accumulate dtype - both elementwise, so the invariance argument is
/// unchanged. Throws std::invalid_argument when the spec's algorithm
/// lacks the exact_merge trait. A bare fp::AlgorithmId converts to the
/// native spec.
template <typename T>
std::vector<T> exact_elementwise_allreduce(
    const collective::RankDataT<T>& contributions,
    const fp::ReductionSpec& spec);

class ProcessGroup {
 public:
  virtual ~ProcessGroup() = default;

  /// World size P.
  virtual std::size_t size() const noexcept = 0;
  /// This participant's rank id (0 for the simulated backend, which plays
  /// every rank).
  virtual std::size_t rank() const noexcept = 0;
  /// Backend name for logs/tables: "sim" or "mpi".
  virtual const char* backend() const noexcept = 0;
  /// The message pattern this group's deterministic collectives travel
  /// (a construction-time property).
  virtual WirePath wire() const noexcept = 0;
  /// How many rank contributions the caller passes to allreduce(): the
  /// full P for the simulated backend, 1 (the local buffer) for MPI.
  virtual std::size_t local_contributions() const noexcept = 0;
  /// Whether allreduce() may be called concurrently from several threads.
  /// True for the simulated backend (its only shared state, the traffic
  /// ledger, is mutex-guarded); false for MPI, whose collectives must
  /// issue in the same order on every rank and whose library thread level
  /// is not negotiated for concurrent calls - bucketed_allreduce silently
  /// falls back to the inline schedule (identical bits, see
  /// bucketed_allreduce.hpp) when this is false.
  virtual bool supports_concurrent_allreduce() const noexcept = 0;

  /// Allreduce-sum of the rank contributions; every rank observes the
  /// returned vector. kArrivalTree draws its arrival orders from ctx.run
  /// (required for that algorithm only; on MPI every rank must construct
  /// its RunContext from the same seed to agree on the drawn orders).
  /// kReproducible routes through ctx.accumulator when set (exact-merge
  /// algorithms only); unset selects the superaccumulator exchange.
  /// Deterministic algorithms travel this group's wire(); the bits do not
  /// depend on the wire.
  virtual std::vector<double> allreduce(
      const collective::RankData& contributions,
      collective::Algorithm algorithm, const core::EvalContext& ctx,
      std::size_t block_elements = 1024) = 0;
  virtual std::vector<float> allreduce(
      const collective::RankDataF& contributions,
      collective::Algorithm algorithm, const core::EvalContext& ctx,
      std::size_t block_elements = 1024) = 0;

  /// Schedule primitive: runs `schedule`'s reduce-scatter phase. Returns
  /// a full-length buffer in which every element of a shard this
  /// participant owns holds its final reduced value - the whole buffer
  /// for the sim backend (it plays every rank and so owns every shard);
  /// under MPI only schedule.shards()[rank()] is meaningful until
  /// allgather() completes the exchange. `algorithm` selects the combine:
  /// kRing / kRecursiveDoubling add rounded values in the schedule's
  /// operand order (and must ride their own schedule - the one whose
  /// association they reproduce); kReproducible carries serialized
  /// superaccumulator states over either schedule, quantizing through
  /// ctx's ReductionSpec.
  virtual std::vector<double> reduce_scatter(
      const collective::RankData& contributions,
      const CollectiveSchedule& schedule, collective::Algorithm algorithm,
      const core::EvalContext& ctx) = 0;
  virtual std::vector<float> reduce_scatter(
      const collective::RankDataF& contributions,
      const CollectiveSchedule& schedule, collective::Algorithm algorithm,
      const core::EvalContext& ctx) = 0;

  /// Schedule primitive: runs `schedule`'s allgather (copy) phase on a
  /// reduce_scatter result, completing the allreduce in `buffer`.
  virtual void allgather(std::vector<double>& buffer,
                         const CollectiveSchedule& schedule) = 0;
  virtual void allgather(std::vector<float>& buffer,
                         const CollectiveSchedule& schedule) = 0;

  /// Accumulated wire traffic of rank `r` since construction (or the last
  /// reset). The sim backend accounts every simulated rank; the MPI
  /// backend only fills its own rank's row.
  Traffic traffic(std::size_t r) const { return ledger().of_rank(r); }
  Traffic total_traffic() const { return ledger().total(); }
  void reset_traffic() { ledger().reset(); }

 protected:
  virtual TrafficLedger& ledger() const noexcept = 0;
};

/// Simulated backend: all P ranks live in this process. Safe to use
/// concurrently from thread-pool tasks as long as each call carries its
/// own RunContext (bucketed_allreduce does).
class SimProcessGroup final : public ProcessGroup {
 public:
  /// Throws std::invalid_argument on ranks == 0.
  explicit SimProcessGroup(std::size_t ranks,
                           WirePath wire = WirePath::kAllgather);

  std::size_t size() const noexcept override { return ranks_; }
  std::size_t rank() const noexcept override { return 0; }
  const char* backend() const noexcept override { return "sim"; }
  WirePath wire() const noexcept override { return wire_; }
  std::size_t local_contributions() const noexcept override { return ranks_; }
  bool supports_concurrent_allreduce() const noexcept override {
    return true;
  }

  std::vector<double> allreduce(const collective::RankData& contributions,
                                collective::Algorithm algorithm,
                                const core::EvalContext& ctx,
                                std::size_t block_elements = 1024) override;
  std::vector<float> allreduce(const collective::RankDataF& contributions,
                               collective::Algorithm algorithm,
                               const core::EvalContext& ctx,
                               std::size_t block_elements = 1024) override;

  std::vector<double> reduce_scatter(const collective::RankData& contributions,
                                     const CollectiveSchedule& schedule,
                                     collective::Algorithm algorithm,
                                     const core::EvalContext& ctx) override;
  std::vector<float> reduce_scatter(const collective::RankDataF& contributions,
                                    const CollectiveSchedule& schedule,
                                    collective::Algorithm algorithm,
                                    const core::EvalContext& ctx) override;

  void allgather(std::vector<double>& buffer,
                 const CollectiveSchedule& schedule) override;
  void allgather(std::vector<float>& buffer,
                 const CollectiveSchedule& schedule) override;

 protected:
  TrafficLedger& ledger() const noexcept override { return ledger_; }

 private:
  std::size_t ranks_;
  WirePath wire_;
  mutable TrafficLedger ledger_;
};

/// Simulated P-rank group (the default backend everywhere the toolkit does
/// not run under mpirun).
std::unique_ptr<ProcessGroup> make_process_group(
    std::size_t ranks, WirePath wire = WirePath::kAllgather);

#ifdef FPNA_HAVE_MPI
/// Real MPI backend over MPI_COMM_WORLD. The caller owns MPI_Init /
/// MPI_Finalize; construction throws std::runtime_error when MPI is not
/// initialised. allreduce() takes exactly one contribution (this rank's
/// local buffer, equal length on every rank).
class MpiProcessGroup final : public ProcessGroup {
 public:
  explicit MpiProcessGroup(WirePath wire = WirePath::kAllgather);

  std::size_t size() const noexcept override { return size_; }
  std::size_t rank() const noexcept override { return rank_; }
  const char* backend() const noexcept override { return "mpi"; }
  WirePath wire() const noexcept override { return wire_; }
  std::size_t local_contributions() const noexcept override { return 1; }
  bool supports_concurrent_allreduce() const noexcept override {
    return false;
  }

  std::vector<double> allreduce(const collective::RankData& contributions,
                                collective::Algorithm algorithm,
                                const core::EvalContext& ctx,
                                std::size_t block_elements = 1024) override;
  std::vector<float> allreduce(const collective::RankDataF& contributions,
                               collective::Algorithm algorithm,
                               const core::EvalContext& ctx,
                               std::size_t block_elements = 1024) override;

  std::vector<double> reduce_scatter(const collective::RankData& contributions,
                                     const CollectiveSchedule& schedule,
                                     collective::Algorithm algorithm,
                                     const core::EvalContext& ctx) override;
  std::vector<float> reduce_scatter(const collective::RankDataF& contributions,
                                    const CollectiveSchedule& schedule,
                                    collective::Algorithm algorithm,
                                    const core::EvalContext& ctx) override;

  void allgather(std::vector<double>& buffer,
                 const CollectiveSchedule& schedule) override;
  void allgather(std::vector<float>& buffer,
                 const CollectiveSchedule& schedule) override;

 protected:
  TrafficLedger& ledger() const noexcept override { return ledger_; }

 private:
  std::size_t size_ = 0;
  std::size_t rank_ = 0;
  WirePath wire_;
  mutable TrafficLedger ledger_;
};

std::unique_ptr<ProcessGroup> make_mpi_process_group(
    WirePath wire = WirePath::kAllgather);
#endif  // FPNA_HAVE_MPI

}  // namespace fpna::comm
