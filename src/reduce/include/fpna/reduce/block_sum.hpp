#pragma once
// Building blocks shared by the simulated GPU reduction kernels: the
// deterministic per-block partial sums (grid-stride accumulation followed
// by the shared-memory halving tree of the paper's Listing 1) and the
// power-of-two tree over a partial array. The grid-stride accumulation of
// each thread routes through a registry-selected accumulator; the serial
// default reproduces Listing 1 bit for bit.

#include <cstddef>
#include <span>
#include <vector>

#include "fpna/fp/accumulator.hpp"

namespace fpna::reduce {

/// Shared-memory halving tree over `values`, zero-padded to the next power
/// of two: for offset = m/2 .. 1: v[i] += v[i + offset]. This is exactly
/// the association order of Listing 1's block reduction, and is a pure
/// function of the input order.
double tree_sum(std::span<const double> values);

/// The partial sum block `block_id` produces in the paper's kernels:
/// thread t accumulates the grid-stride elements
///   data[block_id*nt + t + k*nt*nb],  k = 0, 1, ...
/// through the spec's accumulator (in k order, addends quantized to the
/// spec's storage dtype, the stream running at its accumulate dtype),
/// then the block tree combines the nt rounded thread values in double.
/// Deterministic for fixed (data, nt, nb, spec); a bare AlgorithmId
/// converts to the native spec, which reproduces the historic bits.
double block_partial_sum(
    std::span<const double> data, std::size_t block_id, std::size_t nt,
    std::size_t nb,
    const fp::ReductionSpec& accumulator = fp::AlgorithmId::kSerial);

/// All nb block partials (convenience for the kernel implementations).
std::vector<double> all_block_partials(
    std::span<const double> data, std::size_t nt, std::size_t nb,
    const fp::ReductionSpec& accumulator = fp::AlgorithmId::kSerial);

}  // namespace fpna::reduce
