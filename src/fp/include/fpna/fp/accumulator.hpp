#pragma once
// The unified accumulation layer: every reduction in the toolkit - the
// serial kernels in this module, the CPU/GPU reductions in src/reduce, the
// collectives in src/collective, the tensor ops in src/tensor and the DL
// trainer in src/dl - selects its inner accumulation algorithm from one
// registry instead of a per-layer switch table.
//
// Two complementary interfaces per algorithm:
//
//  * a one-shot `reduce(span)` that reproduces the historic free functions
//    of summation.hpp bit for bit (this is what the registry's function
//    pointer calls, so existing certified values never move);
//  * a stateful Accumulator type for element-at-a-time streaming and
//    chunk-merge use (thread partials, block partials, per-destination
//    scatter reductions). Streaming state is merged with `merge`, which is
//    exact for the reproducible algorithms and deterministic for all.
//
// Dispatch is a static visitor (`visit_algorithm`): the switch happens once
// per reduction call and hands the hot loop a concrete accumulator type, so
// no per-element indirect call ever appears in the inner loop.
//
// The registry is dtype-polymorphic (see reduction_spec.hpp): every
// algorithm instantiates at double, float and the software bf16, an Entry
// carries one-shot surfaces for the canonical dtype combinations (f64
// bitwise-identical to the historic free functions; f32/f32 and
// bf16-storage/f32-accumulate for the DL settings), and `visit_reduction`
// extends the static-visitor discipline to a full ReductionSpec - the
// callback receives the algorithm tag, the accumulate-dtype constant and
// a monomorphic storage quantizer.
//
// The SIMD lane axis (see simd.hpp and reduction_spec.hpp's grammar)
// composes over all of the above: `tags::Simd<Tag, L>` wraps any base
// algorithm tag so its accumulator_t is the L-lane LaneBlockedAccumulator,
// and `visit_lane_algorithm` / `visit_reduction` monomorphise the lane
// count exactly like the algorithm and the dtypes - so every call site
// that instantiates `tag::accumulator_t` (cpu_sum chunk folds, the dense
// dl kernels, the tensor scatter reductions, the collective wire) gets
// lane-blocked variants with no changes of its own.

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "fpna/fp/algorithm_id.hpp"
#include "fpna/fp/bf16.hpp"
#include "fpna/fp/binned_sum.hpp"
#include "fpna/fp/double_double.hpp"
#include "fpna/fp/reduction_spec.hpp"
#include "fpna/fp/simd.hpp"
#include "fpna/fp/summation.hpp"
#include "fpna/fp/superaccumulator.hpp"

namespace fpna::fp {

namespace detail {
// Raw state access for the SIMD kernels (src/fp/src/simd*.cpp): the
// intrinsics fast path loads accumulator members into register lanes,
// runs the exact scalar op sequence vectorised, and stores them back.
// Defined after the accumulator classes below.
struct SimdLaneAccess;
}  // namespace detail

// -------------------------------------------------------------- concept --

/// A streaming accumulator: default-constructible empty state, element and
/// span ingestion, deterministic state merge, and a rounded result.
template <typename A>
concept Accumulator =
    std::default_initializable<A> &&
    requires(A a, const A& other, typename A::value_type x,
             std::span<const typename A::value_type> s) {
      typename A::value_type;
      { a.add(x) } -> std::same_as<void>;
      { a.add(s) } -> std::same_as<void>;
      { a.merge(other) } -> std::same_as<void>;
      { other.result() } -> std::convertible_to<typename A::value_type>;
    };

// ------------------------------------------------- streaming accumulators --

/// Left-to-right recursive accumulation (the "sequential recursive method").
template <typename T = double>
class SerialAccumulator {
 public:
  using value_type = T;
  void add(T x) noexcept { sum_ = static_cast<T>(sum_ + x); }
  void add(std::span<const T> values) noexcept {
    for (const T x : values) add(x);
  }
  void merge(const SerialAccumulator& other) noexcept { add(other.sum_); }
  T result() const noexcept { return sum_; }

 private:
  friend struct detail::SimdLaneAccess;
  T sum_{};
};

/// Streaming cascade (binary-counter pairwise): base blocks of kBase
/// elements are summed serially, then combined in binary-carry order - the
/// same O(log n) error growth as the recursive cascade of sum_pairwise,
/// with O(log n) state instead of the whole input.
///
/// Parity contract with the one-shot sum_pairwise(v, 32) (pinned by
/// regression tests in fp_test):
///
///   * streaming one whole span through add() yields the one-shot result
///     bit for bit: sum_pairwise splits at the largest power of two
///     strictly below n, so every leaf is a serial fold of the same
///     32-aligned block and every internal add pairs the same binary-
///     counter levels in the same left/right order the carry chain and
///     result() use (signed-zero caveat: result() seeds the fold with
///     +0.0, so an input whose lowest-level partial is -0.0 rounds to
///     +0.0 where the one-shot preserves -0.0);
///   * merge() does NOT splice the other cascade's levels - it folds the
///     other accumulator's *rounded* result in as one element of this
///     stream. Chunked accumulation therefore associates the chunk
///     boundaries differently from the one-shot over the concatenated
///     input and generally lands on different bits (deterministic for a
///     fixed chunking; exact_merge stays false). This is the documented
///     behaviour, chosen over splicing: splicing would make merge bits
///     depend on both cascades' internal fill state, which a thread-pool
///     reduction cannot fix in advance.
template <typename T = double>
class PairwiseAccumulator {
 public:
  using value_type = T;
  static constexpr std::size_t kBase = 32;

  void add(T x) {
    block_ = static_cast<T>(block_ + x);
    if (++block_count_ == kBase) {
      push_block(block_);
      block_ = T{};
      block_count_ = 0;
    }
  }
  void add(std::span<const T> values) {
    for (const T x : values) add(x);
  }
  /// Folds the other accumulator's rounded result in as one element:
  /// deterministic (and the natural chunked-pairwise association).
  void merge(const PairwiseAccumulator& other) { add(other.result()); }
  T result() const {
    T acc = block_;
    std::uint64_t mask = blocks_;
    for (std::size_t level = 0; mask != 0; ++level, mask >>= 1) {
      if (mask & 1) acc = static_cast<T>(levels_[level] + acc);
    }
    return acc;
  }

 private:
  friend struct detail::SimdLaneAccess;

  void push_block(T v) {
    std::size_t level = 0;
    std::uint64_t mask = blocks_;
    while (mask & 1) {
      v = static_cast<T>(levels_[level] + v);
      mask >>= 1;
      ++level;
    }
    if (level == levels_.size()) {
      levels_.push_back(v);
    } else {
      levels_[level] = v;
    }
    ++blocks_;
  }

  T block_{};
  std::size_t block_count_ = 0;
  std::uint64_t blocks_ = 0;  // bit b set <=> levels_[b] holds a partial
  std::vector<T> levels_;
};

/// Kahan compensated accumulation.
template <typename T = double>
class KahanAccumulator {
 public:
  using value_type = T;
  void add(T x) noexcept {
    const T y = static_cast<T>(x - comp_);
    const T t = static_cast<T>(sum_ + y);
    comp_ = static_cast<T>(static_cast<T>(t - sum_) - y);
    sum_ = t;
  }
  void add(std::span<const T> values) noexcept {
    for (const T x : values) add(x);
  }
  void merge(const KahanAccumulator& other) noexcept {
    add(other.sum_);
    add(static_cast<T>(-other.comp_));
  }
  T result() const noexcept { return sum_; }

 private:
  friend struct detail::SimdLaneAccess;
  T sum_{};
  T comp_{};
};

/// Neumaier's improvement of Kahan (additive correction term).
template <typename T = double>
class NeumaierAccumulator {
 public:
  using value_type = T;
  void add(T x) noexcept {
    const T t = static_cast<T>(sum_ + x);
    if (abs_(sum_) >= abs_(x)) {
      comp_ = static_cast<T>(comp_ + static_cast<T>(sum_ - t) + x);
    } else {
      comp_ = static_cast<T>(comp_ + static_cast<T>(x - t) + sum_);
    }
    sum_ = t;
  }
  void add(std::span<const T> values) noexcept {
    for (const T x : values) add(x);
  }
  void merge(const NeumaierAccumulator& other) noexcept {
    add(other.sum_);
    comp_ = static_cast<T>(comp_ + other.comp_);
  }
  T result() const noexcept { return static_cast<T>(sum_ + comp_); }

 private:
  friend struct detail::SimdLaneAccess;
  static T abs_(T v) noexcept { return v < T{} ? static_cast<T>(-v) : v; }
  T sum_{};
  T comp_{};
};

/// Klein's second-order ("iterative Kahan-Babuska") compensation.
template <typename T = double>
class KleinAccumulator {
 public:
  using value_type = T;
  void add(T x) noexcept {
    T t = static_cast<T>(sum_ + x);
    T c;
    if (abs_(sum_) >= abs_(x)) {
      c = static_cast<T>(static_cast<T>(sum_ - t) + x);
    } else {
      c = static_cast<T>(static_cast<T>(x - t) + sum_);
    }
    sum_ = t;
    t = static_cast<T>(cs_ + c);
    T cc;
    if (abs_(cs_) >= abs_(c)) {
      cc = static_cast<T>(static_cast<T>(cs_ - t) + c);
    } else {
      cc = static_cast<T>(static_cast<T>(c - t) + cs_);
    }
    cs_ = t;
    ccs_ = static_cast<T>(ccs_ + cc);
  }
  void add(std::span<const T> values) noexcept {
    for (const T x : values) add(x);
  }
  void merge(const KleinAccumulator& other) noexcept {
    add(other.sum_);
    cs_ = static_cast<T>(cs_ + other.cs_);
    ccs_ = static_cast<T>(ccs_ + other.ccs_);
  }
  T result() const noexcept {
    return static_cast<T>(static_cast<T>(sum_ + cs_) + ccs_);
  }

 private:
  friend struct detail::SimdLaneAccess;
  static T abs_(T v) noexcept { return v < T{} ? static_cast<T>(-v) : v; }
  T sum_{};
  T cs_{};
  T ccs_{};
};

/// Double-double (~106-bit) accumulation, rounded to T at the end.
template <typename T = double>
class DoubleDoubleAccumulator {
 public:
  using value_type = T;
  void add(T x) noexcept { acc_ += static_cast<double>(x); }
  void add(std::span<const T> values) noexcept {
    for (const T x : values) add(x);
  }
  void merge(const DoubleDoubleAccumulator& other) noexcept {
    acc_ += other.acc_;
  }
  T result() const noexcept { return static_cast<T>(acc_.to_double()); }

 private:
  DoubleDouble acc_;
};

/// Round-robin lane partials combined left-to-right - the streaming
/// analogue of a compiler-vectorised accumulation loop.
template <typename T = double>
class VectorizedAccumulator {
 public:
  using value_type = T;
  static constexpr std::size_t kLanes = 4;

  void add(T x) noexcept {
    lanes_[next_] = static_cast<T>(lanes_[next_] + x);
    next_ = (next_ + 1) % kLanes;
  }
  void add(std::span<const T> values) noexcept {
    for (const T x : values) add(x);
  }
  void merge(const VectorizedAccumulator& other) noexcept {
    for (std::size_t l = 0; l < kLanes; ++l) {
      lanes_[l] = static_cast<T>(lanes_[l] + other.lanes_[l]);
    }
  }
  T result() const noexcept {
    T sum{};
    for (const T lane : lanes_) sum = static_cast<T>(sum + lane);
    return sum;
  }

 private:
  T lanes_[kLanes] = {};
  std::size_t next_ = 0;
};

/// Demmel-Nguyen binned sum. Binning needs the global max magnitude, so the
/// streaming form buffers its inputs (in double) and bins at result() time;
/// BinnedSum::sum is permutation-invariant, which makes both add order and
/// merge order irrelevant to the result.
template <typename T = double>
class BinnedAccumulator {
 public:
  using value_type = T;
  void add(T x) { buffer_.push_back(static_cast<double>(x)); }
  void add(std::span<const T> values) {
    buffer_.reserve(buffer_.size() + values.size());
    for (const T x : values) buffer_.push_back(static_cast<double>(x));
  }
  void merge(const BinnedAccumulator& other) {
    buffer_.insert(buffer_.end(), other.buffer_.begin(), other.buffer_.end());
  }
  T result() const {
    return static_cast<T>(BinnedSum::sum(std::span<const double>(buffer_)));
  }

 private:
  std::vector<double> buffer_;
};

/// Long-accumulator (superaccumulator) streaming state: exact adds, exact
/// merges, one rounding at result(). Bitwise invariant to any ordering,
/// chunking or merge tree. (Named after the ExBLAS "long accumulator" to
/// avoid a case-only collision with the underlying fp::Superaccumulator.)
template <typename T = double>
class LongAccumulator {
 public:
  using value_type = T;
  void add(T x) noexcept { acc_.add(static_cast<double>(x)); }
  void add(std::span<const T> values) noexcept {
    for (const T x : values) acc_.add(static_cast<double>(x));
  }
  void merge(const LongAccumulator& other) noexcept { acc_.add(other.acc_); }
  T result() const noexcept { return static_cast<T>(acc_.round()); }

 private:
  Superaccumulator acc_;
};

static_assert(Accumulator<SerialAccumulator<double>>);
static_assert(Accumulator<SerialAccumulator<float>>);
static_assert(Accumulator<PairwiseAccumulator<double>>);
static_assert(Accumulator<KahanAccumulator<double>>);
static_assert(Accumulator<NeumaierAccumulator<double>>);
static_assert(Accumulator<KleinAccumulator<double>>);
static_assert(Accumulator<DoubleDoubleAccumulator<double>>);
static_assert(Accumulator<VectorizedAccumulator<double>>);
static_assert(Accumulator<BinnedAccumulator<double>>);
static_assert(Accumulator<LongAccumulator<double>>);
static_assert(Accumulator<LongAccumulator<float>>);

// Every streaming accumulator also instantiates at the software bf16
// storage dtype (arithmetic runs through the implicit float conversion
// with one rounding per assignment - the pure-bf16 accumulate the dtype
// sweeps use as the "no mixed precision" ablation).
static_assert(Accumulator<SerialAccumulator<bf16>>);
static_assert(Accumulator<PairwiseAccumulator<bf16>>);
static_assert(Accumulator<KahanAccumulator<bf16>>);
static_assert(Accumulator<NeumaierAccumulator<bf16>>);
static_assert(Accumulator<KleinAccumulator<bf16>>);
static_assert(Accumulator<DoubleDoubleAccumulator<bf16>>);
static_assert(Accumulator<VectorizedAccumulator<bf16>>);
static_assert(Accumulator<BinnedAccumulator<bf16>>);
static_assert(Accumulator<LongAccumulator<bf16>>);

// ------------------------------------------- lane-blocked (SIMD) tier --

namespace detail {

struct SimdLaneAccess {
  template <typename T>
  static T& sum(SerialAccumulator<T>& a) noexcept {
    return a.sum_;
  }
  template <typename T>
  static T& sum(KahanAccumulator<T>& a) noexcept {
    return a.sum_;
  }
  template <typename T>
  static T& comp(KahanAccumulator<T>& a) noexcept {
    return a.comp_;
  }
  template <typename T>
  static T& sum(NeumaierAccumulator<T>& a) noexcept {
    return a.sum_;
  }
  template <typename T>
  static T& comp(NeumaierAccumulator<T>& a) noexcept {
    return a.comp_;
  }
  template <typename T>
  static T& sum(KleinAccumulator<T>& a) noexcept {
    return a.sum_;
  }
  template <typename T>
  static T& cs(KleinAccumulator<T>& a) noexcept {
    return a.cs_;
  }
  template <typename T>
  static T& ccs(KleinAccumulator<T>& a) noexcept {
    return a.ccs_;
  }
  template <typename T>
  static T& block(PairwiseAccumulator<T>& a) noexcept {
    return a.block_;
  }
  template <typename T>
  static std::size_t& block_count(PairwiseAccumulator<T>& a) noexcept {
    return a.block_count_;
  }
  template <typename T>
  static void push_block(PairwiseAccumulator<T>& a, T v) {
    a.push_block(v);
  }
};

// Intrinsics dispatch for LaneBlockedAccumulator::add(span): deal
// x[0..n) round-robin into lanes[0..lane_count) starting at lane `next`,
// bitwise identical to the scalar emulation loop. Returns true when an
// intrinsics kernel consumed the span; false (no host support,
// force-scalar in effect, or no kernel for this (algorithm, dtype, L))
// sends the caller down the emulation loop. Implemented in
// src/fp/src/simd.cpp; kernels in src/fp/src/simd_avx2.cpp / _avx512.cpp.
bool simd_add_span(SerialAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x, std::size_t n) noexcept;
bool simd_add_span(SerialAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept;
bool simd_add_span(KahanAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x, std::size_t n) noexcept;
bool simd_add_span(KahanAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept;
bool simd_add_span(NeumaierAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x, std::size_t n) noexcept;
bool simd_add_span(NeumaierAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept;
bool simd_add_span(KleinAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x, std::size_t n) noexcept;
bool simd_add_span(KleinAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept;
bool simd_add_span(PairwiseAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x, std::size_t n) noexcept;
bool simd_add_span(PairwiseAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept;
/// Catch-all: no intrinsics tier for this accumulator/dtype (bf16 lanes,
/// the exact-merge states, double-double, ...) - always emulate.
template <typename Base>
bool simd_add_span(Base*, std::size_t, std::size_t&,
                   const typename Base::value_type*, std::size_t) noexcept {
  return false;
}

}  // namespace detail

/// The lane-blocked wrapper: L independent sub-streams of Base, dealt
/// round-robin (element i of a stream goes to lane i mod L - exactly how
/// a vector register blocks a summation loop), folded lane 0 upward with
/// Base::merge at result(). This IS the reference re-association for
/// `<algorithm>@simd<L>`: the element-at-a-time path below is the
/// portable scalar emulation, and the intrinsics path reached through
/// add(span) is REQUIRED to produce identical bits (it runs the same
/// per-lane IEEE op sequence, one lane per register slot; property-tested
/// in fp_test and gated in CI via FPNA_FORCE_SCALAR_SIMD).
///
/// merge() combines lane-wise (lane l with lane l), ignoring both sides'
/// round-robin phase - the chunked analogue of concatenating each lane's
/// sub-stream. Deterministic for a fixed chunking, exact iff Base's merge
/// is exact; like every non-exact accumulator here, chunked bits differ
/// from one-shot bits by association, never by schedule.
template <typename Base, std::size_t L>
class LaneBlockedAccumulator {
  static_assert(L >= 2,
                "LaneBlockedAccumulator<Base, 1> is Base itself; "
                "visit_lane_algorithm hands lanes == 1 the base tag");

 public:
  using value_type = typename Base::value_type;
  using base_type = Base;
  static constexpr std::size_t kLanes = L;

  void add(value_type x) {
    lanes_[next_].add(x);
    next_ = (next_ + 1) % L;
  }
  void add(std::span<const value_type> values) {
    if (detail::simd_add_span(lanes_.data(), L, next_, values.data(),
                              values.size())) {
      return;
    }
    for (const value_type x : values) add(x);
  }
  void merge(const LaneBlockedAccumulator& other) {
    for (std::size_t l = 0; l < L; ++l) lanes_[l].merge(other.lanes_[l]);
  }
  /// Pinned lane fold: start from lane 0's state and merge lanes 1..L-1
  /// in ascending index order - one fixed association, so the result is
  /// a pure function of the per-lane sub-streams.
  value_type result() const {
    Base total = lanes_[0];
    for (std::size_t l = 1; l < L; ++l) total.merge(lanes_[l]);
    return total.result();
  }

 private:
  std::array<Base, L> lanes_{};
  std::size_t next_ = 0;  // lane the next element lands in
};

static_assert(Accumulator<LaneBlockedAccumulator<SerialAccumulator<double>, 4>>);
static_assert(Accumulator<LaneBlockedAccumulator<KahanAccumulator<float>, 8>>);
static_assert(Accumulator<LaneBlockedAccumulator<KleinAccumulator<bf16>, 16>>);
static_assert(Accumulator<LaneBlockedAccumulator<LongAccumulator<double>, 4>>);

// ---------------------------------------------------------------- tags --

// One tag type per algorithm. A tag carries the streaming accumulator
// template, the canonical one-shot reduction (bitwise identical to the
// historic free function for double), and the declared traits - everything
// the static visitor hands to a monomorphised hot loop.

namespace tags {

struct Serial {
  static constexpr AlgorithmId id = AlgorithmId::kSerial;
  static constexpr AlgorithmTraits traits{};
  template <typename T>
  using accumulator_t = SerialAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return sum_serial(v);
  }
};

struct Pairwise {
  static constexpr AlgorithmId id = AlgorithmId::kPairwise;
  static constexpr AlgorithmTraits traits{};
  template <typename T>
  using accumulator_t = PairwiseAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return sum_pairwise(v, 32);
  }
};

struct Kahan {
  static constexpr AlgorithmId id = AlgorithmId::kKahan;
  static constexpr AlgorithmTraits traits{};
  template <typename T>
  using accumulator_t = KahanAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return sum_kahan(v);
  }
};

struct Neumaier {
  static constexpr AlgorithmId id = AlgorithmId::kNeumaier;
  static constexpr AlgorithmTraits traits{};
  template <typename T>
  using accumulator_t = NeumaierAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return sum_neumaier(v);
  }
};

struct Klein {
  static constexpr AlgorithmId id = AlgorithmId::kKlein;
  static constexpr AlgorithmTraits traits{};
  template <typename T>
  using accumulator_t = KleinAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return sum_klein(v);
  }
};

struct DoubleDoubleTag {
  static constexpr AlgorithmId id = AlgorithmId::kDoubleDouble;
  static constexpr AlgorithmTraits traits{};
  template <typename T>
  using accumulator_t = DoubleDoubleAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return sum_double_double(v);
  }
};

struct Vectorized {
  static constexpr AlgorithmId id = AlgorithmId::kVectorized;
  static constexpr AlgorithmTraits traits{};
  template <typename T>
  using accumulator_t = VectorizedAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return sum_vectorized(v, 4);
  }
};

struct Binned {
  static constexpr AlgorithmId id = AlgorithmId::kBinned;
  static constexpr AlgorithmTraits traits{
      .deterministic_fixed_order = true,
      .permutation_invariant = true,
      .exact_merge = true,
  };
  template <typename T>
  using accumulator_t = BinnedAccumulator<T>;
  static double reduce(std::span<const double> v) { return BinnedSum::sum(v); }
};

struct Super {
  static constexpr AlgorithmId id = AlgorithmId::kSuperaccumulator;
  static constexpr AlgorithmTraits traits{
      .deterministic_fixed_order = true,
      .permutation_invariant = true,
      .exact_merge = true,
  };
  template <typename T>
  using accumulator_t = LongAccumulator<T>;
  static double reduce(std::span<const double> v) noexcept {
    return Superaccumulator::sum(v);
  }
};

/// Lane-blocked wrapper tag: the same algorithm identity as Tag, with the
/// accumulator swapped for the L-lane blocking. Traits carry over
/// verbatim: lane-blocking is deterministic for a fixed L (the lane
/// assignment i mod L and the fold order are pinned), and it preserves
/// permutation-invariance/exact-merge exactly when Base has them (exact
/// lanes fold exactly; for order-sensitive bases both the scalar and the
/// lane-blocked association are order-sensitive).
template <typename Tag, std::size_t L>
struct Simd {
  static constexpr AlgorithmId id = Tag::id;
  static constexpr AlgorithmTraits traits = Tag::traits;
  static constexpr std::size_t lanes = L;
  using base_tag = Tag;
  template <typename T>
  using accumulator_t =
      LaneBlockedAccumulator<typename Tag::template accumulator_t<T>, L>;
  static double reduce(std::span<const double> v) {
    accumulator_t<double> acc;
    acc.add(v);
    return acc.result();
  }
};

}  // namespace tags

/// Static visitor: one switch per reduction *call*, monomorphised inner
/// loops. `f` receives the tag by value and can read its accumulator_t,
/// reduce and traits without any virtual dispatch. An id outside the enum
/// (e.g. cast from an untrusted config integer) throws rather than
/// silently computing a different algorithm - in a toolkit certifying
/// which algorithm produced which bits, a quiet fallback would be a
/// correctness bug.
template <typename F>
decltype(auto) visit_algorithm(AlgorithmId id, F&& f) {
  switch (id) {
    case AlgorithmId::kSerial: return f(tags::Serial{});
    case AlgorithmId::kPairwise: return f(tags::Pairwise{});
    case AlgorithmId::kKahan: return f(tags::Kahan{});
    case AlgorithmId::kNeumaier: return f(tags::Neumaier{});
    case AlgorithmId::kKlein: return f(tags::Klein{});
    case AlgorithmId::kDoubleDouble: return f(tags::DoubleDoubleTag{});
    case AlgorithmId::kVectorized: return f(tags::Vectorized{});
    case AlgorithmId::kBinned: return f(tags::Binned{});
    case AlgorithmId::kSuperaccumulator: return f(tags::Super{});
  }
  throw std::invalid_argument(
      "visit_algorithm: AlgorithmId outside the registered enum");
}

/// Lane dispatch composed over visit_algorithm: lanes <= 1 hands `f` the
/// base tag itself (so `@simd1` IS the scalar algorithm, bitwise), other
/// supported counts the tags::Simd wrapper. The set is deliberately
/// closed (kSimdLaneCounts) for the same reason visit_algorithm's switch
/// is: a lane count the visitor does not know must throw, never silently
/// run a different re-association. The spec parser enforces the same set,
/// so this throw only fires for programmatically built specs.
template <typename F>
decltype(auto) visit_lane_algorithm(AlgorithmId id, std::size_t lanes, F&& f) {
  return visit_algorithm(id, [&](auto tag) -> decltype(auto) {
    using Tag = decltype(tag);
    switch (lanes) {
      case 0:
      case 1: return f(tag);
      case 4: return f(tags::Simd<Tag, 4>{});
      case 8: return f(tags::Simd<Tag, 8>{});
      case 16: return f(tags::Simd<Tag, 16>{});
      default: break;
    }
    throw std::invalid_argument(
        "visit_lane_algorithm: unsupported SIMD lane count " +
        std::to_string(lanes) + " (supported: 1, 4, 8, 16)");
  });
}

/// One-shot reduction through the selected algorithm. For double this is
/// bitwise identical to the historic summation.hpp free functions; other
/// element types stream through the algorithm's accumulator in T precision
/// (matching how a device kernel would accumulate that dtype).
template <typename T = double>
T reduce(AlgorithmId id, std::span<const T> values) {
  return visit_algorithm(id, [&](auto tag) -> T {
    if constexpr (std::same_as<T, double>) {
      return decltype(tag)::reduce(values);
    } else {
      typename decltype(tag)::template accumulator_t<T> acc;
      acc.add(values);
      return acc.result();
    }
  });
}

// --------------------------------------------- dtype-polymorphic visit --

/// Type constant naming a concrete accumulate dtype inside
/// visit_reduction's callback.
template <typename T>
struct dtype_c {
  using type = T;
};

// Storage quantizers: monomorphic value transforms (N -> N, the quantized
// value is exactly representable in N because bf16 c f32 c f64) applied to
// every addend - or, in the dot-product kernels, operand - before it
// enters the accumulation stream. The identity is a distinct type so hot
// loops compile the no-op away entirely.

struct QuantizeNone {
  static constexpr bool is_identity = true;
  template <typename N>
  N operator()(N x) const noexcept {
    return x;
  }
};

struct QuantizeF32 {
  static constexpr bool is_identity = false;
  template <typename N>
  N operator()(N x) const noexcept {
    return static_cast<N>(static_cast<float>(x));
  }
};

struct QuantizeBf16 {
  static constexpr bool is_identity = false;
  template <typename N>
  N operator()(N x) const noexcept {
    return static_cast<N>(static_cast<float>(bf16(static_cast<float>(x))));
  }
};

namespace detail {

/// Storage dispatch for a kernel whose native element type is N. A
/// storage dtype at least as wide as N is a no-op (the values already
/// live in N); narrower dtypes quantize.
template <typename N, typename F>
decltype(auto) visit_storage(Dtype storage, F&& f) {
  switch (storage) {
    case Dtype::kBf16:
      return f(QuantizeBf16{});
    case Dtype::kF32:
      if constexpr (std::same_as<N, double>) {
        return f(QuantizeF32{});
      } else {
        return f(QuantizeNone{});
      }
    case Dtype::kNative:
    case Dtype::kF64:
      break;
  }
  return f(QuantizeNone{});
}

template <typename N, typename F>
decltype(auto) visit_accumulate(Dtype accumulate, F&& f) {
  switch (accumulate) {
    case Dtype::kF64: return f(dtype_c<double>{});
    case Dtype::kF32: return f(dtype_c<float>{});
    case Dtype::kBf16: return f(dtype_c<bf16>{});
    case Dtype::kNative: break;
  }
  return f(dtype_c<N>{});
}

}  // namespace detail

/// Static visitor over the full ReductionSpec: one switch chain per
/// reduction *call*, then `f(tag, acc_c, quantize)` runs fully
/// monomorphised - `tag` as in visit_algorithm (a tags::Simd wrapper when
/// the spec is lane-blocked, so accumulator_t is already the lane-blocked
/// type and call sites need no lane awareness of their own), `acc_c` a
/// dtype_c naming the accumulate dtype (instantiate the tag's
/// accumulator_t at `typename decltype(acc_c)::type`), `quantize` the
/// storage transform to wrap around every addend/operand. N is the
/// calling kernel's native element type; it resolves Dtype::kNative on
/// both axes.
template <typename N, typename F>
decltype(auto) visit_reduction(const ReductionSpec& spec, F&& f) {
  return visit_lane_algorithm(
      spec.algorithm, spec.lanes, [&](auto tag) -> decltype(auto) {
        return detail::visit_storage<N>(
            spec.storage, [&](auto quantize) -> decltype(auto) {
              return detail::visit_accumulate<N>(
                  spec.accumulate, [&](auto acc_c) -> decltype(auto) {
                    return f(tag, acc_c, quantize);
                  });
            });
      });
}

/// One-shot dtype-polymorphic reduction. A scalar (lanes == 1) spec that
/// resolves to the kernel-native dtypes routes through the scalar
/// reduce() above, so double results stay bitwise identical to the
/// historic free functions (the equality below fails for lane-blocked
/// specs because the right-hand side carries lanes == 1);
/// a dtype-qualified spec quantizes every addend to the storage dtype and
/// streams it through the algorithm's accumulator instantiated at the
/// accumulate dtype, widening the rounded result back to T (exact, since
/// every narrower value is representable in T).
template <typename T = double>
T reduce(const ReductionSpec& spec, std::span<const T> values) {
  if (spec.resolved(dtype_of_v<T>) ==
      ReductionSpec{spec.algorithm, dtype_of_v<T>, dtype_of_v<T>}) {
    return reduce<T>(spec.algorithm, values);
  }
  return visit_reduction<T>(
      spec, [&](auto tag, auto acc_c, auto quantize) -> T {
        using A = typename decltype(acc_c)::type;
        typename decltype(tag)::template accumulator_t<A> acc;
        if constexpr (std::same_as<A, T> &&
                      decltype(quantize)::is_identity) {
          // Bulk ingestion - defined as the same element loop for every
          // accumulator, so bits never move; lane-blocked states take
          // their intrinsics fast path here.
          acc.add(values);
        } else {
          for (const T x : values) acc.add(static_cast<A>(quantize(x)));
        }
        return static_cast<T>(acc.result());
      });
}

/// Declared traits of a spec. The algorithm's traits hold for every dtype
/// instantiation: storage quantization is elementwise (commutes with any
/// permutation or chunking of the input) and the exactness of the
/// exact-merge states is internal to the accumulator, independent of the
/// dtype its result rounds to.
inline const AlgorithmTraits& traits_of(const ReductionSpec& spec) {
  return traits_of(spec.algorithm);
}

// ------------------------------------------------------------- registry --

/// String/enum-keyed catalogue of every accumulation algorithm. Built-ins
/// self-register (see accumulator.cpp). Adding an algorithm is three
/// mechanical steps in this module: (1) a new AlgorithmId enum value in
/// algorithm_id.hpp, (2) a tag + visit_algorithm case here (the visitor
/// is a deliberately closed set so an id it does not know throws instead
/// of silently running the wrong algorithm), (3) one
/// FPNA_REGISTER_ACCUMULATOR line in accumulator.cpp - after which the
/// algorithm appears in every name-driven surface (bench tables,
/// --algorithm flags, registry sums) and every streaming reduction with
/// no changes outside src/fp.
class AlgorithmRegistry {
 public:
  struct Entry {
    std::string name;  // CLI-facing key, e.g. "kahan"
    AlgorithmId id = AlgorithmId::kSerial;
    std::string description;
    AlgorithmTraits traits{};
    /// f64 storage / f64 accumulate one-shot reduction (bitwise = the
    /// historic free function; this surface's values never move).
    double (*reduce)(std::span<const double>) = nullptr;
    /// f32 storage / f32 accumulate: the framework-FP32 kernel setting.
    float (*reduce_f32)(std::span<const float>) = nullptr;
    /// bf16 storage / f32 accumulate: the tensor-core mixed-precision
    /// setting the paper's DL experiments run under.
    float (*reduce_bf16_f32)(std::span<const bf16>) = nullptr;
  };

  static AlgorithmRegistry& instance();

  /// Registers an algorithm; throws std::invalid_argument on a duplicate
  /// name or id.
  void register_algorithm(Entry entry);

  /// nullptr when `name` is unknown.
  const Entry* find(std::string_view name) const noexcept;

  /// Throwing lookups; the error message lists the registered names so CLI
  /// typos are self-explaining.
  const Entry& at(std::string_view name) const;
  const Entry& at(AlgorithmId id) const;

  /// Registered names in registration order (stable across a build: the
  /// nine built-ins first, extensions after).
  std::vector<std::string> names() const;

  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Convenience: registry-dispatched one-shot sum.
  static double sum(AlgorithmId id, std::span<const double> values) {
    return reduce<double>(id, values);
  }
  static double sum(const ReductionSpec& spec,
                    std::span<const double> values) {
    return reduce<double>(spec, values);
  }
  /// Name-driven sum: `name` is the full spec grammar
  /// ("kahan", "kahan@bf16:f32", ...), parsed by parse_reduction_spec -
  /// so the one lookup/throw path (at() for the algorithm, parse_dtype
  /// for the dtypes, both listing their valid keys) serves every
  /// name-driven surface.
  static double sum(std::string_view name, std::span<const double> values);

 private:
  AlgorithmRegistry() = default;
  std::vector<Entry> entries_;
};

namespace detail {
struct AlgorithmRegistrar {
  explicit AlgorithmRegistrar(AlgorithmRegistry::Entry entry);
};

/// Tag-generic fillers for the registry's per-dtype reduce surfaces: the
/// algorithm's streaming accumulator instantiated at the accumulate
/// dtype, addends entering in storage precision.
template <typename Tag>
float tag_reduce_f32(std::span<const float> values) {
  typename Tag::template accumulator_t<float> acc;
  acc.add(values);
  return acc.result();
}

template <typename Tag>
float tag_reduce_bf16_f32(std::span<const bf16> values) {
  typename Tag::template accumulator_t<float> acc;
  for (const bf16 x : values) acc.add(static_cast<float>(x));
  return acc.result();
}

}  // namespace detail

/// Self-registration hook: expands to a namespace-scope registrar whose
/// constructor inserts the entry. Place in a .cpp that is linked whenever
/// the registry is used (the nine built-ins live in accumulator.cpp).
/// Registration runs at static initialization and fails fast: a duplicate
/// name or id throws there (surfacing as std::terminate with the
/// duplicate's name) rather than letting two algorithms share a key.
#define FPNA_REGISTER_ACCUMULATOR(token, cli_name, tag_type, description_str) \
  static const ::fpna::fp::detail::AlgorithmRegistrar                         \
      fpna_accumulator_registrar_##token{::fpna::fp::AlgorithmRegistry::Entry{\
          cli_name, tag_type::id, description_str, tag_type::traits,          \
          &tag_type::reduce, &::fpna::fp::detail::tag_reduce_f32<tag_type>,   \
          &::fpna::fp::detail::tag_reduce_bf16_f32<tag_type>}};

}  // namespace fpna::fp
