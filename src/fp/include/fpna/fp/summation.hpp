#pragma once
// Serial summation algorithms with different rounding-error behaviour.
// These are the arithmetic kernels the reduction implementations
// (src/reduce) compose; each one is deterministic for a fixed input order,
// and their sensitivity to input *ordering* is exactly what the toolkit
// measures.

#include <cstddef>
#include <span>
#include <vector>

namespace fpna::fp {

/// Left-to-right recursive sum: ((x0 + x1) + x2) + ... Matches what the
/// paper calls the "sequential recursive method".
double sum_serial(std::span<const double> values) noexcept;

/// Pairwise (cascade) summation with configurable base-case length.
/// base = 1 reproduces the pure binary tree used by the GPU block
/// reductions in Listing 1 of the paper. Error grows O(log n) vs O(n).
double sum_pairwise(std::span<const double> values,
                    std::size_t base = 32) noexcept;

/// Kahan compensated summation.
double sum_kahan(std::span<const double> values) noexcept;

/// Neumaier's improvement of Kahan (handles |x_i| > |s| correctly).
double sum_neumaier(std::span<const double> values) noexcept;

/// Klein's second-order ("iterative Kahan-Babuska") compensation.
double sum_klein(std::span<const double> values) noexcept;

/// Double-double accumulation, then rounded to double. ~106-bit reference
/// with O(1) memory; still order-dependent at the 2^-106 level.
double sum_double_double(std::span<const double> values) noexcept;

/// Simulates a `w`-lane SIMD vectorised loop: lane-strided partial sums
/// combined left-to-right at the end. This is the rounding pattern an
/// auto-vectorising compiler gives the TPRC host-side sum (paper SIII.A
/// notes TPRC is "more sensitive to compiler optimizations because of
/// vectorization").
double sum_vectorized(std::span<const double> values,
                      std::size_t lanes = 4) noexcept;

/// Serial dot product (used by the DL substrate's matmul reference).
double dot_serial(std::span<const double> a,
                  std::span<const double> b) noexcept;

/// Convenience overloads.
inline double sum_serial(const std::vector<double>& v) noexcept {
  return sum_serial(std::span<const double>(v));
}

}  // namespace fpna::fp
