// Quickstart: the 5-minute tour of the fpna toolkit.
//
//  1. See floating-point non-associativity with your own eyes.
//  2. Measure run-to-run variability of a non-deterministic kernel with
//     the paper's metrics (Vs / Vermv / Vc).
//  3. Certify a deterministic kernel.
//  4. Fix the problem with a reproducible (order-invariant) sum.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>
#include <vector>

#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/reduce/gpu_sum.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/rng.hpp"
#include "fpna/util/table.hpp"

int main() {
  using namespace fpna;

  // ------------------------------------------------------------------
  // 1. Non-associativity: the same numbers, two orders, two answers.
  // ------------------------------------------------------------------
  std::cout << "== 1. Floating-point addition is not associative ==\n";
  util::Xoshiro256pp rng(42);
  util::Normal dist(0.0, 1.0);
  std::vector<double> values(100000);
  for (auto& x : values) x = dist(rng);

  // Algorithms are picked from the registry by name - the same lookup
  // every bench and reduction backend uses.
  const auto& registry = fp::AlgorithmRegistry::instance();
  const auto& serial = registry.at("serial");
  const double in_order = serial.reduce(values);
  auto shuffled = values;
  util::shuffle(shuffled, rng);
  const double permuted = serial.reduce(shuffled);
  std::cout << "  serial sum:          " << util::sci(in_order) << "\n"
            << "  after a permutation: " << util::sci(permuted) << "\n"
            << "  difference:          " << util::sci(permuted - in_order)
            << "\n"
            << "  Vs:                  " << util::sci(core::vs(permuted, in_order), 3)
            << "\n\n";

  // ------------------------------------------------------------------
  // 2. Measure a non-deterministic kernel (simulated GPU atomic sum).
  // ------------------------------------------------------------------
  std::cout << "== 2. Run-to-run variability of an atomic reduction ==\n";
  sim::SimDevice device(sim::DeviceProfile::v100());
  const auto deterministic = [&](core::RunContext& ctx) {
    return reduce::gpu_sum(device, values, sim::SumMethod::kSPTR, ctx).value;
  };
  const auto nondeterministic = [&](core::RunContext& ctx) {
    return reduce::gpu_sum(device, values, sim::SumMethod::kSPA, ctx).value;
  };
  const auto report = core::measure_scalar_variability(
      deterministic, nondeterministic, /*runs=*/200, /*master_seed=*/1);
  std::cout << "  200 runs of the SPA kernel vs the SPTR reference:\n"
            << "  bitwise reproducible runs: "
            << report.reproducible_fraction * 100 << "%\n"
            << "  mean(Vs) = " << util::sci(report.vs_summary.mean, 3)
            << ", std(Vs) = " << util::sci(report.vs_summary.stddev, 3)
            << "\n\n";

  // ------------------------------------------------------------------
  // 3. Certify the deterministic kernel.
  // ------------------------------------------------------------------
  std::cout << "== 3. Determinism certification ==\n";
  const auto cert = core::certify_deterministic_scalar(deterministic, 50, 2);
  std::cout << "  SPTR certified deterministic over 50 scheduler seeds: "
            << (cert.deterministic ? "yes" : "NO") << "\n\n";

  // ------------------------------------------------------------------
  // 4. The reproducible fix: an order-invariant sum.
  // ------------------------------------------------------------------
  std::cout << "== 4. Reproducible summation ==\n";
  const auto& gold_algo = registry.at("superaccumulator");
  const double gold = gold_algo.reduce(values);
  const double gold_shuffled = gold_algo.reduce(shuffled);
  std::cout << "  superaccumulator(values):   " << util::sci(gold) << "\n"
            << "  superaccumulator(shuffled): " << util::sci(gold_shuffled)
            << "\n"
            << "  bitwise identical: "
            << (fp::bitwise_equal(gold, gold_shuffled) ? "yes" : "NO")
            << "\n\n";

  // ------------------------------------------------------------------
  // 5. The registry: every algorithm, one catalogue.
  // ------------------------------------------------------------------
  std::cout << "== 5. Registered accumulation algorithms ==\n";
  for (const auto& entry : registry.entries()) {
    std::cout << "  " << entry.name
              << (entry.traits.permutation_invariant ? " [reproducible]" : "")
              << " - " << entry.description << "\n";
  }
  return 0;
}
