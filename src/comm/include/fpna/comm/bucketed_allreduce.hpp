#pragma once
// Bucketed, overlap-capable allreduce over lists of named-by-position
// tensors - the communication step of data-parallel training.
//
// bucketed_allreduce packs each rank's tensor list into the BucketAssigner
// buckets, allreduces every bucket through the ProcessGroup, and unpacks
// the reduced buckets back into per-tensor results. Per bucket it derives
// a fresh EvalContext:
//
//   * arrival-tree runs get a per-bucket RunContext whose seed is drawn
//     from ctx.run *in bucket order on the caller's thread*, so the drawn
//     arrival orders are a pure function of the run identity - bitwise
//     identical whether buckets reduce inline or overlapped on the pool;
//   * a user context_hook may retarget the accumulator (or any other
//     EvalContext field) per bucket - e.g. carry the embedding gradients
//     on the superaccumulator exchange while the dense bulk rides the
//     cheap serial path.
//
// With overlap enabled (and ctx.pool set), closed buckets reduce on the
// thread pool while the caller's thread keeps packing the remaining
// buckets - the DDP pattern of overlapping communication with gradient
// production. Overlap changes wall-clock, never bits (certified in
// comm_test).
//
// sharded_bucketed_allreduce is the multi-tensor generalisation of
// collective::distributed_sum: the reduction's *samples* (micro-batch
// gradient contributions) are assigned to ranks by an owner map, each rank
// folds its samples locally, and the partials meet in the collective. With
// kReproducible the local fold keeps exact per-element state, so the
// result is bitwise invariant to rank count, shard assignment, bucket cap
// and arrival order - the "MPI-safe" gradient reduction; with the rounded
// algorithms the local fold commits to its shard's association and the
// bits move with (P, owner map, algorithm).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "fpna/collective/allreduce.hpp"
#include "fpna/comm/bucket_scheduler.hpp"
#include "fpna/comm/bucketing.hpp"
#include "fpna/comm/process_group.hpp"
#include "fpna/core/eval_context.hpp"

namespace fpna::comm {

/// One flat vector per tensor; tensors are identified by position.
template <typename T>
using TensorList = std::vector<std::vector<T>>;

struct BucketedConfig {
  std::size_t bucket_cap_elements = std::size_t{1} << 16;
  /// Reduce closed buckets on ctx.pool while later buckets pack. Requires
  /// ctx.pool; bitwise identical to the inline schedule by construction.
  bool overlap = false;
  /// Network block size of the arrival-tree collective.
  std::size_t block_elements = 1024;
  /// Per-bucket EvalContext adjustment (reduction-spec selection etc. -
  /// e.g. carry the embedding-gradient bucket at kahan@bf16:f32 while the
  /// dense bulk rides the native serial path). The hook runs once per
  /// bucket on a private copy of the caller's context; it must not
  /// install shared mutable state when overlap is on.
  std::function<void(std::size_t bucket_index, core::EvalContext&)>
      context_hook{};
};

/// Allreduce-sum of per-rank tensor lists. `rank_tensors` holds
/// pg.local_contributions() entries (all P for the sim backend, this
/// rank's list under MPI); every entry must agree on tensor count and
/// sizes. Returns the reduced tensors every rank observes. ctx.run is
/// required for (and only consumed by) kArrivalTree.
template <typename T>
TensorList<T> bucketed_allreduce(ProcessGroup& pg,
                                 const std::vector<TensorList<T>>& rank_tensors,
                                 collective::Algorithm algorithm,
                                 const core::EvalContext& ctx,
                                 const BucketedConfig& config = {});

/// Sharded reduction of `samples[s]` (each a full TensorList contribution)
/// assigned to ranks by `owner[s]` in [0, pg.size()). Needs a backend
/// that plays every rank (the per-sample fold happens in-process; the
/// rank-local exact-state exchange under MPI is a ROADMAP item - the
/// superaccumulator wire serialization it needs already carries
/// ProcessGroup::allreduce's reproducible path over the ring/butterfly
/// schedules). See the header comment for the reproducibility contract.
template <typename T>
TensorList<T> sharded_bucketed_allreduce(
    ProcessGroup& pg, const std::vector<TensorList<T>>& samples,
    std::span<const std::size_t> owner, collective::Algorithm algorithm,
    const core::EvalContext& ctx, const BucketedConfig& config = {});

/// The DDP overlap engine: an emission-ordered, arrival-fired bucket
/// allreduce, shared by dl::train_data_parallel's backward-overlapped
/// gradient exchange and bench/bucketed_allreduce --overlap=backward so
/// the bench certifies the exact flow the trainer runs.
///
/// Slot s of the firing order is tensor emit_order[s] (a permutation of
/// [0, tensor_sizes.size())); BucketAssigner packs the slots into
/// config's buckets. `rank_tensors` is only *read*, bucket by bucket, at
/// fire time - the caller may fill it progressively (a backward pass
/// does) as long as every slot of a fired bucket holds its final tensor
/// of the declared size in every rank list; a missed or misrouted
/// emission throws std::logic_error from the fire instead of corrupting
/// the reduction - out of the notify_slot_ready that completed the
/// bucket when firing runs inline (overlap off, or a backend without
/// concurrent collectives), out of finish() when it ran on the pool.
///
/// Reproducibility discipline (the bucketed_allreduce contract): the
/// per-bucket arrival seeds (kArrivalTree) are drawn from ctx.run in
/// bucket order at construction, and config.context_hook applies per
/// bucket on a private context copy - each bucket's reduction is a pure
/// function of its index, so firing order and pool scheduling change
/// wall-clock, never bits. With config.overlap and a backend that
/// supports concurrent collectives, buckets reduce on ctx.pool while the
/// caller keeps producing tensors.
template <typename T>
class OverlappedBucketAllreduce {
 public:
  OverlappedBucketAllreduce(ProcessGroup& pg,
                            const std::vector<TensorList<T>>& rank_tensors,
                            std::span<const std::size_t> tensor_sizes,
                            std::span<const std::size_t> emit_order,
                            collective::Algorithm algorithm,
                            const core::EvalContext& ctx,
                            const BucketedConfig& config = {});

  OverlappedBucketAllreduce(const OverlappedBucketAllreduce&) = delete;
  OverlappedBucketAllreduce& operator=(const OverlappedBucketAllreduce&) =
      delete;

  const std::vector<Bucket>& buckets() const noexcept {
    return scheduler_->buckets();
  }

  /// Announces slot `slot` (i.e. tensor emit_order[slot]) as final; the
  /// owning bucket's allreduce launches at its last announcement.
  void notify_slot_ready(std::size_t slot) {
    scheduler_->notify_ready(slot);
  }

  /// Fires any bucket that never became ready, joins every outstanding
  /// reduction (rethrowing the first failure) and returns the reduced
  /// tensors in *tensor* order. Call once.
  TensorList<T> finish();

 private:
  void fire(std::size_t bucket_index, const Bucket& bucket);

  ProcessGroup& pg_;
  const std::vector<TensorList<T>>& rank_tensors_;
  std::vector<std::size_t> tensor_sizes_;
  std::vector<std::size_t> emit_order_;
  collective::Algorithm algorithm_;
  core::EvalContext ctx_;
  BucketedConfig config_;
  std::vector<std::uint64_t> seeds_;
  TensorList<T> combined_;
  std::optional<BucketScheduler> scheduler_;
};

}  // namespace fpna::comm
