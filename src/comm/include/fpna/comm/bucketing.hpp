#pragma once
// Gradient bucketing (DDP-style): a training step produces many small
// gradient tensors, and reducing each one separately pays per-collective
// latency while reducing all of them at once forfeits overlap with the
// still-running backward pass. BucketAssigner packs an ordered list of
// named tensors into capacity-capped flat buckets - the unit at which
// bucketed_allreduce launches collectives and overlaps them with gradient
// production.
//
// Packing is greedy and contiguous in tensor order: a bucket closes when
// the next tensor would push it past the cap. A single tensor larger than
// the cap still ships (alone in its own bucket - capacity caps batching,
// it never drops data), and zero-element tensors ride along in whatever
// bucket is open. The assignment is a pure function of (sizes, cap), so
// every rank computes identical buckets without communication.

#include <cstddef>
#include <span>
#include <vector>

namespace fpna::comm {

/// A contiguous run of tensors reduced as one flat buffer.
struct Bucket {
  std::size_t first_tensor = 0;
  std::size_t tensor_count = 0;
  /// Flat element count of the bucket (sum of member tensor sizes).
  std::size_t elements = 0;
};

class BucketAssigner {
 public:
  /// Throws std::invalid_argument on cap_elements == 0.
  explicit BucketAssigner(std::size_t cap_elements);

  std::size_t cap_elements() const noexcept { return cap_elements_; }

  /// Packs `tensor_sizes` (element counts, in tensor order) into buckets.
  /// Every tensor lands in exactly one bucket; buckets partition the index
  /// range [0, tensor_sizes.size()) contiguously. Empty input gives no
  /// buckets.
  std::vector<Bucket> assign(std::span<const std::size_t> tensor_sizes) const;

 private:
  std::size_t cap_elements_;
};

}  // namespace fpna::comm
