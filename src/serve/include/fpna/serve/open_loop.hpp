#pragma once
// Open-loop traffic for the serving bench: a deterministic seeded
// Poisson-ish arrival process (exponential interarrival gaps), a
// real-time driver that submits it against a live InferenceServer, and a
// virtual-time discrete-event projection of the same batching policy
// through sim's device cost model (millions of requests in milliseconds,
// no wall clock involved - the "at scale" columns of bench/serve_latency).
//
// Open-loop means arrivals never wait for completions: the submit clock
// runs on its own schedule, so an overloaded server builds queue depth
// (and the admission queue's backpressure blocks the submitter) instead
// of the load generator silently slowing down - the standard honest way
// to measure tail latency.

#include <cstdint>
#include <vector>

#include "fpna/serve/server.hpp"
#include "fpna/sim/device_profile.hpp"

namespace fpna::serve {

/// Interarrival gaps of a Poisson process with the given rate, drawn
/// from a seeded generator: pure function of (rate, n, seed).
std::vector<std::uint64_t> exponential_interarrivals_ns(double rate_per_s,
                                                        std::size_t n,
                                                        std::uint64_t seed);

struct LatencySummary {
  std::size_t completed = 0;
  std::size_t failed = 0;
  double duration_s = 0.0;
  double throughput_rps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

struct OpenLoopResult {
  LatencySummary latency;
  /// Fingerprint over every completed output's bits in submission
  /// order - the batch-invariance witness the bench tables carry.
  std::uint64_t bits = 0;
};

/// Submits `requests` against the live server with the given gaps
/// between submissions (sleep-until pacing, immune to sleep drift) and
/// waits for every future. gaps_ns[i] is the gap *before* request i.
OpenLoopResult run_open_loop(InferenceServer& server,
                             const std::vector<Request>& requests,
                             const std::vector<std::uint64_t>& gaps_ns);

/// Analytic per-batch service time: dispatch_us + per_row_us * rows
/// (launch overhead amortises across the batch - the whole reason
/// batching buys throughput).
struct ServiceModel {
  double dispatch_us = 3.0;
  double per_row_us = 1.0;

  /// Derives the model from a device profile: dispatch = one kernel
  /// launch per layer pair, per-row = streaming the row's weights and
  /// activations (bytes_per_row) at the device's effective bandwidth.
  static ServiceModel from_profile(const sim::DeviceProfile& profile,
                                   double bytes_per_row);

  double batch_us(std::size_t rows) const noexcept {
    return dispatch_us + per_row_us * static_cast<double>(rows);
  }
};

/// Virtual-time discrete-event simulation of the server's batching
/// policy (dispatch at max_batch, or when the oldest staged request has
/// waited max_wait_us) under the seeded arrival process. Deterministic;
/// scales to 1e6+ requests.
LatencySummary simulate_open_loop(const ServiceModel& model,
                                  std::size_t max_batch, double max_wait_us,
                                  double rate_per_s, std::size_t num_requests,
                                  std::uint64_t seed);

}  // namespace fpna::serve
