#pragma once
// Named counters / gauges / timers for run-wide accounting. Counters are
// the hot-path type (comm traffic bytes, kernel invocations) and shard
// their state across lock-free per-thread-ish atomic slots so concurrent
// bucket firings never serialise on a metrics mutex; value() folds the
// shards at report time. Gauges and timers are read-mostly report types.
//
// One registry owns its metrics for the lifetime of the registry; name
// lookup (the only mutex) happens once per call site in the usual
// cache-the-reference idiom, not per increment. comm::TrafficLedger is a
// thin per-rank view over exactly these counters - one counting
// mechanism for the whole tree - and the bench JSON emitter turns
// snapshot() into a table so metrics ride the existing CI artifact flow.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fpna::obs {

/// Monotonic (reset-able) event/byte count. add() is wait-free on the
/// fast path: each caller lands on one of kShards cache-line-padded
/// atomic slots keyed by its thread, so unrelated threads never contend.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::uint64_t delta) noexcept {
    shards_[shard_index()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t shard_index() noexcept;
  friend class Histogram;  // shares the per-thread shard slot

  Shard shards_[kShards];
};

/// Last-write-wins scalar (queue depths, calibration factors).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration distribution: count / total / min / max in nanoseconds.
/// record_ns is lock-free (CAS loops only on the min/max extremes).
class TimerStat {
 public:
  void record_ns(std::uint64_t ns) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t min_ns() const noexcept;
  std::uint64_t max_ns() const noexcept {
    return max_ns_.load(std::memory_order_relaxed);
  }
  double mean_us() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(total_ns()) * 1e-3 /
                              static_cast<double>(n);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Fixed-bucket log2 latency histogram: value v lands in bucket
/// bit_width(v) (0; [1,2); [2,4); ... [2^62, 2^63); [2^63, 2^64)), so
/// recording is two instructions plus one sharded relaxed increment -
/// the same wait-free sharding as Counter, safe on the serving hot path.
/// Percentiles are estimated by linear interpolation inside the covering
/// bucket; with log2 buckets the estimate is within 2x of the true value
/// (exact bucket counts, approximate quantiles - the standard trade for
/// a lock-free fixed-footprint histogram).
class Histogram {
 public:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64: 0..64

  void record(std::uint64_t value) noexcept;

  std::uint64_t count() const noexcept;
  /// Per-bucket totals folded across shards.
  std::array<std::uint64_t, kBuckets> bucket_counts() const noexcept;
  /// Estimated p-quantile (p in [0, 1]) of the recorded values; 0 when
  /// empty. percentile(0) / percentile(1) clamp to the extreme buckets.
  double percentile(double p) const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
  };

  Shard shards_[kShards];
};

/// One row of Metrics::snapshot(), pre-stringified for tables/JSON.
struct MetricRow {
  std::string name;
  std::string type;   // "counter" | "gauge" | "timer" | "histogram"
  std::string value;  // counter count, gauge value, timer mean us,
                      // histogram "p50=../p95=../p99=.."
  std::string count;  // timer/histogram sample count ("" otherwise)
};

/// The registry. Metric objects live as long as the registry and their
/// addresses are stable, so call sites hold references across the run.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimerStat& timer(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// All metrics, sorted by (type, name) - a deterministic report order.
  std::vector<MetricRow> snapshot() const;

  /// Zeroes every counter (gauges and timers keep their last state; the
  /// comm ledger's reset_traffic() is the only caller that needs it).
  void reset_counters();

 private:
  template <typename T>
  T& named(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
           std::string_view name);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<TimerStat>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII wall-clock measurement into a TimerStat (nullptr: no-op). The
/// single ScopedTimer/now_ns() pair replaces the tree's ad-hoc
/// stopwatches (see clock.hpp).
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat* stat) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Nanoseconds elapsed so far (the destructor records the final value).
  std::uint64_t elapsed_ns() const noexcept;

 private:
  TimerStat* stat_;
  std::uint64_t start_ns_;
};

}  // namespace fpna::obs
