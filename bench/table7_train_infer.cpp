// Reproduces Table 7: Vermv and Vc of the GraphSAGE inference outputs for
// the four training x inference determinism combinations (D/D, D/ND,
// ND/D, ND/ND), each measured over a population of runs against the
// fully-deterministic pipeline's output. Also reports the modelled
// training runtimes (paper: 0.48 s deterministic vs 0.18 s
// non-deterministic for the 10-epoch Cora run) and the measured CPU
// wall-clock of this implementation.
//
// Flags: --runs --epochs --seed --full --csv

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/stats/descriptive.hpp"
#include "fpna/util/table.hpp"
#include "fpna/util/timer.hpp"

using namespace fpna;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto runs =
      static_cast<std::size_t>(cli.integer("runs", full ? 100 : 12));
  const int epochs = static_cast<int>(cli.integer("epochs", 10));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");

  const auto ds = dl::make_synthetic_citation_dataset(
      full ? dl::DatasetConfig::cora() : dl::DatasetConfig::small());

  util::banner(std::cout,
               "Table 7: Vermv and Vc for training x inference determinism "
               "combinations (" + std::to_string(runs) + " runs each, " +
                   std::to_string(ds.num_nodes()) + " nodes)");

  dl::TrainConfig base;
  base.epochs = epochs;
  base.hidden = 16;

  // Reference: fully deterministic pipeline.
  dl::TrainConfig ref_config = base;
  ref_config.deterministic = true;
  core::RunContext ref_run(seed, 0);
  const auto ref_train = dl::train(ds, ref_config, ref_run);
  const tensor::OpContext det_ctx;
  const dl::Matrix reference = dl::infer(ref_train.model, ds, det_ctx);

  const auto measure = [&](bool det_train, bool det_infer) {
    std::vector<double> vermvs, vcs;
    for (std::size_t r = 0; r < runs; ++r) {
      dl::TrainConfig config = base;
      config.deterministic = det_train;
      core::RunContext train_run(seed + 100, r);
      const auto trained = dl::train(ds, config, train_run);
      core::RunContext infer_run(seed + 200, r);
      tensor::OpContext ctx;
      if (!det_infer) ctx = tensor::nd_context(infer_run);
      const dl::Matrix out = dl::infer(trained.model, ds, ctx);
      vermvs.push_back(core::vermv(reference.data(), out.data()));
      vcs.push_back(core::vc(reference.data(), out.data()));
    }
    return std::pair{stats::summarize(vermvs), stats::summarize(vcs)};
  };

  util::Table table({"Training", "Inference", "Vermv/1e-6", "Vc"});
  const auto cell = [](const stats::Summary& s, double scale, int precision) {
    return util::fixed(s.mean / scale, precision) + "(" +
           util::fixed(s.stddev / scale, precision) + ")";
  };
  for (const auto& [dt, di, lt, li] :
       std::vector<std::tuple<bool, bool, const char*, const char*>>{
           {true, true, "D", "D"},
           {true, false, "D", "ND"},
           {false, true, "ND", "D"},
           {false, false, "ND", "ND"}}) {
    const auto [vermv_summary, vc_summary] = measure(dt, di);
    table.add_row({lt, li, cell(vermv_summary, 1e-6, 4),
                   cell(vc_summary, 1.0, 3)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Training runtimes: modelled GPU at paper (Cora) scale + measured CPU
  // wall-clock of this run's workload.
  const auto cora_ds =
      dl::make_synthetic_citation_dataset(dl::DatasetConfig::cora());
  const auto dims = dl::ModelDims::of(cora_ds, base.hidden);
  const auto h100 = sim::DeviceProfile::h100();
  std::cout << "\nmodelled GPU training time at Cora scale (" << epochs
            << " epochs): D "
            << util::fixed(dl::modeled_gpu_training_s(h100, dims, epochs, true),
                           2)
            << " s, ND "
            << util::fixed(
                   dl::modeled_gpu_training_s(h100, dims, epochs, false), 2)
            << " s\n";
  {
    core::RunContext run(seed + 300, 0);
    dl::TrainConfig config = base;
    config.deterministic = true;
    const util::Timer timer;
    dl::train(ds, config, run);
    std::cout << "measured CPU wall-clock for one training: "
              << util::fixed(timer.elapsed_seconds(), 2) << " s\n";
  }

  std::cout << "\nPaper reference (Table 7): D/D = 0(0); variability "
               "ordering ND/ND (5.08e-6) > ND/D (4.27e-6) > D/ND (2.63e-6) "
               "> D/D; training contributes more than inference, but "
               "inference is non-negligible. Training runtime 0.48 s (D) "
               "vs 0.18 s (ND).\n";
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
