// google-benchmark microbenchmarks for the summation kernels: the real
// wall-clock complement to the Table 4 cost model. Measures the serial,
// pairwise, compensated and reproducible sums plus the CPU reduction
// strategies across sizes.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/fp/summation.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/reduce/cpu_sum.hpp"

namespace {

const std::vector<double>& data_of_size(std::int64_t n) {
  static std::vector<std::vector<double>> cache;
  for (auto& v : cache) {
    if (static_cast<std::int64_t>(v.size()) == n) return v;
  }
  cache.push_back(
      fpna::bench::uniform_array(static_cast<std::size_t>(n), 0.0, 10.0, 42));
  return cache.back();
}

void BM_SumSerial(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(fpna::fp::sum_serial(v));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SumPairwise(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(fpna::fp::sum_pairwise(v, 32));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SumKahan(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(fpna::fp::sum_kahan(v));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SumNeumaier(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(fpna::fp::sum_neumaier(v));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SumDoubleDouble(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpna::fp::sum_double_double(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SumSuperaccumulator(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpna::fp::Superaccumulator::sum(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CpuSumChunkedDeterministic(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpna::reduce::cpu_sum_chunked_deterministic(v, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CpuSumUnordered(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  std::uint64_t run = 0;
  for (auto _ : state) {
    fpna::core::RunContext ctx(7, run++);
    benchmark::DoNotOptimize(fpna::reduce::cpu_sum_unordered(v, ctx, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CpuSumReproducible(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpna::reduce::cpu_sum_reproducible(v, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

constexpr std::int64_t kSmall = 1 << 12;
constexpr std::int64_t kLarge = 1 << 20;

}  // namespace

BENCHMARK(BM_SumSerial)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_SumPairwise)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_SumKahan)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_SumNeumaier)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_SumDoubleDouble)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_SumSuperaccumulator)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_CpuSumChunkedDeterministic)->Arg(kLarge);
BENCHMARK(BM_CpuSumUnordered)->Arg(kLarge);
BENCHMARK(BM_CpuSumReproducible)->Arg(kLarge);

BENCHMARK_MAIN();
