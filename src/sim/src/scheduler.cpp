#include "fpna/sim/scheduler.hpp"

#include <numeric>

#include "fpna/util/permutation.hpp"

namespace fpna::sim {

std::vector<std::size_t> Scheduler::commit_order(
    std::size_t n, SchedulerPolicy policy, util::Xoshiro256pp& rng) const {
  switch (policy) {
    case SchedulerPolicy::kUniformShuffle:
      return util::random_permutation(n, rng);

    case SchedulerPolicy::kWaveShuffle:
      // Sliding resident set: at most max_concurrent_blocks in flight, a
      // random resident block completes at each step (the physical grid
      // scheduler picture, long-range mixing with local admission order).
      return util::reservoir_permutation(n, profile_->max_concurrent_blocks,
                                         rng);

    case SchedulerPolicy::kContentionMixture: {
      // Same-address atomics serialise through one memory port; the order
      // in which retries win arbitration is bursty: stretches drain almost
      // in issue order, then a contention episode reorders aggressively.
      // We model this as a per-run mixture: each run draws a regime, and
      // the regime sets the shuffle window. Mixing regimes across runs
      // produces the heavy-tailed, visibly non-Gaussian variability the
      // paper reports for AO (Fig. 2).
      const double regime = util::canonical(rng);
      std::size_t window;
      if (regime < 0.45) {
        window = n < 1024 ? 4 : n / 1024;  // saturated: near-FIFO drain
      } else if (regime < 0.8) {
        window = n < 16 ? n : n / 16;  // moderate reordering
      } else {
        window = n;  // contention storm: fully scrambled
      }
      if (window < 2) window = 2;
      return util::wave_permutation(n, window, rng);
    }
  }
  // Unreachable for valid enum values.
  std::vector<std::size_t> identity(n);
  std::iota(identity.begin(), identity.end(), std::size_t{0});
  return identity;
}

}  // namespace fpna::sim
