#pragma once
// Execution context for tensor ops.
//
// A default-constructed OpContext runs the deterministic implementation.
// Supplying a RunContext opts into the non-deterministic (atomic-scatter)
// implementation, whose commit order is drawn from the run's generator
// under the given device profile's contention policy - unless the global
// DeterminismContext switch overrides it, exactly like
// torch.use_deterministic_algorithms does for CUDA kernels.

#include "fpna/core/run_context.hpp"
#include "fpna/sim/device_profile.hpp"
#include "fpna/tensor/determinism.hpp"

namespace fpna::tensor {

struct OpContext {
  /// Run identity for the non-deterministic path; nullptr selects the
  /// deterministic implementation.
  core::RunContext* run = nullptr;
  /// Device whose scheduler policy orders the atomic commits; nullptr
  /// selects the default (H100) profile.
  const sim::DeviceProfile* profile = nullptr;
  /// Scale factor on the race probability of plain *stores* (index_copy,
  /// scatter, non-accumulating index_put). Accumulations race whenever
  /// two requests overlap in flight, but a store's outcome flips only
  /// when the final two writes land essentially simultaneously - a far
  /// rarer coincidence. The default is calibrated so duplicate-index
  /// write ops land in the paper's Table 5 Vermv band (~1e-6) instead of
  /// flipping winners on most runs. Tests raise it to 1.0 to exercise the
  /// mechanics quickly.
  double store_race_scale = 1e-4;

  /// The profile actually in effect.
  const sim::DeviceProfile& effective_profile() const noexcept {
    return profile != nullptr ? *profile : default_profile();
  }

  /// True iff the op should take its non-deterministic path.
  bool nondeterministic() const noexcept {
    return run != nullptr && !DeterminismContext::deterministic();
  }

  static const sim::DeviceProfile& default_profile() noexcept {
    static const sim::DeviceProfile kDefault = sim::DeviceProfile::h100();
    return kDefault;
  }
};

/// Convenience: ND context on the default device.
inline OpContext nd_context(core::RunContext& run,
                            const sim::DeviceProfile* profile = nullptr) {
  OpContext ctx;
  ctx.run = &run;
  ctx.profile = profile;
  return ctx;
}

}  // namespace fpna::tensor
