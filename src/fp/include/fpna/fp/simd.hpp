#pragma once
// SIMD execution tier for the accumulation layer: runtime CPU-feature
// detection and the force-scalar override that makes both halves of every
// lane-blocked algorithm testable on any host.
//
// The contract (see LaneBlockedAccumulator in accumulator.hpp): for each
// (algorithm, L) there is exactly ONE reference re-association - lane l
// sums elements l, l+L, l+2L, ... and the lanes fold in ascending index
// order at finalize - implemented twice:
//
//   * a portable scalar lane-emulation (always compiled, runs anywhere),
//   * an intrinsics fast path (AVX2 / AVX-512, compiled into dedicated
//     translation units, selected by CPUID at run time),
//
// and the two are REQUIRED to be bitwise identical: the vector step
// performs the exact per-lane IEEE op sequence of the scalar algorithm,
// one lane per register slot, so `kahan@simd8` produces the same bits on
// every host whether or not the host has vector units. CI certifies the
// fast path against the emulation through FPNA_FORCE_SCALAR_SIMD and the
// microbench bit gates.
//
// This header is deliberately free of accumulator types: it is the
// support/override surface benches and tests program against. The
// dispatch into concrete kernels lives with the accumulators
// (accumulator.hpp + src/fp/src/simd*.cpp).

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace fpna::fp {

/// The valid ReductionSpec lane counts - the closed set the spec grammar
/// accepts and visit_lane_algorithm monomorphises. 1 is the scalar
/// algorithm itself; {4, 8, 16} are the register-shaped blockings
/// (AVX2 holds 4 f64 / 8 f32 per register, AVX-512 twice that).
inline constexpr std::array<std::size_t, 4> kSimdLaneCounts{1, 4, 8, 16};

constexpr bool simd_lane_count_supported(std::size_t lanes) noexcept {
  for (const std::size_t l : kSimdLaneCounts) {
    if (l == lanes) return true;
  }
  return false;
}

/// What the CPU offers (CPUID, queried once). All-false on non-x86.
struct SimdSupport {
  bool avx2 = false;
  bool avx512f = false;
};

/// Runtime CPU capabilities. Independent of the force-scalar override -
/// this reports what the host HAS, not what dispatch will USE.
const SimdSupport& simd_support() noexcept;

/// True when lane-blocked accumulators must take the scalar emulation
/// even where intrinsics exist. Resolution order: the programmatic
/// override (set_simd_force_scalar) if set, else the FPNA_FORCE_SCALAR_SIMD
/// environment variable (any value other than empty/"0" forces scalar,
/// read once), else false.
bool simd_force_scalar() noexcept;

/// Test hook: force (true) or re-allow (false) the intrinsics tier,
/// overriding the environment; nullopt restores the environment-derived
/// default. Tests flip this to certify intrinsics bits == emulation bits
/// in one process.
void set_simd_force_scalar(std::optional<bool> force) noexcept;

/// The tier dispatch selects for f64 lane kernels right now: "avx512f",
/// "avx2" or "scalar" (no support, or force-scalar in effect). Bench
/// tables print this so a JSON artifact records which tier produced its
/// timings.
const char* simd_active_isa() noexcept;

/// Element-wise in-place i64 add: dst[i] += src[i]. Vectorized where the
/// host allows (integer adds are exact, so the tiers are trivially
/// bitwise identical; the force-scalar override is still honoured for
/// symmetry). This is the Superaccumulator limb-merge primitive: the
/// PR 5 wire layout keeps the 68 limbs contiguous, so a state merge is
/// exactly this loop.
void simd_add_i64(std::int64_t* dst, const std::int64_t* src,
                  std::size_t n) noexcept;

}  // namespace fpna::fp
