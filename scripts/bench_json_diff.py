#!/usr/bin/env python3
"""CI determinism gate over two bench --json dumps.

Usage: bench_json_diff.py RUN1.json RUN2.json

A bench emits {"bench": name, "tables": [{"name", "headers", "rows"}]}.
For every row whose reproducibility column ("reproducible" or
"run-to-run stable") reads "yes", the bit-pattern columns (headers
containing "bits" or "ulps") must be byte-identical across the two runs.
Timing columns are free to move. The gate fails (exit 1) on any drift,
on structural mismatch, or if no row was gated at all (a vacuous pass
would hide a bench that stopped emitting its reproducibility column).
"""

import json
import sys

REPRO_HEADERS = {"reproducible", "run-to-run stable"}


def bit_columns(headers):
    return [i for i, h in enumerate(headers) if "bits" in h or "ulps" in h]


def repro_column(headers):
    for i, h in enumerate(headers):
        if h in REPRO_HEADERS:
            return i
    return None


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    run_a = json.load(open(sys.argv[1]))
    run_b = json.load(open(sys.argv[2]))

    failures = []
    gated_rows = 0

    if run_a.get("bench") != run_b.get("bench"):
        failures.append("bench names differ: %r vs %r"
                        % (run_a.get("bench"), run_b.get("bench")))

    tables_a, tables_b = run_a.get("tables", []), run_b.get("tables", [])
    if len(tables_a) != len(tables_b):
        failures.append("table counts differ: %d vs %d"
                        % (len(tables_a), len(tables_b)))

    for ta, tb in zip(tables_a, tables_b):
        name = ta.get("name", "?")
        if ta.get("headers") != tb.get("headers"):
            failures.append("table %r: headers differ" % name)
            continue
        headers = ta["headers"]
        repro = repro_column(headers)
        bits = bit_columns(headers)
        if not bits:
            # Nothing to compare: don't let such a table's rows satisfy
            # the anti-vacuous-pass count below (a bench whose gated
            # table stopped emitting its bit columns must still fail).
            continue
        rows_a, rows_b = ta.get("rows", []), tb.get("rows", [])
        if len(rows_a) != len(rows_b):
            failures.append("table %r: row counts differ: %d vs %d"
                            % (name, len(rows_a), len(rows_b)))
            continue
        for idx, (ra, rb) in enumerate(zip(rows_a, rows_b)):
            if repro is not None and ra[repro] != "yes":
                continue
            gated_rows += 1
            for col in bits:
                if ra[col] != rb[col]:
                    failures.append(
                        "table %r row %d (%s): column %r drifted: %r vs %r"
                        % (name, idx, " ".join(ra[:3]), headers[col],
                           ra[col], rb[col]))

    if gated_rows == 0:
        failures.append("no reproducible rows were gated - "
                        "did the bench stop emitting its columns?")

    if failures:
        print("bench_json_diff: FAIL (%d)" % len(failures))
        for failure in failures:
            print("  - " + failure)
        sys.exit(1)
    print("bench_json_diff: OK - %d reproducible rows bit-identical "
          "across runs (%s)" % (gated_rows, run_a.get("bench")))


if __name__ == "__main__":
    main()
