// Reproduces Figs. 4 and 5: count variability Vc (Fig 4) and tensor
// variability Vermv (Fig 5) as functions of the reduction ratio R for
// scatter_reduce(sum), scatter_reduce(mean) (1-d input of 2,000 elements)
// and index_add (100 x 100 input), with error bars (std over runs).
//
// Flags: --runs --seed --scatter-size --index-size --csv

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/stats/descriptive.hpp"
#include "fpna/tensor/indexed_ops.hpp"
#include "fpna/tensor/workload.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

struct Series {
  stats::Summary vc;
  stats::Summary vermv;
};

template <typename MakeDet, typename MakeNd>
Series measure(MakeDet&& make_det, MakeNd&& make_nd, std::size_t runs,
               std::uint64_t seed) {
  const tensor::TensorF det = make_det();
  std::vector<double> vcs, vermvs;
  for (std::size_t r = 0; r < runs; ++r) {
    core::RunContext run(seed, r);
    const auto ctx = tensor::nd_context(run);
    const tensor::TensorF out = make_nd(ctx);
    vcs.push_back(core::vc(det.data(), out.data()));
    vermvs.push_back(core::vermv(det.data(), out.data()));
  }
  return {stats::summarize(vcs), stats::summarize(vermvs)};
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto runs = static_cast<std::size_t>(cli.integer("runs", 60));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto scatter_size =
      static_cast<std::int64_t>(cli.integer("scatter-size", 2000));
  const auto index_size =
      static_cast<std::int64_t>(cli.integer("index-size", 100));
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Figs 4-5: Vc and Vermv vs reduction ratio (scatter_reduce "
               "on " + std::to_string(scatter_size) + " elements, index_add "
               "on " + std::to_string(index_size) + "x" +
                   std::to_string(index_size) + ")");

  util::Table table({"R", "Vc sr(sum)", "Vc sr(mean)", "Vc index_add",
                     "Vermv sr(sum) x1e-7", "Vermv sr(mean) x1e-7",
                     "Vermv index_add x1e-7"});

  for (const double ratio :
       {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    util::Xoshiro256pp rng(seed + static_cast<std::uint64_t>(ratio * 100));
    auto ws = tensor::make_scatter_workload<float>(scatter_size, ratio, rng);
    auto wi = tensor::make_index_add_workload<float>(index_size, ratio, rng);

    const Series sum_series = measure(
        [&] {
          return tensor::scatter_reduce(ws.self, 0, ws.index, ws.src,
                                        tensor::Reduce::kSum);
        },
        [&](const tensor::OpContext& ctx) {
          return tensor::scatter_reduce(ws.self, 0, ws.index, ws.src,
                                        tensor::Reduce::kSum, true, ctx);
        },
        runs, seed + 1);
    const Series mean_series = measure(
        [&] {
          return tensor::scatter_reduce(ws.self, 0, ws.index, ws.src,
                                        tensor::Reduce::kMean);
        },
        [&](const tensor::OpContext& ctx) {
          return tensor::scatter_reduce(ws.self, 0, ws.index, ws.src,
                                        tensor::Reduce::kMean, true, ctx);
        },
        runs, seed + 2);
    const Series ia_series = measure(
        [&] { return tensor::index_add(wi.self, 0, wi.index, wi.source); },
        [&](const tensor::OpContext& ctx) {
          return tensor::index_add(wi.self, 0, wi.index, wi.source, 1.0f, ctx);
        },
        runs, seed + 3);

    const auto cell = [](const stats::Summary& s, double scale) {
      return util::fixed(s.mean / scale, 4) + "(" +
             util::fixed(s.stddev / scale, 4) + ")";
    };
    table.add_row({util::fixed(ratio, 1), cell(sum_series.vc, 1.0),
                   cell(mean_series.vc, 1.0), cell(ia_series.vc, 1.0),
                   cell(sum_series.vermv, 1e-7), cell(mean_series.vermv, 1e-7),
                   cell(ia_series.vermv, 1e-7)});
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nPaper reference (Figs 4-5): scatter_reduce Vc roughly flat "
           "(0.005-0.01) with a jump at R = 1.0 (~0.10); index_add Vc "
           "grows ~linearly with R; Vermv shows the same trends at the "
           "1e-7 scale with inconsistent error bars.\n";
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
