#pragma once
// EvalContext: the one execution context every reduction layer takes.
//
// The seed grew five parallel context conventions - fp free functions with
// ad-hoc parameters, reduce's (RunContext&, num_threads) pairs, collective's
// optional RunContext*, tensor's OpContext and the dl trainer's config
// booleans. EvalContext subsumes them: it bundles
//
//   * run        - identity/entropy of one run of a non-deterministic
//                  kernel (nullptr selects the deterministic path);
//   * profile    - the simulated device whose scheduler policy orders
//                  asynchronous commits (nullptr: default H100);
//   * pool       - a shared thread pool for real-thread execution paths;
//   * accumulator- the fp::ReductionSpec (storage dtype x accumulate
//                  dtype x registry algorithm) every inner reduction
//                  routes through (default: native/native/serial, which
//                  reproduces the historic values bit for bit);
//   * deterministic_override - per-context override of the global
//                  DeterminismContext switch (unset: defer to the global);
//   * recorder   - nullable observability sink (obs::Recorder): trace
//                  spans, bit-provenance and metrics when attached,
//                  bit-identical no-ops when nullptr.
//
// tensor::OpContext is an alias of this type, so tensor ops and everything
// layered on them (dl) take the same context as reduce and collective.

#include <optional>

#include "fpna/core/determinism.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/fp/reduction_spec.hpp"
#include "fpna/sim/device_profile.hpp"

namespace fpna::util {
class ThreadPool;
}

namespace fpna::obs {
class Recorder;
}

namespace fpna::core {

struct EvalContext {
  /// Run identity for the non-deterministic path; nullptr selects the
  /// deterministic implementation.
  RunContext* run = nullptr;
  /// Device whose scheduler policy orders the atomic commits; nullptr
  /// selects the default (H100) profile.
  const sim::DeviceProfile* profile = nullptr;
  /// Thread pool for real-thread execution (wall-clock measurement and
  /// genuine OS-scheduled variability); nullptr: simulated/serial paths.
  util::ThreadPool* pool = nullptr;
  /// The reduction every inner accumulation routes through: storage
  /// dtype x accumulate dtype x registry-selected algorithm. An
  /// fp::AlgorithmId converts implicitly (native dtypes), so historic
  /// `ctx.accumulator = AlgorithmId::kKahan` call sites keep compiling
  /// and keep their bits. Unset means "the kernel's historic default" -
  /// native/native/serial almost everywhere, but e.g. TPRC's host tail is
  /// historically vectorised - and is distinguishable from an explicit
  /// kSerial request, which always means serial. The default reproduces
  /// the seed's hand-rolled loops bitwise.
  std::optional<fp::ReductionSpec> accumulator{};
  /// Tri-state determinism override: unset defers to the process-wide
  /// DeterminismContext switch; set forces this context one way.
  std::optional<bool> deterministic_override{};
  /// Observability sink: trace spans, bit-provenance records and metrics
  /// flow here when set. nullptr (the default) is the certified-identical
  /// path - instrumented kernels do nothing beyond this null check, and
  /// tracing itself never touches the computed values, so a recorder can
  /// never move bits.
  obs::Recorder* recorder = nullptr;
  /// Scale factor on the race probability of plain *stores* (index_copy,
  /// scatter, non-accumulating index_put). Accumulations race whenever
  /// two requests overlap in flight, but a store's outcome flips only
  /// when the final two writes land essentially simultaneously - a far
  /// rarer coincidence. The default is calibrated so duplicate-index
  /// write ops land in the paper's Table 5 Vermv band (~1e-6) instead of
  /// flipping winners on most runs. Tests raise it to 1.0 to exercise the
  /// mechanics quickly.
  double store_race_scale = 1e-4;

  /// The profile actually in effect.
  const sim::DeviceProfile& effective_profile() const noexcept {
    return profile != nullptr ? *profile : default_profile();
  }

  /// The full reduction spec in effect for kernels whose historic
  /// default is the native serial fold (i.e. all of them except noted
  /// special cases, which consult the optional directly). Dtype-aware
  /// kernels dispatch on this via fp::visit_reduction.
  fp::ReductionSpec reduction_in_effect() const noexcept {
    return accumulator.value_or(fp::ReductionSpec{});
  }

  /// Deprecated shim for the pre-dtype scalar selector: the algorithm
  /// axis only, dtypes dropped. Prefer reduction_in_effect(); this
  /// remains for call sites that genuinely only branch on the algorithm
  /// (e.g. cumsum's binned-accumulator refusal).
  fp::AlgorithmId accumulator_in_effect() const noexcept {
    return reduction_in_effect().algorithm;
  }

  /// Whether deterministic implementations are required in this context
  /// (the override beats the global switch).
  bool deterministic_in_effect() const noexcept {
    return deterministic_override.value_or(DeterminismContext::deterministic());
  }

  /// True iff an op should take its non-deterministic path.
  bool nondeterministic() const noexcept {
    return run != nullptr && !deterministic_in_effect();
  }

  static const sim::DeviceProfile& default_profile() noexcept {
    static const sim::DeviceProfile kDefault = sim::DeviceProfile::h100();
    return kDefault;
  }

  /// Convenience: this context with a different registry-selected
  /// reduction (per-bucket selection in comm, per-row sweeps in bench).
  /// Takes the full spec; a bare fp::AlgorithmId converts implicitly.
  EvalContext with_accumulator(fp::ReductionSpec spec) const noexcept {
    EvalContext copy = *this;
    copy.accumulator = spec;
    return copy;
  }

  /// Convenience: this context running on `pool` (nullptr: serial). The
  /// pool-parallel kernel paths are bitwise identical to serial, so this
  /// swaps wall-clock behaviour only (thread sweeps in bench/tests).
  EvalContext with_pool(util::ThreadPool* p) const noexcept {
    EvalContext copy = *this;
    copy.pool = p;
    return copy;
  }

  /// Convenience: this context observed by `r` (nullptr detaches). Pure
  /// observation - identical bits with or without it.
  EvalContext with_recorder(obs::Recorder* r) const noexcept {
    EvalContext copy = *this;
    copy.recorder = r;
    return copy;
  }

  /// Convenience: a context committed to the non-deterministic path (the
  /// seed's reduce/collective entry points never consulted the global
  /// switch; their wrappers preserve that via this factory).
  static EvalContext nondeterministic_on(
      RunContext& run, const sim::DeviceProfile* profile = nullptr) noexcept {
    EvalContext ctx;
    ctx.run = &run;
    ctx.profile = profile;
    ctx.deterministic_override = false;
    return ctx;
  }
};

}  // namespace fpna::core
