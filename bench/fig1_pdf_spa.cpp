// Reproduces Fig. 1: probability density of the scalar variability Vs for
// SPA (non-deterministic) sums of FP64 numbers drawn from U(0,10) and
// N(0,1), using SPTR as the deterministic reference, on the V100 profile.
// Also runs the paper's SIII.C normality analysis (KL divergence against
// a fitted normal, plus KS and Jarque-Bera) on the collected samples.
//
// Paper scale is 100 arrays x 10000 runs of 1M elements; the default here
// is a reduced 8 arrays x 250 runs of 20k elements (--full restores the
// element count and raises the run count; --size/--arrays/--runs tune).
//
// Output: a gnuplot-ready "bin_center density" series per distribution
// plus the normality statistics.

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/reduce/gpu_sum.hpp"
#include "fpna/stats/histogram.hpp"
#include "fpna/stats/normality.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

struct PdfResult {
  std::vector<double> samples;
  stats::Summary summary;
  double kl = 0.0;
  stats::KsResult ks;
  stats::JarqueBeraResult jb;
};

PdfResult collect(sim::SimDevice& device, bool uniform, std::size_t size,
                  std::size_t arrays, std::size_t runs, std::uint64_t seed,
                  sim::SumMethod nd_method, std::size_t nt) {
  PdfResult result;
  for (std::size_t a = 0; a < arrays; ++a) {
    const auto data =
        uniform ? bench::uniform_array(size, 0.0, 10.0, seed + a)
                : bench::normal_array(size, 0.0, 1.0, seed + a);
    const auto d = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, sim::SumMethod::kSPTR, ctx, nt)
          .value;
    };
    const auto nd = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, nd_method, ctx, nt).value;
    };
    const auto report =
        core::measure_scalar_variability(d, nd, runs, seed + 1000 + a);
    result.samples.insert(result.samples.end(), report.vs_samples.begin(),
                          report.vs_samples.end());
  }
  result.summary = stats::summarize(result.samples);
  const auto hist = stats::Histogram::from_samples(result.samples, 30);
  result.kl = stats::kl_divergence_vs_normal(hist, result.summary.mean,
                                             result.summary.stddev);
  result.ks = stats::ks_test_normal(result.samples, result.summary.mean,
                                    result.summary.stddev);
  result.jb = stats::jarque_bera(result.samples);
  return result;
}

void print_distribution(const std::string& label, const PdfResult& r,
                        bool series) {
  std::cout << "\n--- " << label << " ---\n";
  std::cout << "samples: " << r.samples.size()
            << "  mean(Vs): " << util::sci(r.summary.mean, 3)
            << "  std(Vs): " << util::sci(r.summary.stddev, 3)
            << "  max|Vs|: "
            << util::sci(std::max(std::abs(r.summary.min),
                                  std::abs(r.summary.max)),
                         3)
            << "\n";
  std::cout << "normality: KL(hist || fitted normal) = " << r.kl
            << "  KS D = " << r.ks.statistic << " (p = " << r.ks.p_value
            << ")  JB = " << r.jb.statistic << " (p = " << r.jb.p_value
            << ")\n";
  if (series) {
    std::cout << "# PDF series (Vs x1e16, density):\n";
    const auto hist = stats::Histogram::from_samples(r.samples, 30);
    for (std::size_t b = 0; b < hist.bins(); ++b) {
      std::cout << hist.bin_center(b) * 1e16 << " " << hist.density(b)
                << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto size = static_cast<std::size_t>(
      cli.integer("size", full ? 1000000 : 65536));
  const auto arrays =
      static_cast<std::size_t>(cli.integer("arrays", full ? 20 : 8));
  const auto runs =
      static_cast<std::size_t>(cli.integer("runs", full ? 1000 : 250));
  const auto nt = static_cast<std::size_t>(cli.integer("nt", 16));
  const bool series = cli.flag("series", true);

  util::banner(std::cout,
               "Fig 1: PDF of Vs for SPA sums of " + std::to_string(size) +
                   " FP64 numbers (V100 profile, SPTR reference)");

  sim::SimDevice device(sim::DeviceProfile::v100());
  const auto uniform = collect(device, true, size, arrays, runs, seed,
                               sim::SumMethod::kSPA, nt);
  const auto normal = collect(device, false, size, arrays, runs, seed + 7777,
                              sim::SumMethod::kSPA, nt);

  print_distribution("x ~ U(0,10)", uniform, series);
  print_distribution("x ~ N(0,1)", normal, series);

  std::cout << "\nPaper reference (Fig 1, SIII.C): both PDFs converge to a "
               "normal distribution (low KL vs fitted normal); mean/std "
               "depend on the input distribution.\n";
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
