// Unit and property tests for fpna::comm: the process-group runtime, the
// gradient bucketing engine, the bucketed/sharded allreduce and the
// data-parallel trainer built on them. The reproducibility certifications
// here are the toolkit's distributed-training version of the paper's
// Table-style determinism columns.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "fpna/comm/bucket_scheduler.hpp"
#include "fpna/comm/bucketed_allreduce.hpp"
#include "fpna/comm/bucketing.hpp"
#include "fpna/comm/process_group.hpp"
#include "fpna/comm/schedule.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/dl/data_parallel.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/util/rng.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::comm {
namespace {

// ------------------------------------------------------- BucketAssigner --

TEST(BucketAssigner, RejectsZeroCapacity) {
  EXPECT_THROW(BucketAssigner(0), std::invalid_argument);
}

TEST(BucketAssigner, EmptyTensorListGivesNoBuckets) {
  EXPECT_TRUE(BucketAssigner(16).assign({}).empty());
}

TEST(BucketAssigner, PacksGreedilyUpToCapacity) {
  const std::vector<std::size_t> sizes{4, 4, 4, 4, 4};
  const auto buckets = BucketAssigner(8).assign(sizes);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].first_tensor, 0u);
  EXPECT_EQ(buckets[0].tensor_count, 2u);
  EXPECT_EQ(buckets[0].elements, 8u);
  EXPECT_EQ(buckets[1].first_tensor, 2u);
  EXPECT_EQ(buckets[1].tensor_count, 2u);
  EXPECT_EQ(buckets[2].first_tensor, 4u);
  EXPECT_EQ(buckets[2].tensor_count, 1u);
  EXPECT_EQ(buckets[2].elements, 4u);
}

TEST(BucketAssigner, OversizedTensorShipsAloneInItsOwnBucket) {
  const std::vector<std::size_t> sizes{2, 100, 2};
  const auto buckets = BucketAssigner(8).assign(sizes);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[1].first_tensor, 1u);
  EXPECT_EQ(buckets[1].tensor_count, 1u);
  EXPECT_EQ(buckets[1].elements, 100u);
  EXPECT_EQ(buckets[2].first_tensor, 2u);
}

TEST(BucketAssigner, PartitionsEveryTensorExactlyOnce) {
  const std::vector<std::size_t> sizes{7, 1, 0, 13, 5, 29, 3, 0, 11};
  for (const std::size_t cap : {1u, 8u, 16u, 1000u}) {
    const auto buckets = BucketAssigner(cap).assign(sizes);
    std::size_t next = 0;
    std::size_t elements = 0;
    for (const auto& bucket : buckets) {
      EXPECT_EQ(bucket.first_tensor, next);
      next += bucket.tensor_count;
      elements += bucket.elements;
    }
    EXPECT_EQ(next, sizes.size());
    EXPECT_EQ(elements,
              std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}));
  }
}

TEST(BucketAssigner, ZeroSizeTensorsRideAlong) {
  const std::vector<std::size_t> sizes{0, 0, 0};
  const auto buckets = BucketAssigner(4).assign(sizes);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].tensor_count, 3u);
  EXPECT_EQ(buckets[0].elements, 0u);
}

// --------------------------------------------------------- ProcessGroup --

collective::RankData random_rank_data(std::size_t ranks, std::size_t n,
                                      std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(-1e8, 1e8);
  collective::RankData data(ranks, std::vector<double>(n));
  for (auto& rank : data) {
    for (auto& x : rank) x = dist(rng);
  }
  return data;
}

TEST(ProcessGroup, SimValidatesRankCount) {
  EXPECT_THROW(SimProcessGroup(0), std::invalid_argument);
  SimProcessGroup pg(4);
  EXPECT_EQ(pg.size(), 4u);
  EXPECT_EQ(pg.local_contributions(), 4u);
  EXPECT_STREQ(pg.backend(), "sim");
  const core::EvalContext ctx;
  EXPECT_THROW(pg.allreduce(random_rank_data(3, 8, 1),
                            collective::Algorithm::kRing, ctx),
               std::invalid_argument);
}

TEST(ProcessGroup, SimDelegatesToCollectiveBitwise) {
  SimProcessGroup pg(5);
  const auto data = random_rank_data(5, 64, 3);
  const core::EvalContext ctx;
  const auto ring = pg.allreduce(data, collective::Algorithm::kRing, ctx);
  const auto expect = collective::allreduce_ring(data);
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(ring[i], expect[i]));
  }
}

TEST(ProcessGroup, ExactElementwiseMatchesReproducibleCollective) {
  const auto data = random_rank_data(7, 96, 5);
  const auto via_registry = exact_elementwise_allreduce(
      data, fp::AlgorithmId::kSuperaccumulator);
  const auto historic = collective::allreduce_reproducible(data);
  for (std::size_t i = 0; i < historic.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(via_registry[i], historic[i]));
  }
}

TEST(ProcessGroup, ReproducibleRejectsNonExactMergeAccumulator) {
  SimProcessGroup pg(3);
  const auto data = random_rank_data(3, 8, 7);
  core::EvalContext ctx;
  ctx.accumulator = fp::AlgorithmId::kKahan;
  EXPECT_THROW(
      pg.allreduce(data, collective::Algorithm::kReproducible, ctx),
      std::invalid_argument);
  // The exact-merge algorithms both carry the exchange.
  ctx.accumulator = fp::AlgorithmId::kBinned;
  EXPECT_NO_THROW(
      pg.allreduce(data, collective::Algorithm::kReproducible, ctx));
}

// ----------------------------------------------- CollectiveSchedule -----

void check_schedule_shape(const CollectiveSchedule& s, std::size_t ranks,
                          std::size_t n) {
  ASSERT_EQ(s.ranks(), ranks);
  ASSERT_EQ(s.elements(), n);
  // Shards partition [0, n).
  std::vector<char> covered(n, 0);
  for (const ShardRange& shard : s.shards()) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      EXPECT_FALSE(covered[i]);
      covered[i] = 1;
    }
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(covered[i]);
  // Messages: valid ranks/ranges, reduce phase first, steps ascending
  // within each phase.
  for (std::size_t m = 0; m < s.messages().size(); ++m) {
    const Message& msg = s.messages()[m];
    EXPECT_LT(msg.sender, ranks);
    EXPECT_LT(msg.receiver, ranks);
    EXPECT_NE(msg.sender, msg.receiver);
    EXPECT_LE(msg.range.begin, msg.range.end);
    EXPECT_LE(msg.range.end, n);
    EXPECT_FALSE(msg.range.empty());
    EXPECT_EQ(msg.reduce, m < s.reduce_message_count());
  }
}

TEST(CollectiveSchedule, RingAndButterflyShardsPartitionTheBuffer) {
  for (const std::size_t ranks : {1u, 2u, 3u, 4u, 6u, 7u, 8u, 16u}) {
    for (const std::size_t n : {0u, 1u, 5u, 64u, 257u}) {
      check_schedule_shape(CollectiveSchedule::ring(ranks, n), ranks, n);
      check_schedule_shape(CollectiveSchedule::butterfly(ranks, n), ranks, n);
    }
  }
}

TEST(CollectiveSchedule, PerRankTrafficIsLinearInElements) {
  // Both schedules move O(n) elements per rank; the allgather backend
  // moves (P-1)*n. The 3n bound is generous: ring sends 2n(P-1)/P < 2n,
  // butterfly about 2n (+n for a pre-folded extra).
  for (const std::size_t ranks : {2u, 4u, 7u, 8u, 32u}) {
    const std::size_t n = 1u << 14;
    for (const auto& s : {CollectiveSchedule::ring(ranks, n),
                          CollectiveSchedule::butterfly(ranks, n)}) {
      for (std::size_t r = 0; r < ranks; ++r) {
        EXPECT_LE(s.elements_sent(r), 3 * n)
            << to_string(s.path()) << " rank " << r << " of " << ranks;
      }
    }
  }
}

TEST(CollectiveSchedule, ForAlgorithmPairsEachAssociationWithItsPath) {
  const auto ring_s = CollectiveSchedule::for_algorithm(
      collective::Algorithm::kRing, WirePath::kButterfly, 4, 64);
  EXPECT_EQ(ring_s.path(), WirePath::kRing);  // ring bits need the ring
  const auto rd = CollectiveSchedule::for_algorithm(
      collective::Algorithm::kRecursiveDoubling, WirePath::kRing, 4, 64);
  EXPECT_EQ(rd.path(), WirePath::kButterfly);
  const auto repro = CollectiveSchedule::for_algorithm(
      collective::Algorithm::kReproducible, WirePath::kButterfly, 4, 64);
  EXPECT_EQ(repro.path(), WirePath::kButterfly);  // order-invariant: free
  EXPECT_THROW(CollectiveSchedule::for_algorithm(
                   collective::Algorithm::kArrivalTree, WirePath::kRing, 4,
                   64),
               std::invalid_argument);
  EXPECT_THROW(parse_wire_path("mesh"), std::invalid_argument);
  EXPECT_EQ(parse_wire_path("butterfly"), WirePath::kButterfly);
}

// --------------------------------------------------- wire == allgather --

template <typename T>
collective::RankDataT<T> mixed_magnitude_rank_data(std::size_t ranks,
                                                   std::size_t n,
                                                   std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(-1e8, 1e8);
  collective::RankDataT<T> data(ranks, std::vector<T>(n));
  for (auto& rank : data) {
    for (auto& x : rank) x = static_cast<T>(dist(rng));
  }
  return data;
}

TEST(WireSchedules, BitwiseEqualToAllgatherBackendForEveryAlgorithm) {
  // The tentpole certification: the ring and butterfly message schedules
  // reproduce the allgather backend's bits exactly - for the rounded
  // deterministic algorithms (whose association the schedule pins per
  // message) and the exact reproducible exchange (whose serialized
  // superaccumulator states make any schedule a no-op for the bits).
  const core::EvalContext ctx;
  for (const std::size_t ranks : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
    SimProcessGroup baseline(ranks, WirePath::kAllgather);
    for (const WirePath wire : {WirePath::kRing, WirePath::kButterfly}) {
      SimProcessGroup wired(ranks, wire);
      for (const std::size_t n : {1u, 5u, 63u, 257u}) {
        const auto data = mixed_magnitude_rank_data<double>(ranks, n, 7 * n);
        const auto dataf = mixed_magnitude_rank_data<float>(ranks, n, 7 * n);
        for (const auto algorithm :
             {collective::Algorithm::kRing,
              collective::Algorithm::kRecursiveDoubling,
              collective::Algorithm::kReproducible}) {
          const auto expect = baseline.allreduce(data, algorithm, ctx);
          const auto wired_bits = wired.allreduce(data, algorithm, ctx);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(fp::bitwise_equal(wired_bits[i], expect[i]))
                << to_string(wire) << " " << collective::to_string(algorithm)
                << " P=" << ranks << " n=" << n << " i=" << i;
          }
          const auto expect_f = baseline.allreduce(dataf, algorithm, ctx);
          const auto wired_f = wired.allreduce(dataf, algorithm, ctx);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(fp::bitwise_equal32(wired_f[i], expect_f[i]))
                << to_string(wire) << " " << collective::to_string(algorithm)
                << " P=" << ranks << " n=" << n << " i=" << i << " (f32)";
          }
        }
      }
    }
  }
}

TEST(WireSchedules, ReproducibleSpecRidesTheWireBitwise) {
  // The serialized-superaccumulator exchange honours the full
  // ReductionSpec: storage quantization and accumulate rounding happen at
  // the endpoints, the exact state travels the messages.
  const auto data = mixed_magnitude_rank_data<double>(5, 96, 11);
  for (const WirePath wire : {WirePath::kRing, WirePath::kButterfly}) {
    SimProcessGroup wired(5, wire);
    SimProcessGroup baseline(5, WirePath::kAllgather);
    for (const char* name :
         {"superaccumulator", "superaccumulator@bf16:f32",
          "superaccumulator@f32"}) {
      core::EvalContext ctx;
      ctx.accumulator = fp::parse_reduction_spec(name);
      const auto expect = baseline.allreduce(
          data, collective::Algorithm::kReproducible, ctx);
      const auto wired_bits = wired.allreduce(
          data, collective::Algorithm::kReproducible, ctx);
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_TRUE(fp::bitwise_equal(wired_bits[i], expect[i]))
            << to_string(wire) << " " << name;
      }
    }
  }
}

TEST(WireSchedules, ReproducibleWireRejectsUnserializableStates) {
  SimProcessGroup wired(3, WirePath::kRing);
  const auto data = mixed_magnitude_rank_data<double>(3, 8, 13);
  core::EvalContext ctx;
  // No exact merge at all: rejected on every wire.
  ctx.accumulator = fp::AlgorithmId::kKahan;
  EXPECT_THROW(
      wired.allreduce(data, collective::Algorithm::kReproducible, ctx),
      std::invalid_argument);
  // Exact merge but unbounded state (binned buffers its inputs): fine on
  // the allgather wire, rejected on a schedule wire.
  ctx.accumulator = fp::AlgorithmId::kBinned;
  EXPECT_THROW(
      wired.allreduce(data, collective::Algorithm::kReproducible, ctx),
      std::invalid_argument);
  SimProcessGroup baseline(3, WirePath::kAllgather);
  EXPECT_NO_THROW(
      baseline.allreduce(data, collective::Algorithm::kReproducible, ctx));
}

TEST(WireSchedules, ArrivalTreeFallsBackToAllgatherCombining) {
  // Arrival-order combining has no fixed wire plan; a scheduled group
  // runs it on the allgather backend with identical draws.
  SimProcessGroup wired(4, WirePath::kRing);
  SimProcessGroup baseline(4, WirePath::kAllgather);
  const auto data = mixed_magnitude_rank_data<double>(4, 64, 17);
  core::RunContext run_a(19, 0);
  core::RunContext run_b(19, 0);
  core::EvalContext ctx_a;
  ctx_a.run = &run_a;
  core::EvalContext ctx_b;
  ctx_b.run = &run_b;
  const auto a =
      wired.allreduce(data, collective::Algorithm::kArrivalTree, ctx_a);
  const auto b =
      baseline.allreduce(data, collective::Algorithm::kArrivalTree, ctx_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(a[i], b[i]));
  }
}

TEST(WireSchedules, MeasuredTrafficIsOofNPerRankVsAllgatherOofNP) {
  // The satellite assertion: the ring schedule *measures* O(n) bytes per
  // rank where the allgather backend measures O(n*P).
  const std::size_t ranks = 8;
  const std::size_t n = 1u << 14;
  const auto data = mixed_magnitude_rank_data<double>(ranks, n, 23);
  const core::EvalContext ctx;

  SimProcessGroup wired(ranks, WirePath::kRing);
  (void)wired.allreduce(data, collective::Algorithm::kRing, ctx);
  SimProcessGroup baseline(ranks, WirePath::kAllgather);
  (void)baseline.allreduce(data, collective::Algorithm::kRing, ctx);

  for (std::size_t r = 0; r < ranks; ++r) {
    const Traffic wire_traffic = wired.traffic(r);
    const Traffic allgather_traffic = baseline.traffic(r);
    // Ring: reduce-scatter + allgather move < 2n elements per rank.
    EXPECT_GT(wire_traffic.bytes_sent, 0u);
    EXPECT_LE(wire_traffic.bytes_sent, 2 * n * sizeof(double));
    // Allgather backend: (P-1) * n elements per rank.
    EXPECT_EQ(allgather_traffic.bytes_sent,
              (ranks - 1) * n * sizeof(double));
    EXPECT_GE(allgather_traffic.bytes_sent,
              3 * wire_traffic.bytes_sent);  // O(n*P) dwarfs O(n) at P=8
  }
  wired.reset_traffic();
  EXPECT_EQ(wired.traffic(0).bytes_sent, 0u);
  EXPECT_EQ(wired.total_traffic().messages, 0u);
}

// ------------------------------------------------------ BucketScheduler --

TEST(BucketScheduler, FiresEachBucketWhenItsLastTensorArrives) {
  const std::vector<std::size_t> sizes{4, 4, 4, 4, 2};  // cap 8: {0,1}{2,3}{4}
  std::vector<std::size_t> fired;
  BucketScheduler scheduler(
      sizes, 8,
      [&](std::size_t b, const Bucket& bucket) {
        EXPECT_GE(bucket.tensor_count, 1u);
        fired.push_back(b);
      },
      nullptr);
  ASSERT_EQ(scheduler.buckets().size(), 3u);
  // Reverse arrival (the backward-pass order for forward-ordered sizes).
  scheduler.notify_ready(4);
  EXPECT_EQ(fired, (std::vector<std::size_t>{2}));
  scheduler.notify_ready(3);
  EXPECT_TRUE(fired.size() == 1);  // bucket 1 waits for tensor 2
  scheduler.notify_ready(2);
  EXPECT_EQ(fired, (std::vector<std::size_t>{2, 1}));
  scheduler.notify_ready(0);
  scheduler.notify_ready(1);
  EXPECT_EQ(fired, (std::vector<std::size_t>{2, 1, 0}));
  scheduler.finish();
  EXPECT_EQ(fired.size(), 3u);  // finish() re-fires nothing
}

TEST(BucketScheduler, ValidatesNotificationsAndBackfillsOnFinish) {
  const std::vector<std::size_t> sizes{4, 4};
  std::vector<std::size_t> fired;
  {
    BucketScheduler scheduler(
        sizes, 4, [&](std::size_t b, const Bucket&) { fired.push_back(b); });
    EXPECT_THROW(scheduler.notify_ready(2), std::out_of_range);
    scheduler.notify_ready(0);
    EXPECT_THROW(scheduler.notify_ready(0), std::logic_error);
    // Tensor 1 never announced: finish() still reduces its bucket.
    scheduler.finish();
  }
  EXPECT_EQ(fired, (std::vector<std::size_t>{0, 1}));
}

TEST(BucketScheduler, PoolFiringJoinsAndRethrows) {
  util::ThreadPool pool(2);
  const std::vector<std::size_t> sizes{1, 1, 1};
  BucketScheduler scheduler(
      sizes, 1,
      [&](std::size_t b, const Bucket&) {
        if (b == 1) throw std::runtime_error("bucket 1 failed");
      },
      &pool);
  scheduler.notify_ready(0);
  scheduler.notify_ready(1);
  scheduler.notify_ready(2);
  EXPECT_THROW(scheduler.finish(), std::runtime_error);
  scheduler.finish();  // idempotent after the error was observed
}

// -------------------------------------------- OverlappedBucketAllreduce --

TEST(OverlappedBucketAllreduce, MissedEmissionThrowsInsteadOfCorrupting) {
  // finish() backfills never-notified buckets; if a tensor's emission
  // never landed its data, the fire must diagnose the short buffer (a
  // std::logic_error) rather than reduce past its end.
  SimProcessGroup pg(2);
  const std::vector<std::size_t> tensor_sizes{8, 8};
  const std::vector<std::size_t> emit_order{1, 0};
  std::vector<TensorList<double>> rank_tensors(2, TensorList<double>(2));
  for (auto& rank : rank_tensors) rank[1].assign(8, 1.0);  // tensor 0 missing
  const core::EvalContext ctx;
  OverlappedBucketAllreduce<double> reducer(
      pg, rank_tensors, tensor_sizes, emit_order,
      collective::Algorithm::kReproducible, ctx,
      BucketedConfig{.bucket_cap_elements = 8});
  reducer.notify_slot_ready(0);  // tensor 1's bucket: fine
  EXPECT_THROW(reducer.finish(), std::logic_error);

  // Fully-fed runs reduce every tensor (values = rank count here).
  for (auto& rank : rank_tensors) rank[0].assign(8, 2.0);
  OverlappedBucketAllreduce<double> ok(
      pg, rank_tensors, tensor_sizes, emit_order,
      collective::Algorithm::kReproducible, ctx,
      BucketedConfig{.bucket_cap_elements = 8});
  const auto combined = ok.finish();  // backfill path, both buckets
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0], std::vector<double>(8, 4.0));
  EXPECT_EQ(combined[1], std::vector<double>(8, 2.0));
}

TEST(OverlappedBucketAllreduce, ValidatesEmissionOrderAndRankCount) {
  SimProcessGroup pg(2);
  const std::vector<std::size_t> tensor_sizes{4, 4};
  std::vector<TensorList<double>> rank_tensors(2, TensorList<double>(2));
  const core::EvalContext ctx;
  const std::vector<std::size_t> repeated{0, 0};
  EXPECT_THROW(OverlappedBucketAllreduce<double>(
                   pg, rank_tensors, tensor_sizes, repeated,
                   collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  const std::vector<std::size_t> order{1, 0};
  const std::vector<TensorList<double>> short_ranks(1,
                                                    TensorList<double>(2));
  EXPECT_THROW(OverlappedBucketAllreduce<double>(
                   pg, short_ranks, tensor_sizes, order,
                   collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  // Arrival tree needs a run identity at construction (seed pre-draws).
  EXPECT_THROW(OverlappedBucketAllreduce<double>(
                   pg, rank_tensors, tensor_sizes, order,
                   collective::Algorithm::kArrivalTree, ctx),
               std::invalid_argument);
}

// --------------------------------------------------- bucketed_allreduce --

std::vector<TensorList<double>> random_rank_tensors(
    std::size_t ranks, const std::vector<std::size_t>& sizes,
    std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(-1e8, 1e8);
  std::vector<TensorList<double>> tensors(ranks);
  for (auto& rank : tensors) {
    rank.resize(sizes.size());
    for (std::size_t t = 0; t < sizes.size(); ++t) {
      rank[t].resize(sizes[t]);
      for (auto& x : rank[t]) x = dist(rng);
    }
  }
  return tensors;
}

const std::vector<std::size_t> kSizes{130, 7, 0, 64, 33, 257, 1};

TEST(BucketedAllreduce, MatchesUnbucketedCollectivePerTensor) {
  // Recursive doubling pairs *ranks* independently of an element's
  // position in the buffer, and the reproducible exchange is
  // order-invariant outright: for both, any bucket cap gives the bits of
  // the whole-tensor collective. (Ring is position-dependent - covered by
  // RingBitsMoveWithBucketLayout below.)
  SimProcessGroup pg(4);
  const auto tensors = random_rank_tensors(4, kSizes, 11);
  const core::EvalContext ctx;
  for (const auto algorithm : {collective::Algorithm::kRecursiveDoubling,
                               collective::Algorithm::kReproducible}) {
    for (const std::size_t cap : {1u, 64u, 100000u}) {
      BucketedConfig config;
      config.bucket_cap_elements = cap;
      const auto reduced =
          bucketed_allreduce(pg, tensors, algorithm, ctx, config);
      ASSERT_EQ(reduced.size(), kSizes.size());
      for (std::size_t t = 0; t < kSizes.size(); ++t) {
        collective::RankData one(4);
        for (std::size_t r = 0; r < 4; ++r) one[r] = tensors[r][t];
        const auto expect = pg.allreduce(one, algorithm, ctx);
        ASSERT_EQ(reduced[t].size(), kSizes[t]);
        for (std::size_t i = 0; i < kSizes[t]; ++i) {
          EXPECT_TRUE(fp::bitwise_equal(reduced[t][i], expect[i]))
              << collective::to_string(algorithm) << " cap " << cap;
        }
      }
    }
  }
}

TEST(BucketedAllreduce, RingBitsMoveWithBucketLayout) {
  // The ring reduce-scatter walks chunk c starting at rank (c+1) % P, so
  // an element's combining order over ranks depends on its *offset in the
  // reduced buffer* - and therefore on the bucket cap. Re-bucketing a
  // gradient exchange re-rounds a ring allreduce: the DDP re-layout
  // hazard, absent from the reproducible path by construction.
  SimProcessGroup pg(4);
  const auto tensors = random_rank_tensors(4, kSizes, 11);
  const core::EvalContext ctx;
  const auto with_cap = [&](std::size_t cap) {
    BucketedConfig config;
    config.bucket_cap_elements = cap;
    return bucketed_allreduce(pg, tensors, collective::Algorithm::kRing,
                              ctx, config);
  };
  const auto narrow = with_cap(1);       // every tensor its own bucket
  const auto wide = with_cap(100000);    // one flat bucket
  // cap=1 buckets are single tensors: bitwise equal to the per-tensor
  // ring collective.
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    collective::RankData one(4);
    for (std::size_t r = 0; r < 4; ++r) one[r] = tensors[r][t];
    const auto expect = pg.allreduce(one, collective::Algorithm::kRing, ctx);
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      EXPECT_TRUE(fp::bitwise_equal(narrow[t][i], expect[i]));
    }
  }
  // The flat layout re-rounds somewhere.
  bool any_moved = false;
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      if (!fp::bitwise_equal(narrow[t][i], wide[t][i])) any_moved = true;
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(BucketedAllreduce, EmptyTensorListReturnsEmpty) {
  SimProcessGroup pg(3);
  const std::vector<TensorList<double>> tensors(3);
  const core::EvalContext ctx;
  EXPECT_TRUE(
      bucketed_allreduce(pg, tensors, collective::Algorithm::kRing, ctx)
          .empty());
}

TEST(BucketedAllreduce, ValidatesShapesAndRankCount) {
  SimProcessGroup pg(2);
  const core::EvalContext ctx;
  // Wrong number of rank lists.
  EXPECT_THROW(bucketed_allreduce(pg, random_rank_tensors(3, kSizes, 13),
                                  collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  // Mismatched tensor sizes across ranks.
  auto ragged = random_rank_tensors(2, kSizes, 13);
  ragged[1][0].pop_back();
  EXPECT_THROW(bucketed_allreduce(pg, ragged,
                                  collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  // Arrival tree needs a run identity.
  EXPECT_THROW(bucketed_allreduce(pg, random_rank_tensors(2, kSizes, 13),
                                  collective::Algorithm::kArrivalTree, ctx),
               std::invalid_argument);
}

TEST(BucketedAllreduce, OverlapChangesWallClockNotBits) {
  SimProcessGroup pg(6);
  const auto tensors = random_rank_tensors(6, kSizes, 17);
  util::ThreadPool pool(4);
  for (const auto algorithm : {collective::Algorithm::kRing,
                               collective::Algorithm::kArrivalTree,
                               collective::Algorithm::kReproducible}) {
    for (const std::size_t cap : {32u, 256u}) {
      const auto reduce_with = [&](bool overlap, std::uint64_t run_index) {
        core::RunContext run(23, run_index);
        core::EvalContext ctx;
        ctx.run = &run;
        ctx.pool = &pool;
        BucketedConfig config;
        config.bucket_cap_elements = cap;
        config.overlap = overlap;
        return bucketed_allreduce(pg, tensors, algorithm, ctx, config);
      };
      const auto inline_bits = reduce_with(false, 0);
      const auto overlapped = reduce_with(true, 0);
      for (std::size_t t = 0; t < kSizes.size(); ++t) {
        for (std::size_t i = 0; i < kSizes[t]; ++i) {
          EXPECT_TRUE(
              fp::bitwise_equal(inline_bits[t][i], overlapped[t][i]))
              << collective::to_string(algorithm) << " cap " << cap;
        }
      }
    }
  }
}

TEST(BucketedAllreduce, PerBucketContextHookSelectsAccumulators) {
  // Bucket 0 rides the superaccumulator exchange, bucket 1+ the binned
  // sum: both exact-merge, so both are arrival-invariant, and the hook
  // demonstrably reaches each bucket (binned and superaccumulator round
  // identically here, so equality with the unhooked run certifies the
  // plumbing rather than moving bits).
  SimProcessGroup pg(4);
  const auto tensors = random_rank_tensors(4, kSizes, 19);
  const core::EvalContext ctx;
  BucketedConfig config;
  config.bucket_cap_elements = 128;
  std::vector<std::size_t> hooked;
  config.context_hook = [&](std::size_t b, core::EvalContext& bctx) {
    hooked.push_back(b);
    bctx.accumulator = b == 0 ? fp::AlgorithmId::kSuperaccumulator
                              : fp::AlgorithmId::kBinned;
  };
  const auto reduced = bucketed_allreduce(
      pg, tensors, collective::Algorithm::kReproducible, ctx, config);
  EXPECT_GT(hooked.size(), 1u);
  const auto unhooked = bucketed_allreduce(
      pg, tensors, collective::Algorithm::kReproducible, ctx,
      BucketedConfig{.bucket_cap_elements = 128});
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      EXPECT_TRUE(fp::bitwise_equal(reduced[t][i], unhooked[t][i]));
    }
  }
}

// ------------------------------------------- sharded_bucketed_allreduce --

std::vector<TensorList<double>> ill_conditioned_samples(
    std::size_t samples, const std::vector<std::size_t>& sizes,
    std::uint64_t seed) {
  // Large magnitude spread with cancellation: every re-association of the
  // sample contributions is visible in the low-order bits.
  util::Xoshiro256pp rng(seed);
  std::vector<TensorList<double>> grads(samples);
  for (auto& sample : grads) {
    sample.resize(sizes.size());
    for (std::size_t t = 0; t < sizes.size(); ++t) {
      sample[t].resize(sizes[t]);
      for (auto& x : sample[t]) {
        const double mag =
            std::ldexp(1.0, static_cast<int>(rng() % 60) - 30);
        x = ((rng() & 1) ? mag : -mag) *
            (1.0 + static_cast<double>(rng() % 1000) * 1e-3);
      }
    }
  }
  return grads;
}

std::vector<std::size_t> owner_map(std::size_t samples, std::size_t ranks,
                                   std::uint64_t seed) {
  // Deliberately uneven: a seeded random assignment, so some ranks own
  // many samples and (for small sample counts) some own none.
  util::Xoshiro256pp rng(seed);
  std::vector<std::size_t> owner(samples);
  for (auto& r : owner) r = rng() % ranks;
  return owner;
}

TEST(ShardedBucketedAllreduce, ReproducibleBitsInvariantToEverything) {
  // The tentpole certification: identical bits for every (rank count,
  // bucket cap, arrival order, shard split) combination.
  const auto samples = ill_conditioned_samples(24, kSizes, 29);
  const core::EvalContext base_ctx;
  SimProcessGroup one(1);
  const std::vector<std::size_t> all_zero(24, 0);
  const auto reference = sharded_bucketed_allreduce(
      one, samples, all_zero, collective::Algorithm::kReproducible,
      base_ctx, {});
  for (const std::size_t ranks : {1u, 2u, 3u, 8u, 24u}) {
    SimProcessGroup pg(ranks);
    for (const std::size_t cap : {1u, 100u, 1u << 20}) {
      for (const std::uint64_t split_seed : {1u, 2u, 3u}) {
        for (const std::uint64_t run_index : {0u, 1u}) {
          core::RunContext run(31, run_index);
          core::EvalContext ctx;
          ctx.run = &run;
          const auto reduced = sharded_bucketed_allreduce(
              pg, samples, owner_map(24, ranks, split_seed),
              collective::Algorithm::kReproducible, ctx,
              BucketedConfig{.bucket_cap_elements = cap});
          for (std::size_t t = 0; t < kSizes.size(); ++t) {
            for (std::size_t i = 0; i < kSizes[t]; ++i) {
              EXPECT_TRUE(
                  fp::bitwise_equal(reduced[t][i], reference[t][i]))
                  << "ranks " << ranks << " cap " << cap << " split "
                  << split_seed << " run " << run_index;
            }
          }
        }
      }
    }
  }
}

TEST(ShardedBucketedAllreduce, ArrivalTreeMovesWithArrivalOrder) {
  const auto samples = ill_conditioned_samples(24, kSizes, 37);
  SimProcessGroup pg(8);
  const auto owner = owner_map(24, 8, 4);
  const auto kernel = [&](core::RunContext& run) {
    core::EvalContext ctx;
    ctx.run = &run;
    const auto reduced = sharded_bucketed_allreduce(
        pg, samples, owner, collective::Algorithm::kArrivalTree, ctx,
        BucketedConfig{.bucket_cap_elements = 64});
    std::vector<double> flat;
    for (const auto& tensor : reduced) {
      flat.insert(flat.end(), tensor.begin(), tensor.end());
    }
    return flat;
  };
  EXPECT_FALSE(core::certify_deterministic(kernel, 8, 41).deterministic);
}

TEST(ShardedBucketedAllreduce, RoundedAlgorithmsMoveWithShardSplit) {
  // The deterministic-but-rounded collectives commit to the shard
  // association: a different owner map generally lands on different bits
  // (the re-layout hazard the reproducible path removes).
  const auto samples = ill_conditioned_samples(24, kSizes, 43);
  SimProcessGroup pg(6);
  const core::EvalContext ctx;
  const auto a = sharded_bucketed_allreduce(
      pg, samples, owner_map(24, 6, 1), collective::Algorithm::kRing, ctx,
      {});
  const auto b = sharded_bucketed_allreduce(
      pg, samples, owner_map(24, 6, 2), collective::Algorithm::kRing, ctx,
      {});
  bool any_moved = false;
  for (std::size_t t = 0; t < kSizes.size(); ++t) {
    for (std::size_t i = 0; i < kSizes[t]; ++i) {
      if (!fp::bitwise_equal(a[t][i], b[t][i])) any_moved = true;
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(ShardedBucketedAllreduce, WireSchedulesMatchAllgatherForEverySpec) {
  // Schedule wires against the allgather baseline across rank count x
  // bucket cap x ReductionSpec: the rounded path (kahan@bf16:f32 local
  // folds feeding a ring collective) and the exact superaccumulator path
  // both land on identical bits whichever wire carries them.
  const auto samples = ill_conditioned_samples(16, kSizes, 51);
  for (const char* name :
       {"kahan@bf16:f32", "serial", "superaccumulator",
        "superaccumulator@bf16:f32"}) {
    const fp::ReductionSpec spec = fp::parse_reduction_spec(name);
    const auto algorithm = fp::traits_of(spec).exact_merge
                               ? collective::Algorithm::kReproducible
                               : collective::Algorithm::kRing;
    for (const std::size_t ranks : {2u, 3u, 8u}) {
      const auto owner = owner_map(16, ranks, 5);
      SimProcessGroup baseline(ranks, WirePath::kAllgather);
      for (const WirePath wire : {WirePath::kRing, WirePath::kButterfly}) {
        SimProcessGroup wired(ranks, wire);
        for (const std::size_t cap : {64u, 1u << 20}) {
          core::EvalContext ctx;
          ctx.accumulator = spec;
          const BucketedConfig config{.bucket_cap_elements = cap};
          const auto expect = sharded_bucketed_allreduce(
              baseline, samples, owner, algorithm, ctx, config);
          const auto got = sharded_bucketed_allreduce(
              wired, samples, owner, algorithm, ctx, config);
          for (std::size_t t = 0; t < kSizes.size(); ++t) {
            for (std::size_t i = 0; i < kSizes[t]; ++i) {
              ASSERT_TRUE(fp::bitwise_equal(got[t][i], expect[t][i]))
                  << name << " " << to_string(wire) << " P=" << ranks
                  << " cap=" << cap;
            }
          }
        }
      }
    }
  }
}

TEST(ShardedBucketedAllreduce, Validation) {
  SimProcessGroup pg(2);
  const core::EvalContext ctx;
  const auto samples = ill_conditioned_samples(4, {8}, 47);
  const std::vector<TensorList<double>> no_samples;
  EXPECT_THROW(sharded_bucketed_allreduce(pg, no_samples, {},
                                          collective::Algorithm::kRing, ctx),
               std::invalid_argument);
  const std::vector<std::size_t> short_owner(3, 0);
  EXPECT_THROW(
      sharded_bucketed_allreduce(pg, samples, short_owner,
                                 collective::Algorithm::kRing, ctx),
      std::invalid_argument);
  const std::vector<std::size_t> bad_owner{0, 1, 2, 0};
  EXPECT_THROW(
      sharded_bucketed_allreduce(pg, samples, bad_owner,
                                 collective::Algorithm::kRing, ctx),
      std::out_of_range);
}

}  // namespace
}  // namespace fpna::comm

// --------------------------------------------------- data-parallel dl --

namespace fpna::dl {
namespace {

DatasetConfig tiny_config() {
  auto config = DatasetConfig::small();
  config.num_nodes = 120;
  config.num_undirected_edges = 300;
  config.num_features = 32;
  config.words_per_node = 5;
  return config;
}

TEST(DataParallel, ShardMasksPartitionTrainingNodes) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  for (const auto split :
       {ShardSplit::kRoundRobin, ShardSplit::kContiguous}) {
    // 7 ranks over the training nodes: shards are uneven by construction.
    const auto masks = shard_train_mask(ds.train_mask, 7, split);
    ASSERT_EQ(masks.size(), 7u);
    std::size_t covered = 0;
    bool uneven = false;
    std::size_t first_count = 0;
    for (std::size_t r = 0; r < masks.size(); ++r) {
      std::size_t count = 0;
      for (std::size_t v = 0; v < ds.train_mask.size(); ++v) {
        EXPECT_TRUE(!masks[r][v] || ds.train_mask[v]);
        if (masks[r][v]) ++count;
      }
      if (r == 0) {
        first_count = count;
      } else if (count != first_count) {
        uneven = true;
      }
      covered += count;
    }
    EXPECT_EQ(covered, static_cast<std::size_t>(ds.train_count()));
    EXPECT_TRUE(uneven);  // 120 * 0.6 = 72 training nodes, 72 % 7 != 0
  }
}

TEST(DataParallel, SingleRankMatchesSerialTrainerBitwise) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  TrainConfig base;
  base.epochs = 4;
  base.hidden = 8;

  core::RunContext serial_run(53, 0);
  const auto serial = train(ds, base, serial_run);

  for (const auto algorithm : {collective::Algorithm::kReproducible,
                               collective::Algorithm::kRing}) {
    DataParallelConfig config;
    config.base = base;
    config.ranks = 1;
    config.algorithm = algorithm;
    core::RunContext run(53, 0);
    const auto parallel = train_data_parallel(ds, config, run);
    ASSERT_EQ(parallel.final_weights.size(), serial.final_weights.size());
    for (std::size_t i = 0; i < serial.final_weights.size(); ++i) {
      EXPECT_TRUE(fp::bitwise_equal(parallel.final_weights[i],
                                    serial.final_weights[i]))
          << collective::to_string(algorithm);
    }
    ASSERT_EQ(parallel.epoch_losses.size(), serial.epoch_losses.size());
    for (std::size_t e = 0; e < serial.epoch_losses.size(); ++e) {
      EXPECT_TRUE(fp::bitwise_equal(parallel.epoch_losses[e],
                                    serial.epoch_losses[e]));
    }
  }
}

TEST(DataParallel, ReproducibleTrainingIsRunToRunBitStable) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 3;
  config.base.hidden = 8;
  config.ranks = 5;
  config.bucket_cap_elements = 64;  // many buckets
  const auto kernel = [&](core::RunContext& run) {
    return train_data_parallel(ds, config, run).final_weights;
  };
  EXPECT_TRUE(core::certify_deterministic(kernel, 4, 59).deterministic);
}

TEST(DataParallel, ArrivalTreeTrainsUniqueModels) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 3;
  config.base.hidden = 8;
  config.ranks = 5;
  config.algorithm = collective::Algorithm::kArrivalTree;
  std::vector<std::vector<double>> weights;
  for (std::uint64_t r = 0; r < 6; ++r) {
    core::RunContext run(61, r);
    weights.push_back(train_data_parallel(ds, config, run).final_weights);
  }
  // Distributed analogue of the paper's SV.B: every run a unique model,
  // even though every rank's local computation is deterministic.
  EXPECT_EQ(core::count_unique_outputs(weights), weights.size());
}

TEST(DataParallel, OverlapDoesNotMoveTrainingBits) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  util::ThreadPool pool(4);
  DataParallelConfig config;
  config.base.epochs = 3;
  config.base.hidden = 8;
  config.ranks = 4;
  config.bucket_cap_elements = 64;
  core::RunContext run_a(67, 0);
  const auto inline_weights =
      train_data_parallel(ds, config, run_a).final_weights;
  config.overlap = true;
  config.pool = &pool;
  core::RunContext run_b(67, 0);
  const auto overlapped =
      train_data_parallel(ds, config, run_b).final_weights;
  ASSERT_EQ(inline_weights.size(), overlapped.size());
  for (std::size_t i = 0; i < inline_weights.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(inline_weights[i], overlapped[i]));
  }
}

TEST(DataParallel, BackwardOverlapBitwiseEqualsPackedInReproducibleMode) {
  // The tentpole training certification: firing buckets mid-backward
  // (reverse-order readiness, pool-overlapped reduction) produces the
  // exact bits of the PR 2 packed-gradient path in reproducible mode, at
  // every pool width - and for the dtype-quantized exchange too.
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig packed;
  packed.base.epochs = 3;
  packed.base.hidden = 8;
  packed.ranks = 4;
  packed.bucket_cap_elements = 64;  // several buckets
  packed.exchange = GradientExchange::kPacked;

  for (const char* comm_spec : {"", "superaccumulator@bf16:f32"}) {
    DataParallelConfig reference = packed;
    if (*comm_spec != '\0') {
      reference.comm_accumulator = fp::parse_reduction_spec(comm_spec);
    }
    core::RunContext packed_run(83, 0);
    const auto packed_weights =
        train_data_parallel(ds, reference, packed_run).final_weights;

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      util::ThreadPool pool(threads);
      DataParallelConfig overlap = reference;
      overlap.exchange = GradientExchange::kBucketOverlap;
      overlap.overlap = true;
      overlap.pool = &pool;
      core::RunContext run(83, 0);
      const auto weights =
          train_data_parallel(ds, overlap, run).final_weights;
      ASSERT_EQ(weights.size(), packed_weights.size());
      for (std::size_t i = 0; i < weights.size(); ++i) {
        ASSERT_TRUE(fp::bitwise_equal(weights[i], packed_weights[i]))
            << "threads " << threads << " spec '" << comm_spec << "'";
      }
    }
  }
}

TEST(DataParallel, BackwardOverlapIsRunToRunStableForDeterministicRing) {
  // The rounded ring commits to the emission-order bucket layout, so its
  // bits may differ from the packed path - but each layout is a pure
  // function of the configuration, certified bit-stable run to run.
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  util::ThreadPool pool(4);
  DataParallelConfig config;
  config.base.epochs = 3;
  config.base.hidden = 8;
  config.ranks = 5;
  config.bucket_cap_elements = 64;
  config.algorithm = collective::Algorithm::kRing;
  config.overlap = true;
  config.pool = &pool;
  const auto kernel = [&](core::RunContext& run) {
    return train_data_parallel(ds, config, run).final_weights;
  };
  EXPECT_TRUE(core::certify_deterministic(kernel, 4, 89).deterministic);
}

TEST(DataParallel, TrainingBitsInvariantToWireSchedule) {
  // Reproducible training over the allgather, ring and butterfly wires:
  // identical weights - the wire moves traffic, never bits.
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 2;
  config.base.hidden = 8;
  config.ranks = 4;
  config.bucket_cap_elements = 64;
  core::RunContext run_a(97, 0);
  const auto reference = train_data_parallel(ds, config, run_a).final_weights;
  for (const comm::WirePath wire :
       {comm::WirePath::kRing, comm::WirePath::kButterfly}) {
    config.wire = wire;
    core::RunContext run(97, 0);
    const auto weights = train_data_parallel(ds, config, run).final_weights;
    ASSERT_EQ(weights.size(), reference.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      EXPECT_TRUE(fp::bitwise_equal(weights[i], reference[i]))
          << comm::to_string(wire);
    }
  }
}

TEST(DataParallel, UnevenContiguousShardsStillCertify) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 2;
  config.base.hidden = 4;
  config.ranks = 7;  // 72 training nodes -> shards of 11 and 10
  config.split = ShardSplit::kContiguous;
  const auto kernel = [&](core::RunContext& run) {
    return train_data_parallel(ds, config, run).final_weights;
  };
  EXPECT_TRUE(core::certify_deterministic(kernel, 3, 71).deterministic);
}

TEST(DataParallel, Validation) {
  const auto ds = make_synthetic_citation_dataset(tiny_config());
  DataParallelConfig config;
  config.base.epochs = 0;
  core::RunContext run(73, 0);
  EXPECT_THROW(train_data_parallel(ds, config, run), std::invalid_argument);
  config.base.epochs = 1;
  config.ranks = 3;
  comm::SimProcessGroup mismatched(2);
  EXPECT_THROW(train_data_parallel(ds, config, run, mismatched),
               std::invalid_argument);
}

}  // namespace
}  // namespace fpna::dl
