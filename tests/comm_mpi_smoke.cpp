// ProcessGroup smoke test for the real MPI backend. Run under mpirun, e.g.
//
//   mpirun -np 4 ./build/tests/comm_mpi_smoke
//
// Every rank builds a rank-dependent local vector, allreduces it through
// the MpiProcessGroup with each deterministic algorithm, and checks the
// result bitwise against the locally recomputed full-data reference (every
// rank knows every rank's formula, so no second communication is needed
// for the check). Exits non-zero on any mismatch; rank 0 prints a summary.
//
// Built only with -DFPNA_HAVE_MPI=ON; exercised by the CI mpi job.

#include <cstdio>
#include <vector>

#include "fpna/comm/bucketed_allreduce.hpp"
#include "fpna/comm/process_group.hpp"
#include "fpna/fp/bits.hpp"

#include <mpi.h>

namespace {

std::vector<double> local_vector(std::size_t rank, std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mixed magnitudes so re-association would be visible.
    const double sign = ((rank + i) % 2 == 0) ? 1.0 : -1.0;
    v[i] = sign * (1.0 + static_cast<double>(rank * 131 + i)) *
           (i % 3 == 0 ? 1e8 : 1e-8);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  MPI_Init(&argc, &argv);
  int failures = 0;
  {
    using namespace fpna;
    comm::MpiProcessGroup pg;
    const std::size_t n = 4099;  // deliberately not a multiple of anything
    const collective::RankData local{local_vector(pg.rank(), n)};

    // The reference every rank can compute alone.
    collective::RankData everyone(pg.size());
    for (std::size_t r = 0; r < pg.size(); ++r) {
      everyone[r] = local_vector(r, n);
    }

    const core::EvalContext ctx;
    for (const auto algorithm : {collective::Algorithm::kRing,
                                 collective::Algorithm::kRecursiveDoubling,
                                 collective::Algorithm::kReproducible}) {
      const auto over_wire = pg.allreduce(local, algorithm, ctx);
      const auto expected =
          collective::allreduce(everyone, algorithm, ctx);
      for (std::size_t i = 0; i < n; ++i) {
        if (!fp::bitwise_equal(over_wire[i], expected[i])) {
          ++failures;
          std::fprintf(stderr,
                       "rank %zu: %s mismatch at %zu: %.17g != %.17g\n",
                       pg.rank(), collective::to_string(algorithm), i,
                       over_wire[i], expected[i]);
          break;
        }
      }
    }

    // Bucketed exchange over the wire: three gradient-shaped tensors.
    const std::vector<comm::TensorList<double>> rank_tensors{
        {std::vector<double>(local.front().begin(),
                             local.front().begin() + 1000),
         std::vector<double>(local.front().begin() + 1000,
                             local.front().begin() + 1003),
         std::vector<double>(local.front().begin() + 1003,
                             local.front().end())}};
    const auto reduced = comm::bucketed_allreduce(
        pg, rank_tensors, collective::Algorithm::kReproducible, ctx,
        comm::BucketedConfig{.bucket_cap_elements = 512});
    const auto whole = pg.allreduce(
        local, collective::Algorithm::kReproducible, ctx);
    std::size_t offset = 0;
    for (const auto& tensor : reduced) {
      for (const double x : tensor) {
        if (!fp::bitwise_equal(x, whole[offset++])) ++failures;
      }
    }

    int total_failures = failures;
    MPI_Allreduce(&failures, &total_failures, 1, MPI_INT, MPI_SUM,
                  MPI_COMM_WORLD);
    if (pg.rank() == 0) {
      std::printf("comm_mpi_smoke: %zu ranks, %d failures -> %s\n",
                  pg.size(), total_failures,
                  total_failures == 0 ? "OK" : "FAILED");
    }
    failures = total_failures;
  }
  MPI_Finalize();
  return failures == 0 ? 0 : 1;
}
