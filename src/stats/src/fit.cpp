#include "fpna/stats/fit.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace fpna::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("linear_fit: size mismatch");
  }
  if (x.size() < 2) {
    throw std::invalid_argument("linear_fit: need at least 2 points");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("linear_fit: degenerate x");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

PowerLawFit power_law_fit(std::span<const double> x,
                          std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("power_law_fit: size mismatch");
  }
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!(x[i] > 0.0) || !(y[i] > 0.0)) {
      throw std::invalid_argument("power_law_fit: need positive data");
    }
    lx.push_back(std::log(x[i]));
    ly.push_back(std::log(y[i]));
  }
  const LinearFit lin = linear_fit(lx, ly);

  PowerLawFit fit;
  fit.alpha = lin.slope;
  fit.beta = std::exp(lin.intercept);
  fit.r_squared = lin.r_squared;
  return fit;
}

}  // namespace fpna::stats
