#include "fpna/dl/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <utility>

#include "fpna/util/permutation.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::dl {

DatasetConfig DatasetConfig::small() {
  DatasetConfig c;
  c.num_nodes = 600;
  c.num_undirected_edges = 1200;
  c.num_features = 128;
  c.num_classes = 7;
  c.words_per_node = 6;
  return c;
}

DatasetConfig DatasetConfig::cora() { return DatasetConfig{}; }

std::int64_t Dataset::train_count() const noexcept {
  std::int64_t count = 0;
  for (const char m : train_mask) count += m;
  return count;
}

Dataset make_synthetic_citation_dataset(const DatasetConfig& config) {
  if (config.num_nodes < 2 || config.num_classes < 2 ||
      config.num_features < config.num_classes) {
    throw std::invalid_argument(
        "make_synthetic_citation_dataset: degenerate config");
  }

  util::Xoshiro256pp rng(config.seed);
  Dataset ds;
  ds.num_classes = config.num_classes;
  ds.graph.num_nodes = config.num_nodes;

  // Labels: round-robin-ish random assignment, every class non-empty.
  const util::UniformInt class_dist(0, config.num_classes - 1);
  ds.labels.resize(static_cast<std::size_t>(config.num_nodes));
  for (std::int64_t v = 0; v < config.num_nodes; ++v) {
    ds.labels[static_cast<std::size_t>(v)] =
        v < config.num_classes ? v : class_dist(rng);
  }

  // Vocabulary partition: class c owns the contiguous word range
  // [c*W/C, (c+1)*W/C); nodes draw ~80% of their words from their class
  // range, the rest anywhere (noise).
  const std::int64_t words_per_class =
      config.num_features / config.num_classes;
  ds.features = tensor::Tensor<float>(
      tensor::Shape{config.num_nodes, config.num_features}, 0.0f);
  const util::UniformInt any_word(0, config.num_features - 1);
  for (std::int64_t v = 0; v < config.num_nodes; ++v) {
    const std::int64_t c = ds.labels[static_cast<std::size_t>(v)];
    const std::int64_t lo = c * words_per_class;
    const util::UniformInt class_word(lo, lo + words_per_class - 1);
    std::set<std::int64_t> words;
    while (static_cast<std::int64_t>(words.size()) < config.words_per_node) {
      const bool in_class = util::canonical(rng) < 0.8;
      words.insert(in_class ? class_word(rng) : any_word(rng));
    }
    // Row-normalised indicators.
    const float value =
        1.0f / std::sqrt(static_cast<float>(config.words_per_node));
    for (const std::int64_t w : words) ds.features.at({v, w}) = value;
  }

  // Homophilous citation edges: draw endpoint u, then v from the same
  // class with probability intra_class_edge_prob, else uniformly. Bucket
  // nodes by class for the intra-class draws.
  std::vector<std::vector<std::int64_t>> by_class(
      static_cast<std::size_t>(config.num_classes));
  for (std::int64_t v = 0; v < config.num_nodes; ++v) {
    by_class[static_cast<std::size_t>(ds.labels[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  const util::UniformInt node_dist(0, config.num_nodes - 1);
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  std::int64_t added = 0;
  while (added < config.num_undirected_edges) {
    const std::int64_t u = node_dist(rng);
    std::int64_t v;
    if (util::canonical(rng) < config.intra_class_edge_prob) {
      const auto& bucket = by_class[static_cast<std::size_t>(
          ds.labels[static_cast<std::size_t>(u)])];
      const util::UniformInt pick(0,
                                  static_cast<std::int64_t>(bucket.size()) - 1);
      v = bucket[static_cast<std::size_t>(pick(rng))];
    } else {
      v = node_dist(rng);
    }
    if (u == v) continue;
    const auto key = std::minmax(u, v);
    if (!seen.insert({key.first, key.second}).second) continue;
    ds.graph.add_undirected_edge(u, v);
    ++added;
  }

  // Train mask: the first train_fraction of a seeded shuffle.
  std::vector<std::int64_t> order(static_cast<std::size_t>(config.num_nodes));
  for (std::int64_t v = 0; v < config.num_nodes; ++v) {
    order[static_cast<std::size_t>(v)] = v;
  }
  util::shuffle(order, rng);
  ds.train_mask.assign(static_cast<std::size_t>(config.num_nodes), 0);
  const auto train_count = static_cast<std::int64_t>(
      config.train_fraction * static_cast<double>(config.num_nodes));
  for (std::int64_t i = 0; i < train_count; ++i) {
    ds.train_mask[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
        1;
  }
  return ds;
}

}  // namespace fpna::dl
