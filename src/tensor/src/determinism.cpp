// DeterminismContext is header-only (inline statics); this translation
// unit exists so the library has a home for future out-of-line pieces and
// keeps one-object-per-header symmetry.
#include "fpna/tensor/determinism.hpp"
