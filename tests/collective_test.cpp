// Unit and property tests for fpna::collective: simulated MPI-style
// allreduce variants (the paper's SVI future-work direction) - ring,
// recursive doubling, arrival-order tree and the reproducible
// superaccumulator exchange.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fpna/collective/allreduce.hpp"
#include "fpna/core/chunking.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::collective {
namespace {

RankData random_rank_data(std::size_t ranks, std::size_t n,
                          std::uint64_t seed, double lo = -1e6,
                          double hi = 1e6) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(lo, hi);
  RankData data(ranks, std::vector<double>(n));
  for (auto& rank : data) {
    for (auto& x : rank) x = dist(rng);
  }
  return data;
}

TEST(Allreduce, ValidatesShapes) {
  EXPECT_THROW(validate(RankData{}), std::invalid_argument);
  RankData ragged{{1.0, 2.0}, {1.0}};
  EXPECT_THROW(validate(ragged), std::invalid_argument);
  EXPECT_THROW(allreduce_ring(ragged), std::invalid_argument);
}

TEST(Allreduce, SingleRankIsIdentity) {
  const RankData one{{1.5, -2.5, 3.0}};
  EXPECT_EQ(allreduce_ring(one), one[0]);
  EXPECT_EQ(allreduce_recursive_doubling(one), one[0]);
  EXPECT_EQ(allreduce_reproducible(one), one[0]);
}

TEST(Allreduce, AllVariantsAgreeOnExactData) {
  // Integer-valued contributions sum exactly: all algorithms must agree.
  RankData data(5, std::vector<double>(16));
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t i = 0; i < 16; ++i) {
      data[r][i] = static_cast<double>(r * 16 + i);
    }
  }
  const auto ring = allreduce_ring(data);
  const auto rd = allreduce_recursive_doubling(data);
  const auto repro = allreduce_reproducible(data);
  core::RunContext ctx(1, 0);
  const auto arrival = allreduce_arrival_tree(data, ctx);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(ring[i], repro[i]);
    EXPECT_EQ(rd[i], repro[i]);
    EXPECT_EQ(arrival[i], repro[i]);
  }
}

TEST(Allreduce, AllVariantsCloseToExactOnRandomData) {
  const auto data = random_rank_data(8, 64, 7);
  const auto repro = allreduce_reproducible(data);
  core::RunContext ctx(2, 0);
  for (const auto& result :
       {allreduce_ring(data), allreduce_recursive_doubling(data),
        allreduce_arrival_tree(data, ctx)}) {
    for (std::size_t i = 0; i < repro.size(); ++i) {
      EXPECT_NEAR(result[i], repro[i], std::fabs(repro[i]) * 1e-13 + 1e-9);
    }
  }
}

TEST(Allreduce, RingAndButterflyAreDeterministicButDiffer) {
  const auto data = random_rank_data(7, 256, 11);
  const auto ring_kernel = [&](core::RunContext&) {
    return allreduce_ring(data);
  };
  const auto rd_kernel = [&](core::RunContext&) {
    return allreduce_recursive_doubling(data);
  };
  EXPECT_TRUE(core::certify_deterministic(ring_kernel, 5, 3).deterministic);
  EXPECT_TRUE(core::certify_deterministic(rd_kernel, 5, 3).deterministic);
  // Different association => generally different bits somewhere (the MPI
  // algorithm-selection hazard).
  const auto ring = allreduce_ring(data);
  const auto rd = allreduce_recursive_doubling(data);
  EXPECT_GT(core::vc(ring, rd), 0.0);
}

TEST(Allreduce, ArrivalTreeIsNonDeterministic) {
  const auto data = random_rank_data(16, 512, 13);
  const auto kernel = [&](core::RunContext& ctx) {
    return allreduce_arrival_tree(data, ctx);
  };
  const auto cert = core::certify_deterministic(kernel, 10, 5);
  EXPECT_FALSE(cert.deterministic);
}

TEST(Allreduce, ReproducibleInvariantToArrivalAndPermutation) {
  auto data = random_rank_data(9, 128, 17);
  const auto reference = allreduce_reproducible(data);
  // Permuting the ranks must not change a single bit.
  std::rotate(data.begin(), data.begin() + 4, data.end());
  const auto rotated = allreduce_reproducible(data);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(fp::bitwise_equal(reference[i], rotated[i]));
  }
}

TEST(Allreduce, RecursiveDoublingHandlesNonPowerOfTwo) {
  for (const std::size_t ranks : {3u, 5u, 6u, 7u, 12u}) {
    const auto data = random_rank_data(ranks, 32, 19 + ranks);
    const auto result = allreduce_recursive_doubling(data);
    const auto exact = allreduce_reproducible(data);
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(result[i], exact[i], std::fabs(exact[i]) * 1e-13 + 1e-9);
    }
  }
}

// ------------------------------------------------------ distributed sum --

TEST(DistributedSum, ShardPartitionsEverything) {
  std::vector<double> data(103);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);
  const auto shards = shard(data, 7);
  ASSERT_EQ(shards.size(), 7u);
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  EXPECT_EQ(total, data.size());
  // Order preserved: concatenation reproduces the data.
  std::vector<double> cat;
  for (const auto& s : shards) cat.insert(cat.end(), s.begin(), s.end());
  EXPECT_EQ(cat, data);
}

TEST(DistributedSum, MatchesAlgorithms) {
  util::Xoshiro256pp rng(23);
  const util::UniformReal dist(-1.0, 1.0);
  std::vector<double> data(10000);
  for (auto& x : data) x = dist(rng);

  const double exact = fp::Superaccumulator::sum(data);
  EXPECT_EQ(distributed_sum(data, 8, Algorithm::kReproducible), exact);

  core::RunContext ctx(3, 0);
  for (const auto algorithm :
       {Algorithm::kRing, Algorithm::kRecursiveDoubling,
        Algorithm::kArrivalTree}) {
    const double value = distributed_sum(data, 8, algorithm, &ctx);
    EXPECT_NEAR(value, exact, std::fabs(exact) * 1e-12 + 1e-9)
        << to_string(algorithm);
  }
}

TEST(DistributedSum, ReproducibleInvariantToRankCount) {
  util::Xoshiro256pp rng(29);
  const util::UniformReal dist(-1e3, 1e3);
  std::vector<double> data(4321);
  for (auto& x : data) x = dist(rng);

  const double reference = distributed_sum(data, 1, Algorithm::kReproducible);
  for (const std::size_t ranks : {2u, 3u, 8u, 16u, 64u}) {
    EXPECT_TRUE(fp::bitwise_equal(
        distributed_sum(data, ranks, Algorithm::kReproducible), reference));
  }
  // The ring sum, by contrast, depends on the rank count (different
  // association).
  const double ring1 = distributed_sum(data, 2, Algorithm::kRing);
  const double ring2 = distributed_sum(data, 64, Algorithm::kRing);
  EXPECT_FALSE(fp::bitwise_equal(ring1, ring2));
}

TEST(DistributedSum, ArrivalTreeVariesAcrossRuns) {
  util::Xoshiro256pp rng(31);
  const util::UniformReal dist(-1e6, 1e6);
  std::vector<double> data(50000);
  for (auto& x : data) x = dist(rng);

  const auto kernel = [&](core::RunContext& ctx) {
    return distributed_sum(data, 16, Algorithm::kArrivalTree, &ctx);
  };
  EXPECT_FALSE(core::certify_deterministic_scalar(kernel, 20, 7).deterministic);
}

TEST(DistributedSum, Validation) {
  const std::vector<double> data{1.0};
  EXPECT_THROW(distributed_sum(data, 0, Algorithm::kRing),
               std::invalid_argument);
  EXPECT_THROW(distributed_sum(data, 2, Algorithm::kArrivalTree, nullptr),
               std::invalid_argument);
}

TEST(DistributedSum, MetadataHelpers) {
  EXPECT_TRUE(is_deterministic(Algorithm::kRing));
  EXPECT_TRUE(is_deterministic(Algorithm::kReproducible));
  EXPECT_FALSE(is_deterministic(Algorithm::kArrivalTree));
  EXPECT_STREQ(to_string(Algorithm::kRecursiveDoubling),
               "recursive-doubling");
}

// The collective wrappers delegate to core/chunking.hpp; these pins mean
// a change to the shared rules cannot silently move wire boundaries (and
// with them the certified bits of every schedule-based reduction).
TEST(Chunking, RingChunkIsTheCeilRuleAndShardSizesTheEvenRule) {
  for (const std::size_t total : {0u, 1u, 9u, 64u, 1000u}) {
    for (const std::size_t ranks : {1u, 2u, 3u, 8u, 41u}) {
      std::size_t shard_total = 0;
      const auto sizes = shard_sizes(total, ranks);
      ASSERT_EQ(sizes.size(), ranks);
      for (std::size_t r = 0; r < ranks; ++r) {
        EXPECT_EQ(ring_chunk(total, ranks, r),
                  core::ceil_chunk(total, ranks, r));
        EXPECT_EQ(sizes[r], core::even_chunk_size(total, ranks, r));
        shard_total += sizes[r];
      }
      EXPECT_EQ(shard_total, total);
    }
  }
  EXPECT_THROW(ring_chunk(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard_sizes(10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace fpna::collective
