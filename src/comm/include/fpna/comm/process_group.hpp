#pragma once
// ProcessGroup: the data-parallel process-group runtime (paper SVI: "in HPC
// and distributed settings there will also be inter-chip and inter-node
// communication, such as with MPI, leading to more runtime variation").
//
// A ProcessGroup is a handle on a P-rank job that can allreduce rank
// contributions with any of the collective algorithms. Two backends share
// one surface:
//
//   * SimProcessGroup - plays all P ranks in-process and delegates to the
//     collective::allreduce variants (ring, recursive doubling, arrival
//     tree, reproducible). The caller passes all P contributions.
//   * MpiProcessGroup (#ifdef FPNA_HAVE_MPI) - one OS process per rank on a
//     real cluster. The caller passes its single local contribution; the
//     backend allgathers the rank buffers (ordered by rank id) and runs the
//     *same* local combine as the simulation, so every rank observes
//     bitwise-identical results and the sim/MPI backends agree bit for bit
//     on identical inputs. (A bandwidth-optimal reduce-scatter pipeline is
//     follow-up work; this backend certifies semantics, not throughput.)
//
// The reproducible algorithm honours the EvalContext's registry-selected
// accumulator: any *exact-merge* algorithm (superaccumulator, binned) may
// carry the exchange, and the rounded result stays bitwise invariant to
// arrival order, rank count and sharding. Selecting a non-exact-merge
// accumulator for the reproducible path throws - a collective that cannot
// certify arrival-order invariance must not be labelled reproducible.

#include <cstddef>
#include <memory>
#include <vector>

#include "fpna/collective/allreduce.hpp"
#include "fpna/core/eval_context.hpp"
#include "fpna/fp/algorithm_id.hpp"

namespace fpna::comm {

/// Element-wise allreduce through an exact-merge registry accumulator: for
/// every element, each rank's value streams into one exact state, and the
/// single final rounding makes the result bitwise independent of rank
/// order, rank count and any merge tree. The spec's dtype axes apply too:
/// rank values are quantized to the storage dtype before entering the
/// exact state (bf16 gradients on the wire), and the state rounds to the
/// accumulate dtype - both elementwise, so the invariance argument is
/// unchanged. Throws std::invalid_argument when the spec's algorithm
/// lacks the exact_merge trait. A bare fp::AlgorithmId converts to the
/// native spec.
template <typename T>
std::vector<T> exact_elementwise_allreduce(
    const collective::RankDataT<T>& contributions,
    const fp::ReductionSpec& spec);

class ProcessGroup {
 public:
  virtual ~ProcessGroup() = default;

  /// World size P.
  virtual std::size_t size() const noexcept = 0;
  /// This participant's rank id (0 for the simulated backend, which plays
  /// every rank).
  virtual std::size_t rank() const noexcept = 0;
  /// Backend name for logs/tables: "sim" or "mpi".
  virtual const char* backend() const noexcept = 0;
  /// How many rank contributions the caller passes to allreduce(): the
  /// full P for the simulated backend, 1 (the local buffer) for MPI.
  virtual std::size_t local_contributions() const noexcept = 0;
  /// Whether allreduce() may be called concurrently from several threads.
  /// True for the stateless simulated backend; false for MPI, whose
  /// collectives must issue in the same order on every rank and whose
  /// library thread level is not negotiated for concurrent calls -
  /// bucketed_allreduce silently falls back to the inline schedule
  /// (identical bits, see bucketed_allreduce.hpp) when this is false.
  virtual bool supports_concurrent_allreduce() const noexcept = 0;

  /// Allreduce-sum of the rank contributions; every rank observes the
  /// returned vector. kArrivalTree draws its arrival orders from ctx.run
  /// (required for that algorithm only; on MPI every rank must construct
  /// its RunContext from the same seed to agree on the drawn orders).
  /// kReproducible routes through ctx.accumulator when set (exact-merge
  /// algorithms only); unset selects the superaccumulator exchange.
  virtual std::vector<double> allreduce(
      const collective::RankData& contributions,
      collective::Algorithm algorithm, const core::EvalContext& ctx,
      std::size_t block_elements = 1024) = 0;
  virtual std::vector<float> allreduce(
      const collective::RankDataF& contributions,
      collective::Algorithm algorithm, const core::EvalContext& ctx,
      std::size_t block_elements = 1024) = 0;
};

/// Simulated backend: all P ranks live in this process. Stateless between
/// calls and safe to use concurrently from thread-pool tasks as long as
/// each call carries its own RunContext (bucketed_allreduce does).
class SimProcessGroup final : public ProcessGroup {
 public:
  /// Throws std::invalid_argument on ranks == 0.
  explicit SimProcessGroup(std::size_t ranks);

  std::size_t size() const noexcept override { return ranks_; }
  std::size_t rank() const noexcept override { return 0; }
  const char* backend() const noexcept override { return "sim"; }
  std::size_t local_contributions() const noexcept override { return ranks_; }
  bool supports_concurrent_allreduce() const noexcept override {
    return true;
  }

  std::vector<double> allreduce(const collective::RankData& contributions,
                                collective::Algorithm algorithm,
                                const core::EvalContext& ctx,
                                std::size_t block_elements = 1024) override;
  std::vector<float> allreduce(const collective::RankDataF& contributions,
                               collective::Algorithm algorithm,
                               const core::EvalContext& ctx,
                               std::size_t block_elements = 1024) override;

 private:
  std::size_t ranks_;
};

/// Simulated P-rank group (the default backend everywhere the toolkit does
/// not run under mpirun).
std::unique_ptr<ProcessGroup> make_process_group(std::size_t ranks);

#ifdef FPNA_HAVE_MPI
/// Real MPI backend over MPI_COMM_WORLD. The caller owns MPI_Init /
/// MPI_Finalize; construction throws std::runtime_error when MPI is not
/// initialised. allreduce() takes exactly one contribution (this rank's
/// local buffer, equal length on every rank).
class MpiProcessGroup final : public ProcessGroup {
 public:
  MpiProcessGroup();

  std::size_t size() const noexcept override { return size_; }
  std::size_t rank() const noexcept override { return rank_; }
  const char* backend() const noexcept override { return "mpi"; }
  std::size_t local_contributions() const noexcept override { return 1; }
  bool supports_concurrent_allreduce() const noexcept override {
    return false;
  }

  std::vector<double> allreduce(const collective::RankData& contributions,
                                collective::Algorithm algorithm,
                                const core::EvalContext& ctx,
                                std::size_t block_elements = 1024) override;
  std::vector<float> allreduce(const collective::RankDataF& contributions,
                               collective::Algorithm algorithm,
                               const core::EvalContext& ctx,
                               std::size_t block_elements = 1024) override;

 private:
  std::size_t size_ = 0;
  std::size_t rank_ = 0;
};

std::unique_ptr<ProcessGroup> make_mpi_process_group();
#endif  // FPNA_HAVE_MPI

}  // namespace fpna::comm
