#pragma once
// Workload generators for the Table 5 / Figs. 3-5 experiments: random
// tensors and the reduction-ratio-parameterised index tensors the paper
// uses ("random integers drawn from a uniform distribution ... to mimic an
// arbitrary graph structure", SIV.A).

#include <cstdint>

#include "fpna/tensor/tensor.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::tensor {

template <typename T>
Tensor<T> random_uniform(Shape shape, double lo, double hi,
                         util::Xoshiro256pp& rng);

template <typename T>
Tensor<T> random_normal(Shape shape, double mean, double sigma,
                        util::Xoshiro256pp& rng);

/// `count` uniform indices in [0, out_size).
Tensor<std::int64_t> random_index(std::int64_t count, std::int64_t out_size,
                                  util::Xoshiro256pp& rng);

/// The paper's reduction ratio R = output dim size / source dim size.
/// Returns max(1, round(R * input_dim)).
std::int64_t output_dim_for_ratio(std::int64_t input_dim, double ratio);

/// scatter_reduce workload (paper: 1-d source of `input_dim` elements,
/// output of R*input_dim elements, uniform random index of source shape).
template <typename T>
struct ScatterWorkload {
  Tensor<T> self;
  Tensor<T> src;
  Tensor<std::int64_t> index;
};

template <typename T>
ScatterWorkload<T> make_scatter_workload(std::int64_t input_dim, double ratio,
                                         util::Xoshiro256pp& rng);

/// index_add workload (paper: 2-d square source input_dim x input_dim,
/// output (R*input_dim) x input_dim, index of length input_dim).
template <typename T>
struct IndexAddWorkload {
  Tensor<T> self;
  Tensor<T> source;
  Tensor<std::int64_t> index;
};

template <typename T>
IndexAddWorkload<T> make_index_add_workload(std::int64_t input_dim,
                                            double ratio,
                                            util::Xoshiro256pp& rng);

}  // namespace fpna::tensor
