#pragma once
// A small dense N-d tensor (row-major, owning), the substrate for the
// PyTorch-operation reproductions of paper SIV. Deliberately minimal: the
// experiments need shapes, flat storage, multi-dimensional indexing and
// bitwise comparison - not views, broadcasting or autograd.

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <type_traits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpna::tensor {

using Shape = std::vector<std::int64_t>;

inline std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= d;
  }
  return n;
}

inline std::string shape_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    out += std::to_string(shape[i]);
    if (i + 1 < shape.size()) out += ", ";
  }
  return out + "]";
}

template <typename T>
class Tensor {
 public:
  Tensor() : shape_{0}, strides_{1} {}

  explicit Tensor(Shape shape, T fill = T{})
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {
    compute_strides();
  }

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), T{}); }

  static Tensor full(Shape shape, T value) {
    return Tensor(std::move(shape), value);
  }

  static Tensor from_data(Shape shape, std::vector<T> data) {
    Tensor t;
    t.shape_ = std::move(shape);
    if (shape_numel(t.shape_) != static_cast<std::int64_t>(data.size())) {
      throw std::invalid_argument("Tensor::from_data: size mismatch: shape " +
                                  shape_string(t.shape_) + " vs " +
                                  std::to_string(data.size()) + " elements");
    }
    t.data_ = std::move(data);
    t.compute_strides();
    return t;
  }

  std::int64_t dim() const noexcept {
    return static_cast<std::int64_t>(shape_.size());
  }
  const Shape& shape() const noexcept { return shape_; }
  std::int64_t size(std::int64_t d) const { return shape_.at(check_dim(d)); }
  std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(data_.size());
  }
  const Shape& strides() const noexcept { return strides_; }
  std::int64_t stride(std::int64_t d) const {
    return strides_.at(check_dim(d));
  }

  std::span<T> data() noexcept { return {data_.data(), data_.size()}; }
  std::span<const T> data() const noexcept {
    return {data_.data(), data_.size()};
  }
  std::vector<T>& vec() noexcept { return data_; }
  const std::vector<T>& vec() const noexcept { return data_; }

  T& flat(std::int64_t i) { return data_.at(static_cast<std::size_t>(i)); }
  const T& flat(std::int64_t i) const {
    return data_.at(static_cast<std::size_t>(i));
  }

  /// Flat offset of a multi-dimensional index (bounds-checked).
  std::int64_t offset(std::span<const std::int64_t> idx) const {
    if (idx.size() != shape_.size()) {
      throw std::invalid_argument("Tensor: index rank mismatch");
    }
    std::int64_t off = 0;
    for (std::size_t d = 0; d < idx.size(); ++d) {
      if (idx[d] < 0 || idx[d] >= shape_[d]) {
        throw std::out_of_range("Tensor: index out of range at dim " +
                                std::to_string(d));
      }
      off += idx[d] * strides_[d];
    }
    return off;
  }

  T& at(std::initializer_list<std::int64_t> idx) {
    return data_[static_cast<std::size_t>(
        offset(std::span<const std::int64_t>(idx.begin(), idx.size())))];
  }
  const T& at(std::initializer_list<std::int64_t> idx) const {
    return data_[static_cast<std::size_t>(
        offset(std::span<const std::int64_t>(idx.begin(), idx.size())))];
  }

  bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  /// Bitwise equality, the reproducibility notion used throughout.
  bool bitwise_equal(const Tensor& other) const noexcept {
    if (!same_shape(other)) return false;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      if (!bits_equal(data_[i], other.data_[i])) return false;
    }
    return true;
  }

 private:
  static bool bits_equal(T a, T b) noexcept {
    if constexpr (std::is_floating_point_v<T>) {
      if constexpr (sizeof(T) == 8) {
        return std::bit_cast<std::uint64_t>(a) ==
               std::bit_cast<std::uint64_t>(b);
      } else {
        return std::bit_cast<std::uint32_t>(a) ==
               std::bit_cast<std::uint32_t>(b);
      }
    } else {
      return a == b;
    }
  }

  std::size_t check_dim(std::int64_t d) const {
    if (d < 0 || d >= dim()) {
      throw std::out_of_range("Tensor: dim " + std::to_string(d) +
                              " out of range for rank " + std::to_string(dim()));
    }
    return static_cast<std::size_t>(d);
  }

  void compute_strides() {
    strides_.assign(shape_.size(), 1);
    for (std::size_t d = shape_.size(); d-- > 1;) {
      strides_[d - 1] = strides_[d] * (shape_[d] == 0 ? 1 : shape_[d]);
    }
    if (shape_.empty()) strides_ = {};
  }

  Shape shape_;
  Shape strides_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;
using TensorD = Tensor<double>;
using TensorI = Tensor<std::int64_t>;

}  // namespace fpna::tensor
