#pragma once
// Synthetic citation-network dataset generator, the stand-in for Cora
// (paper SV.B: 2708 publications, 5429 citation links, 1433-dimensional
// bag-of-words features, 7 classes). Cora itself is a fixed external
// file; the experiments only need a graph with the same shape statistics
// and learnable class structure, so we generate one deterministically
// from a seed:
//
//  * each class owns a bias subset of the vocabulary; a node draws most
//    of its ~9 active words from its class subset (learnable features);
//  * edges are homophilous (mostly intra-class), mimicking citations;
//  * features are row-normalised bag-of-words indicators.

#include <cstdint>
#include <vector>

#include "fpna/dl/graph.hpp"
#include "fpna/tensor/tensor.hpp"

namespace fpna::dl {

struct DatasetConfig {
  std::int64_t num_nodes = 2708;
  std::int64_t num_undirected_edges = 5429;
  std::int64_t num_features = 1433;
  std::int64_t num_classes = 7;
  std::int64_t words_per_node = 9;       // Cora's mean active features
  double intra_class_edge_prob = 0.8;    // homophily strength
  double train_fraction = 0.6;
  std::uint64_t seed = 20240805;

  /// Reduced-size configuration for fast default runs on small hosts;
  /// same shape family, ~5% of the full work.
  static DatasetConfig small();
  /// The paper-scale Cora-like configuration.
  static DatasetConfig cora();
};

struct Dataset {
  Graph graph;
  tensor::Tensor<float> features;       // [num_nodes, num_features]
  std::vector<std::int64_t> labels;     // [num_nodes], in [0, num_classes)
  std::vector<char> train_mask;         // 1 = training node
  std::int64_t num_classes = 0;

  std::int64_t num_nodes() const noexcept { return graph.num_nodes; }
  std::int64_t num_features() const noexcept { return features.size(1); }
  std::int64_t train_count() const noexcept;
};

/// Deterministic pure function of the config (identical seeds give
/// bitwise-identical datasets - the experiments depend on this).
Dataset make_synthetic_citation_dataset(const DatasetConfig& config);

}  // namespace fpna::dl
