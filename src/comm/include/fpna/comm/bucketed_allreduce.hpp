#pragma once
// Bucketed, overlap-capable allreduce over lists of named-by-position
// tensors - the communication step of data-parallel training.
//
// bucketed_allreduce packs each rank's tensor list into the BucketAssigner
// buckets, allreduces every bucket through the ProcessGroup, and unpacks
// the reduced buckets back into per-tensor results. Per bucket it derives
// a fresh EvalContext:
//
//   * arrival-tree runs get a per-bucket RunContext whose seed is drawn
//     from ctx.run *in bucket order on the caller's thread*, so the drawn
//     arrival orders are a pure function of the run identity - bitwise
//     identical whether buckets reduce inline or overlapped on the pool;
//   * a user context_hook may retarget the accumulator (or any other
//     EvalContext field) per bucket - e.g. carry the embedding gradients
//     on the superaccumulator exchange while the dense bulk rides the
//     cheap serial path.
//
// With overlap enabled (and ctx.pool set), closed buckets reduce on the
// thread pool while the caller's thread keeps packing the remaining
// buckets - the DDP pattern of overlapping communication with gradient
// production. Overlap changes wall-clock, never bits (certified in
// comm_test).
//
// sharded_bucketed_allreduce is the multi-tensor generalisation of
// collective::distributed_sum: the reduction's *samples* (micro-batch
// gradient contributions) are assigned to ranks by an owner map, each rank
// folds its samples locally, and the partials meet in the collective. With
// kReproducible the local fold keeps exact per-element state, so the
// result is bitwise invariant to rank count, shard assignment, bucket cap
// and arrival order - the "MPI-safe" gradient reduction; with the rounded
// algorithms the local fold commits to its shard's association and the
// bits move with (P, owner map, algorithm).

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "fpna/collective/allreduce.hpp"
#include "fpna/comm/bucketing.hpp"
#include "fpna/comm/process_group.hpp"
#include "fpna/core/eval_context.hpp"

namespace fpna::comm {

/// One flat vector per tensor; tensors are identified by position.
template <typename T>
using TensorList = std::vector<std::vector<T>>;

struct BucketedConfig {
  std::size_t bucket_cap_elements = std::size_t{1} << 16;
  /// Reduce closed buckets on ctx.pool while later buckets pack. Requires
  /// ctx.pool; bitwise identical to the inline schedule by construction.
  bool overlap = false;
  /// Network block size of the arrival-tree collective.
  std::size_t block_elements = 1024;
  /// Per-bucket EvalContext adjustment (reduction-spec selection etc. -
  /// e.g. carry the embedding-gradient bucket at kahan@bf16:f32 while the
  /// dense bulk rides the native serial path). The hook runs once per
  /// bucket on a private copy of the caller's context; it must not
  /// install shared mutable state when overlap is on.
  std::function<void(std::size_t bucket_index, core::EvalContext&)>
      context_hook{};
};

/// Allreduce-sum of per-rank tensor lists. `rank_tensors` holds
/// pg.local_contributions() entries (all P for the sim backend, this
/// rank's list under MPI); every entry must agree on tensor count and
/// sizes. Returns the reduced tensors every rank observes. ctx.run is
/// required for (and only consumed by) kArrivalTree.
template <typename T>
TensorList<T> bucketed_allreduce(ProcessGroup& pg,
                                 const std::vector<TensorList<T>>& rank_tensors,
                                 collective::Algorithm algorithm,
                                 const core::EvalContext& ctx,
                                 const BucketedConfig& config = {});

/// Sharded reduction of `samples[s]` (each a full TensorList contribution)
/// assigned to ranks by `owner[s]` in [0, pg.size()). Simulated backend
/// only (exact-state exchange over a real wire is follow-up work). See the
/// header comment for the reproducibility contract.
template <typename T>
TensorList<T> sharded_bucketed_allreduce(
    ProcessGroup& pg, const std::vector<TensorList<T>>& samples,
    std::span<const std::size_t> owner, collective::Algorithm algorithm,
    const core::EvalContext& ctx, const BucketedConfig& config = {});

}  // namespace fpna::comm
