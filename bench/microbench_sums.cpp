// ISSUE 6 tentpole bench: SIMD lane-blocked summation. A plain-main
// harness (was google-benchmark; rewritten so the CI determinism gate
// can diff its --json dump like microbench_matmul's).
//
// Three tables:
//   1. lanes sweep    - the streaming accumulators with a SIMD fast path
//                       (serial, kahan, neumaier, klein, pairwise) at
//                       lanes 1/4/8/16. Each row times the intrinsics
//                       dispatch AND the forced scalar lane-emulation
//                       (FPNA_FORCE_SCALAR_SIMD's programmatic twin) and
//                       fingerprints both results: the two bits columns
//                       must be IDENTICAL - one reference re-association
//                       per (algorithm, lanes), certified to the bit on
//                       every host - and the bench exits non-zero if any
//                       row disagrees. Speedup vs the lanes=1 base is
//                       free to move with the host (the acceptance bar
//                       on an AVX2 machine: >= 2x for serial@simd4 and
//                       kahan@simd4 at n >= 1M).
//   2. registry sweep - every AlgorithmRegistry entry at lanes 1 and 8
//                       through the @simd<L> spec grammar. Entries with
//                       no intrinsics kernel (superaccumulator, exact
//                       merge, ...) run the lane-emulation - every name
//                       works on every host, bits stable either way.
//   3. cpu_sum strategies - the unified reduce::cpu_sum entry point:
//                       chunked-deterministic (scalar and @simd8 specs),
//                       reproducible, and the opt-in unordered baseline.
//
// Flags: --size (elements, default 1<<20), --reps, --seed, --csv,
//        --json=<path> (see scripts/bench_json_diff.py)

#include <algorithm>
#include <bit>
#include <cstdint>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fpna/core/eval_context.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/simd.hpp"
#include "fpna/reduce/cpu_sum.hpp"
#include "fpna/util/table.hpp"
#include "fpna/util/timer.hpp"

using namespace fpna;

namespace {

std::string bits_of(double x) {
  bench::BitFingerprint fp;
  fp.feed(x);
  return fp.hex();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(
      std::max<std::int64_t>(64, cli.integer("size", std::int64_t{1} << 20)));
  const auto reps = static_cast<std::size_t>(cli.integer("reps", 3));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");
  const std::string json = cli.text("json", "");

  const std::vector<double> data = bench::uniform_array(n, 0.0, 10.0, seed);
  const std::span<const double> values(data);

  util::banner(std::cout,
               "SIMD lane-blocked summation (n = " + std::to_string(n) +
                   ", dispatch: " + fp::simd_active_isa() + ")");

  bool gate_ok = true;

  // ---- Table 1: lanes sweep (intrinsics vs scalar lane-emulation) -------
  const std::vector<std::string> lane_algorithms{"serial", "kahan", "neumaier",
                                                 "klein", "pairwise"};
  util::Table lanes_table({"algorithm", "lanes", "n", "simd ms", "emul ms",
                           "speedup vs scalar", "simd bits", "emul bits",
                           "lane paths agree", "reproducible"});
  for (const std::string& name : lane_algorithms) {
    double base_seconds = 0.0;
    for (const std::size_t lanes : fp::kSimdLaneCounts) {
      const std::string spec_text =
          lanes == 1 ? name : name + "@simd" + std::to_string(lanes);
      const fp::ReductionSpec spec = fp::parse_reduction_spec(spec_text);

      fp::set_simd_force_scalar(false);  // intrinsics when the host has them
      const double simd_value = fp::reduce(spec, values);
      const auto simd_stats = util::time_repeated(
          [&] { (void)fp::reduce(spec, values); }, reps, 1);

      fp::set_simd_force_scalar(true);  // the portable lane-emulation
      const double emul_value = fp::reduce(spec, values);
      const auto emul_stats = util::time_repeated(
          [&] { (void)fp::reduce(spec, values); }, reps, 1);
      fp::set_simd_force_scalar(std::nullopt);

      if (lanes == 1) base_seconds = simd_stats.mean_seconds;
      const bool agree =
          std::bit_cast<std::uint64_t>(simd_value) ==
          std::bit_cast<std::uint64_t>(emul_value);
      if (!agree) gate_ok = false;
      lanes_table.add_row(
          {spec_text, std::to_string(lanes), std::to_string(n),
           util::fixed(simd_stats.mean_ms(), 3),
           util::fixed(emul_stats.mean_ms(), 3),
           util::fixed(base_seconds / std::max(1e-12, simd_stats.mean_seconds),
                       2),
           bits_of(simd_value), bits_of(emul_value), agree ? "yes" : "NO",
           "yes"});
    }
  }

  // ---- Table 2: registry sweep through the @simd<L> grammar -------------
  util::Table registry_table(
      {"spec", "lanes", "ms", "bits", "reproducible"});
  for (const auto& entry : fp::AlgorithmRegistry::instance().entries()) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{8}}) {
      const std::string spec_text =
          lanes == 1 ? entry.name
                     : entry.name + "@simd" + std::to_string(lanes);
      const fp::ReductionSpec spec = fp::parse_reduction_spec(spec_text);
      const double value = fp::reduce(spec, values);
      const auto stats = util::time_repeated(
          [&] { (void)fp::reduce(spec, values); }, 1, 0);
      registry_table.add_row({spec_text, std::to_string(lanes),
                              util::fixed(stats.mean_ms(), 3), bits_of(value),
                              "yes"});
    }
  }

  // ---- Table 3: cpu_sum strategies --------------------------------------
  util::Table cpu_table({"strategy", "threads", "ms", "bits", "reproducible"});
  const auto cpu_row = [&](const std::string& label,
                           const core::EvalContext& ctx, bool reproducible) {
    const double value = reduce::cpu_sum(values, ctx, 8);
    const auto stats = util::time_repeated(
        [&] { (void)reduce::cpu_sum(values, ctx, 8); }, reps, 0);
    cpu_table.add_row({label, "8", util::fixed(stats.mean_ms(), 3),
                       bits_of(value), reproducible ? "yes" : "no"});
  };
  cpu_row("chunked deterministic (serial)", core::EvalContext{}, true);
  {
    core::EvalContext ctx;
    ctx.accumulator = fp::parse_reduction_spec("serial@simd8");
    cpu_row("chunked deterministic (serial@simd8)", ctx, true);
  }
  {
    core::EvalContext ctx;
    ctx.accumulator = fp::parse_reduction_spec("kahan@simd8");
    cpu_row("chunked deterministic (kahan@simd8)", ctx, true);
  }
  {
    core::EvalContext ctx;
    ctx.accumulator = fp::AlgorithmId::kSuperaccumulator;
    cpu_row("reproducible (superaccumulator)", ctx, true);
  }
  {
    core::RunContext run(seed + 1, 0);
    cpu_row("unordered (opt-in nondeterminism)",
            core::EvalContext::nondeterministic_on(run), false);
  }

  if (csv) {
    lanes_table.print_csv(std::cout);
    registry_table.print_csv(std::cout);
    cpu_table.print_csv(std::cout);
  } else {
    util::banner(std::cout, "Lanes sweep (intrinsics vs lane-emulation)");
    lanes_table.print(std::cout);
    util::banner(std::cout, "Registry sweep (@simd grammar, every entry)");
    registry_table.print(std::cout);
    util::banner(std::cout, "cpu_sum strategies (8 chunks)");
    cpu_table.print(std::cout);
    std::cout << "\nReading: each @simd<L> name is ONE re-association - the "
                 "intrinsics dispatch and the portable lane-emulation must "
                 "produce identical bits (the two bits columns match and "
                 "the gate fails otherwise), so kahan@simd8 means the same "
                 "sum on every host, vectorised where the CPU allows. "
                 "Speedup vs the scalar base is the price table: lane "
                 "blocking pays nothing in determinism.\n";
  }

  if (!json.empty()) {
    bench::write_json(json, "microbench_sums",
                      {{"lanes", &lanes_table},
                       {"registry", &registry_table},
                       {"cpu_sum", &cpu_table}});
  }

  if (!gate_ok) {
    std::cerr << "FAIL: an intrinsics path deviated from its scalar "
                 "lane-emulation\n";
    return 1;
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
