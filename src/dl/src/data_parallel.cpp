#include "fpna/dl/data_parallel.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "fpna/comm/bucketed_allreduce.hpp"
#include "fpna/dl/adam.hpp"
#include "fpna/dl/layers.hpp"

namespace fpna::dl {

namespace {

/// Per-parameter gradient buffers flattened to one TensorList entry each
/// (FP32, the wire type of the exchange - as NCCL/MPI gradient buckets).
comm::TensorList<float> gradient_tensors(GraphSageModel& model) {
  comm::TensorList<float> tensors;
  for (auto& [param, grad] : model.parameters()) {
    (void)param;
    tensors.emplace_back(grad->data().begin(), grad->data().end());
  }
  return tensors;
}

void write_gradients(GraphSageModel& model,
                     const comm::TensorList<float>& tensors) {
  std::size_t t = 0;
  for (auto& [param, grad] : model.parameters()) {
    (void)param;
    const auto& flat = tensors[t++];
    std::copy(flat.begin(), flat.end(), grad->data().begin());
  }
}

}  // namespace

std::vector<std::vector<char>> shard_train_mask(
    const std::vector<char>& train_mask, std::size_t ranks,
    ShardSplit split) {
  if (ranks == 0) throw std::invalid_argument("shard_train_mask: zero ranks");
  std::vector<std::vector<char>> masks(
      ranks, std::vector<char>(train_mask.size(), 0));
  std::vector<std::size_t> train_nodes;
  for (std::size_t v = 0; v < train_mask.size(); ++v) {
    if (train_mask[v]) train_nodes.push_back(v);
  }
  if (split == ShardSplit::kRoundRobin) {
    for (std::size_t i = 0; i < train_nodes.size(); ++i) {
      masks[i % ranks][train_nodes[i]] = 1;
    }
    return masks;
  }
  const auto sizes = collective::shard_sizes(train_nodes.size(), ranks);
  std::size_t next = 0;
  for (std::size_t r = 0; r < ranks; ++r) {
    for (std::size_t i = 0; i < sizes[r]; ++i) {
      masks[r][train_nodes[next++]] = 1;
    }
  }
  return masks;
}

TrainResult train_data_parallel(const Dataset& dataset,
                                const DataParallelConfig& config,
                                core::RunContext& run) {
  comm::SimProcessGroup pg(config.ranks);
  return train_data_parallel(dataset, config, run, pg);
}

TrainResult train_data_parallel(const Dataset& dataset,
                                const DataParallelConfig& config,
                                core::RunContext& run,
                                comm::ProcessGroup& pg) {
  if (config.base.epochs <= 0) {
    throw std::invalid_argument("train_data_parallel: epochs <= 0");
  }
  if (pg.size() != config.ranks ||
      pg.local_contributions() != config.ranks) {
    throw std::invalid_argument(
        "train_data_parallel: the group must play every configured rank");
  }
  const std::size_t ranks = config.ranks;

  // Every rank starts from the same init seed and applies identical
  // averaged gradients, so one model instance stands in for all replicas.
  // It must live at its final address before Adam takes parameter
  // pointers (same constraint as dl::train).
  TrainResult result{GraphSageModel(dataset.num_features(),
                                    config.base.hidden, dataset.num_classes,
                                    config.base.init_seed),
                     {},
                     {},
                     {},
                     0.0};

  const core::EvalContext local_ctx = config.base.eval_context(run);
  core::EvalContext comm_ctx;
  comm_ctx.run = &run;
  comm_ctx.pool = config.pool;
  comm_ctx.accumulator = config.comm_accumulator;

  comm::BucketedConfig bucketing;
  bucketing.bucket_cap_elements = config.bucket_cap_elements;
  bucketing.overlap = config.overlap;

  const auto rank_masks =
      shard_train_mask(dataset.train_mask, ranks, config.split);

  Adam optimizer(AdamConfig{.lr = config.base.lr});
  for (auto& [param, grad] : result.model.parameters()) {
    optimizer.add_parameter(param, grad);
  }

  // With deterministic local kernels every replica's forward over the
  // shared weights is bitwise identical (only the loss mask differs per
  // rank), so one forward pass per epoch serves all P backward passes.
  // ND local kernels draw scheduling entropy per invocation and keep the
  // per-rank forwards.
  const bool shared_forward = !local_ctx.nondeterministic();

  for (int epoch = 0; epoch < config.base.epochs; ++epoch) {
    std::vector<comm::TensorList<float>> rank_grads;
    rank_grads.reserve(ranks);
    double loss_total = 0.0;
    GraphSageModel::ForwardCache shared_cache;
    Matrix shared_log_probs;
    if (shared_forward) {
      shared_log_probs = result.model.forward(
          dataset.features, dataset.graph, local_ctx, &shared_cache);
    }
    for (std::size_t r = 0; r < ranks; ++r) {
      GraphSageModel::ForwardCache rank_cache;
      if (!shared_forward) {
        shared_log_probs = result.model.forward(
            dataset.features, dataset.graph, local_ctx, &rank_cache);
      }
      const GraphSageModel::ForwardCache& cache =
          shared_forward ? shared_cache : rank_cache;
      const LossResult loss = nll_loss_masked(
          shared_log_probs, dataset.labels, rank_masks[r], local_ctx);
      loss_total += loss.loss;
      result.model.zero_grad();
      result.model.backward(cache, loss.d_logits, dataset.graph, local_ctx);
      rank_grads.push_back(gradient_tensors(result.model));
    }
    result.epoch_losses.push_back(loss_total / static_cast<double>(ranks));

    comm::TensorList<float> combined = comm::bucketed_allreduce(
        pg, rank_grads, config.algorithm, comm_ctx, bucketing);
    // DDP averaging: the exchanged sum of per-shard mean-loss gradients,
    // divided by the rank count (exact for ranks == 1).
    for (auto& tensor : combined) {
      for (float& g : tensor) g /= static_cast<float>(ranks);
    }
    result.model.zero_grad();
    write_gradients(result.model, combined);
    optimizer.step();

    if (config.base.snapshot_epochs) {
      result.epoch_weights.push_back(result.model.flattened_weights());
    }
  }

  result.final_weights = result.model.flattened_weights();

  // Accuracy with the deterministic forward, mirroring dl::train.
  core::EvalContext det_ctx;
  det_ctx.accumulator = config.base.accumulator;
  const Matrix final_probs = result.model.forward(
      dataset.features, dataset.graph, det_ctx, nullptr);
  result.train_accuracy =
      accuracy(final_probs, dataset.labels, &dataset.train_mask);
  return result;
}

}  // namespace fpna::dl
