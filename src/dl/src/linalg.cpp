#include "fpna/dl/linalg.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "fpna/fp/accumulator.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/thread_pool.hpp"
#include "parallel_blocks.hpp"

namespace fpna::dl {

using detail::for_each_row_block;

namespace {

/// Fingerprint of rows [r0, r1) of a row-major matrix (read-only).
std::uint64_t row_range_bits(const Matrix& m, std::int64_t r0,
                             std::int64_t r1) {
  const std::int64_t n = m.size(1);
  obs::Fingerprint print;
  for (std::int64_t i = r0 * n; i < r1 * n; ++i) print.feed(m.flat(i));
  return print.value();
}

/// Execution-invariant row-block provenance: block boundaries come from
/// the same size-derived rule the pool dispatch uses, but are recomputed
/// here and fingerprinted from the *calling* thread in block order - so
/// serial, 2-thread and 8-thread runs of a deterministic kernel emit
/// byte-identical records (the thread-invariance obs_test relies on it).
void emit_row_block_provenance(obs::Recorder* recorder, const char* site,
                               const Matrix& c, std::int64_t work_per_row,
                               const std::string& spec) {
  if (recorder == nullptr) return;
  const std::int64_t rows = c.size(0);
  const auto ranges = core::even_chunks(
      static_cast<std::size_t>(rows),
      detail::size_derived_chunks(rows, work_per_row));
  for (std::size_t blk = 0; blk < ranges.size(); ++blk) {
    const auto [lo, hi] = ranges[blk];
    recorder->provenance(
        {site, "row_block", static_cast<std::int64_t>(blk), -1, spec,
         row_range_bits(c, static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(hi)),
         static_cast<std::uint64_t>((hi - lo) * c.size(1))});
  }
}

void require_rank2(const Matrix& m, const char* name) {
  if (m.dim() != 2) {
    throw std::invalid_argument(std::string(name) + ": expected rank-2");
  }
}

/// The dense kernels' dtype discipline (tensor-core semantics): the
/// spec's *storage* dtype quantizes the operands - a bf16 x bf16 product
/// is exact in binary32, so the float multiply below models the MAC units
/// exactly - and the *accumulate* dtype is where each output element's
/// contribution stream runs. The native spec (identity quantize, float
/// accumulate, serial algorithm) keeps the seed's special-cased loops.
template <typename Acc, typename Quant>
inline constexpr bool kNativeSerialF32 =
    std::is_same_v<Acc, fp::SerialAccumulator<float>> && Quant::is_identity;

/// Storage-quantized view of an operand matrix: the identity quantizer
/// aliases the original (zero cost on the native paths); a real
/// quantizer materialises the quantized copy once per kernel call, so
/// the hot loops never re-quantize an element they re-read (matmul reads
/// every b element m times).
template <typename Quant>
const Matrix& maybe_quantized(const Matrix& m,
                              [[maybe_unused]] Quant quantize,
                              [[maybe_unused]] std::optional<Matrix>& store) {
  if constexpr (Quant::is_identity) {
    return m;
  } else {
    store.emplace(m);
    Matrix& q = *store;
    for (std::int64_t i = 0; i < q.numel(); ++i) {
      q.flat(i) = quantize(q.flat(i));
    }
    return q;
  }
}

/// Runtime-spec variant for callers outside a visit_reduction dispatch
/// (matmul_split_k quantizes once for all its chunks): materialises the
/// bf16 copy iff the storage dtype actually quantizes a float kernel.
const Matrix& maybe_quantized_for(const fp::ReductionSpec& spec,
                                  const Matrix& m,
                                  std::optional<Matrix>& store) {
  if (spec.storage != fp::Dtype::kBf16) return m;
  return maybe_quantized(m, fp::QuantizeBf16{}, store);
}

/// matmul restricted to inner indices [k_begin, k_end): the building block
/// of both matmul (full range) and matmul_split_k (one chunk per call).
/// Row-blocked over the output; per element the contributions fold in
/// ascending p order through the context's reduction spec, with the
/// native serial spec special-cased to the classic i-k-j in-place loop
/// (bitwise identical to the seed implementation, unit-stride loops).
void matmul_k_range(Matrix& c, const Matrix& a, const Matrix& b,
                    std::int64_t k_begin, std::int64_t k_end,
                    const core::EvalContext& ctx) {
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  fp::visit_reduction<float>(
      ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        std::optional<Matrix> qa_store, qb_store;
        const Matrix& qa = maybe_quantized(a, quantize, qa_store);
        const Matrix& qb = maybe_quantized(b, quantize, qb_store);
        for_each_row_block(ctx, m, (k_end - k_begin) * n,
                           [&](std::int64_t r0, std::int64_t r1) {
          if constexpr (kNativeSerialF32<Acc, decltype(quantize)>) {
            for (std::int64_t i = r0; i < r1; ++i) {
              for (std::int64_t p = k_begin; p < k_end; ++p) {
                const float av = a.flat(i * k + p);
                if (av == 0.0f) continue;
                const std::int64_t brow = p * n;
                const std::int64_t crow = i * n;
                for (std::int64_t j = 0; j < n; ++j) {
                  c.flat(crow + j) += av * b.flat(brow + j);
                }
              }
            }
          } else {
            std::vector<Acc> row(static_cast<std::size_t>(n));
            for (std::int64_t i = r0; i < r1; ++i) {
              for (auto& acc : row) acc = Acc{};
              for (std::int64_t p = k_begin; p < k_end; ++p) {
                const float av = qa.flat(i * k + p);
                if (av == 0.0f) continue;  // same sparsity skip as serial
                const std::int64_t brow = p * n;
                for (std::int64_t j = 0; j < n; ++j) {
                  row[static_cast<std::size_t>(j)].add(
                      static_cast<A>(av * qb.flat(brow + j)));
                }
              }
              for (std::int64_t j = 0; j < n; ++j) {
                c.flat(i * n + j) = static_cast<float>(
                    row[static_cast<std::size_t>(j)].result());
              }
            }
          }
        }, "dl.matmul.block");
      });
}

}  // namespace

Matrix matmul(const Matrix& a, const Matrix& b, const core::EvalContext& ctx) {
  require_rank2(a, "matmul(a)");
  require_rank2(b, "matmul(b)");
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != k) throw std::invalid_argument("matmul: inner mismatch");

  Matrix c(tensor::Shape{m, n}, 0.0f);
  {
    obs::Span span(ctx.recorder, "dl.matmul");
    span.arg("m", m);
    span.arg("k", k);
    span.arg("n", n);
    if (ctx.recorder != nullptr) {
      span.arg("spec", fp::to_string(ctx.reduction_in_effect()));
      ctx.recorder->metrics().counter("dl.matmul.calls").increment();
      ctx.recorder->metrics()
          .counter("dl.matmul.flops")
          .add(static_cast<std::uint64_t>(2 * m * k * n));
    }
    matmul_k_range(c, a, b, 0, k, ctx);
  }
  if (ctx.recorder != nullptr) {
    const std::string spec = fp::to_string(ctx.reduction_in_effect());
    emit_row_block_provenance(ctx.recorder, "dl.matmul", c, k * n, spec);
    ctx.recorder->provenance({"dl.matmul", "result", -1, -1, spec,
                              row_range_bits(c, 0, m),
                              static_cast<std::uint64_t>(c.numel())});
  }
  return c;
}

Matrix matmul_transpose_a(const Matrix& a, const Matrix& b,
                          const core::EvalContext& ctx) {
  require_rank2(a, "matmul_transpose_a(a)");
  require_rank2(b, "matmul_transpose_a(b)");
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != m) {
    throw std::invalid_argument("matmul_transpose_a: outer mismatch");
  }
  // Row-blocked over the *output* rows (the k dimension of A): the seed's
  // i-p-j loop adds row i's contribution to every output row, so the
  // parallel form re-nests to p-i-j - per element the same ascending-i
  // stream, now wholly owned by one task.
  Matrix c(tensor::Shape{k, n}, 0.0f);
  fp::visit_reduction<float>(
      ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        std::optional<Matrix> qa_store, qb_store;
        const Matrix& qa = maybe_quantized(a, quantize, qa_store);
        const Matrix& qb = maybe_quantized(b, quantize, qb_store);
        for_each_row_block(ctx, k, m * n,
                           [&](std::int64_t p0, std::int64_t p1) {
          if constexpr (kNativeSerialF32<Acc, decltype(quantize)>) {
            for (std::int64_t p = p0; p < p1; ++p) {
              const std::int64_t crow = p * n;
              for (std::int64_t i = 0; i < m; ++i) {
                const float av = a.flat(i * k + p);
                if (av == 0.0f) continue;
                const std::int64_t brow = i * n;
                for (std::int64_t j = 0; j < n; ++j) {
                  c.flat(crow + j) += av * b.flat(brow + j);
                }
              }
            }
          } else {
            std::vector<Acc> row(static_cast<std::size_t>(n));
            for (std::int64_t p = p0; p < p1; ++p) {
              for (auto& acc : row) acc = Acc{};
              for (std::int64_t i = 0; i < m; ++i) {
                const float av = qa.flat(i * k + p);
                if (av == 0.0f) continue;  // same sparsity skip as serial
                const std::int64_t brow = i * n;
                for (std::int64_t j = 0; j < n; ++j) {
                  row[static_cast<std::size_t>(j)].add(
                      static_cast<A>(av * qb.flat(brow + j)));
                }
              }
              for (std::int64_t j = 0; j < n; ++j) {
                c.flat(p * n + j) = static_cast<float>(
                    row[static_cast<std::size_t>(j)].result());
              }
            }
          }
        }, "dl.matmul_transpose_a.block");
      });
  return c;
}

Matrix matmul_transpose_b(const Matrix& a, const Matrix& b,
                          const core::EvalContext& ctx) {
  require_rank2(a, "matmul_transpose_b(a)");
  require_rank2(b, "matmul_transpose_b(b)");
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  if (b.size(1) != k) {
    throw std::invalid_argument("matmul_transpose_b: inner mismatch");
  }
  Matrix c(tensor::Shape{m, n}, 0.0f);
  fp::visit_reduction<float>(
      ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        std::optional<Matrix> qa_store, qb_store;
        const Matrix& qa = maybe_quantized(a, quantize, qa_store);
        const Matrix& qb = maybe_quantized(b, quantize, qb_store);
        for_each_row_block(ctx, m, k * n,
                           [&](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t i = r0; i < r1; ++i) {
            const std::int64_t arow = i * k;
            const std::int64_t crow = i * n;
            for (std::int64_t j = 0; j < n; ++j) {
              const std::int64_t brow = j * k;
              if constexpr (kNativeSerialF32<Acc, decltype(quantize)>) {
                float acc = 0.0f;
                for (std::int64_t p = 0; p < k; ++p) {
                  acc += a.flat(arow + p) * b.flat(brow + p);
                }
                c.flat(crow + j) = acc;
              } else {
                Acc acc;
                for (std::int64_t p = 0; p < k; ++p) {
                  acc.add(static_cast<A>(qa.flat(arow + p) *
                                         qb.flat(brow + p)));
                }
                c.flat(crow + j) = static_cast<float>(acc.result());
              }
            }
          }
        }, "dl.matmul_transpose_b.block");
      });
  return c;
}

Matrix matmul_split_k(const Matrix& a, const Matrix& b, std::size_t splits,
                      const core::EvalContext& ctx) {
  require_rank2(a, "matmul_split_k(a)");
  require_rank2(b, "matmul_split_k(b)");
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != k) {
    throw std::invalid_argument("matmul_split_k: inner mismatch");
  }
  if (splits == 0) {
    throw std::invalid_argument("matmul_split_k: splits == 0");
  }
  const auto s = static_cast<std::int64_t>(
      std::min<std::size_t>(splits, static_cast<std::size_t>(
                                        std::max<std::int64_t>(1, k))));

  // Storage quantization is idempotent (a bf16 value re-rounds to
  // itself), so quantize the operands once here and hand the chunks a
  // native-storage spec - bitwise identical to quantizing inside every
  // chunk, without re-copying both matrices per split.
  core::EvalContext chunk_ctx = ctx;
  std::optional<Matrix> qa_store, qb_store;
  const fp::ReductionSpec spec = ctx.reduction_in_effect();
  if (spec.storage == fp::Dtype::kBf16) {
    chunk_ctx.accumulator = fp::ReductionSpec{spec.algorithm, fp::Dtype::kNative,
                                              spec.accumulate, spec.lanes};
  }
  const Matrix& aa = maybe_quantized_for(spec, a, qa_store);
  const Matrix& bb = maybe_quantized_for(spec, b, qb_store);

  obs::Span span(ctx.recorder, "dl.matmul_split_k");
  span.arg("m", m);
  span.arg("k", k);
  span.arg("n", n);
  span.arg("splits", static_cast<std::int64_t>(s));
  const std::string spec_str =
      ctx.recorder != nullptr ? fp::to_string(spec) : std::string();

  // Per-chunk partials: contiguous near-even k ranges, each computed with
  // the deterministic kernel (pool and accumulator per ctx). Partials are
  // deterministic even on the non-deterministic path - only the combine
  // order below draws entropy - so their provenance records pin the
  // divergence search onto the combine steps.
  std::vector<Matrix> partials;
  partials.reserve(static_cast<std::size_t>(s));
  const std::int64_t base = k / s, rem = k % s;
  std::int64_t k_begin = 0;
  for (std::int64_t t = 0; t < s; ++t) {
    const std::int64_t k_end = k_begin + base + (t < rem ? 1 : 0);
    partials.emplace_back(tensor::Shape{m, n}, 0.0f);
    matmul_k_range(partials.back(), aa, bb, k_begin, k_end, chunk_ctx);
    if (ctx.recorder != nullptr) {
      ctx.recorder->provenance(
          {"dl.matmul_split_k", "partial", t, -1, spec_str,
           row_range_bits(partials.back(), 0, m),
           static_cast<std::uint64_t>(partials.back().numel())});
    }
    k_begin = k_end;
  }

  // Combine order: chunk order on the deterministic path, a fresh draw
  // from the run's entropy otherwise. One order per *call* - every
  // element re-associates the same way, as a k-split GEMM's fixed (but
  // schedule-dependent) reduction tree would.
  std::vector<std::size_t> order(static_cast<std::size_t>(s));
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (ctx.nondeterministic()) {
    order = util::random_permutation(order.size(), ctx.run->rng());
  }

  // The first partial is copied (so splits == 1 is bitwise matmul); the
  // rest fold in with plain float adds - the re-association under study.
  Matrix c = partials[order[0]];
  if (ctx.recorder == nullptr) {
    for_each_row_block(ctx, m, (s - 1) * n, [&](std::int64_t r0,
                                                std::int64_t r1) {
      for (std::size_t t = 1; t < order.size(); ++t) {
        const Matrix& part = partials[order[t]];
        for (std::int64_t i = r0 * n; i < r1 * n; ++i) {
          c.flat(i) += part.flat(i);
        }
      }
    });
    return c;
  }

  // Traced combine: one row-blocked pass per partial instead of one
  // fused pass, which exposes the running sum after every fold for a
  // per-step fingerprint. Bitwise identical to the fused loop - each
  // element still folds the partials in exactly order[1..s-1] sequence;
  // only the loop nest (and the number of pool barriers) changes. This
  // is the record the first-divergence localizer keys on: two runs with
  // different combine orders share every "partial" record and split at
  // combine step 0.
  ctx.recorder->provenance({"dl.matmul_split_k", "combine_step", 0,
                            static_cast<std::int64_t>(order[0]), spec_str,
                            row_range_bits(c, 0, m),
                            static_cast<std::uint64_t>(c.numel())});
  for (std::size_t t = 1; t < order.size(); ++t) {
    const Matrix& part = partials[order[t]];
    for_each_row_block(ctx, m, n, [&](std::int64_t r0, std::int64_t r1) {
      for (std::int64_t i = r0 * n; i < r1 * n; ++i) {
        c.flat(i) += part.flat(i);
      }
    }, "dl.matmul_split_k.combine");
    ctx.recorder->provenance({"dl.matmul_split_k", "combine_step",
                              static_cast<std::int64_t>(t),
                              static_cast<std::int64_t>(order[t]), spec_str,
                              row_range_bits(c, 0, m),
                              static_cast<std::uint64_t>(c.numel())});
  }
  return c;
}

Matrix add(const Matrix& a, const Matrix& b, const core::EvalContext& ctx) {
  if (!a.same_shape(b)) throw std::invalid_argument("add: shape mismatch");
  Matrix c = a;
  for_each_row_block(ctx, c.numel(), 1, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) c.flat(i) += b.flat(i);
  });
  return c;
}

void add_bias_rows(Matrix& a, const Matrix& bias,
                   const core::EvalContext& ctx) {
  require_rank2(a, "add_bias_rows(a)");
  const std::int64_t n = a.size(1);
  if (bias.numel() != n) {
    throw std::invalid_argument("add_bias_rows: bias length mismatch");
  }
  for_each_row_block(ctx, a.size(0), n, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      for (std::int64_t j = 0; j < n; ++j) a.flat(i * n + j) += bias.flat(j);
    }
  });
}

Matrix column_sums(const Matrix& a, const core::EvalContext& ctx) {
  require_rank2(a, "column_sums");
  const std::int64_t m = a.size(0), n = a.size(1);
  Matrix out(tensor::Shape{n}, 0.0f);
  // Column-blocked: the seed's i-j loop folds each column in ascending
  // row order; re-nesting to j-i keeps every column's stream intact. A
  // plain reduction, so the storage dtype quantizes the addends (not
  // operand pairs as in the matmuls).
  fp::visit_reduction<float>(
      ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        for_each_row_block(ctx, n, m, [&](std::int64_t j0, std::int64_t j1) {
          for (std::int64_t j = j0; j < j1; ++j) {
            if constexpr (kNativeSerialF32<Acc, decltype(quantize)>) {
              for (std::int64_t i = 0; i < m; ++i) {
                out.flat(j) += a.flat(i * n + j);
              }
            } else {
              Acc acc;
              for (std::int64_t i = 0; i < m; ++i) {
                acc.add(static_cast<A>(quantize(a.flat(i * n + j))));
              }
              out.flat(j) = static_cast<float>(acc.result());
            }
          }
        });
      });
  return out;
}

Matrix gather_rows(const Matrix& x, const std::vector<std::int64_t>& indices,
                   const core::EvalContext& ctx) {
  require_rank2(x, "gather_rows");
  const std::int64_t cols = x.size(1);
  Matrix out(tensor::Shape{static_cast<std::int64_t>(indices.size()), cols},
             0.0f);
  for_each_row_block(
      ctx, static_cast<std::int64_t>(indices.size()), cols,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t i = r0; i < r1; ++i) {
          const std::int64_t r = indices[static_cast<std::size_t>(i)];
          if (r < 0 || r >= x.size(0)) {
            throw std::out_of_range("gather_rows: row index out of range");
          }
          for (std::int64_t j = 0; j < cols; ++j) {
            out.flat(i * cols + j) = x.flat(r * cols + j);
          }
        }
      });
  return out;
}

}  // namespace fpna::dl
