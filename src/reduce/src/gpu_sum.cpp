#include "fpna/reduce/gpu_sum.hpp"

#include <stdexcept>
#include <type_traits>
#include <vector>

#include "fpna/fp/accumulator.hpp"
#include "fpna/reduce/block_sum.hpp"
#include "fpna/util/permutation.hpp"

namespace fpna::reduce {

namespace {

using sim::SumMethod;

/// AO: one same-address atomicAdd per element. The commit order of the
/// atomics is the scheduler's contention-arbitration order over all n
/// elements; the result is the accumulator's fold in that order.
double run_ao(sim::SimDevice& device, std::span<const double> data,
              const core::EvalContext& ctx) {
  auto rng = ctx.run->fork(0xA0);
  const std::vector<std::size_t> order =
      device.scheduler().atomic_commit_order(data.size(), rng);
  return fp::visit_reduction<double>(
      ctx.reduction_in_effect(),
      [&](auto tag, auto acc_c, auto quantize) -> double {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        Acc acc;
        for (const std::size_t i : order) {
          acc.add(static_cast<A>(quantize(data[i])));
        }
        return static_cast<double>(acc.result());
      });
}

/// SPA: deterministic block tree, then one atomicAdd per block. Executed
/// through the block engine: blocks run in commit order and their
/// fetch_add calls land in that order.
double run_spa(sim::SimDevice& device, std::span<const double> data,
               const core::EvalContext& ctx, std::size_t nt, std::size_t nb) {
  auto rng = ctx.run->fork(0x5BA);
  sim::AtomicDouble result(0.0);
  const sim::LaunchConfig config{nb, nt, nt};
  device.launch(config, rng, [&](sim::BlockCtx& block) {
    const double partial = block_partial_sum(data, block.block_id(), nt, nb,
                                             ctx.reduction_in_effect());
    block.syncthreads();
    result.fetch_add(partial);
  });
  return result.load();
}

/// SPTR / SPRG: deterministic block tree; partials published with
/// __threadfence; the last block through the retirement counter reduces
/// them (tree for SPTR, serial recursive sum for SPRG). The reading order
/// is the fixed index order, so the value is commit-order independent.
double run_single_pass_deterministic(sim::SimDevice& device,
                                     std::span<const double> data,
                                     const core::EvalContext& ctx,
                                     std::size_t nt, std::size_t nb,
                                     bool tree_tail) {
  auto rng = ctx.run->fork(tree_tail ? 0x5B78 : 0x5B76);
  std::vector<double> partials(nb, 0.0);
  std::vector<bool> published(nb, false);
  sim::RetirementCounter retirement(static_cast<unsigned>(nb));
  double result = 0.0;

  const sim::LaunchConfig config{nb, nt, nt};
  device.launch(config, rng, [&](sim::BlockCtx& block) {
    const std::size_t b = block.block_id();
    partials[b] =
        block_partial_sum(data, b, nt, nb, ctx.reduction_in_effect());
    block.threadfence();  // publish partials[b] before retiring
    published[b] = true;

    const unsigned prev = retirement.fetch_inc();
    const bool am_last = prev == static_cast<unsigned>(nb) - 1;
    block.syncthreads();
    if (!am_last) return;

    for (const bool p : published) {
      if (!p) {
        throw std::logic_error(
            "SPTR/SPRG: retirement counter fired before all partials were "
            "published");
      }
    }
    if (tree_tail) {
      result = tree_sum(partials);
    } else {
      // Tail through the selected accumulator, fixed index order. The
      // serial case keeps the seed's partials[0]-seeded fold (an empty
      // accumulator's 0.0 + (-0.0) would flip the sign of an all-negative-
      // zero tail, breaking bitwise compatibility).
      result = fp::visit_reduction<double>(
          ctx.reduction_in_effect(),
          [&](auto tag, auto acc_c, auto quantize) -> double {
            using A = typename decltype(acc_c)::type;
            using Acc = typename decltype(tag)::template accumulator_t<A>;
            if constexpr (std::is_same_v<Acc,
                                         fp::SerialAccumulator<double>> &&
                          decltype(quantize)::is_identity) {
              double acc = partials[0];
              for (std::size_t i = 1; i < nb; ++i) acc += partials[i];
              return acc;
            } else {
              Acc acc;
              for (const double p : partials) {
                acc.add(static_cast<A>(quantize(p)));
              }
              return static_cast<double>(acc.result());
            }
          });
    }
  });
  return result;
}

/// TPRC: first kernel writes block partials; stream order inserts a
/// barrier before the device-to-host copy; the host computes the final
/// sum. With the accumulator unset the host loop compiles with
/// vectorisation (4 lanes), the rounding pattern the paper notes TPRC is
/// sensitive to; any explicit selection (kSerial included) replaces it.
double run_tprc(sim::SimDevice& device, std::span<const double> data,
                const core::EvalContext& ctx, std::size_t nt, std::size_t nb) {
  auto rng = ctx.run->fork(0x79C);
  std::vector<double> partials(nb, 0.0);
  const sim::LaunchConfig config{nb, nt, nt};
  device.launch(config, rng, [&](sim::BlockCtx& block) {
    partials[block.block_id()] = block_partial_sum(
        data, block.block_id(), nt, nb, ctx.reduction_in_effect());
  });
  // Kernel-to-copy stream dependency: the copy sees all partials. An
  // explicitly selected accumulator (including kSerial) runs the host
  // tail; with the accumulator unset the tail is the historic host loop,
  // which compiles vectorised.
  return fp::reduce(ctx.accumulator.value_or(fp::AlgorithmId::kVectorized),
                    std::span<const double>(partials));
}

/// CU: vendor library sum. Internally a two-pass tree with library-chosen
/// tiling (the paper lists its parameters as "unknown"); deterministic by
/// construction, value differs from SPTR because the tiling differs. A
/// vendor black box does not honour the caller's accumulator selection:
/// its per-tile pass is pinned to the registry's serial algorithm.
double run_cu(std::span<const double> data) {
  constexpr std::size_t kLibraryTile = 2048;
  const std::size_t tiles = (data.size() + kLibraryTile - 1) / kLibraryTile;
  std::vector<double> partials(tiles == 0 ? 1 : tiles, 0.0);
  for (std::size_t t = 0; t < partials.size(); ++t) {
    const std::size_t begin = t * kLibraryTile;
    const std::size_t len = std::min(kLibraryTile, data.size() - begin);
    partials[t] =
        fp::reduce(fp::AlgorithmId::kSerial, data.subspan(begin, len));
  }
  return tree_sum(partials);
}

}  // namespace

std::size_t default_grid_blocks(std::size_t n, std::size_t nt) noexcept {
  if (nt == 0) return 1;
  const std::size_t blocks = (n + nt - 1) / nt;
  return blocks == 0 ? 1 : blocks;
}

GpuSumResult gpu_sum(sim::SimDevice& device, std::span<const double> data,
                     sim::SumMethod method, const core::EvalContext& ctx,
                     std::size_t nt, std::size_t nb) {
  if (nt == 0) throw std::invalid_argument("gpu_sum: nt == 0");
  if (ctx.run == nullptr) {
    throw std::invalid_argument(
        "gpu_sum: EvalContext.run must be set (supplies the launch's "
        "scheduling entropy)");
  }
  if (nb == 0) nb = default_grid_blocks(data.size(), nt);

  GpuSumResult result;
  result.method = method;
  result.nt = nt;
  result.nb = nb;
  result.modeled_time_us =
      sim::estimated_sum_time_us(device.profile(), method, data.size(), nt, nb);

  switch (method) {
    case SumMethod::kAO:
      result.value = run_ao(device, data, ctx);
      break;
    case SumMethod::kSPA:
      result.value = run_spa(device, data, ctx, nt, nb);
      break;
    case SumMethod::kSPTR:
      result.value =
          run_single_pass_deterministic(device, data, ctx, nt, nb, true);
      break;
    case SumMethod::kSPRG:
      result.value =
          run_single_pass_deterministic(device, data, ctx, nt, nb, false);
      break;
    case SumMethod::kTPRC:
      result.value = run_tprc(device, data, ctx, nt, nb);
      break;
    case SumMethod::kCU:
      result.value = run_cu(data);
      break;
  }
  return result;
}

GpuSumResult gpu_sum(sim::SimDevice& device, std::span<const double> data,
                     sim::SumMethod method, core::RunContext& ctx,
                     std::size_t nt, std::size_t nb) {
  return gpu_sum(device, data, method,
                 core::EvalContext::nondeterministic_on(ctx), nt, nb);
}

GpuSumResult gpu_sum_sptr_missing_fence(sim::SimDevice& device,
                                        std::span<const double> data,
                                        core::RunContext& ctx, std::size_t nt,
                                        std::size_t nb) {
  if (nt == 0) {
    throw std::invalid_argument("gpu_sum_sptr_missing_fence: nt == 0");
  }
  if (nb == 0) nb = default_grid_blocks(data.size(), nt);

  auto rng = ctx.fork(0xBAD);
  std::vector<double> partials(nb, 0.0);
  // Without __threadfence, a block's global write may still sit in its
  // SM's store queue when the "last" block (by a racy unfenced counter
  // read) starts the tail: model the race by having each block observe
  // only partials from blocks that committed before it.
  std::vector<bool> visible(nb, false);
  double result = 0.0;

  // The racy reader is whichever block a contention-order draw puts last.
  auto order_rng = ctx.fork(0xBAD2);
  const auto order = device.scheduler().commit_order(
      nb, sim::SchedulerPolicy::kContentionMixture, order_rng);
  const std::size_t reader = order.back();

  const sim::LaunchConfig config{nb, nt, nt};
  device.launch(config, rng, [&](sim::BlockCtx& block) {
    const std::size_t b = block.block_id();
    partials[b] = block_partial_sum(data, b, nt, nb);
    // NOTE: no block.threadfence() here - that is the injected bug. The
    // write becomes visible only one commit slot later.
    if (b != reader) {
      visible[b] = block.commit_position() + 2 < nb;
      return;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < nb; ++i) {
      acc += (visible[i] || i == b) ? partials[i] : 0.0;  // stale read
    }
    result = acc;
  });

  GpuSumResult out;
  out.method = sim::SumMethod::kSPTR;
  out.nt = nt;
  out.nb = nb;
  out.value = result;
  out.modeled_time_us = sim::estimated_sum_time_us(
      device.profile(), sim::SumMethod::kSPTR, data.size(), nt, nb);
  return out;
}

}  // namespace fpna::reduce
