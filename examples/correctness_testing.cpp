// Scenario: tolerance-based correctness testing in a molecular-simulation
// code (the CP2K situation from the paper's SIII: regression tests
// compare energies against references with tolerances as tight as 1e-14).
//
// This example builds a miniature "energy calculation" whose inner loop
// is a large parallel reduction, then shows the three regimes:
//   1. a tight tolerance FLAKES under a non-deterministic reduction -
//      identical physics, identical inputs, sporadic failures;
//   2. a bug of roughly the noise magnitude (one interaction term
//      accidentally rounded through FP32 - a classic mixed-precision
//      slip) cannot be detected reliably at ANY tolerance: tight
//      tolerances flag clean runs, widened ones pass buggy runs;
//   3. a reproducible reduction makes the test exact: zero tolerance,
//      zero flakiness, and the same bug is caught on every run.

#include <cmath>
#include <iostream>
#include <vector>

#include "fpna/core/run_context.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/reduce/cpu_sum.hpp"
#include "fpna/util/rng.hpp"
#include "fpna/util/table.hpp"

namespace {

using namespace fpna;

// A toy pairwise "energy": ~800k positive interaction terms (think
// short-range repulsions). The physics is irrelevant; what matters is the
// shape: a large reduction whose FPNA noise floor sits near real codes'
// tightest tolerances.
std::vector<double> interaction_terms(std::size_t particles,
                                      std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  util::Normal magnitude(1.0, 0.3);
  std::vector<double> terms;
  terms.reserve(particles * 8);
  for (std::size_t i = 0; i < particles * 8; ++i) {
    terms.push_back(std::fabs(magnitude(rng)) + 0.01);
  }
  return terms;
}

int count_failures(const std::vector<double>& terms, double reference,
                   double tolerance, int runs, std::uint64_t seed) {
  int failures = 0;
  for (int run = 0; run < runs; ++run) {
    core::RunContext ctx(seed, static_cast<std::uint64_t>(run));
    const double energy = reduce::cpu_sum_unordered(terms, ctx, 1024);
    if (std::fabs(energy - reference) / std::fabs(reference) > tolerance) {
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main() {
  constexpr std::size_t kParticles = 100000;
  constexpr int kCiRuns = 40;
  const auto terms = interaction_terms(kParticles, 42);

  // Certified reference energy (reproducible reduction), checked in once.
  const double reference = fp::Superaccumulator::sum(terms);
  std::cout << "reference energy: " << util::sci(reference) << "  ("
            << terms.size() << " interaction terms)\n";

  // The injected bug: ONE term accidentally passes through FP32 (a cast
  // in a "fast path"). Silent, and at the noise scale of the reduction.
  auto buggy_terms = terms;
  buggy_terms[12345] = static_cast<double>(static_cast<float>(terms[12345]));
  const double buggy_reference = fp::Superaccumulator::sum(buggy_terms);
  const double bug_shift =
      std::fabs(buggy_reference - reference) / std::fabs(reference);
  std::cout << "injected bug (one term rounded through FP32) shifts the "
               "energy by a relative "
            << util::sci(bug_shift, 2) << "\n\n";

  // Empirical FPNA noise floor of the ND reduction.
  double worst_noise = 0.0;
  for (int run = 0; run < kCiRuns; ++run) {
    core::RunContext ctx(7, static_cast<std::uint64_t>(run));
    const double energy = reduce::cpu_sum_unordered(terms, ctx, 1024);
    worst_noise = std::max(
        worst_noise, std::fabs(energy - reference) / std::fabs(reference));
  }
  std::cout << "FPNA noise floor of the ND reduction (worst of " << kCiRuns
            << " runs): " << util::sci(worst_noise, 2) << "\n\n";

  // ------------------------------------------------------------------
  // 1-2. Tolerance-based testing cannot win.
  // ------------------------------------------------------------------
  std::cout << "== Tolerance-based CI with the ND reduction ==\n";
  util::Table table({"rel. tolerance", "clean code: failures (flakiness)",
                     "buggy code: detections"});
  // Real projects set the tolerance well above the single-machine noise
  // floor because it must also absorb compiler/platform differences - the
  // widest setting here (50x) is typical and sits above the bug.
  for (const double tolerance : {worst_noise * 0.3, worst_noise * 1.5,
                                 worst_noise * 50.0}) {
    const int flaky = count_failures(terms, reference, tolerance, kCiRuns, 7);
    const int caught =
        count_failures(buggy_terms, reference, tolerance, kCiRuns, 11);
    table.add_row({util::sci(tolerance, 1),
                   std::to_string(flaky) + " / " + std::to_string(kCiRuns),
                   std::to_string(caught) + " / " + std::to_string(kCiRuns)});
  }
  table.print(std::cout);
  std::cout << "  -> tolerances near the noise floor are flaky; the "
               "portable (50x) tolerance silently passes the buggy code - "
               "FPNA noise forces a choice between flakiness and blindness "
               "(the paper's SIII masking problem).\n\n";

  // ------------------------------------------------------------------
  // 3. Reproducible reduction: exact tests.
  // ------------------------------------------------------------------
  std::cout << "== Reproducible reduction: exact regression testing ==\n";
  int exact_matches = 0;
  int exact_catches = 0;
  for (int run = 0; run < kCiRuns; ++run) {
    exact_matches += fp::bitwise_equal(
        reduce::cpu_sum_reproducible(terms, 1024), reference);
    exact_catches += !fp::bitwise_equal(
        reduce::cpu_sum_reproducible(buggy_terms, 1024), reference);
  }
  std::cout << "  clean code bitwise equal to reference: " << exact_matches
            << " / " << kCiRuns << "\n"
            << "  FP32-cast bug detected:                " << exact_catches
            << " / " << kCiRuns << "\n"
            << "  -> with an order-invariant sum the tolerance is zero: no "
               "flakiness, and even one-ulp bugs are visible.\n";
  return 0;
}
