#pragma once
// Error-free transforms (Knuth/Dekker, see Higham "Accuracy and Stability
// of Numerical Algorithms"): exact decompositions a op b = result + error
// with both parts representable. These are the building blocks for the
// compensated sums and double-double arithmetic used as accuracy
// references throughout the toolkit.
//
// Correctness requires strict IEEE arithmetic; the build disables FP
// contraction globally (see top-level CMakeLists).

#include <cmath>

namespace fpna::fp {

struct SumError {
  double sum;
  double error;
};

/// Knuth TwoSum: works for any ordering of |a|, |b|. 6 flops.
inline SumError two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

/// Dekker FastTwoSum: requires |a| >= |b| (or a == 0). 3 flops.
inline SumError fast_two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double err = b - (s - a);
  return {s, err};
}

struct ProdError {
  double product;
  double error;
};

/// TwoProd via FMA: a*b = product + error exactly (when no over/underflow).
inline ProdError two_prod(double a, double b) noexcept {
  const double p = a * b;
  const double err = std::fma(a, b, -p);
  return {p, err};
}

}  // namespace fpna::fp
