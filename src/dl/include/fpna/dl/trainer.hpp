#pragma once
// End-to-end training and inference driver for the GraphSAGE experiments
// (paper SV): trains N models from identical initial weights under
// deterministic or non-deterministic aggregation, snapshots weights per
// epoch, and provides modelled device timings for the Table 8 comparison.

#include <cstdint>
#include <vector>

#include "fpna/core/eval_context.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/loss_scale.hpp"
#include "fpna/dl/model.hpp"
#include "fpna/fp/reduction_spec.hpp"
#include "fpna/sim/device_profile.hpp"
#include "fpna/sim/lpu.hpp"

namespace fpna::dl {

struct TrainConfig {
  int epochs = 10;
  float lr = 0.01f;
  std::int64_t hidden = 16;
  /// Use deterministic aggregation kernels (index_add) during training.
  bool deterministic = true;
  /// Weight initialisation seed - shared by all runs of an experiment so
  /// that any divergence is attributable to kernel non-determinism.
  std::uint64_t init_seed = 42;
  /// GPU profile supplying scheduler policy for the ND path (nullptr:
  /// default H100).
  const sim::DeviceProfile* profile = nullptr;
  /// Registry-selected reduction spec (storage dtype x accumulate dtype x
  /// algorithm) threaded through the whole training EvalContext:
  /// neighbour aggregation (index_add), the dense matmul family, the loss
  /// reduction, and any other deterministic accumulation the kernels
  /// perform. A bare fp::AlgorithmId converts implicitly; the default
  /// native serial spec reproduces the seed's training values bitwise,
  /// while e.g. {kKahan, Dtype::kBf16, Dtype::kF32} trains in the
  /// paper's tensor-core mixed-precision setting.
  fp::ReductionSpec accumulator = fp::AlgorithmId::kSerial;
  /// Thread pool the dense kernels (matmul family) and the deterministic
  /// index_add run on (nullptr: serial). Pooled execution is bitwise
  /// identical to serial for every accumulator and thread count, so this
  /// field changes wall-clock only (certified in dl_test).
  util::ThreadPool* pool = nullptr;
  /// Record flattened weights after every epoch (needed by the epoch-
  /// variability experiment; costs memory).
  bool snapshot_epochs = false;
  /// Gradient loss scaling (see loss_scale.hpp). kNone reproduces the
  /// historic gradient path bit for bit; kStatic multiplies the loss
  /// gradient by a fixed factor and unscales through the spec's storage
  /// quantize path before the optimizer; kDynamic adds the
  /// backoff-on-nonfinite / periodic-growth loop. The per-epoch scale in
  /// effect and the skipped-step count are recorded in TrainResult, so a
  /// scaled run's rounding choices are fully named.
  LossScaleConfig loss_scale{};
  /// Nullable observability sink threaded through the training
  /// EvalContext: with a recorder attached the pooled kernels emit trace
  /// spans and bit-provenance and the loss scaler reports its state as
  /// metrics ("dl.loss_scale.*"); nullptr (the default) is the certified
  /// zero-event path and can never move bits.
  obs::Recorder* recorder = nullptr;

  /// The EvalContext this config describes. `run` supplies scheduling
  /// entropy for the ND kernels (ignored when deterministic).
  core::EvalContext eval_context(core::RunContext& run) const noexcept {
    core::EvalContext ctx;
    if (!deterministic) {
      ctx.run = &run;
      ctx.profile = profile;
    }
    ctx.accumulator = accumulator;
    ctx.pool = pool;
    ctx.recorder = recorder;
    return ctx;
  }
};

struct TrainResult {
  GraphSageModel model;
  std::vector<double> epoch_losses;
  /// Flattened weights after each epoch (only if snapshot_epochs).
  std::vector<std::vector<double>> epoch_weights;
  /// Final flattened weights.
  std::vector<double> final_weights;
  /// Training-set accuracy of the final model (deterministic forward).
  double train_accuracy = 0.0;
  /// Loss scale in effect for each epoch's backward pass (all 1.0 when
  /// scaling is disabled) - the record that makes a scaled run's
  /// rounding choices reproducible.
  std::vector<float> epoch_loss_scale;
  /// Optimizer steps skipped because a scaled backward produced
  /// non-finite gradients (dynamic backoff / static overflow guard).
  int skipped_steps = 0;
};

/// Trains one model. `run` provides the scheduling entropy consumed by the
/// ND kernels; with config.deterministic the result is a pure function of
/// (dataset, config) and bitwise identical across runs (certified in
/// tests).
TrainResult train(const Dataset& dataset, const TrainConfig& config,
                  core::RunContext& run);

/// Forward pass -> log-probabilities; deterministic or not per `ctx`.
Matrix infer(const GraphSageModel& model, const Dataset& dataset,
             const tensor::OpContext& ctx);

double accuracy(const Matrix& log_probs,
                const std::vector<std::int64_t>& labels,
                const std::vector<char>* mask = nullptr);

/// Shape of the model/dataset, input to the timing models.
struct ModelDims {
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t features = 0;
  std::int64_t hidden = 16;
  std::int64_t classes = 7;

  static ModelDims of(const Dataset& dataset, std::int64_t hidden);
};

/// Measured host wall-clock (microseconds) of one forward pass's dense
/// matmul work at `dims`: runs the model's four layer GEMMs (self +
/// neighbour branch at input and hidden widths) through dl::matmul on
/// this host - pool and accumulator per `ctx` - and returns the best of
/// `reps` timings. A real measurement, not a model: when the kernels go
/// parallel the number moves with them. Results are cached per
/// (dims, pool width), so repeated table lookups cost one run.
double measured_dense_forward_us(const ModelDims& dims,
                                 const core::EvalContext& ctx = {},
                                 int reps = 1);

/// Modelled single-input inference latency on the simulated GPU
/// (deterministic aggregation kernels vs atomic ones), milliseconds.
/// Framework overhead plus the per-layer aggregation kernel costs from
/// the cost model; the dense term is measured on the host
/// (measured_dense_forward_us) and projected through the calibrated
/// host->device dense speedup. Calibrated to the paper's Table 8 at Cora
/// scale.
double modeled_gpu_inference_ms(const sim::DeviceProfile& profile,
                                const ModelDims& dims, bool deterministic);

/// Modelled full-training wall time (10-epoch style), seconds (Table 8
/// narrative: 0.48 s deterministic vs 0.18 s non-deterministic).
double modeled_gpu_training_s(const sim::DeviceProfile& profile,
                              const ModelDims& dims, int epochs,
                              bool deterministic);

/// Fixed (statically scheduled) LPU inference latency, milliseconds.
double lpu_inference_ms(const sim::LpuDevice& lpu, const ModelDims& dims);

}  // namespace fpna::dl
