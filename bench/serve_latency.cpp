// Serving bench: throughput and tail latency of the batch-invariant
// InferenceServer under open-loop Poisson-ish load, swept over batch cap
// x threads x ReductionSpec x arrival rate - with the bit-fingerprint of
// every run's per-request outputs as a table column. The load-bearing
// claim rides in that column: the bits of a request's output do not
// depend on the batch it happened to share, the cap, the thread count or
// the arrival schedule, so the fingerprint must match the cap=1 row
// exactly and reproduce bit-for-bit across runs (the CI double-run gate
// diffs it via scripts/bench_json_diff.py).
//
// A second, virtual-time table projects the same batching policy through
// sim's device cost model at 200k requests per cell - the "at scale"
// shape (batching amortises dispatch; max_wait bounds the tail) without
// a wall clock in sight.
//
// Flags: --seed --requests=N --threads=T --full --csv --json=<path>
//        --trace=<path> --provenance=<path>
//        --gate-speedup   (fail unless batched throughput >= 2x cap=1 on
//                          the overload row; CI sets this on multi-core
//                          runners only - a single-core host has no
//                          parallel speedup to certify)

#include <algorithm>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/model.hpp"
#include "fpna/serve/open_loop.hpp"
#include "fpna/serve/server.hpp"
#include "fpna/serve/session.hpp"
#include "fpna/sim/device_profile.hpp"
#include "fpna/util/table.hpp"
#include "fpna/util/thread_pool.hpp"

using namespace fpna;

namespace {

const char* kSpecs[] = {"serial", "pairwise", "klein@bf16:f32",
                        "kahan@simd8:bf16:f32"};

std::vector<serve::Request> make_requests(const dl::Dataset& dataset,
                                          std::size_t count,
                                          std::uint64_t seed) {
  std::vector<serve::Request> requests;
  requests.reserve(count);
  util::Xoshiro256pp rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto node = static_cast<std::int64_t>(
        rng() % static_cast<std::uint64_t>(dataset.num_nodes()));
    requests.push_back(serve::InferenceSession::deployed_request(
        dataset, node, i));
  }
  return requests;
}

std::string hex64(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(15 - i)] = digits[(value >> (4 * i)) & 0xf];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const bool csv = cli.flag("csv");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto num_requests = static_cast<std::size_t>(
      cli.integer("requests", full ? 512 : 128));
  const auto hw = std::max(1u, std::thread::hardware_concurrency());
  const auto max_threads = static_cast<std::size_t>(
      cli.integer("threads", static_cast<std::int64_t>(hw)));
  const bool gate_speedup = cli.flag("gate-speedup");
  const std::string json_path = cli.text("json", "");
  const bench::ObsOptions obs_options(cli);

  const auto dataset =
      dl::make_synthetic_citation_dataset(dl::DatasetConfig::small());
  // hidden = 40 on purpose: wider than pairwise's 32-element block and
  // the 8-lane SIMD deal, so the layer-2 reductions actually exercise
  // each spec's re-association (the sparse feature rows keep layer 1's
  // streams short) and the specs' bit columns are visibly distinct.
  const dl::GraphSageModel model(dataset.num_features(), 40,
                                 dataset.num_classes, seed);
  const auto requests = make_requests(dataset, num_requests, seed + 1);

  util::banner(std::cout,
               "Serving latency: batch-invariant inference, open-loop "
               "arrivals (" + std::to_string(num_requests) + " requests, " +
                   std::to_string(max_threads) + " threads max)");

  const std::size_t kCaps[] = {1, 8, 32};
  std::vector<std::size_t> thread_counts = {1};
  if (max_threads > 1) thread_counts.push_back(max_threads);
  const double kRates[] = {4000.0, 50000.0};

  util::Table latency_table({"spec", "cap", "threads", "rate (rps)",
                             "completed", "throughput (rps)", "p50 (us)",
                             "p95 (us)", "p99 (us)", "bits", "matches cap1",
                             "reproducible"});

  bool bits_invariant = true;
  double serial_cap1_overload_rps = 0.0;
  double serial_batched_overload_rps = 0.0;

  for (const char* spec_text : kSpecs) {
    const fp::ReductionSpec spec = fp::parse_reduction_spec(spec_text);
    core::EvalContext session_ctx;
    session_ctx.accumulator = spec;
    const serve::InferenceSession session(model, dataset, session_ctx);

    // The reference bits: every request served alone, no server at all.
    obs::Fingerprint reference;
    {
      core::EvalContext ctx;
      ctx.accumulator = spec;
      for (const auto& request : requests) {
        const auto row = session.row_forward(request, ctx);
        reference.feed(std::span<const float>(row));
      }
    }

    for (const std::size_t cap : kCaps) {
      for (const std::size_t threads : thread_counts) {
        for (const double rate : kRates) {
          util::ThreadPool pool(threads);
          serve::ServerConfig config;
          config.max_batch = cap;
          config.max_wait = std::chrono::nanoseconds(200'000);
          config.pool = threads > 1 ? &pool : nullptr;
          config.spec = spec;
          serve::InferenceServer server(session, config);
          const auto gaps = serve::exponential_interarrivals_ns(
              rate, requests.size(), seed + 2);
          const serve::OpenLoopResult result =
              serve::run_open_loop(server, requests, gaps);
          const bool matches = result.bits == reference.value() &&
                               result.latency.failed == 0;
          bits_invariant = bits_invariant && matches;
          latency_table.add_row(
              {spec_text, std::to_string(cap), std::to_string(threads),
               util::fixed(rate, 0),
               std::to_string(result.latency.completed),
               util::fixed(result.latency.throughput_rps, 0),
               util::fixed(result.latency.p50_us, 1),
               util::fixed(result.latency.p95_us, 1),
               util::fixed(result.latency.p99_us, 1), hex64(result.bits),
               matches ? "yes" : "NO", "yes"});
          if (std::string(spec_text) == "serial" && rate == kRates[1] &&
              threads == thread_counts.back()) {
            if (cap == 1) serial_cap1_overload_rps =
                result.latency.throughput_rps;
            if (cap == kCaps[2]) serial_batched_overload_rps =
                std::max(serial_batched_overload_rps,
                         result.latency.throughput_rps);
          }
        }
      }
    }
  }

  if (csv) {
    latency_table.print_csv(std::cout);
  } else {
    latency_table.print(std::cout);
  }

  // ---- Projected at scale: the same policy in virtual time --------------
  const auto h100 = sim::DeviceProfile::h100();
  // One served row streams its feature vector and both layers' weights.
  const double bytes_per_row =
      4.0 * static_cast<double>(dataset.num_features() * 40 +
                                40 * dataset.num_classes +
                                dataset.num_features());
  const serve::ServiceModel service =
      serve::ServiceModel::from_profile(h100, bytes_per_row);

  util::banner(std::cout,
               "Projected at scale (virtual time, 200k requests/cell, "
               "H100 profile: dispatch " +
                   util::fixed(service.dispatch_us, 2) + " us, per-row " +
                   util::fixed(service.per_row_us, 3) + " us)");
  util::Table projected_table({"cap", "rate (rps)", "throughput (rps)",
                               "p50 (us)", "p95 (us)", "p99 (us)"});
  const std::size_t kProjCaps[] = {1, 4, 16, 64};
  const double kProjRates[] = {50'000.0, 120'000.0};
  for (const std::size_t cap : kProjCaps) {
    for (const double rate : kProjRates) {
      const serve::LatencySummary sim_summary = serve::simulate_open_loop(
          service, cap, /*max_wait_us=*/100.0, rate, 200'000, seed + 3);
      projected_table.add_row(
          {std::to_string(cap), util::fixed(rate, 0),
           util::fixed(sim_summary.throughput_rps, 0),
           util::fixed(sim_summary.p50_us, 1),
           util::fixed(sim_summary.p95_us, 1),
           util::fixed(sim_summary.p99_us, 1)});
    }
  }
  if (csv) {
    projected_table.print_csv(std::cout);
  } else {
    projected_table.print(std::cout);
  }

  // ---- Traced correctness pass (timing loops above stay untraced) -------
  util::Table metrics_table({"metric", "type", "value", "samples"});
  if (obs_options.enabled()) {
    const fp::ReductionSpec spec = fp::parse_reduction_spec(kSpecs[3]);
    core::EvalContext session_ctx;
    session_ctx.accumulator = spec;
    const serve::InferenceSession session(model, dataset, session_ctx);
    util::ThreadPool pool(max_threads);
    serve::ServerConfig config;
    config.max_batch = 8;
    config.pool = max_threads > 1 ? &pool : nullptr;
    config.spec = spec;
    config.recorder = obs_options.recorder();
    serve::InferenceServer server(session, config);
    const auto gaps = serve::exponential_interarrivals_ns(
        20'000.0, requests.size(), seed + 4);
    const serve::OpenLoopResult traced =
        serve::run_open_loop(server, requests, gaps);
    std::cout << "\ntraced pass: " << traced.latency.completed
              << " requests, bits " << hex64(traced.bits) << "\n";
    metrics_table = obs_options.metrics_table();
    metrics_table.print(std::cout);
  }

  std::cout << "\nper-request bits invariant to cap/threads/rate: "
            << (bits_invariant ? "yes" : "NO") << "\n";

  bool speedup_ok = true;
  if (gate_speedup) {
    const double ratio = serial_cap1_overload_rps > 0.0
                             ? serial_batched_overload_rps /
                                   serial_cap1_overload_rps
                             : 0.0;
    speedup_ok = ratio >= 2.0;
    std::cout << "speedup gate (overload row, serial spec): batched "
              << util::fixed(serial_batched_overload_rps, 0) << " rps vs cap1 "
              << util::fixed(serial_cap1_overload_rps, 0) << " rps = "
              << util::fixed(ratio, 2) << "x (need >= 2.00x): "
              << (speedup_ok ? "pass" : "FAIL") << "\n";
  }

  if (!json_path.empty()) {
    bench::write_json(json_path, "serve_latency",
                      {{"latency", &latency_table},
                       {"projected", &projected_table},
                       {"metrics", &metrics_table}});
  }
  obs_options.finish();

  const bool flags_ok = bench::warn_unconsumed(cli) == 0;
  return (bits_invariant && speedup_ok && flags_ok) ? 0 : 1;
}
