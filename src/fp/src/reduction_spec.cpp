#include "fpna/fp/reduction_spec.hpp"

#include <stdexcept>

#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/simd.hpp"

namespace fpna::fp {

namespace {

std::string lane_counts_list() {
  std::string out;
  for (const std::size_t l : kSimdLaneCounts) {
    if (!out.empty()) out += ", ";
    out += std::to_string(l);
  }
  return out;
}

/// Parses a "simd<L>" token (the text between '@' and the first ':').
/// Unknown counts throw listing the valid set, so "kahan@simd3" is as
/// self-explaining as a typo'd algorithm or dtype key.
std::uint8_t parse_simd_lanes(std::string_view token) {
  const std::string_view digits = token.substr(4);  // past "simd"
  std::size_t lanes = 0;
  bool ok = !digits.empty() && digits.size() <= 3;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    lanes = lanes * 10 + static_cast<std::size_t>(c - '0');
  }
  if (!ok || !simd_lane_count_supported(lanes)) {
    throw std::invalid_argument(
        "bad SIMD lane token '" + std::string(token) +
        "'; lane-blocked specs are <algorithm>@simd<L> with L in {" +
        lane_counts_list() + "} (e.g. kahan@simd8, kahan@simd8:bf16:f32)");
  }
  return static_cast<std::uint8_t>(lanes);
}

}  // namespace

std::string to_string(const ReductionSpec& spec) {
  std::string out = to_string(spec.algorithm);
  if (spec.native() && !spec.lane_blocked()) return out;
  out += '@';
  if (spec.lane_blocked()) {
    out += "simd";
    out += std::to_string(static_cast<std::size_t>(spec.lanes));
    if (!spec.native()) out += ':';
  }
  if (!spec.native()) {
    out += to_string(spec.storage);
    out += ':';
    out += to_string(spec.accumulate);
  }
  return out;
}

ReductionSpec parse_reduction_spec(std::string_view name) {
  ReductionSpec spec;
  const std::size_t at = name.find('@');
  // The algorithm key validates against the registry: at() throws listing
  // every registered name, so a typo'd "kahann@bf16:f32" is
  // self-explaining.
  spec.algorithm = AlgorithmRegistry::instance().at(name.substr(0, at)).id;
  if (at == std::string_view::npos) return spec;

  std::string_view rest = name.substr(at + 1);
  // Optional leading lane token: "<algo>@simd<L>[:<dtypes>]". No dtype
  // key starts with "simd", so the prefix is unambiguous.
  if (rest.substr(0, 4) == "simd") {
    const std::size_t colon = rest.find(':');
    spec.lanes = parse_simd_lanes(rest.substr(0, colon));
    if (colon == std::string_view::npos) return spec;
    rest = rest.substr(colon + 1);
  }

  const std::size_t colon = rest.find(':');
  spec.storage = parse_dtype(rest.substr(0, colon));
  // "<algo>@<dtype>" means storage and accumulate both at <dtype> - the
  // pure-precision (no mixed accumulation) reading.
  spec.accumulate = colon == std::string_view::npos
                        ? spec.storage
                        : parse_dtype(rest.substr(colon + 1));
  return spec;
}

}  // namespace fpna::fp
