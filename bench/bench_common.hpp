#pragma once
// Shared helpers for the experiment harnesses: seeded data generation,
// the standard CLI contract (--runs, --size, --seed, --full, --csv,
// --json=<path>, --trace=<path>, --provenance=<path>), bit-pattern
// fingerprints and the machine-readable JSON emitter behind the CI
// determinism gate.

#include <bit>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fpna/obs/recorder.hpp"
#include "fpna/util/cli.hpp"
#include "fpna/util/rng.hpp"
#include "fpna/util/table.hpp"

namespace fpna::bench {

inline std::vector<double> uniform_array(std::size_t n, double lo, double hi,
                                         std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

inline std::vector<double> normal_array(std::size_t n, double mean,
                                        double sigma, std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  util::Normal dist(mean, sigma);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// ------------------------------------------------ bit fingerprints -------

/// FNV-1a 64-bit over a stream of words: two buffers share a fingerprint
/// iff (modulo a hash collision) they share every bit - the "bits" column
/// the CI determinism gate diffs across two bench runs.
class BitFingerprint {
 public:
  void feed(std::uint64_t word) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (word >> (8 * byte)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }
  void feed(double x) noexcept { feed(std::bit_cast<std::uint64_t>(x)); }
  void feed(float x) noexcept {
    feed(static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(x)));
  }
  template <typename T>
  void feed(std::span<const T> values) noexcept {
    for (const T v : values) feed(v);
  }
  std::uint64_t value() const noexcept { return hash_; }

  /// Fixed-width hex, the form the JSON/table columns carry.
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[static_cast<std::size_t>(15 - i)] = digits[(hash_ >> (4 * i)) & 0xf];
    }
    return out;
  }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

// ------------------------------------------------------ JSON emitter -----

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* digits = "0123456789abcdef";
          out += "\\u00";
          out += digits[(c >> 4) & 0xf];
          out += digits[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct NamedTable {
  std::string name;
  const util::Table* table = nullptr;
};

/// Writes the bench's tables as one JSON document:
///   {"bench": <name>, "tables": [{"name", "headers", "rows"}, ...]}
/// scripts/bench_json_diff.py compares the bit-pattern columns (headers
/// containing "bits" or "ulps") of rows whose reproducibility column
/// ("reproducible" / "run-to-run stable") reads "yes" across two dumps.
inline void write_json(const std::string& path, const std::string& bench_name,
                       const std::vector<NamedTable>& tables) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json: cannot open " + path);
  const auto emit_strings = [&out](const std::vector<std::string>& values) {
    out << "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << json_escape(values[i]) << '"';
    }
    out << "]";
  };
  out << "{\n  \"bench\": \"" << json_escape(bench_name)
      << "\",\n  \"tables\": [";
  for (std::size_t t = 0; t < tables.size(); ++t) {
    out << (t == 0 ? "" : ",") << "\n    {\n      \"name\": \""
        << json_escape(tables[t].name) << "\",\n      \"headers\": ";
    emit_strings(tables[t].table->headers());
    out << ",\n      \"rows\": [";
    const auto& rows = tables[t].table->row_data();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      out << (r == 0 ? "" : ",") << "\n        ";
      emit_strings(rows[r]);
    }
    out << (rows.empty() ? "]" : "\n      ]") << "\n    }";
  }
  out << (tables.empty() ? "]" : "\n  ]") << "\n}\n";
  if (!out) throw std::runtime_error("write_json: write failed: " + path);
}

// ------------------------------------------------------ observability ----

/// The --trace=<file> / --provenance=<file> contract shared by the bench
/// harnesses. Either flag attaches an obs::Recorder (recorder() != nullptr)
/// that the harness threads through the EvalContexts of its *correctness*
/// passes - timing loops stay untraced so instrumentation never skews the
/// numbers being measured. finish() writes whichever outputs were
/// requested; two provenance dumps of a reproducible configuration feed
/// scripts/trace_divergence.py (the CI trace gate).
class ObsOptions {
 public:
  explicit ObsOptions(const util::Cli& cli)
      : trace_path_(cli.text("trace", "")),
        provenance_path_(cli.text("provenance", "")) {
    if (!trace_path_.empty() || !provenance_path_.empty()) {
      recorder_ = std::make_unique<obs::Recorder>();
    }
  }

  obs::Recorder* recorder() const noexcept { return recorder_.get(); }
  bool enabled() const noexcept { return recorder_ != nullptr; }

  /// Rows of the recorder's metrics registry as a printable/JSON-able
  /// table (empty table when tracing is off).
  util::Table metrics_table() const {
    util::Table table({"metric", "type", "value", "samples"});
    if (recorder_ != nullptr) {
      for (const auto& row : recorder_->metrics().snapshot()) {
        table.add_row({row.name, row.type, row.value, row.count});
      }
    }
    return table;
  }

  /// Writes the Chrome trace and/or provenance JSONL the flags asked for.
  void finish() const {
    if (recorder_ == nullptr) return;
    if (!trace_path_.empty()) {
      recorder_->write_chrome_trace(trace_path_);
      std::cerr << "trace: " << recorder_->event_count() << " events -> "
                << trace_path_ << "\n";
    }
    if (!provenance_path_.empty()) {
      recorder_->write_provenance_jsonl(provenance_path_);
      std::cerr << "provenance: " << recorder_->provenance_count()
                << " records -> " << provenance_path_ << "\n";
    }
  }

 private:
  std::string trace_path_;
  std::string provenance_path_;
  std::unique_ptr<obs::Recorder> recorder_;
};

/// Warns about unknown flags (after all lookups) and returns the count.
inline int warn_unconsumed(const util::Cli& cli) {
  const auto leftover = cli.unconsumed();
  for (const auto& name : leftover) {
    std::cerr << "warning: unknown flag --" << name << "\n";
  }
  return static_cast<int>(leftover.size());
}

}  // namespace fpna::bench
