// Walkthrough: data-parallel GNN training over the fpna::comm process
// group - the paper's reproducibility story at distributed-training scale.
//
// Trains the same GraphSAGE model three ways on a simulated 4-rank group
// (identical initial weights, identical data shards, deterministic local
// kernels; the gradient allreduce is the only difference):
//
//   * reproducible  - bitwise identical weights on every run,
//   * ring          - deterministic, but a different association than the
//                     unbucketed exchange (re-layout moves the bits),
//   * arrival tree  - a unique model every run.
//
// Build & run:  ./build/examples/data_parallel_training

#include <cstdio>

#include "fpna/comm/process_group.hpp"
#include "fpna/comm/schedule.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/dl/data_parallel.hpp"

int main() {
  using namespace fpna;

  auto config = dl::DatasetConfig::small();
  config.num_nodes = 160;
  config.num_undirected_edges = 400;
  config.num_features = 48;
  const auto dataset = dl::make_synthetic_citation_dataset(config);

  dl::DataParallelConfig dp;
  dp.base.epochs = 5;
  dp.base.hidden = 8;
  dp.ranks = 4;
  dp.bucket_cap_elements = 256;  // several buckets per exchange

  std::printf("data-parallel GraphSAGE, %zu ranks, %d epochs, bucket cap "
              "%zu elements\n\n",
              dp.ranks, dp.base.epochs, dp.bucket_cap_elements);
  for (const auto algorithm : {collective::Algorithm::kReproducible,
                               collective::Algorithm::kRing,
                               collective::Algorithm::kArrivalTree}) {
    dp.algorithm = algorithm;
    const auto kernel = [&](core::RunContext& run) {
      return dl::train_data_parallel(dataset, dp, run).final_weights;
    };
    const auto cert = core::certify_deterministic(kernel, 5, 42);
    core::RunContext run(42, 0);
    const auto result = dl::train_data_parallel(dataset, dp, run);
    std::printf("%-18s run-to-run bitwise stable: %-3s  final loss %.6f  "
                "train accuracy %.3f\n",
                collective::to_string(algorithm),
                cert.deterministic ? "yes" : "NO",
                result.epoch_losses.back(), result.train_accuracy);
  }
  // Wire schedules: the same reproducible training (backward-overlapped
  // bucket firing) over the allgather, ring and butterfly message paths.
  // The serialized-superaccumulator exchange makes the bits identical on
  // every wire; the schedules move O(n) gradient bytes per rank where the
  // allgather backend ships O(n*P) - measured by the group's ledger.
  std::printf("\nwire schedules (reproducible collective):\n");
  dp.algorithm = collective::Algorithm::kReproducible;
  for (const auto wire : {comm::WirePath::kAllgather, comm::WirePath::kRing,
                          comm::WirePath::kButterfly}) {
    comm::SimProcessGroup pg(dp.ranks, wire);
    dp.wire = wire;
    core::RunContext run(42, 0);
    const auto result = dl::train_data_parallel(dataset, dp, run, pg);
    const comm::Traffic traffic = pg.traffic(0);
    std::printf("  %-10s final loss %.6f  rank-0 bytes sent %9llu "
                "(%llu messages)\n",
                comm::to_string(wire), result.epoch_losses.back(),
                static_cast<unsigned long long>(traffic.bytes_sent),
                static_cast<unsigned long long>(traffic.messages));
  }
  std::printf(
      "\nReading: every rank's local computation is deterministic; the\n"
      "collective's combining order alone decides whether the trained\n"
      "model is reproducible (paper SVI, measured end to end) - and the\n"
      "wire schedule moves traffic, never bits.\n");
  return 0;
}
