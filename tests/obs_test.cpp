// Tests for fpna::obs: the recorder's disabled-is-free / enabled-moves-
// no-bits contract, thread-count-invariant provenance, the metrics
// registry, the TrafficLedger view, and the first-divergence localizer
// (scripts/trace_divergence.py) end to end.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <bit>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fpna/comm/schedule.hpp"
#include "fpna/core/eval_context.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/dl/linalg.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/obs/clock.hpp"
#include "fpna/obs/metrics.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/reduce/cpu_sum.hpp"
#include "fpna/tensor/workload.hpp"
#include "fpna/util/rng.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::obs {
namespace {

dl::Matrix test_matrix(std::int64_t rows, std::int64_t cols,
                       std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  return tensor::random_uniform<float>(tensor::Shape{rows, cols}, -1e6, 1e6,
                                       rng);
}

std::vector<double> test_array(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(-1e6, 1e6);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Canonical textual form of a provenance record: every logical field,
/// no wall-clock, no OS thread ids - two runs of the same computation
/// must produce equal streams regardless of pool width.
std::string record_text(const StampedProvenance& p) {
  std::ostringstream out;
  out << p.frame << '|' << p.scope << '|' << p.record.site << '|'
      << p.record.kind << '|' << p.record.index << '|' << p.record.sub_index
      << '|' << p.record.spec << '|' << p.seq << '|' << hex64(p.record.bits)
      << '|' << p.record.elements;
  return out.str();
}

std::vector<std::string> provenance_texts(const Recorder& recorder) {
  std::vector<std::string> texts;
  for (const auto& p : recorder.sorted_provenance()) {
    texts.push_back(record_text(p));
  }
  return texts;
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, CounterFoldsConcurrentShards) {
  Metrics metrics;
  Counter& hits = metrics.counter("test.hits");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&hits] {
      for (int i = 0; i < 1000; ++i) hits.add(3);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hits.value(), 8u * 1000u * 3u);
  // Same name, same counter object.
  EXPECT_EQ(&metrics.counter("test.hits"), &hits);
  metrics.reset_counters();
  EXPECT_EQ(hits.value(), 0u);
}

TEST(Metrics, TimerStatTracksExtremes) {
  TimerStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.min_ns(), 0u);  // empty: sentinel reads as 0
  stat.record_ns(500);
  stat.record_ns(100);
  stat.record_ns(900);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_EQ(stat.total_ns(), 1500u);
  EXPECT_EQ(stat.min_ns(), 100u);
  EXPECT_EQ(stat.max_ns(), 900u);
  EXPECT_DOUBLE_EQ(stat.mean_us(), 0.5);
}

TEST(Metrics, SnapshotIsSortedAndTyped) {
  Metrics metrics;
  metrics.counter("b.count").add(7);
  metrics.gauge("a.level").set(2.5);
  metrics.timer("c.span").record_ns(4000);
  const auto rows = metrics.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  // Sorted by (type, name): counter, gauge, timer.
  EXPECT_EQ(rows[0].name, "b.count");
  EXPECT_EQ(rows[0].type, "counter");
  EXPECT_EQ(rows[0].value, "7");
  EXPECT_EQ(rows[1].name, "a.level");
  EXPECT_EQ(rows[1].type, "gauge");
  EXPECT_EQ(rows[2].name, "c.span");
  EXPECT_EQ(rows[2].type, "timer");
  EXPECT_EQ(rows[2].count, "1");
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.percentile(0.99), 0.0);  // empty reads as 0
  // bit_width: 0 -> bucket 0, 1 -> 1, [2,3] -> 2, [4,7] -> 3, ...
  histogram.record(0);
  histogram.record(1);
  histogram.record(2);
  histogram.record(3);
  histogram.record(7);
  histogram.record(~std::uint64_t{0});  // top bucket, no overflow
  EXPECT_EQ(histogram.count(), 6u);
  const auto buckets = histogram.bucket_counts();
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(buckets[64], 1u);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(Metrics, HistogramPercentilesBracketTheSample) {
  Histogram histogram;
  // 1000 values spread across [1, 1000]: the log2 estimate cannot be
  // exact, but each percentile must land inside the covering power-of-
  // two range of the true order statistic.
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.record(v);
  const double p50 = histogram.percentile(0.50);  // true ~500, range [512,1024)
  EXPECT_GE(p50, 256.0);
  EXPECT_LT(p50, 1024.0);
  const double p99 = histogram.percentile(0.99);  // true ~990
  EXPECT_GE(p99, 512.0);
  EXPECT_LT(p99, 1024.0);
  EXPECT_LE(histogram.percentile(0.50), histogram.percentile(0.95));
  EXPECT_LE(histogram.percentile(0.95), histogram.percentile(0.99));
  // A single-value histogram estimates that value's bucket floor.
  Histogram single;
  single.record(100);  // bucket 7: [64, 128)
  const double p = single.percentile(0.50);
  EXPECT_GE(p, 64.0);
  EXPECT_LT(p, 128.0);
}

TEST(Metrics, HistogramFoldsConcurrentShards) {
  Histogram histogram;
  constexpr std::size_t kThreads = 8, kEach = 10'000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (std::size_t i = 0; i < kEach; ++i) {
        histogram.record(1000 + i % 7);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.count(), kThreads * kEach);
  // All values in [1000, 1006] share bit_width 10.
  EXPECT_EQ(histogram.bucket_counts()[10], kThreads * kEach);
}

TEST(Metrics, HistogramSnapshotRowCarriesPercentiles) {
  Metrics metrics;
  auto& histogram = metrics.histogram("serve.latency_ns");
  for (std::uint64_t v = 0; v < 64; ++v) histogram.record(1 << 10);
  const auto rows = metrics.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "serve.latency_ns");
  EXPECT_EQ(rows[0].type, "histogram");
  EXPECT_EQ(rows[0].count, "64");
  EXPECT_EQ(rows[0].value.rfind("p50=", 0), 0u);
  EXPECT_NE(rows[0].value.find("/p95="), std::string::npos);
  EXPECT_NE(rows[0].value.find("/p99="), std::string::npos);
  // Same name returns the same instance.
  EXPECT_EQ(&metrics.histogram("serve.latency_ns"), &histogram);
}

TEST(Metrics, ScopedTimerRecordsOnExit) {
  TimerStat stat;
  {
    const ScopedTimer timer(&stat);
    EXPECT_EQ(stat.count(), 0u);  // not yet: destructor records
  }
  EXPECT_EQ(stat.count(), 1u);
  const ScopedTimer noop(nullptr);  // nullptr target is a no-op
}

TEST(Clock, NowIsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

// ----------------------------------------------------- traffic ledger --

TEST(TrafficLedger, SurfacesObsCounters) {
  Metrics metrics;
  comm::TrafficLedger ledger(2, &metrics);
  ledger.record_message(0, 1, 64);
  ledger.record_exchange(1, 100, 200, 3);
  EXPECT_EQ(ledger.of_rank(0).bytes_sent, 64u);
  EXPECT_EQ(ledger.of_rank(1).bytes_received, 64u + 200u);
  EXPECT_EQ(ledger.total().messages, 1u + 3u);
  // The per-rank counts are plain obs counters in the shared registry.
  EXPECT_EQ(metrics.counter("comm.traffic.rank0.bytes_sent").value(), 64u);
  EXPECT_EQ(metrics.counter("comm.traffic.rank1.messages").value(), 3u);
  ledger.reset();
  EXPECT_EQ(ledger.total().bytes_sent, 0u);
  // Self-owned registry works the same way.
  comm::TrafficLedger owned(1);
  owned.record_message(0, 0, 8);
  EXPECT_EQ(owned.total().bytes_sent, 8u);
}

// ------------------------------------------------------------ recorder --

TEST(Recorder, DisabledContextRecordsNothingAndMovesNoBits) {
  // A recorder nobody writes to stays empty...
  Recorder idle;
  EXPECT_EQ(idle.event_count(), 0u);
  EXPECT_EQ(idle.provenance_count(), 0u);

  // ...and attaching one must not move a single bit, for every registry
  // accumulator (tracing is observation, never computation).
  const dl::Matrix a = test_matrix(24, 24, 11);
  const dl::Matrix b = test_matrix(24, 24, 12);
  const auto data = test_array(4096, 13);
  util::ThreadPool pool(4);
  for (const auto& entry : fp::AlgorithmRegistry::instance().entries()) {
    core::EvalContext plain;
    plain.accumulator = entry.id;
    plain.pool = &pool;
    Recorder recorder;
    const core::EvalContext traced = plain.with_recorder(&recorder);
    EXPECT_TRUE(dl::matmul(a, b, plain).bitwise_equal(
        dl::matmul(a, b, traced)))
        << "matmul bits moved under tracing for " << entry.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reduce::cpu_sum(data, plain, 4)),
              std::bit_cast<std::uint64_t>(reduce::cpu_sum(data, traced, 4)))
        << "cpu_sum bits moved under tracing for " << entry.name;
    EXPECT_GT(recorder.provenance_count(), 0u);
    EXPECT_GT(recorder.event_count(), 0u);
  }
}

TEST(Recorder, ProvenanceIsThreadCountInvariant) {
  // The same logical computation through a serial context and pools of
  // different widths must emit the *identical* provenance stream: record
  // coordinates are derived from problem shape, never from pool width or
  // which worker ran a block.
  const dl::Matrix a = test_matrix(32, 17, 21);
  const dl::Matrix b = test_matrix(17, 9, 22);
  const auto data = test_array(10000, 23);

  const auto run_traced = [&](util::ThreadPool* pool) {
    Recorder recorder;
    core::EvalContext ctx;
    ctx.accumulator = fp::parse_reduction_spec("kahan");
    ctx.pool = pool;
    ctx.recorder = &recorder;
    (void)dl::matmul(a, b, ctx);
    (void)reduce::cpu_sum(data, ctx, 4);  // chunking fixed by num_threads
    return provenance_texts(recorder);
  };

  const auto serial = run_traced(nullptr);
  ASSERT_FALSE(serial.empty());
  util::ThreadPool pool2(2), pool8(8);
  EXPECT_EQ(run_traced(&pool2), serial);
  EXPECT_EQ(run_traced(&pool8), serial);
}

TEST(Recorder, ScopesNestAndSeparateSeq) {
  EXPECT_EQ(current_scope(), "");
  {
    const ScopeGuard outer("bucket/3");
    EXPECT_EQ(current_scope(), "bucket/3");
    const ScopeGuard inner("retry");
    EXPECT_EQ(current_scope(), "bucket/3/retry");
  }
  EXPECT_EQ(current_scope(), "");

  // seq restarts per scope, so a record stream's stamps don't depend on
  // what the emitting thread did in *other* scopes beforehand.
  Recorder recorder;
  recorder.provenance({"site", "kind", 0, -1, "s", 1, 1});
  {
    const ScopeGuard scope("bucket/0");
    recorder.provenance({"site", "kind", 1, -1, "s", 2, 1});
  }
  const auto sorted = recorder.sorted_provenance();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].seq, 0u);
  EXPECT_EQ(sorted[1].seq, 0u);
}

TEST(Recorder, WritesChromeTraceAndSortedJsonl) {
  Recorder recorder;
  {
    Span span(&recorder, "unit.work");
    span.arg("items", std::int64_t{3});
    span.arg("mode", std::string_view("test"));
  }
  recorder.provenance({"unit", "chunk", 1, -1, "serial", 0xabcdull, 8});
  recorder.provenance({"unit", "chunk", 0, -1, "serial", 0x1234ull, 8});

  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "obs_test_trace.json";
  const std::string prov_path = dir + "obs_test_prov.jsonl";
  recorder.write_chrome_trace(trace_path);
  recorder.write_provenance_jsonl(prov_path);

  std::ifstream trace(trace_path);
  std::stringstream trace_text;
  trace_text << trace.rdbuf();
  EXPECT_NE(trace_text.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("\"unit.work\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("\"items\": 3"), std::string::npos);

  // JSONL comes out in canonical order: chunk 0 before chunk 1.
  std::ifstream prov(prov_path);
  std::string line0, line1;
  ASSERT_TRUE(std::getline(prov, line0));
  ASSERT_TRUE(std::getline(prov, line1));
  EXPECT_NE(line0.find("\"index\": 0"), std::string::npos);
  EXPECT_NE(line0.find("0000000000001234"), std::string::npos);
  EXPECT_NE(line1.find("\"index\": 1"), std::string::npos);
}

// ----------------------------------------------------------- localizer --

int run_localizer(const std::string& file_a, const std::string& file_b,
                  const std::string& out_path) {
  const std::string script =
      std::string(FPNA_SOURCE_DIR) + "/scripts/trace_divergence.py";
  const std::string command = "python3 " + script + " " + file_a + " " +
                              file_b + " > " + out_path + " 2>&1";
  const int status = std::system(command.c_str());
  return WEXITSTATUS(status);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(TraceDivergence, CleanOnReproducibleDoubleRunLocalizesSeededShuffle) {
  const dl::Matrix a = test_matrix(24, 32, 31);
  const dl::Matrix b = test_matrix(32, 16, 32);

  const auto traced_split_k = [&](std::uint64_t run_id,
                                  const std::string& path) {
    Recorder recorder;
    core::RunContext run(77, run_id);
    core::EvalContext ctx = core::EvalContext::nondeterministic_on(run);
    ctx.recorder = &recorder;
    (void)dl::matmul_split_k(a, b, 8, ctx);
    recorder.write_provenance_jsonl(path);
  };

  const std::string dir = ::testing::TempDir();
  const std::string prov_a = dir + "obs_splitk_a.jsonl";
  const std::string prov_b = dir + "obs_splitk_b.jsonl";
  const std::string prov_a2 = dir + "obs_splitk_a2.jsonl";
  const std::string report = dir + "obs_localizer_out.txt";

  // Reproducible double-run (same run identity): clean exit, no report.
  traced_split_k(0, prov_a);
  traced_split_k(0, prov_a2);
  EXPECT_EQ(run_localizer(prov_a, prov_a2, report), 0)
      << slurp(report);
  EXPECT_NE(slurp(report).find("identical"), std::string::npos);

  // A different run identity draws a different combine order: partials
  // agree (deterministic chunks), the combine steps diverge - and the
  // localizer names the split-k combine, not some downstream symptom.
  traced_split_k(1, prov_b);
  EXPECT_EQ(run_localizer(prov_a, prov_b, report), 1) << slurp(report);
  const std::string text = slurp(report);
  EXPECT_NE(text.find("dl.matmul_split_k"), std::string::npos) << text;
  // Every "partial" record matched; only combine coordinates appear.
  EXPECT_EQ(text.find("kind=partial"), std::string::npos) << text;
}

}  // namespace
}  // namespace fpna::obs
