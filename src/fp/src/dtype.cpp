#include "fpna/fp/dtype.hpp"

#include <stdexcept>

namespace fpna::fp {

const char* to_string(Dtype dtype) noexcept {
  switch (dtype) {
    case Dtype::kNative: return "native";
    case Dtype::kF64: return "f64";
    case Dtype::kF32: return "f32";
    case Dtype::kBf16: return "bf16";
  }
  return "?";
}

std::string dtype_keys() {
  return "native f64 (alias: double) f32 (alias: float) bf16";
}

Dtype parse_dtype(std::string_view name) {
  if (name == "native") return Dtype::kNative;
  if (name == "f64" || name == "double") return Dtype::kF64;
  if (name == "f32" || name == "float") return Dtype::kF32;
  if (name == "bf16") return Dtype::kBf16;
  throw std::invalid_argument("unknown dtype '" + std::string(name) +
                              "'; valid: " + dtype_keys());
}

}  // namespace fpna::fp
