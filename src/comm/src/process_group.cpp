#include "fpna/comm/process_group.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/obs/recorder.hpp"

#ifdef FPNA_HAVE_MPI
#include <mpi.h>
#endif

namespace fpna::comm {

template <typename T>
std::vector<T> exact_elementwise_allreduce(
    const collective::RankDataT<T>& contributions,
    const fp::ReductionSpec& spec) {
  collective::validate(contributions);
  return fp::visit_reduction<T>(
      spec, [&](auto tag, auto acc_c, auto quantize) -> std::vector<T> {
        if constexpr (!decltype(tag)::traits.exact_merge) {
          throw std::invalid_argument(
              "reproducible allreduce: accumulator '" +
              fp::AlgorithmRegistry::instance().at(decltype(tag)::id).name +
              "' has no exact merge; choose superaccumulator or binned");
        } else {
          using A = typename decltype(acc_c)::type;
          const std::size_t n = contributions.front().size();
          std::vector<T> result(n, T{0});
          for (std::size_t i = 0; i < n; ++i) {
            typename decltype(tag)::template accumulator_t<A> acc;
            for (const auto& rank : contributions) {
              acc.add(static_cast<A>(quantize(rank[i])));
            }
            result[i] = static_cast<T>(acc.result());
          }
          return result;
        }
      });
}

template std::vector<double> exact_elementwise_allreduce<double>(
    const collective::RankData&, const fp::ReductionSpec&);
template std::vector<float> exact_elementwise_allreduce<float>(
    const collective::RankDataF&, const fp::ReductionSpec&);

namespace {

/// Shared backend combine of the allgather wire: the simulated group
/// reduces `contributions` directly; the MPI group calls this on the
/// allgathered rank buffers, so both backends compute identical bits from
/// identical inputs.
template <typename T>
std::vector<T> combine(const collective::RankDataT<T>& contributions,
                       collective::Algorithm algorithm,
                       const core::EvalContext& ctx,
                       std::size_t block_elements) {
  if (algorithm == collective::Algorithm::kReproducible &&
      ctx.accumulator.has_value()) {
    return exact_elementwise_allreduce(contributions, *ctx.accumulator);
  }
  return collective::allreduce(contributions, algorithm, ctx, block_elements);
}

/// Deterministic algorithms with a wire schedule route through the
/// reduce-scatter/allgather primitives; arrival-tree always combines on
/// the allgather backend (its arrival-order draw has no fixed plan).
bool use_schedule(WirePath wire, collective::Algorithm algorithm) {
  return wire != WirePath::kAllgather &&
         algorithm != collective::Algorithm::kArrivalTree;
}

void check_schedule(const CollectiveSchedule& schedule, std::size_t ranks,
                    std::size_t elements, collective::Algorithm algorithm) {
  if (schedule.ranks() != ranks || schedule.elements() != elements) {
    throw std::invalid_argument(
        "reduce_scatter: schedule shape mismatch (schedule is " +
        std::to_string(schedule.ranks()) + " ranks x " +
        std::to_string(schedule.elements()) + " elements)");
  }
  switch (algorithm) {
    case collective::Algorithm::kRing:
      if (schedule.path() != WirePath::kRing) {
        throw std::invalid_argument(
            "reduce_scatter: the ring algorithm's association is only "
            "reproduced by the ring schedule");
      }
      return;
    case collective::Algorithm::kRecursiveDoubling:
      if (schedule.path() != WirePath::kButterfly) {
        throw std::invalid_argument(
            "reduce_scatter: recursive doubling's association is only "
            "reproduced by the butterfly schedule");
      }
      return;
    case collective::Algorithm::kReproducible:
      return;  // order-invariant: any schedule
    case collective::Algorithm::kArrivalTree:
      break;
  }
  throw std::invalid_argument(
      "reduce_scatter: arrival-tree has no wire schedule");
}

/// The value-mode (rounded) reduce-scatter executor over in-process rank
/// buffers: walks the schedule's reduce messages, combining in each
/// message's operand order, then assembles the final buffer from the
/// shard owners. The schedules guarantee no in-step payload range is
/// written by an earlier message of the same step, so plain in-order
/// execution reproduces the wire semantics exactly.
template <typename T>
std::vector<T> sim_value_reduce_scatter(const CollectiveSchedule& schedule,
                                        const collective::RankDataT<T>& data,
                                        TrafficLedger& ledger,
                                        obs::Recorder* recorder) {
  obs::Span span(recorder, "comm.reduce_scatter.value");
  span.arg("wire", to_string(schedule.path()));
  span.arg("elements", static_cast<std::uint64_t>(schedule.elements()));
  collective::RankDataT<T> buffers = data;
  const auto& messages = schedule.messages();
  for (std::size_t m = 0; m < schedule.reduce_message_count(); ++m) {
    const Message& msg = messages[m];
    ledger.record_message(msg.sender, msg.receiver,
                          msg.range.size() * sizeof(T));
    const auto& src = buffers[msg.sender];
    auto& dst = buffers[msg.receiver];
    if (msg.incoming_left) {
      for (std::size_t i = msg.range.begin; i < msg.range.end; ++i) {
        dst[i] = static_cast<T>(src[i] + dst[i]);
      }
    } else {
      for (std::size_t i = msg.range.begin; i < msg.range.end; ++i) {
        dst[i] = static_cast<T>(dst[i] + src[i]);
      }
    }
    if (recorder != nullptr) {
      // The receiver's freshly combined range: (step, receiver) is a
      // unique wire coordinate within the reduce phase of any schedule,
      // and emission happens here on the calling thread in message
      // order, so provenance is deterministic by construction.
      obs::Fingerprint print;
      for (std::size_t i = msg.range.begin; i < msg.range.end; ++i) {
        print.feed(dst[i]);
      }
      recorder->provenance({"comm.wire", "wire_step",
                            static_cast<std::int64_t>(msg.step),
                            static_cast<std::int64_t>(msg.receiver),
                            to_string(schedule.path()), print.value(),
                            msg.range.size()});
    }
  }
  std::vector<T> result(schedule.elements(), T{0});
  for (std::size_t r = 0; r < schedule.ranks(); ++r) {
    const ShardRange shard = schedule.shards()[r];
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      result[i] = buffers[r][i];
    }
  }
  return result;
}

/// Resolves the reproducible wire spec: only the superaccumulator's exact
/// state has a bounded serialized form, so only it may carry a
/// schedule-based exchange (binned's exact state is its whole input
/// buffer). Returns the spec to visit with.
fp::ReductionSpec wire_reproducible_spec(const core::EvalContext& ctx) {
  const fp::ReductionSpec spec =
      ctx.accumulator.value_or(fp::AlgorithmId::kSuperaccumulator);
  if (spec.algorithm != fp::AlgorithmId::kSuperaccumulator) {
    if (!fp::traits_of(spec).exact_merge) {
      throw std::invalid_argument(
          "reproducible allreduce: accumulator '" +
          fp::AlgorithmRegistry::instance().at(spec.algorithm).name +
          "' has no exact merge; choose superaccumulator or binned");
    }
    throw std::invalid_argument(
        "reproducible wire exchange: only the superaccumulator's exact "
        "state has a bounded serialized form; '" +
        fp::AlgorithmRegistry::instance().at(spec.algorithm).name +
        "' cannot travel a ring/butterfly schedule (use the allgather "
        "wire)");
  }
  return spec;
}

constexpr std::size_t kStateBytes = fp::Superaccumulator::kWireWords * 8;

/// State-mode reduce-scatter: every message carries serialized
/// superaccumulator states (the exact value, not a rounding of it), each
/// hop merges exactly, and only the shard owner rounds - so the bits are
/// independent of the schedule and identical to the allgather backend's
/// exact path. The serialize/deserialize round trip runs even in the
/// simulation, certifying the wire format itself.
template <typename T>
std::vector<T> sim_state_reduce_scatter(const CollectiveSchedule& schedule,
                                        const collective::RankDataT<T>& data,
                                        const fp::ReductionSpec& spec,
                                        TrafficLedger& ledger,
                                        obs::Recorder* recorder) {
  obs::Span span(recorder, "comm.reduce_scatter.state");
  span.arg("wire", to_string(schedule.path()));
  span.arg("elements", static_cast<std::uint64_t>(schedule.elements()));
  const std::string spec_str =
      recorder != nullptr ? fp::to_string(spec) : std::string();
  const std::size_t n = schedule.elements();
  return fp::visit_reduction<T>(
      spec, [&](auto, auto acc_c, auto quantize) -> std::vector<T> {
        using A = typename decltype(acc_c)::type;
        std::vector<std::vector<fp::Superaccumulator>> states(
            schedule.ranks(), std::vector<fp::Superaccumulator>(n));
        for (std::size_t r = 0; r < schedule.ranks(); ++r) {
          for (std::size_t i = 0; i < n; ++i) {
            states[r][i].add(
                static_cast<double>(static_cast<A>(quantize(data[r][i]))));
          }
        }
        std::vector<std::uint64_t> words(fp::Superaccumulator::kWireWords);
        const auto& messages = schedule.messages();
        for (std::size_t m = 0; m < schedule.reduce_message_count(); ++m) {
          const Message& msg = messages[m];
          ledger.record_message(msg.sender, msg.receiver,
                                msg.range.size() * kStateBytes);
          obs::Fingerprint print;  // over this message's wire payload
          for (std::size_t i = msg.range.begin; i < msg.range.end; ++i) {
            states[msg.sender][i].serialize(words);
            if (recorder != nullptr) {
              for (const std::uint64_t w : words) print.feed(w);
            }
            // add_wire merges the wire image in place - bitwise the
            // deserialize-then-add path, minus the copy.
            states[msg.receiver][i].add_wire(words);
          }
          if (recorder != nullptr) {
            recorder->provenance({"comm.wire", "wire_step",
                                  static_cast<std::int64_t>(msg.step),
                                  static_cast<std::int64_t>(msg.receiver),
                                  spec_str, print.value(), msg.range.size()});
          }
        }
        std::vector<T> result(n, T{0});
        for (std::size_t r = 0; r < schedule.ranks(); ++r) {
          const ShardRange shard = schedule.shards()[r];
          for (std::size_t i = shard.begin; i < shard.end; ++i) {
            result[i] =
                static_cast<T>(static_cast<A>(states[r][i].round()));
          }
        }
        return result;
      });
}

/// Copy-phase traffic of the schedule (the data itself is already
/// complete in the sim backend, which holds every shard).
template <typename T>
void sim_allgather_traffic(const CollectiveSchedule& schedule,
                           TrafficLedger& ledger, T /*element tag*/) {
  const auto& messages = schedule.messages();
  for (std::size_t m = schedule.reduce_message_count();
       m < messages.size(); ++m) {
    const Message& msg = messages[m];
    ledger.record_message(msg.sender, msg.receiver,
                          msg.range.size() * sizeof(T));
  }
}

/// Modelled traffic of the allgather backend: every rank ships its full
/// n-element buffer to the other P-1 ranks and receives theirs - the
/// O(n*P) baseline the schedules beat.
void record_allgather_backend_traffic(TrafficLedger& ledger,
                                      std::size_t ranks, std::size_t elements,
                                      std::size_t element_bytes,
                                      bool every_rank, std::size_t rank) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(ranks - 1) *
                              elements * element_bytes;
  if (every_rank) {
    for (std::size_t r = 0; r < ranks; ++r) {
      ledger.record_exchange(r, bytes, bytes, ranks - 1);
    }
  } else {
    ledger.record_exchange(rank, bytes, bytes, ranks - 1);
  }
}

}  // namespace

SimProcessGroup::SimProcessGroup(std::size_t ranks, WirePath wire)
    : ranks_(ranks), wire_(wire), ledger_(ranks) {
  if (ranks == 0) {
    throw std::invalid_argument("SimProcessGroup: zero ranks");
  }
}

namespace {

template <typename T>
std::vector<T> sim_allreduce(SimProcessGroup& pg, std::size_t ranks,
                             WirePath wire, TrafficLedger& ledger,
                             const collective::RankDataT<T>& contributions,
                             collective::Algorithm algorithm,
                             const core::EvalContext& ctx,
                             std::size_t block_elements) {
  if (contributions.size() != ranks) {
    throw std::invalid_argument(
        "SimProcessGroup::allreduce: expected " + std::to_string(ranks) +
        " rank contributions, got " + std::to_string(contributions.size()));
  }
  collective::validate(contributions);
  const std::size_t n = contributions.front().size();
  if (use_schedule(wire, algorithm)) {
    const auto schedule =
        CollectiveSchedule::for_algorithm(algorithm, wire, ranks, n);
    auto buffer = pg.reduce_scatter(contributions, schedule, algorithm, ctx);
    pg.allgather(buffer, schedule);
    return buffer;
  }
  record_allgather_backend_traffic(ledger, ranks, n, sizeof(T),
                                   /*every_rank=*/true, 0);
  return combine(contributions, algorithm, ctx, block_elements);
}

template <typename T>
std::vector<T> sim_reduce_scatter(std::size_t ranks, TrafficLedger& ledger,
                                  const collective::RankDataT<T>& data,
                                  const CollectiveSchedule& schedule,
                                  collective::Algorithm algorithm,
                                  const core::EvalContext& ctx) {
  if (data.size() != ranks) {
    throw std::invalid_argument(
        "SimProcessGroup::reduce_scatter: expected " + std::to_string(ranks) +
        " rank contributions");
  }
  collective::validate(data);
  check_schedule(schedule, ranks, data.front().size(), algorithm);
  if (algorithm == collective::Algorithm::kReproducible) {
    return sim_state_reduce_scatter(schedule, data,
                                    wire_reproducible_spec(ctx), ledger,
                                    ctx.recorder);
  }
  return sim_value_reduce_scatter(schedule, data, ledger, ctx.recorder);
}

}  // namespace

std::vector<double> SimProcessGroup::allreduce(
    const collective::RankData& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  return sim_allreduce(*this, ranks_, wire_, ledger_, contributions,
                       algorithm, ctx, block_elements);
}

std::vector<float> SimProcessGroup::allreduce(
    const collective::RankDataF& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  return sim_allreduce(*this, ranks_, wire_, ledger_, contributions,
                       algorithm, ctx, block_elements);
}

std::vector<double> SimProcessGroup::reduce_scatter(
    const collective::RankData& contributions,
    const CollectiveSchedule& schedule, collective::Algorithm algorithm,
    const core::EvalContext& ctx) {
  return sim_reduce_scatter(ranks_, ledger_, contributions, schedule,
                            algorithm, ctx);
}

std::vector<float> SimProcessGroup::reduce_scatter(
    const collective::RankDataF& contributions,
    const CollectiveSchedule& schedule, collective::Algorithm algorithm,
    const core::EvalContext& ctx) {
  return sim_reduce_scatter(ranks_, ledger_, contributions, schedule,
                            algorithm, ctx);
}

void SimProcessGroup::allgather(std::vector<double>& buffer,
                                const CollectiveSchedule& schedule) {
  if (buffer.size() != schedule.elements()) {
    throw std::invalid_argument(
        "SimProcessGroup::allgather: buffer/schedule size mismatch");
  }
  sim_allgather_traffic(schedule, ledger_, double{});
}

void SimProcessGroup::allgather(std::vector<float>& buffer,
                                const CollectiveSchedule& schedule) {
  if (buffer.size() != schedule.elements()) {
    throw std::invalid_argument(
        "SimProcessGroup::allgather: buffer/schedule size mismatch");
  }
  sim_allgather_traffic(schedule, ledger_, float{});
}

std::unique_ptr<ProcessGroup> make_process_group(std::size_t ranks,
                                                 WirePath wire) {
  return std::make_unique<SimProcessGroup>(ranks, wire);
}

#ifdef FPNA_HAVE_MPI

namespace {

MPI_Datatype mpi_type(double) { return MPI_DOUBLE; }
MPI_Datatype mpi_type(float) { return MPI_FLOAT; }

std::size_t mpi_world_size() {
  int initialized = 0;
  MPI_Initialized(&initialized);
  if (!initialized) {
    throw std::runtime_error(
        "MpiProcessGroup: MPI_Init must run before constructing the group");
  }
  int size = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  return static_cast<std::size_t>(size);
}

std::size_t mpi_world_rank() {
  int rank = 0;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  return static_cast<std::size_t>(rank);
}

/// Allgather every rank's local vector (equal lengths, checked) into the
/// rank-ordered RankData the shared combine consumes.
template <typename T>
collective::RankDataT<T> gather_contributions(const std::vector<T>& local,
                                              std::size_t ranks) {
  unsigned long n = local.size();
  unsigned long extents[2] = {n, n};
  MPI_Allreduce(MPI_IN_PLACE, &extents[0], 1, MPI_UNSIGNED_LONG, MPI_MIN,
                MPI_COMM_WORLD);
  MPI_Allreduce(MPI_IN_PLACE, &extents[1], 1, MPI_UNSIGNED_LONG, MPI_MAX,
                MPI_COMM_WORLD);
  if (extents[0] != extents[1]) {
    throw std::invalid_argument(
        "MpiProcessGroup::allreduce: rank vector length mismatch");
  }
  std::vector<T> flat(ranks * local.size());
  MPI_Allgather(local.data(), static_cast<int>(local.size()), mpi_type(T{}),
                flat.data(), static_cast<int>(local.size()), mpi_type(T{}),
                MPI_COMM_WORLD);
  collective::RankDataT<T> contributions(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    contributions[r].assign(
        flat.begin() + static_cast<std::ptrdiff_t>(r * local.size()),
        flat.begin() + static_cast<std::ptrdiff_t>((r + 1) * local.size()));
  }
  return contributions;
}

/// Per-rank tallies of one executed schedule phase.
struct WireStats {
  std::uint64_t words_sent = 0;
  std::uint64_t words_received = 0;
  std::uint64_t messages_sent = 0;
};

/// Walks [begin, end) of the schedule's messages step by step, calling
/// `payload(msg)` to snapshot this rank's outgoing buffer (posted with
/// MPI_Isend, tag = step) and `deliver(msg, words/values)` on each
/// received message, in schedule order. `words_per_element` sizes the
/// receive scratch. Every schedule guarantees a rank sends at most one
/// message per step, so (source, tag) pairs are unambiguous, and posting
/// the nonblocking sends before any receive makes the step deadlock-free.
template <typename Word, typename Payload, typename Deliver>
WireStats mpi_run_messages(const CollectiveSchedule& schedule,
                           std::size_t begin, std::size_t end,
                           std::size_t rank, MPI_Datatype dtype,
                           std::size_t words_per_element, Payload&& payload,
                           Deliver&& deliver) {
  const auto& messages = schedule.messages();
  WireStats stats;
  std::size_t m = begin;
  while (m < end) {
    const std::size_t step = messages[m].step;
    std::size_t step_end = m;
    while (step_end < end && messages[step_end].step == step) ++step_end;

    std::vector<std::vector<Word>> send_buffers;
    std::vector<MPI_Request> requests;
    for (std::size_t i = m; i < step_end; ++i) {
      const Message& msg = messages[i];
      if (msg.sender != rank) continue;
      send_buffers.push_back(payload(msg));
      requests.emplace_back();
      MPI_Isend(send_buffers.back().data(),
                static_cast<int>(send_buffers.back().size()), dtype,
                static_cast<int>(msg.receiver), static_cast<int>(step),
                MPI_COMM_WORLD, &requests.back());
      stats.words_sent += send_buffers.back().size();
      stats.messages_sent += 1;
    }
    for (std::size_t i = m; i < step_end; ++i) {
      const Message& msg = messages[i];
      if (msg.receiver != rank) continue;
      std::vector<Word> scratch(msg.range.size() * words_per_element);
      MPI_Recv(scratch.data(), static_cast<int>(scratch.size()), dtype,
               static_cast<int>(msg.sender), static_cast<int>(step),
               MPI_COMM_WORLD, MPI_STATUS_IGNORE);
      stats.words_received += scratch.size();
      deliver(msg, scratch);
    }
    if (!requests.empty()) {
      MPI_Waitall(static_cast<int>(requests.size()), requests.data(),
                  MPI_STATUSES_IGNORE);
    }
    m = step_end;
  }
  return stats;
}

template <typename T>
std::vector<T> mpi_allgather_combine(
    const collective::RankDataT<T>& contributions, std::size_t ranks,
    std::size_t rank, collective::Algorithm algorithm,
    const core::EvalContext& ctx, std::size_t block_elements,
    TrafficLedger& ledger) {
  if (contributions.size() != 1) {
    throw std::invalid_argument(
        "MpiProcessGroup::allreduce: pass exactly this rank's local buffer");
  }
  const auto gathered = gather_contributions(contributions.front(), ranks);
  record_allgather_backend_traffic(ledger, ranks,
                                   contributions.front().size(), sizeof(T),
                                   /*every_rank=*/false, rank);
  return combine(gathered, algorithm, ctx, block_elements);
}

}  // namespace

MpiProcessGroup::MpiProcessGroup(WirePath wire)
    : size_(mpi_world_size()),
      rank_(mpi_world_rank()),
      wire_(wire),
      ledger_(size_) {}

namespace {

template <typename T>
std::vector<T> mpi_value_reduce_scatter(const CollectiveSchedule& schedule,
                                        std::vector<T> local,
                                        std::size_t rank,
                                        TrafficLedger& ledger) {
  const WireStats stats = mpi_run_messages<T>(
      schedule, 0, schedule.reduce_message_count(), rank, mpi_type(T{}), 1,
      [&](const Message& msg) {
        return std::vector<T>(
            local.begin() + static_cast<std::ptrdiff_t>(msg.range.begin),
            local.begin() + static_cast<std::ptrdiff_t>(msg.range.end));
      },
      [&](const Message& msg, const std::vector<T>& incoming) {
        std::size_t k = 0;
        if (msg.incoming_left) {
          for (std::size_t i = msg.range.begin; i < msg.range.end; ++i) {
            local[i] = static_cast<T>(incoming[k++] + local[i]);
          }
        } else {
          for (std::size_t i = msg.range.begin; i < msg.range.end; ++i) {
            local[i] = static_cast<T>(local[i] + incoming[k++]);
          }
        }
      });
  ledger.record_exchange(rank, stats.words_sent * sizeof(T),
                         stats.words_received * sizeof(T),
                         stats.messages_sent);
  return local;
}

template <typename T>
std::vector<T> mpi_state_reduce_scatter(const CollectiveSchedule& schedule,
                                        const std::vector<T>& local,
                                        const fp::ReductionSpec& spec,
                                        std::size_t rank,
                                        TrafficLedger& ledger) {
  constexpr std::size_t kWords = fp::Superaccumulator::kWireWords;
  const std::size_t n = schedule.elements();
  return fp::visit_reduction<T>(
      spec, [&](auto, auto acc_c, auto quantize) -> std::vector<T> {
        using A = typename decltype(acc_c)::type;
        std::vector<fp::Superaccumulator> states(n);
        for (std::size_t i = 0; i < n; ++i) {
          states[i].add(
              static_cast<double>(static_cast<A>(quantize(local[i]))));
        }
        const WireStats stats = mpi_run_messages<std::uint64_t>(
            schedule, 0, schedule.reduce_message_count(), rank, MPI_UINT64_T,
            kWords,
            [&](const Message& msg) {
              std::vector<std::uint64_t> buffer(msg.range.size() * kWords);
              for (std::size_t i = 0; i < msg.range.size(); ++i) {
                states[msg.range.begin + i].serialize(
                    std::span<std::uint64_t>(buffer).subspan(i * kWords,
                                                             kWords));
              }
              return buffer;
            },
            [&](const Message& msg, const std::vector<std::uint64_t>& in) {
              for (std::size_t i = 0; i < msg.range.size(); ++i) {
                states[msg.range.begin + i].add_wire(
                    std::span<const std::uint64_t>(in).subspan(i * kWords,
                                                               kWords));
              }
            });
        ledger.record_exchange(rank, stats.words_sent * 8,
                               stats.words_received * 8,
                               stats.messages_sent);
        std::vector<T> result(n, T{0});
        const ShardRange shard = schedule.shards()[rank];
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          result[i] = static_cast<T>(static_cast<A>(states[i].round()));
        }
        return result;
      });
}

template <typename T>
std::vector<T> mpi_reduce_scatter_impl(
    const collective::RankDataT<T>& contributions,
    const CollectiveSchedule& schedule, collective::Algorithm algorithm,
    const core::EvalContext& ctx, std::size_t size, std::size_t rank,
    TrafficLedger& ledger) {
  if (contributions.size() != 1) {
    throw std::invalid_argument(
        "MpiProcessGroup::reduce_scatter: pass exactly this rank's local "
        "buffer");
  }
  check_schedule(schedule, size, contributions.front().size(), algorithm);
  if (algorithm == collective::Algorithm::kReproducible) {
    return mpi_state_reduce_scatter(schedule, contributions.front(),
                                    wire_reproducible_spec(ctx), rank,
                                    ledger);
  }
  return mpi_value_reduce_scatter(schedule, contributions.front(), rank,
                                  ledger);
}

template <typename T>
void mpi_allgather_impl(std::vector<T>& buffer,
                        const CollectiveSchedule& schedule, std::size_t rank,
                        TrafficLedger& ledger) {
  if (buffer.size() != schedule.elements()) {
    throw std::invalid_argument(
        "MpiProcessGroup::allgather: buffer/schedule size mismatch");
  }
  const WireStats stats = mpi_run_messages<T>(
      schedule, schedule.reduce_message_count(),
      schedule.messages().size(), rank, mpi_type(T{}), 1,
      [&](const Message& msg) {
        return std::vector<T>(
            buffer.begin() + static_cast<std::ptrdiff_t>(msg.range.begin),
            buffer.begin() + static_cast<std::ptrdiff_t>(msg.range.end));
      },
      [&](const Message& msg, const std::vector<T>& incoming) {
        std::copy(incoming.begin(), incoming.end(),
                  buffer.begin() +
                      static_cast<std::ptrdiff_t>(msg.range.begin));
      });
  ledger.record_exchange(rank, stats.words_sent * sizeof(T),
                         stats.words_received * sizeof(T),
                         stats.messages_sent);
}

template <typename T>
std::vector<T> mpi_allreduce(MpiProcessGroup& pg,
                             const collective::RankDataT<T>& contributions,
                             collective::Algorithm algorithm,
                             const core::EvalContext& ctx,
                             std::size_t block_elements, std::size_t size,
                             std::size_t rank, WirePath wire,
                             TrafficLedger& ledger) {
  if (use_schedule(wire, algorithm)) {
    if (contributions.size() != 1) {
      throw std::invalid_argument(
          "MpiProcessGroup::allreduce: pass exactly this rank's local "
          "buffer");
    }
    const auto schedule = CollectiveSchedule::for_algorithm(
        algorithm, wire, size, contributions.front().size());
    auto buffer =
        pg.reduce_scatter(contributions, schedule, algorithm, ctx);
    pg.allgather(buffer, schedule);
    return buffer;
  }
  return mpi_allgather_combine(contributions, size, rank, algorithm, ctx,
                               block_elements, ledger);
}

}  // namespace

std::vector<double> MpiProcessGroup::allreduce(
    const collective::RankData& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  return mpi_allreduce(*this, contributions, algorithm, ctx, block_elements,
                       size_, rank_, wire_, ledger_);
}

std::vector<float> MpiProcessGroup::allreduce(
    const collective::RankDataF& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  return mpi_allreduce(*this, contributions, algorithm, ctx, block_elements,
                       size_, rank_, wire_, ledger_);
}

std::vector<double> MpiProcessGroup::reduce_scatter(
    const collective::RankData& contributions,
    const CollectiveSchedule& schedule, collective::Algorithm algorithm,
    const core::EvalContext& ctx) {
  return mpi_reduce_scatter_impl(contributions, schedule, algorithm, ctx,
                                 size_, rank_, ledger_);
}

std::vector<float> MpiProcessGroup::reduce_scatter(
    const collective::RankDataF& contributions,
    const CollectiveSchedule& schedule, collective::Algorithm algorithm,
    const core::EvalContext& ctx) {
  return mpi_reduce_scatter_impl(contributions, schedule, algorithm, ctx,
                                 size_, rank_, ledger_);
}

void MpiProcessGroup::allgather(std::vector<double>& buffer,
                                const CollectiveSchedule& schedule) {
  mpi_allgather_impl(buffer, schedule, rank_, ledger_);
}

void MpiProcessGroup::allgather(std::vector<float>& buffer,
                                const CollectiveSchedule& schedule) {
  mpi_allgather_impl(buffer, schedule, rank_, ledger_);
}

std::unique_ptr<ProcessGroup> make_mpi_process_group(WirePath wire) {
  return std::make_unique<MpiProcessGroup>(wire);
}

#endif  // FPNA_HAVE_MPI

}  // namespace fpna::comm
