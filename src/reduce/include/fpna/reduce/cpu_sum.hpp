#pragma once
// CPU parallel reductions (paper SIII.B): the OpenMP-style "normal" (non-
// deterministic) and "ordered" (deterministic) reductions of Listings 2-3,
// plus reproducible alternatives. Two execution modes are provided:
//
//  * seeded mode - combination order is drawn from a RunContext, so the
//    non-determinism mechanism (partials combined in completion order) is
//    reproduced reliably and replayably even on a single-core host;
//  * real-thread mode - genuine std::thread execution for wall-clock
//    measurement and for demonstrating OS-scheduled variability where the
//    host exposes it.

#include <cstddef>
#include <span>

#include "fpna/core/run_context.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::reduce {

/// Serial left-to-right sum (the reference the paper's Table 3 rows are
/// compared against).
double cpu_sum_serial(std::span<const double> data) noexcept;

/// OpenMP `parallel for ordered reduction(+:sum)` equivalent (Listing 2):
/// the ordered construct forces the adds to retire in iteration order, so
/// the value equals the serial sum regardless of thread count. Computed
/// here by its defining property (deterministic by construction).
double cpu_sum_ordered(std::span<const double> data,
                       std::size_t num_threads = 4) noexcept;

/// OpenMP "normal" reduction equivalent (Listing 2 without `ordered`):
/// static chunks are summed privately, then combined in *completion
/// order*, which the OpenMP specification leaves unspecified. The
/// completion order is drawn from `ctx`.
double cpu_sum_unordered(std::span<const double> data, core::RunContext& ctx,
                         std::size_t num_threads = 4);

/// Same algorithm executed with real threads on `pool`: each worker sums
/// a static chunk and merges into the shared accumulator under a mutex in
/// whatever order the OS schedules - genuine non-determinism where the
/// host has parallelism. Used for wall-clock benches.
double cpu_sum_threads(std::span<const double> data, util::ThreadPool& pool);

/// Deterministic chunked reduction: static chunks, partials combined in
/// chunk-index order (what a deterministic tree reduction runtime does).
/// Parallel-friendly and order-fixed, but its value differs from the
/// serial sum (different association).
double cpu_sum_chunked_deterministic(std::span<const double> data,
                                     std::size_t num_threads = 4) noexcept;

/// Reproducible sum via the superaccumulator: bitwise identical for any
/// permutation of the input and any chunking/thread count.
double cpu_sum_reproducible(std::span<const double> data,
                            std::size_t num_threads = 4);

}  // namespace fpna::reduce
