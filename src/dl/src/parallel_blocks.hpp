#pragma once
// Internal helper shared by the dl kernels (linalg.cpp, layers.cpp): the
// row-blocked pool dispatch behind the "bitwise identical to serial by
// construction" contract. Not installed - implementation detail only.

#include <algorithm>
#include <cstdint>

#include "fpna/core/chunking.hpp"
#include "fpna/core/eval_context.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::dl::detail {

/// Chunk count for a row-blocked parallel loop: boundaries derive from
/// the problem size alone (never the pool width), targeting ~64k scalar
/// operations per task so tiny kernels don't drown in submit overhead.
/// The rule lives in core/chunking.hpp alongside the split rules it
/// pairs with.
inline std::size_t size_derived_chunks(std::int64_t rows,
                                       std::int64_t work_per_row) {
  return core::size_derived_parts(
      static_cast<std::size_t>(std::max<std::int64_t>(0, rows)),
      static_cast<std::size_t>(std::max<std::int64_t>(0, work_per_row)));
}

/// Runs body(row_begin, row_end) over [0, rows): serially without a pool
/// (or with a single-thread one), otherwise row-blocked on the pool. Every
/// output row is produced by exactly one invocation running the same inner
/// loops as the serial path, so pooled execution is bitwise identical to
/// serial by construction - chunk boundaries can only move *which task*
/// computes a row, never the accumulation stream behind its elements.
/// `trace_name` labels the per-block trace spans when ctx carries a
/// recorder (one complete event per executed block, on the thread that
/// ran it - the raw material for the overlap timelines). Null recorder:
/// the span constructor is a pointer check and nothing else.
template <typename Body>
void for_each_row_block(const core::EvalContext& ctx, std::int64_t rows,
                        std::int64_t work_per_row, const Body& body,
                        const char* trace_name = "dl.row_block") {
  util::ThreadPool* pool = ctx.pool;
  if (pool == nullptr || pool->size() <= 1 || rows <= 1) {
    obs::Span span(ctx.recorder, trace_name);
    span.arg("row_begin", std::int64_t{0});
    span.arg("row_end", rows);
    body(std::int64_t{0}, rows);
    return;
  }
  pool->parallel_for(
      static_cast<std::size_t>(rows),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        obs::Span span(ctx.recorder, trace_name);
        span.arg("row_begin", static_cast<std::int64_t>(begin));
        span.arg("row_end", static_cast<std::int64_t>(end));
        body(static_cast<std::int64_t>(begin),
             static_cast<std::int64_t>(end));
      },
      size_derived_chunks(rows, work_per_row));
}

}  // namespace fpna::dl::detail
