#include "fpna/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <tuple>

#include "fpna/obs/clock.hpp"

namespace fpna::obs {

namespace {

std::string format_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

std::size_t Counter::shard_index() noexcept {
  // A thread's slot only needs to be stable for that thread; the hash of
  // the id spreads distinct threads across slots well enough that the
  // pool's workers rarely share a line.
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return slot;
}

void TimerStat::record_ns(std::uint64_t ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t TimerStat::min_ns() const noexcept {
  const std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  return seen == ~std::uint64_t{0} ? 0 : seen;
}

template <typename T>
T& Metrics::named(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                  std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

Counter& Metrics::counter(std::string_view name) {
  return named(counters_, name);
}

Gauge& Metrics::gauge(std::string_view name) { return named(gauges_, name); }

TimerStat& Metrics::timer(std::string_view name) {
  return named(timers_, name);
}

std::vector<MetricRow> Metrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + timers_.size());
  for (const auto& [name, counter] : counters_) {
    rows.push_back({name, "counter", format_u64(counter->value()), ""});
  }
  for (const auto& [name, gauge] : gauges_) {
    rows.push_back({name, "gauge", format_double(gauge->value()), ""});
  }
  for (const auto& [name, timer] : timers_) {
    rows.push_back({name, "timer", format_double(timer->mean_us()),
                    format_u64(timer->count())});
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return std::tie(a.type, a.name) < std::tie(b.type, b.name);
            });
  return rows;
}

void Metrics::reset_counters() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
}

ScopedTimer::ScopedTimer(TimerStat* stat) noexcept
    : stat_(stat), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  if (stat_ != nullptr) {
    stat_->record_ns(now_ns() - start_ns_);
  }
}

std::uint64_t ScopedTimer::elapsed_ns() const noexcept {
  return now_ns() - start_ns_;
}

}  // namespace fpna::obs
