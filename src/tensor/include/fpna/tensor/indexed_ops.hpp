#pragma once
// The indexed tensor operations from the paper's Table 5, each with a
// deterministic and a non-deterministic implementation:
//
//   index_add, index_copy, index_put, scatter, scatter_reduce
//
// The non-deterministic path reproduces the structure of the CUDA kernels
// PyTorch documents as non-deterministic: one atomic update per source
// element, committed in a scheduler-dependent order. For accumulating ops
// the order changes rounding; for writing ops duplicate indices make the
// last writer scheduler-dependent.

#include <cstdint>

#include "fpna/tensor/op_context.hpp"
#include "fpna/tensor/tensor.hpp"

namespace fpna::tensor {

/// Reduction modes of scatter_reduce (PyTorch naming).
enum class Reduce { kSum, kMean, kProd, kAmax, kAmin };
const char* to_string(Reduce reduce) noexcept;

/// out = self; out[.., index[k], ..] += alpha * source[.., k, ..] along
/// `dim` (slice-wise). index.numel() must equal source.size(dim). The
/// deterministic path runs on ctx.pool when one is set (parallel_for over
/// destination groups, bitwise identical to the serial deterministic path
/// for every registered accumulator).
template <typename T>
Tensor<T> index_add(const Tensor<T>& self, std::int64_t dim,
                    const Tensor<std::int64_t>& index,
                    const Tensor<T>& source, T alpha = T{1},
                    const OpContext& ctx = {});

/// out = self; out[.., index[k], ..] = source[.., k, ..]. With duplicate
/// indices the result depends on write order: deterministically the
/// highest k wins; non-deterministically the last commit wins.
template <typename T>
Tensor<T> index_copy(const Tensor<T>& self, std::int64_t dim,
                     const Tensor<std::int64_t>& index,
                     const Tensor<T>& source, const OpContext& ctx = {});

/// Flat-index put over dim 0 slices: out[indices[k]] = values[k], or
/// accumulate (+=) when `accumulate` is true.
template <typename T>
Tensor<T> index_put(const Tensor<T>& self, const Tensor<std::int64_t>& indices,
                    const Tensor<T>& values, bool accumulate,
                    const OpContext& ctx = {});

/// out = self; out[index[p] along dim, rest of p] = src[p] for every
/// position p of src (PyTorch scatter: index has the shape of src).
template <typename T>
Tensor<T> scatter(const Tensor<T>& self, std::int64_t dim,
                  const Tensor<std::int64_t>& index, const Tensor<T>& src,
                  const OpContext& ctx = {});

/// PyTorch scatter_reduce: reduce src values into self at the indexed
/// positions. include_self=false seeds each touched destination from its
/// first contribution instead of the self value.
template <typename T>
Tensor<T> scatter_reduce(const Tensor<T>& self, std::int64_t dim,
                         const Tensor<std::int64_t>& index,
                         const Tensor<T>& src, Reduce reduce,
                         bool include_self = true, const OpContext& ctx = {});

}  // namespace fpna::tensor
