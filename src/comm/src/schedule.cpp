#include "fpna/comm/schedule.hpp"

#include <stdexcept>
#include <string>

namespace fpna::comm {

const char* to_string(WirePath path) noexcept {
  switch (path) {
    case WirePath::kAllgather: return "allgather";
    case WirePath::kRing: return "ring";
    case WirePath::kButterfly: return "butterfly";
  }
  return "?";
}

WirePath parse_wire_path(std::string_view name) {
  if (name == "allgather") return WirePath::kAllgather;
  if (name == "ring") return WirePath::kRing;
  if (name == "butterfly") return WirePath::kButterfly;
  throw std::invalid_argument("parse_wire_path: unknown wire path '" +
                              std::string(name) +
                              "' (valid: allgather, ring, butterfly)");
}

CollectiveSchedule CollectiveSchedule::ring(std::size_t ranks,
                                            std::size_t elements) {
  if (ranks == 0) {
    throw std::invalid_argument("CollectiveSchedule::ring: zero ranks");
  }
  CollectiveSchedule s;
  s.path_ = WirePath::kRing;
  s.ranks_ = ranks;
  s.elements_ = elements;

  const auto chunk = [&](std::size_t c) {
    const auto [begin, end] = collective::ring_chunk(elements, ranks, c);
    return ShardRange{begin, end};
  };
  s.shards_.resize(ranks);
  for (std::size_t r = 0; r < ranks; ++r) s.shards_[r] = chunk(r);

  // Reduce-scatter: chunk c accumulates along ranks (c+1)%P, (c+2)%P,
  // ..., c%P (the allreduce_ring order). Each hop sends the running
  // partial; the receiver folds its own value on the right, so every
  // combine is (incoming chain) + (local contribution).
  for (std::size_t step = 0; step + 1 < ranks; ++step) {
    for (std::size_t c = 0; c < ranks; ++c) {
      const ShardRange range = chunk(c);
      if (range.empty()) continue;
      s.messages_.push_back(Message{
          .step = step,
          .sender = (c + 1 + step) % ranks,
          .receiver = (c + 2 + step) % ranks,
          .range = range,
          .reduce = true,
          .incoming_left = true,
      });
    }
  }
  s.reduce_count_ = s.messages_.size();

  // Allgather: at step g, rank r forwards the chunk it completed at step
  // g-1 (its own at g == 0) to the next rank; after P-1 steps every rank
  // holds every chunk.
  for (std::size_t g = 0; g + 1 < ranks; ++g) {
    for (std::size_t r = 0; r < ranks; ++r) {
      const std::size_t c = (r + ranks - g % ranks) % ranks;
      const ShardRange range = chunk(c);
      if (range.empty()) continue;
      s.messages_.push_back(Message{
          .step = ranks - 1 + g,
          .sender = r,
          .receiver = (r + 1) % ranks,
          .range = range,
          .reduce = false,
          .incoming_left = false,
      });
    }
  }
  return s;
}

CollectiveSchedule CollectiveSchedule::butterfly(std::size_t ranks,
                                                 std::size_t elements) {
  if (ranks == 0) {
    throw std::invalid_argument("CollectiveSchedule::butterfly: zero ranks");
  }
  CollectiveSchedule s;
  s.path_ = WirePath::kButterfly;
  s.ranks_ = ranks;
  s.elements_ = elements;

  std::size_t active = 1;
  while (active * 2 <= ranks) active *= 2;

  std::size_t step = 0;
  // Non-power-of-two pre-fold: extras send their whole buffer to their
  // partner, which folds it on the right (buffers[r-active] + buffers[r],
  // the allreduce_recursive_doubling pre-step).
  if (ranks > active && elements > 0) {
    for (std::size_t r = active; r < ranks; ++r) {
      s.messages_.push_back(Message{
          .step = step,
          .sender = r,
          .receiver = r - active,
          .range = ShardRange{0, elements},
          .reduce = true,
          .incoming_left = false,
      });
    }
    ++step;
  }

  // Recursive halving in *doubling stage order* (distance 1, 2, 4, ...):
  // this pairs the same ranks at the same stage as the whole-buffer
  // butterfly, and with lower-rank partials always on the left of the
  // combine, every element's association tree matches
  // allreduce_recursive_doubling exactly. Each rank keeps the half
  // selected by the stage's bit of its id (0 -> lower half), so its final
  // shard is the nested-halving cell addressed by its bits LSB-first.
  std::vector<ShardRange> cur(active, ShardRange{0, elements});
  for (std::size_t stage = 1; stage < active; stage *= 2) {
    for (std::size_t r = 0; r < active; ++r) {
      const std::size_t partner = r ^ stage;
      if (partner < r) continue;
      const ShardRange range = cur[r];  // == cur[partner]
      const std::size_t left_size = (range.size() + 1) / 2;
      const ShardRange left{range.begin, range.begin + left_size};
      const ShardRange right{range.begin + left_size, range.end};
      if (!right.empty()) {
        s.messages_.push_back(Message{
            .step = step,
            .sender = r,
            .receiver = partner,
            .range = right,
            .reduce = true,
            .incoming_left = true,  // incoming is the lower rank's partial
        });
      }
      if (!left.empty()) {
        s.messages_.push_back(Message{
            .step = step,
            .sender = partner,
            .receiver = r,
            .range = left,
            .reduce = true,
            .incoming_left = false,  // incoming is the higher rank's
        });
      }
      cur[r] = left;
      cur[partner] = right;
    }
    ++step;
  }
  s.reduce_count_ = s.messages_.size();

  s.shards_.assign(ranks, ShardRange{0, 0});
  for (std::size_t r = 0; r < active; ++r) s.shards_[r] = cur[r];

  // Allgather: undo the halving finest-first. At reverse stage `stage`
  // each pair exchanges its currently complete range; the union is the
  // (contiguous) range the pair shared before that reduce stage.
  std::vector<ShardRange> complete = cur;
  for (std::size_t stage = active / 2; stage >= 1; stage /= 2) {
    for (std::size_t r = 0; r < active; ++r) {
      const std::size_t partner = r ^ stage;
      if (partner < r) continue;
      if (!complete[r].empty()) {
        s.messages_.push_back(Message{
            .step = step,
            .sender = r,
            .receiver = partner,
            .range = complete[r],
            .reduce = false,
            .incoming_left = false,
        });
      }
      if (!complete[partner].empty()) {
        s.messages_.push_back(Message{
            .step = step,
            .sender = partner,
            .receiver = r,
            .range = complete[partner],
            .reduce = false,
            .incoming_left = false,
        });
      }
      const ShardRange merged{
          std::min(complete[r].begin, complete[partner].begin),
          std::max(complete[r].end, complete[partner].end)};
      complete[r] = merged;
      complete[partner] = merged;
    }
    ++step;
    if (stage == 1) break;
  }
  // Finished ranks hand the full buffer back to the pre-folded extras.
  if (ranks > active && elements > 0) {
    for (std::size_t r = active; r < ranks; ++r) {
      s.messages_.push_back(Message{
          .step = step,
          .sender = r - active,
          .receiver = r,
          .range = ShardRange{0, elements},
          .reduce = false,
          .incoming_left = false,
      });
    }
  }
  return s;
}

CollectiveSchedule CollectiveSchedule::for_algorithm(
    collective::Algorithm algorithm, WirePath wire, std::size_t ranks,
    std::size_t elements) {
  switch (algorithm) {
    case collective::Algorithm::kRing:
      return ring(ranks, elements);
    case collective::Algorithm::kRecursiveDoubling:
      return butterfly(ranks, elements);
    case collective::Algorithm::kReproducible:
      // Order-invariant: the wire choice moves traffic, never bits.
      return wire == WirePath::kButterfly ? butterfly(ranks, elements)
                                          : ring(ranks, elements);
    case collective::Algorithm::kArrivalTree:
      break;
  }
  throw std::invalid_argument(
      "CollectiveSchedule::for_algorithm: no wire schedule for '" +
      std::string(collective::to_string(algorithm)) +
      "' (arrival-order combining has no fixed plan; it runs on the "
      "allgather backend)");
}

std::size_t CollectiveSchedule::elements_sent(
    std::size_t rank) const noexcept {
  std::size_t total = 0;
  for (const Message& m : messages_) {
    if (m.sender == rank) total += m.range.size();
  }
  return total;
}

// ------------------------------------------------------------- traffic --

TrafficLedger::TrafficLedger(std::size_t ranks, obs::Metrics* metrics) {
  if (metrics == nullptr) {
    owned_ = std::make_unique<obs::Metrics>();
    metrics = owned_.get();
  }
  per_rank_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    const std::string prefix = "comm.traffic.rank" + std::to_string(r);
    per_rank_.push_back({&metrics->counter(prefix + ".bytes_sent"),
                         &metrics->counter(prefix + ".bytes_received"),
                         &metrics->counter(prefix + ".messages")});
  }
}

void TrafficLedger::record_exchange(std::size_t rank,
                                    std::uint64_t bytes_sent,
                                    std::uint64_t bytes_received,
                                    std::uint64_t messages) {
  RankCounters& c = per_rank_.at(rank);
  c.bytes_sent->add(bytes_sent);
  c.bytes_received->add(bytes_received);
  c.messages->add(messages);
}

void TrafficLedger::record_message(std::size_t sender, std::size_t receiver,
                                   std::uint64_t bytes) {
  RankCounters& sc = per_rank_.at(sender);
  sc.bytes_sent->add(bytes);
  sc.messages->increment();
  per_rank_.at(receiver).bytes_received->add(bytes);
}

Traffic TrafficLedger::of_rank(std::size_t rank) const {
  const RankCounters& c = per_rank_.at(rank);
  return {c.bytes_sent->value(), c.bytes_received->value(),
          c.messages->value()};
}

Traffic TrafficLedger::total() const {
  Traffic sum;
  for (const RankCounters& c : per_rank_) {
    sum.bytes_sent += c.bytes_sent->value();
    sum.bytes_received += c.bytes_received->value();
    sum.messages += c.messages->value();
  }
  return sum;
}

void TrafficLedger::reset() {
  for (RankCounters& c : per_rank_) {
    c.bytes_sent->reset();
    c.bytes_received->reset();
    c.messages->reset();
  }
}

}  // namespace fpna::comm
