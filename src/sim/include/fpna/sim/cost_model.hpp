#pragma once
// Analytic timing model for the simulated GPU's reduction kernels.
//
// Values (the floating-point results) come from the execution engine; time
// comes from this model, built from each kernel's operation counts and the
// device profile's latency/bandwidth table. The model's *structure* is
// what reproduces the paper's Table 4 shape: AO serialises n same-address
// atomics, the tree kernels stream the array once and pay per-partial
// tail costs, TPRC pays an extra launch plus a device-to-host hop.

#include <cstddef>
#include <optional>
#include <string>

#include "fpna/sim/device_profile.hpp"

namespace fpna::sim {

/// The six parallel-sum implementations of the paper (SIII.A, Table 2).
enum class SumMethod {
  kCU,    // vendor CUB/hipCUB library sum          (deterministic)
  kSPTR,  // single-pass, tree reduction tail       (deterministic)
  kSPRG,  // single-pass, recursive-sum tail        (deterministic)
  kTPRC,  // two passes, final reduction on CPU     (deterministic)
  kSPA,   // simple pass, atomicAdd of partials     (non-deterministic)
  kAO,    // atomicAdd per element                  (non-deterministic)
};

const char* to_string(SumMethod method) noexcept;

/// The "deterministic" column of the paper's Table 2.
bool is_deterministic(SumMethod method) noexcept;

/// Number of kernel launches (Table 2's "# of kernels"; CU's internals are
/// opaque, reported as 2 like its documented two-pass structure).
int kernel_count(SumMethod method) noexcept;

/// Synchronisation mechanism used (Table 2's third column).
const char* synchronization_method(SumMethod method) noexcept;

/// Modelled time of one n-element FP64 sum with `nb` blocks of `nt`
/// threads, in microseconds.
double estimated_sum_time_us(const DeviceProfile& profile, SumMethod method,
                             std::size_t n, std::size_t nt, std::size_t nb);

/// The indexed tensor ops whose GPU timings the paper reports (Table 6).
enum class IndexedOpKind {
  kScatterReduceSum,
  kScatterReduceMean,
  kIndexAdd,
};

/// Modelled GPU kernel time for an indexed op over `contributions` source
/// elements, in microseconds. The ND path is the atomic scatter kernel;
/// the deterministic path (where one exists) is the sort-by-destination
/// kernel, which pays an n log n reordering cost - the structure behind
/// Table 6's D/ND gaps. Returns nullopt when the op has no deterministic
/// GPU implementation (scatter_reduce: requesting determinism raises at
/// runtime, as the paper experienced with PyTorch).
std::optional<double> estimated_indexed_op_time_us(const DeviceProfile& profile,
                                                   IndexedOpKind op,
                                                   std::size_t contributions,
                                                   bool deterministic);

}  // namespace fpna::sim
