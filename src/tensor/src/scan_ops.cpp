#include "fpna/tensor/scan_ops.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "fpna/util/permutation.hpp"

namespace fpna::tensor {

namespace {

/// Scans one line (stride-accessed) of the tensor.
template <typename T>
void scan_line(std::span<T> data, std::int64_t start, std::int64_t stride,
               std::int64_t length, const OpContext& ctx,
               std::size_t scan_blocks) {
  const auto at = [&](std::int64_t i) -> T& {
    return data[static_cast<std::size_t>(start + i * stride)];
  };

  if (!ctx.nondeterministic() || length <= 2 || scan_blocks <= 1) {
    // Deterministic serial scan.
    for (std::int64_t i = 1; i < length; ++i) {
      at(i) = static_cast<T>(at(i) + at(i - 1));
    }
    return;
  }

  // Blocked scan. Aggregate each block, then give block b the offset
  // sum(aggregates[0..b-1]) accumulated in a per-run shuffled order -
  // the association pattern of a decoupled-lookback scan whose partials
  // arrive asynchronously.
  const auto blocks = static_cast<std::int64_t>(
      std::min<std::size_t>(scan_blocks, static_cast<std::size_t>(length)));
  const std::int64_t base = length / blocks;
  const std::int64_t rem = length % blocks;

  std::vector<std::int64_t> begin(static_cast<std::size_t>(blocks) + 1, 0);
  for (std::int64_t b = 0; b < blocks; ++b) {
    begin[static_cast<std::size_t>(b) + 1] =
        begin[static_cast<std::size_t>(b)] + base + (b < rem ? 1 : 0);
  }

  std::vector<T> aggregate(static_cast<std::size_t>(blocks), T{0});
  for (std::int64_t b = 0; b < blocks; ++b) {
    T acc{0};
    for (std::int64_t i = begin[static_cast<std::size_t>(b)];
         i < begin[static_cast<std::size_t>(b) + 1]; ++i) {
      acc = static_cast<T>(acc + at(i));
    }
    aggregate[static_cast<std::size_t>(b)] = acc;
  }

  auto& rng = ctx.run->rng();
  std::vector<T> offset(static_cast<std::size_t>(blocks), T{0});
  for (std::int64_t b = 1; b < blocks; ++b) {
    // The b-1 preceding aggregates arrive in scheduler order.
    std::vector<std::size_t> order = util::random_permutation(
        static_cast<std::size_t>(b), rng);
    T acc{0};
    for (const std::size_t j : order) acc = static_cast<T>(acc + aggregate[j]);
    offset[static_cast<std::size_t>(b)] = acc;
  }

  for (std::int64_t b = 0; b < blocks; ++b) {
    T acc = offset[static_cast<std::size_t>(b)];
    for (std::int64_t i = begin[static_cast<std::size_t>(b)];
         i < begin[static_cast<std::size_t>(b) + 1]; ++i) {
      acc = static_cast<T>(acc + at(i));
      at(i) = acc;
    }
  }
}

}  // namespace

template <typename T>
Tensor<T> cumsum(const Tensor<T>& self, std::int64_t dim, const OpContext& ctx,
                 std::size_t scan_blocks) {
  if (dim < 0 || dim >= self.dim()) {
    throw std::out_of_range("cumsum: dim out of range");
  }
  Tensor<T> out = self;
  const std::int64_t length = self.size(dim);
  if (length == 0) return out;
  const std::int64_t stride = self.stride(dim);

  // Enumerate all lines along `dim`: outer x inner decomposition.
  std::int64_t outer = 1;
  for (std::int64_t d = 0; d < dim; ++d) outer *= self.size(d);
  std::int64_t inner = 1;
  for (std::int64_t d = dim + 1; d < self.dim(); ++d) inner *= self.size(d);

  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t i = 0; i < inner; ++i) {
      const std::int64_t start = o * length * inner + i;
      scan_line<T>(out.data(), start, stride, length, ctx, scan_blocks);
    }
  }
  return out;
}

template Tensor<float> cumsum<float>(const Tensor<float>&, std::int64_t,
                                     const OpContext&, std::size_t);
template Tensor<double> cumsum<double>(const Tensor<double>&, std::int64_t,
                                       const OpContext&, std::size_t);

}  // namespace fpna::tensor
