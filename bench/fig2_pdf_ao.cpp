// Reproduces Fig. 2: PDF of the scalar variability Vs when the
// atomicAdd-only (AO) kernel is the non-deterministic implementation,
// x ~ U(0,10), V100 profile. The paper's finding: unlike SPA, this
// distribution is NOT normal - the toolkit's contention-mixture scheduler
// model reproduces the non-Gaussian shape, confirmed here by KL/KS/JB
// side by side with SPA on identical data.
//
// Flags: --size --arrays --runs --seed --full --series

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/reduce/gpu_sum.hpp"
#include "fpna/stats/histogram.hpp"
#include "fpna/stats/normality.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

std::vector<double> collect_vs(sim::SimDevice& device, sim::SumMethod method,
                               std::size_t size, std::size_t arrays,
                               std::size_t runs, std::uint64_t seed,
                               std::size_t nt) {
  std::vector<double> samples;
  for (std::size_t a = 0; a < arrays; ++a) {
    const auto data = bench::uniform_array(size, 0.0, 10.0, seed + a);
    const auto d = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, sim::SumMethod::kSPTR, ctx, nt)
          .value;
    };
    const auto nd = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, method, ctx, nt).value;
    };
    const auto report =
        core::measure_scalar_variability(d, nd, runs, seed + 1000 + a);
    samples.insert(samples.end(), report.vs_samples.begin(),
                   report.vs_samples.end());
  }
  return samples;
}

void report(const std::string& label, const std::vector<double>& samples,
            bool series) {
  const auto summary = stats::summarize(samples);
  const auto hist = stats::Histogram::from_samples(samples, 30);
  const double kl =
      stats::kl_divergence_vs_normal(hist, summary.mean, summary.stddev);
  const auto ks = stats::ks_test_normal(samples, summary.mean, summary.stddev);
  const auto jb = stats::jarque_bera(samples);
  std::cout << "\n--- " << label << " ---\n"
            << "samples: " << samples.size()
            << "  std(Vs): " << util::sci(summary.stddev, 3)
            << "  excess kurtosis: " << summary.excess_kurtosis << "\n"
            << "normality: KL = " << kl << "  KS D = " << ks.statistic
            << " (p = " << ks.p_value << ")  JB = " << jb.statistic
            << " (p = " << jb.p_value << ")\n";
  if (series) {
    std::cout << "# PDF series (Vs x1e16, density):\n";
    for (std::size_t b = 0; b < hist.bins(); ++b) {
      std::cout << hist.bin_center(b) * 1e16 << " " << hist.density(b) << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto size = static_cast<std::size_t>(
      cli.integer("size", full ? 1000000 : 65536));
  const auto arrays =
      static_cast<std::size_t>(cli.integer("arrays", full ? 20 : 6));
  const auto runs =
      static_cast<std::size_t>(cli.integer("runs", full ? 1000 : 300));
  const auto nt = static_cast<std::size_t>(cli.integer("nt", 16));
  const bool series = cli.flag("series", true);

  util::banner(std::cout,
               "Fig 2: PDF of Vs for the AO kernel, x ~ U(0,10), " +
                   std::to_string(size) + " FP64 elements (V100 profile)");

  sim::SimDevice device(sim::DeviceProfile::v100());
  const auto ao =
      collect_vs(device, sim::SumMethod::kAO, size, arrays, runs, seed, nt);
  const auto spa =
      collect_vs(device, sim::SumMethod::kSPA, size, arrays, runs, seed, nt);

  report("AO (atomicAdd only)", ao, series);
  report("SPA (same data, for contrast)", spa, false);

  std::cout << "\nPaper reference (Fig 2, SIII.C): the AO distribution is "
               "found NOT to be normal (wider, structured), invalidating "
               "the Gaussian-noise assumption; SPA on the same data is "
               "normal (by the paper's KL criterion). Expect AO to show a "
               "distinctly larger KL and KS statistic and a wider std than "
               "SPA.\n";
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
