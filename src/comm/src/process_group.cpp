#include "fpna/comm/process_group.hpp"

#include <stdexcept>
#include <string>

#include "fpna/fp/accumulator.hpp"

#ifdef FPNA_HAVE_MPI
#include <mpi.h>
#endif

namespace fpna::comm {

template <typename T>
std::vector<T> exact_elementwise_allreduce(
    const collective::RankDataT<T>& contributions,
    const fp::ReductionSpec& spec) {
  collective::validate(contributions);
  return fp::visit_reduction<T>(
      spec, [&](auto tag, auto acc_c, auto quantize) -> std::vector<T> {
        if constexpr (!decltype(tag)::traits.exact_merge) {
          throw std::invalid_argument(
              "reproducible allreduce: accumulator '" +
              fp::AlgorithmRegistry::instance().at(decltype(tag)::id).name +
              "' has no exact merge; choose superaccumulator or binned");
        } else {
          using A = typename decltype(acc_c)::type;
          const std::size_t n = contributions.front().size();
          std::vector<T> result(n, T{0});
          for (std::size_t i = 0; i < n; ++i) {
            typename decltype(tag)::template accumulator_t<A> acc;
            for (const auto& rank : contributions) {
              acc.add(static_cast<A>(quantize(rank[i])));
            }
            result[i] = static_cast<T>(acc.result());
          }
          return result;
        }
      });
}

template std::vector<double> exact_elementwise_allreduce<double>(
    const collective::RankData&, const fp::ReductionSpec&);
template std::vector<float> exact_elementwise_allreduce<float>(
    const collective::RankDataF&, const fp::ReductionSpec&);

namespace {

/// Shared backend combine: the simulated group reduces `contributions`
/// directly; the MPI group calls this on the allgathered rank buffers, so
/// both backends compute identical bits from identical inputs.
template <typename T>
std::vector<T> combine(const collective::RankDataT<T>& contributions,
                       collective::Algorithm algorithm,
                       const core::EvalContext& ctx,
                       std::size_t block_elements) {
  if (algorithm == collective::Algorithm::kReproducible &&
      ctx.accumulator.has_value()) {
    return exact_elementwise_allreduce(contributions, *ctx.accumulator);
  }
  return collective::allreduce(contributions, algorithm, ctx, block_elements);
}

}  // namespace

SimProcessGroup::SimProcessGroup(std::size_t ranks) : ranks_(ranks) {
  if (ranks == 0) {
    throw std::invalid_argument("SimProcessGroup: zero ranks");
  }
}

std::vector<double> SimProcessGroup::allreduce(
    const collective::RankData& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  if (contributions.size() != ranks_) {
    throw std::invalid_argument(
        "SimProcessGroup::allreduce: expected " + std::to_string(ranks_) +
        " rank contributions, got " + std::to_string(contributions.size()));
  }
  return combine(contributions, algorithm, ctx, block_elements);
}

std::vector<float> SimProcessGroup::allreduce(
    const collective::RankDataF& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  if (contributions.size() != ranks_) {
    throw std::invalid_argument(
        "SimProcessGroup::allreduce: expected " + std::to_string(ranks_) +
        " rank contributions, got " + std::to_string(contributions.size()));
  }
  return combine(contributions, algorithm, ctx, block_elements);
}

std::unique_ptr<ProcessGroup> make_process_group(std::size_t ranks) {
  return std::make_unique<SimProcessGroup>(ranks);
}

#ifdef FPNA_HAVE_MPI

namespace {

MPI_Datatype mpi_type(double) { return MPI_DOUBLE; }
MPI_Datatype mpi_type(float) { return MPI_FLOAT; }

/// Allgather every rank's local vector (equal lengths, checked) into the
/// rank-ordered RankData the shared combine consumes.
template <typename T>
collective::RankDataT<T> gather_contributions(const std::vector<T>& local,
                                              std::size_t ranks) {
  unsigned long n = local.size();
  unsigned long extents[2] = {n, n};
  MPI_Allreduce(MPI_IN_PLACE, &extents[0], 1, MPI_UNSIGNED_LONG, MPI_MIN,
                MPI_COMM_WORLD);
  MPI_Allreduce(MPI_IN_PLACE, &extents[1], 1, MPI_UNSIGNED_LONG, MPI_MAX,
                MPI_COMM_WORLD);
  if (extents[0] != extents[1]) {
    throw std::invalid_argument(
        "MpiProcessGroup::allreduce: rank vector length mismatch");
  }
  std::vector<T> flat(ranks * local.size());
  MPI_Allgather(local.data(), static_cast<int>(local.size()), mpi_type(T{}),
                flat.data(), static_cast<int>(local.size()), mpi_type(T{}),
                MPI_COMM_WORLD);
  collective::RankDataT<T> contributions(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    contributions[r].assign(
        flat.begin() + static_cast<std::ptrdiff_t>(r * local.size()),
        flat.begin() + static_cast<std::ptrdiff_t>((r + 1) * local.size()));
  }
  return contributions;
}

template <typename T>
std::vector<T> mpi_allreduce(const collective::RankDataT<T>& contributions,
                             std::size_t ranks,
                             collective::Algorithm algorithm,
                             const core::EvalContext& ctx,
                             std::size_t block_elements) {
  if (contributions.size() != 1) {
    throw std::invalid_argument(
        "MpiProcessGroup::allreduce: pass exactly this rank's local buffer");
  }
  const auto gathered = gather_contributions(contributions.front(), ranks);
  return combine(gathered, algorithm, ctx, block_elements);
}

}  // namespace

MpiProcessGroup::MpiProcessGroup() {
  int initialized = 0;
  MPI_Initialized(&initialized);
  if (!initialized) {
    throw std::runtime_error(
        "MpiProcessGroup: MPI_Init must run before constructing the group");
  }
  int size = 0;
  int rank = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  size_ = static_cast<std::size_t>(size);
  rank_ = static_cast<std::size_t>(rank);
}

std::vector<double> MpiProcessGroup::allreduce(
    const collective::RankData& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  return mpi_allreduce(contributions, size_, algorithm, ctx, block_elements);
}

std::vector<float> MpiProcessGroup::allreduce(
    const collective::RankDataF& contributions,
    collective::Algorithm algorithm, const core::EvalContext& ctx,
    std::size_t block_elements) {
  return mpi_allreduce(contributions, size_, algorithm, ctx, block_elements);
}

std::unique_ptr<ProcessGroup> make_mpi_process_group() {
  return std::make_unique<MpiProcessGroup>();
}

#endif  // FPNA_HAVE_MPI

}  // namespace fpna::comm
