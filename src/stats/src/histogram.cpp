#include "fpna/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace fpna::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  width_ = (hi - lo) / static_cast<double>(bins);
}

Histogram Histogram::from_samples(std::span<const double> samples,
                                  std::size_t bins) {
  if (samples.empty()) {
    throw std::invalid_argument("Histogram::from_samples: empty sample");
  }
  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  double lo = *mn;
  double hi = *mx;
  if (lo == hi) {  // degenerate: widen symmetrically
    const double pad = lo == 0.0 ? 1.0 : std::fabs(lo) * 1e-6;
    lo -= pad;
    hi += pad;
  } else {
    const double pad = (hi - lo) * 1e-9;
    hi += pad;
  }
  Histogram h(lo, hi, bins);
  h.add(samples);
  return h;
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_center");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) /
         (static_cast<double>(total_) * width_);
}

double Histogram::mass(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_series() const {
  std::ostringstream out;
  out.setf(std::ios::scientific);
  out.precision(9);
  for (std::size_t b = 0; b < bins(); ++b) {
    out << bin_center(b) << " " << density(b) << "\n";
  }
  return out.str();
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double kl_divergence_vs_normal(const Histogram& hist, double mu,
                               double sigma) {
  if (sigma <= 0.0) {
    throw std::invalid_argument("kl_divergence_vs_normal: sigma <= 0");
  }
  if (hist.total() == 0) return 0.0;

  double kl = 0.0;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    const double p = hist.mass(b);
    if (p <= 0.0) continue;
    const double left = hist.lo() + static_cast<double>(b) * hist.bin_width();
    const double right = left + hist.bin_width();
    double q = normal_cdf((right - mu) / sigma) - normal_cdf((left - mu) / sigma);
    // Clamp so samples in the far tail (q underflows to 0) give a large
    // finite penalty instead of inf.
    q = std::max(q, 1e-300);
    kl += p * std::log(p / q);
  }
  return kl;
}

}  // namespace fpna::stats
