#include "fpna/fp/binned_sum.hpp"

#include <cmath>
#include <limits>

#include "fpna/fp/superaccumulator.hpp"

namespace fpna::fp {

namespace {

/// Extraction boundary for fold k against an anchor with binary exponent
/// E (anchor < 2^E): M_k = 1.5 * 2^(52 + E - (k+1)*W). fl(M_k + x) rounds
/// x to the fold's quantum q_k = 2^(E - (k+1)*W) exactly; the 1.5 keeps
/// the boundary's own bits clear of the slice.
double boundary(int exponent_e, int fold) {
  return 1.5 *
         std::ldexp(1.0, 52 + exponent_e -
                             (fold + 1) * BinnedSum::kBinBits);
}

}  // namespace

BinnedSum::Bins BinnedSum::bin(std::span<const double> values, double anchor) {
  Bins bins;
  if (values.empty()) return bins;
  // Binary exponent E with anchor < 2^E.
  int exponent_e = 0;
  if (anchor != 0.0) {
    std::frexp(anchor, &exponent_e);  // anchor = f * 2^E, f in [0.5, 1)
  }
  double m[kFolds];
  for (int k = 0; k < kFolds; ++k) m[k] = boundary(exponent_e, k);

  for (const double value : values) {
    double residual = value;
    for (int k = 0; k < kFolds; ++k) {
      // Dekker extraction: slice = residual rounded to q_k, exactly.
      const double t = m[k] + residual;
      const double slice = t - m[k];
      residual -= slice;
      bins.total[k] += slice;  // exact: common quantum, bounded magnitude
    }
  }
  return bins;
}

double BinnedSum::round(const Bins& bins) noexcept {
  double acc = bins.total[0];
  for (int k = 1; k < kFolds; ++k) acc += bins.total[k];
  return acc;
}

double BinnedSum::sum(std::span<const double> values) {
  // Exceptional values propagate like IEEE addition.
  bool pos_inf = false;
  bool neg_inf = false;
  double anchor = 0.0;
  for (const double v : values) {
    if (std::isnan(v)) return std::numeric_limits<double>::quiet_NaN();
    if (std::isinf(v)) {
      (v > 0 ? pos_inf : neg_inf) = true;
      continue;
    }
    const double a = std::fabs(v);
    if (a > anchor) anchor = a;
  }
  if (pos_inf && neg_inf) return std::numeric_limits<double>::quiet_NaN();
  if (pos_inf) return std::numeric_limits<double>::infinity();
  if (neg_inf) return -std::numeric_limits<double>::infinity();
  if (anchor == 0.0) {
    // Only (signed) zeros: their sum is order-invariant by IEEE rules
    // (all -0 stays -0, any +0 makes it +0). Seed from the first element
    // so an all-negative-zero input keeps its sign.
    if (values.empty()) return 0.0;
    double z = values.front();
    for (const double v : values.subspan(1)) z += v;
    return z;
  }

  // Near-overflow anchors would overflow the extraction boundaries
  // (M_0 ~ 2^(E + 52 - W)); delegate to the always-safe superaccumulator.
  int exponent_e = 0;
  std::frexp(anchor, &exponent_e);
  if (exponent_e > 1023 - 52 + kBinBits - 1) {
    return Superaccumulator::sum(values);
  }

  if (values.size() <= kMaxTerms) {
    return round(bin(values, anchor));
  }

  // Long inputs: bin fixed-size batches (each exactly), then merge the
  // batch bin totals through the exact superaccumulator. Every element's
  // slices depend only on the global anchor, and the superaccumulator is
  // order-free, so the result is still permutation/chunking invariant.
  Superaccumulator exact;
  for (std::size_t begin = 0; begin < values.size(); begin += kMaxTerms) {
    const std::size_t len = std::min(kMaxTerms, values.size() - begin);
    const Bins bins = bin(values.subspan(begin, len), anchor);
    for (int k = 0; k < kFolds; ++k) exact.add(bins.total[k]);
  }
  return exact.round();
}

}  // namespace fpna::fp
