#pragma once
// The run-to-run variability harness: executes a kernel N times under
// distinct RunContexts, compares each output against a reference, and
// aggregates the paper's metrics. This is the experimental engine behind
// every table and figure reproduction, factored out so applications can
// audit their own kernels the same way.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fpna/core/metrics.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/stats/descriptive.hpp"

namespace fpna::core {

/// How the reference output A is chosen (paper SIV): against a
/// deterministic implementation when one exists, otherwise against the
/// first non-deterministic invocation (A = B_0).
enum class Reference { kDeterministic, kFirstRun };

using ScalarKernel = std::function<double(RunContext&)>;
using ArrayKernel = std::function<std::vector<double>(RunContext&)>;

struct ScalarVariabilityReport {
  std::vector<double> vs_samples;       // one Vs per ND run
  std::vector<double> differences;      // S_nd - S_d per run
  stats::Summary vs_summary;
  double reference_value = 0.0;
  std::size_t runs = 0;
  /// Fraction of runs bitwise equal to the reference.
  double reproducible_fraction = 0.0;
};

/// Runs `nd_kernel` `runs` times (run_index = 0..runs-1) and evaluates Vs
/// against `d_kernel` (evaluated once; it must ignore scheduler entropy).
ScalarVariabilityReport measure_scalar_variability(
    const ScalarKernel& d_kernel, const ScalarKernel& nd_kernel,
    std::size_t runs, std::uint64_t master_seed,
    Reference reference = Reference::kDeterministic);

struct ArrayVariabilityReport {
  std::vector<double> vermv_samples;
  std::vector<double> vc_samples;
  stats::Summary vermv_summary;
  stats::Summary vc_summary;
  std::size_t runs = 0;
  std::size_t elements = 0;
  double reproducible_fraction = 0.0;
};

/// Array analogue: Vermv and Vc of every ND run against the reference.
ArrayVariabilityReport measure_array_variability(
    const ArrayKernel& d_kernel, const ArrayKernel& nd_kernel,
    std::size_t runs, std::uint64_t master_seed,
    Reference reference = Reference::kDeterministic);

struct CertificationResult {
  bool deterministic = true;
  std::size_t runs = 0;
  /// First run index whose output differed from run 0 (meaningful only
  /// when !deterministic).
  std::size_t first_divergence = 0;
};

/// Determinism certification: runs the kernel under `runs` different
/// RunContexts and checks all outputs are bitwise identical. This is how
/// the toolkit *proves* the "deterministic" column of the paper's Table 2.
CertificationResult certify_deterministic(const ArrayKernel& kernel,
                                          std::size_t runs,
                                          std::uint64_t master_seed);
CertificationResult certify_deterministic_scalar(const ScalarKernel& kernel,
                                                 std::size_t runs,
                                                 std::uint64_t master_seed);

/// Pairwise-distinctness count: how many of the collected outputs are
/// unique (paper SV.B: "all 1,000 models had a unique set of weights").
std::size_t count_unique_outputs(
    const std::vector<std::vector<double>>& outputs);

}  // namespace fpna::core
