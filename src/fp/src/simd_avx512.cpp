// AVX-512F tier of the lane-blocked accumulators: one __m512d holds all
// 8 f64 lanes of an @simd8 stream (two for @simd16), one __m512 all 16
// f32 lanes of @simd16. Compiled with -mavx512f on x86 (see
// src/CMakeLists.txt), stubs elsewhere; only entered after simd.cpp's
// runtime CPUID check. Bitwise interchangeable with the AVX2 tier and
// the scalar emulation: vaddpd/vsubpd at 512 bits are the same IEEE
// operations per slot, and the mask-blend transcribes the same compare
// branch.

#include "simd_kernels.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace fpna::fp::simd_detail {

namespace {

struct VecD8 {
  using scalar = double;
  using mask = __mmask8;
  static constexpr int kWidth = 8;
  __m512d v;

  static VecD8 load(const double* p) noexcept { return {_mm512_loadu_pd(p)}; }
  static void store(VecD8 a, double* p) noexcept { _mm512_storeu_pd(p, a.v); }
  static VecD8 zero() noexcept { return {_mm512_setzero_pd()}; }
  static VecD8 add(VecD8 a, VecD8 b) noexcept {
    return {_mm512_add_pd(a.v, b.v)};
  }
  static VecD8 sub(VecD8 a, VecD8 b) noexcept {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  static VecD8 abs(VecD8 a) noexcept { return {_mm512_abs_pd(a.v)}; }
  static mask ge_abs(VecD8 a, VecD8 b) noexcept {
    return _mm512_cmp_pd_mask(abs(a).v, abs(b).v, _CMP_GE_OQ);
  }
  static VecD8 select(mask m, VecD8 t, VecD8 f) noexcept {
    return {_mm512_mask_blend_pd(m, f.v, t.v)};
  }
};

struct VecS16 {
  using scalar = float;
  using mask = __mmask16;
  static constexpr int kWidth = 16;
  __m512 v;

  static VecS16 load(const float* p) noexcept { return {_mm512_loadu_ps(p)}; }
  static void store(VecS16 a, float* p) noexcept { _mm512_storeu_ps(p, a.v); }
  static VecS16 zero() noexcept { return {_mm512_setzero_ps()}; }
  static VecS16 add(VecS16 a, VecS16 b) noexcept {
    return {_mm512_add_ps(a.v, b.v)};
  }
  static VecS16 sub(VecS16 a, VecS16 b) noexcept {
    return {_mm512_sub_ps(a.v, b.v)};
  }
  static VecS16 abs(VecS16 a) noexcept { return {_mm512_abs_ps(a.v)}; }
  static mask ge_abs(VecS16 a, VecS16 b) noexcept {
    return _mm512_cmp_ps_mask(abs(a).v, abs(b).v, _CMP_GE_OQ);
  }
  static VecS16 select(mask m, VecS16 t, VecS16 f) noexcept {
    return {_mm512_mask_blend_ps(m, f.v, t.v)};
  }
};

template <template <typename> class Step, typename Base>
bool span_f64(Base* lanes, std::size_t lane_count, std::size_t& next,
              const double* x, std::size_t n) {
  switch (lane_count) {
    case 8: run_span<VecD8, 1, Step>(lanes, next, x, n); return true;
    case 16: run_span<VecD8, 2, Step>(lanes, next, x, n); return true;
    default: return false;  // L=4 falls through to the AVX2 tier
  }
}

template <template <typename> class Step, typename Base>
bool span_f32(Base* lanes, std::size_t lane_count, std::size_t& next,
              const float* x, std::size_t n) {
  if (lane_count != 16) return false;  // L=8 falls through to AVX2
  run_span<VecS16, 1, Step>(lanes, next, x, n);
  return true;
}

}  // namespace

namespace avx512 {

bool add_span(SerialAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<SerialStep>(lanes, lane_count, next, x, n);
}
bool add_span(SerialAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<SerialStep>(lanes, lane_count, next, x, n);
}
bool add_span(KahanAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<KahanStep>(lanes, lane_count, next, x, n);
}
bool add_span(KahanAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<KahanStep>(lanes, lane_count, next, x, n);
}
bool add_span(NeumaierAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<NeumaierStep>(lanes, lane_count, next, x, n);
}
bool add_span(NeumaierAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<NeumaierStep>(lanes, lane_count, next, x, n);
}
bool add_span(KleinAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  return span_f64<KleinStep>(lanes, lane_count, next, x, n);
}
bool add_span(KleinAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  return span_f32<KleinStep>(lanes, lane_count, next, x, n);
}
bool add_span(PairwiseAccumulator<double>* lanes, std::size_t lane_count,
              std::size_t& next, const double* x, std::size_t n) {
  switch (lane_count) {
    case 8: return run_pairwise<VecD8, 1>(lanes, next, x, n);
    case 16: return run_pairwise<VecD8, 2>(lanes, next, x, n);
    default: return false;
  }
}
bool add_span(PairwiseAccumulator<float>* lanes, std::size_t lane_count,
              std::size_t& next, const float* x, std::size_t n) {
  if (lane_count != 16) return false;
  return run_pairwise<VecS16, 1>(lanes, next, x, n);
}

bool add_i64(std::int64_t* dst, const std::int64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a =
        _mm512_loadu_si512(reinterpret_cast<const void*>(dst + i));
    const __m512i b =
        _mm512_loadu_si512(reinterpret_cast<const void*>(src + i));
    _mm512_storeu_si512(reinterpret_cast<void*>(dst + i),
                        _mm512_add_epi64(a, b));
  }
  for (; i < n; ++i) dst[i] += src[i];
  return true;
}

}  // namespace avx512

}  // namespace fpna::fp::simd_detail

#else  // !defined(__AVX512F__): link-compatible stubs, never selected.

namespace fpna::fp::simd_detail::avx512 {

bool add_span(SerialAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(SerialAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(KahanAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(KahanAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(NeumaierAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(NeumaierAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(KleinAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(KleinAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_span(PairwiseAccumulator<double>*, std::size_t, std::size_t&,
              const double*, std::size_t) {
  return false;
}
bool add_span(PairwiseAccumulator<float>*, std::size_t, std::size_t&,
              const float*, std::size_t) {
  return false;
}
bool add_i64(std::int64_t*, const std::int64_t*, std::size_t) {
  return false;
}

}  // namespace fpna::fp::simd_detail::avx512

#endif
