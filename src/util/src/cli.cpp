#include "fpna/util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace fpna::util {

namespace {

bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form, unless the next token is itself a flag (then
    // this is a bare boolean).
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "";
    }
  }
}

bool Cli::has(const std::string& name) const {
  consumed_[name] = true;
  return values_.count(name) > 0;
}

bool Cli::flag(const std::string& name, bool fallback) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Cli: flag --" + name +
                              " has non-boolean value '" + v + "'");
}

std::int64_t Cli::integer(const std::string& name,
                          std::int64_t fallback) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  // Accept scientific shorthand like 1e6 for convenience on size flags.
  const double as_real = std::strtod(it->second.c_str(), nullptr);
  return static_cast<std::int64_t>(as_real);
}

double Cli::real(const std::string& name, double fallback) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::text(const std::string& name,
                      const std::string& fallback) const {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::vector<std::string> Cli::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!consumed_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace fpna::util
