#pragma once
// A fixed-point superaccumulator covering the full double exponent range
// (the ExBLAS/Collange-Defour-Graillat-Iakymchuk "long accumulator"
// technique, also the backbone of reproducible BLAS efforts cited by the
// paper [2]). Doubles are exactly decomposed into 32-bit limbs and added
// with *integer* arithmetic, which is associative - so the accumulated
// value, and therefore the rounded result, is bitwise independent of the
// order (or parallel partitioning) of the additions.
//
// This gives the toolkit an order-free "gold" sum: the deterministic GPU
// kernels are certified against it, and it serves as the reproducible
// reduction option in src/reduce.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace fpna::fp {

class Superaccumulator {
 public:
  // Bit positions span [-1126, 1024): denormal mantissa LSB up to the MSB
  // of DBL_MAX, in 32-bit limbs. 68 limbs cover 2176 bits.
  static constexpr int kLimbBits = 32;
  static constexpr int kMinExponent = -1126;  // frexp exponent - 53 lower bound
  static constexpr int kNumLimbs = 68;

  Superaccumulator() = default;

  /// Adds one double exactly. O(1): splits the 53-bit mantissa across at
  /// most three limbs.
  void add(double x) noexcept;

  /// Adds n doubles.
  void add(std::span<const double> values) noexcept {
    for (double v : values) add(v);
  }

  /// Merges another accumulator (exact; used to combine per-thread
  /// partials into an order-independent total). The limb-wise integer
  /// add vectorizes (fp::simd_add_i64) - integer adds are exact, so the
  /// fast path is trivially bitwise identical.
  void add(const Superaccumulator& other) noexcept;

  /// Merges a wire image (serialize()'s kWireWords words) directly,
  /// bitwise identical to `add(deserialize(words))` but skipping the
  /// deserialize copy and the redundant re-normalisation of the rhs (the
  /// wire form is canonical by construction). This is the hot merge of
  /// the collective reduce-scatter: every received shard is one of these
  /// adds per element. Throws std::invalid_argument on a wrong-size span.
  void add_wire(std::span<const std::uint64_t> words);

  /// Rounds the accumulated value to the nearest double. Pure function of
  /// the (normalised) limb state: identical limbs give identical bits.
  double round() const noexcept;

  /// Restores every limb to [0, 2^32) canonical form (sign carried by the
  /// most significant nonzero limb). Called automatically when the
  /// unnormalised add count approaches the overflow bound.
  void normalize() noexcept;

  /// True iff both accumulators represent the same exact value.
  bool equals(const Superaccumulator& other) const noexcept;

  /// Wire form: the normalised limbs (two's-complement 64-bit words) plus
  /// one flags word (nan | pos_inf << 1 | neg_inf << 2). Normalisation
  /// makes the encoding canonical: two accumulators holding the same
  /// exact value serialize to identical bytes, so the exact reduction
  /// path can travel point-to-point messages (comm's schedule-based
  /// reduce-scatter) without losing its order-invariance certificate.
  static constexpr std::size_t kWireWords = kNumLimbs + 1;

  /// Writes exactly kWireWords words; throws std::invalid_argument when
  /// `out` is not that size.
  void serialize(std::span<std::uint64_t> out) const;

  /// Rebuilds the exact state from serialize()'s words (size-checked).
  static Superaccumulator deserialize(std::span<const std::uint64_t> words);

  /// Exceptional-value state (propagated like IEEE addition would).
  bool has_nan() const noexcept { return nan_; }
  bool has_pos_inf() const noexcept { return pos_inf_; }
  bool has_neg_inf() const noexcept { return neg_inf_; }

  /// One-shot helper: the reproducible sum of a range.
  static double sum(std::span<const double> values) noexcept {
    Superaccumulator acc;
    acc.add(values);
    return acc.round();
  }

 private:
  // Each limb holds a signed partial sum of 32-bit chunks; int64 headroom
  // allows ~2^30 unnormalised adds (each contributes < 2^33 in magnitude
  // per limb) before carries must be propagated.
  static constexpr std::uint64_t kMaxPendingAdds = 1ULL << 29;

  std::array<std::int64_t, kNumLimbs> limbs_{};
  std::uint64_t pending_ = 0;
  bool nan_ = false;
  bool pos_inf_ = false;
  bool neg_inf_ = false;
};

}  // namespace fpna::fp
