#pragma once
// The dtype axis of the reduction API (paper SV: the DL results hinge on
// low-precision storage with higher-precision accumulation, as on GPU
// tensor cores). Split from the accumulation layer so that light-weight
// context headers (core::EvalContext and everything layered on it) can
// name a dtype without compiling the whole registry.

#include <cstdint>
#include <string>
#include <string_view>

namespace fpna::fp {

/// Element dtypes a reduction can store or accumulate in. kNative means
/// "the kernel's own element type" (double for the reduce/collective/
/// tensor layers, float for the dense dl kernels): no quantization, no
/// precision change - the default that reproduces seed bits everywhere.
enum class Dtype : std::uint8_t {
  kNative = 0,
  kF64,
  kF32,
  kBf16,
};

/// Canonical CLI key: "native", "f64", "f32", "bf16".
const char* to_string(Dtype dtype) noexcept;

/// Parses a dtype key ("f64"/"double", "f32"/"float", "bf16", "native");
/// throws std::invalid_argument listing the valid keys.
Dtype parse_dtype(std::string_view name);

/// The valid keys, for error messages and --help text.
std::string dtype_keys();

/// The Dtype naming a concrete element type (unspecialised: no mapping).
template <typename T>
struct dtype_of;

template <>
struct dtype_of<double> {
  static constexpr Dtype value = Dtype::kF64;
};
template <>
struct dtype_of<float> {
  static constexpr Dtype value = Dtype::kF32;
};

template <typename T>
inline constexpr Dtype dtype_of_v = dtype_of<T>::value;

}  // namespace fpna::fp
