// Reproduces Table 1: effects of random permutations on serial FP64 sums.
// For each array size n, x_i ~ N(0,1), the harness reports S_nd - S_d and
// Vs for shuffled re-summations (two rows per size, like the paper).
//
// Flags: --seed, --reps (shuffles per size), --sizes (comma list),
//        --distribution {normal|uniform|exponential},
//        --algorithm (any fp::AlgorithmRegistry name; default serial -
//        e.g. --algorithm=kahan shows how compensation shrinks the
//        permutation effect, --algorithm=superaccumulator kills it), --csv

#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/table.hpp"

namespace {

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::strtod(token.c_str(), nullptr)));
  }
  return sizes;
}

std::vector<double> draw(const std::string& distribution, std::size_t n,
                         std::uint64_t seed) {
  if (distribution == "uniform") {
    return fpna::bench::uniform_array(n, 0.0, 10.0, seed);
  }
  if (distribution == "exponential") {
    fpna::util::Xoshiro256pp rng(seed);
    const fpna::util::Exponential dist(1.0);  // Boltzmann-like
    std::vector<double> v(n);
    for (auto& x : v) x = dist(rng);
    return v;
  }
  return fpna::bench::normal_array(n, 0.0, 1.0, seed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fpna;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto reps = static_cast<std::size_t>(cli.integer("reps", 2));
  const std::string distribution = cli.text("distribution", "normal");
  const auto sizes =
      parse_sizes(cli.text("sizes", "100,1000,10000,100000,1000000"));
  const auto& algo =
      fp::AlgorithmRegistry::instance().at(cli.text("algorithm", "serial"));
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Table 1: effects of permutations on sums of floating-point "
               "numbers (x ~ " + distribution + ", " + algo.name + ")");

  util::Table table({"size", "Snd - Sd", "Vs"});
  util::Xoshiro256pp shuffle_rng(seed ^ 0x5eedULL);
  for (const std::size_t n : sizes) {
    auto values = draw(distribution, n, seed + n);
    const double s_d = algo.reduce(values);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      util::shuffle(values, shuffle_rng);
      const double s_nd = algo.reduce(values);
      table.add_row({std::to_string(n), util::sci(s_nd - s_d),
                     util::sci(core::vs(s_nd, s_d))});
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPaper reference (Table 1): |Snd-Sd| grows from ~2e-15 at "
                 "n=1e2 to ~4e-13 at n=1e6; Vs stays at the 1e-16..1e-15 "
                 "relative scale.\n";
  }
  return fpna::bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
