#pragma once
// Execution context for tensor ops - now the unified core::EvalContext.
//
// A default-constructed context runs the deterministic implementation with
// the serial accumulator. Supplying a RunContext opts into the
// non-deterministic (atomic-scatter) implementation, whose commit order is
// drawn from the run's generator under the given device profile's
// contention policy - unless the determinism override / global
// DeterminismContext switch forces the deterministic path, exactly like
// torch.use_deterministic_algorithms does for CUDA kernels. The
// `accumulator` field selects which registry algorithm deterministic
// reductions route through.

#include "fpna/core/eval_context.hpp"
#include "fpna/tensor/determinism.hpp"

namespace fpna::tensor {

using OpContext = core::EvalContext;

/// Convenience: ND context on the default device.
inline OpContext nd_context(core::RunContext& run,
                            const sim::DeviceProfile* profile = nullptr) {
  OpContext ctx;
  ctx.run = &run;
  ctx.profile = profile;
  return ctx;
}

}  // namespace fpna::tensor
