#pragma once
// Software bfloat16: the 16-bit truncated-significand float of the DL
// mixed-precision setting the paper studies (8 exponent bits - the full
// binary32 range - and 7 stored significand bits). The toolkit certifies
// *bits*, so the type is exact by construction:
//
//   * bf16 -> float is a bit shift (every bf16 value is a float);
//   * float -> bf16 rounds to nearest, ties to even, in one rounding -
//     the hardware conversion semantics - with subnormals handled by the
//     same carry chain (bf16 and binary32 share an exponent range, so a
//     float subnormal lands on a bf16 subnormal) and NaN special-cased so
//     significand rounding cannot carry a NaN into an infinity;
//   * overflow rounds to +-inf exactly where binary32 RNE would.
//
// Arithmetic happens through the implicit float conversion: `a + b` is a
// float add of exact operands, and `static_cast<bf16>(...)` is the one
// rounding - which is precisely the "storage dtype" discipline the
// ReductionSpec machinery needs (quantized operands, wider accumulate).

#include <bit>
#include <cstdint>
#include <limits>

#include "fpna/fp/dtype.hpp"

namespace fpna::fp {

class bf16 {
 public:
  constexpr bf16() noexcept = default;
  explicit constexpr bf16(float value) noexcept : bits_(round_bits(value)) {}
  /// Narrowing from double goes through float first (two roundings, like
  /// `static_cast<float>` followed by the hardware bf16 convert).
  explicit constexpr bf16(double value) noexcept
      : bf16(static_cast<float>(value)) {}

  /// Exact widening: every bf16 value is a binary32 value.
  constexpr operator float() const noexcept {
    return std::bit_cast<float>(static_cast<std::uint32_t>(bits_) << 16);
  }

  static constexpr bf16 from_bits(std::uint16_t bits) noexcept {
    bf16 out;
    out.bits_ = bits;
    return out;
  }
  constexpr std::uint16_t to_bits() const noexcept { return bits_; }

  /// Bit-pattern identity (distinguishes -0 from +0, equates same-payload
  /// NaNs) - the equality the variability metrics are defined on.
  friend constexpr bool bitwise_equal(bf16 x, bf16 y) noexcept {
    return x.bits_ == y.bits_;
  }

 private:
  /// Round-to-nearest-even binary32 -> bf16, the TPU/PyTorch conversion:
  /// adding 0x7FFF + lsb(kept significand) carries exactly when the
  /// discarded half exceeds (or ties onto an odd) the kept part. The
  /// carry chain also produces correct subnormal rounding and RNE
  /// overflow to infinity; NaN is the one pattern where a significand
  /// carry would change the value class, so it is quieted explicitly.
  static constexpr std::uint16_t round_bits(float value) noexcept {
    const std::uint32_t x = std::bit_cast<std::uint32_t>(value);
    if ((x & 0x7FFFFFFFu) > 0x7F800000u) {  // NaN: keep sign, force quiet
      return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
    }
    const std::uint32_t bias = 0x7FFFu + ((x >> 16) & 1u);
    return static_cast<std::uint16_t>((x + bias) >> 16);
  }

  std::uint16_t bits_ = 0;  // +0.0
};

static_assert(sizeof(bf16) == 2);

/// Number of representable bf16 values between x and y (0 iff bitwise
/// equal after collapsing -0 onto +0); INT32_MAX if either is NaN.
constexpr std::int32_t ulp_distance_bf16(bf16 x, bf16 y) noexcept {
  const auto is_nan = [](bf16 v) {
    return (v.to_bits() & 0x7FFFu) > 0x7F80u;
  };
  if (is_nan(x) || is_nan(y)) return std::numeric_limits<std::int32_t>::max();
  const auto monotone = [](bf16 v) -> std::int32_t {
    std::uint16_t b = v.to_bits();
    if (b == 0x8000u) b = 0;  // -0 -> +0
    const auto s = static_cast<std::int32_t>(b);
    return (b & 0x8000u) != 0 ? 0x8000 - s : s;
  };
  const std::int32_t ix = monotone(x), iy = monotone(y);
  return ix >= iy ? ix - iy : iy - ix;
}

template <>
struct dtype_of<bf16> {
  static constexpr Dtype value = Dtype::kBf16;
};

}  // namespace fpna::fp

/// Minimal numeric_limits so generic test/bench code can ask the usual
/// questions of the storage dtype.
template <>
class std::numeric_limits<fpna::fp::bf16> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int radix = 2;
  static constexpr int digits = 8;  // 7 stored + 1 implicit
  static constexpr int max_exponent = 128;
  static constexpr int min_exponent = -125;

  static constexpr fpna::fp::bf16 min() noexcept {  // smallest normal
    return fpna::fp::bf16::from_bits(0x0080u);      // 2^-126
  }
  static constexpr fpna::fp::bf16 denorm_min() noexcept {
    return fpna::fp::bf16::from_bits(0x0001u);      // 2^-133
  }
  static constexpr fpna::fp::bf16 max() noexcept {
    return fpna::fp::bf16::from_bits(0x7F7Fu);      // (2 - 2^-7) * 2^127
  }
  static constexpr fpna::fp::bf16 lowest() noexcept {
    return fpna::fp::bf16::from_bits(0xFF7Fu);
  }
  static constexpr fpna::fp::bf16 epsilon() noexcept {
    return fpna::fp::bf16::from_bits(0x3C00u);      // 2^-7
  }
  static constexpr fpna::fp::bf16 infinity() noexcept {
    return fpna::fp::bf16::from_bits(0x7F80u);
  }
  static constexpr fpna::fp::bf16 quiet_NaN() noexcept {
    return fpna::fp::bf16::from_bits(0x7FC0u);
  }
};
