#include "fpna/fp/accumulator.hpp"

#include <stdexcept>

namespace fpna::fp {

const char* to_string(AlgorithmId id) noexcept {
  switch (id) {
    case AlgorithmId::kSerial: return "serial";
    case AlgorithmId::kPairwise: return "pairwise";
    case AlgorithmId::kKahan: return "kahan";
    case AlgorithmId::kNeumaier: return "neumaier";
    case AlgorithmId::kKlein: return "klein";
    case AlgorithmId::kDoubleDouble: return "double_double";
    case AlgorithmId::kVectorized: return "vectorized";
    case AlgorithmId::kBinned: return "binned";
    case AlgorithmId::kSuperaccumulator: return "superaccumulator";
  }
  return "?";
}

const AlgorithmTraits& traits_of(AlgorithmId id) {
  return visit_algorithm(
      id, [](auto tag) -> const AlgorithmTraits& { return decltype(tag)::traits; });
}

AlgorithmRegistry& AlgorithmRegistry::instance() {
  static AlgorithmRegistry registry;
  return registry;
}

void AlgorithmRegistry::register_algorithm(Entry entry) {
  for (const Entry& existing : entries_) {
    if (existing.name == entry.name || existing.id == entry.id) {
      throw std::invalid_argument("AlgorithmRegistry: duplicate entry '" +
                                  entry.name + "'");
    }
  }
  entries_.push_back(std::move(entry));
}

const AlgorithmRegistry::Entry* AlgorithmRegistry::find(
    std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const AlgorithmRegistry::Entry& AlgorithmRegistry::at(
    std::string_view name) const {
  if (const Entry* entry = find(name)) return *entry;
  std::string message = "unknown accumulator '" + std::string(name) +
                        "'; registered:";
  for (const Entry& entry : entries_) message += " " + entry.name;
  message +=
      " (each also accepts @simd<L> lane-blocked variants, L in {1, 4, 8, "
      "16}, and @<storage>[:<accumulate>] dtype qualifiers, e.g. "
      "kahan@simd8:bf16:f32)";
  throw std::invalid_argument(message);
}

const AlgorithmRegistry::Entry& AlgorithmRegistry::at(AlgorithmId id) const {
  for (const Entry& entry : entries_) {
    if (entry.id == id) return entry;
  }
  throw std::invalid_argument(std::string("unregistered accumulator id '") +
                              to_string(id) + "'");
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.name);
  return out;
}

double AlgorithmRegistry::sum(std::string_view name,
                              std::span<const double> values) {
  // One lookup/throw path for every name-driven surface: the spec parser
  // resolves the algorithm through at() (unknown names list the
  // registered keys) and the dtypes through parse_dtype (unknown dtypes
  // list the valid keys); reduce() then dispatches. Bare names resolve to
  // a native spec, whose double path is the historic free function.
  return reduce<double>(parse_reduction_spec(name), values);
}

namespace detail {
AlgorithmRegistrar::AlgorithmRegistrar(AlgorithmRegistry::Entry entry) {
  AlgorithmRegistry::instance().register_algorithm(std::move(entry));
}
}  // namespace detail

// The nine built-ins. Registration order is the canonical bench/table row
// order: cheap & order-sensitive first, reproducible last.
FPNA_REGISTER_ACCUMULATOR(serial, "serial", tags::Serial,
                          "left-to-right recursive sum")
FPNA_REGISTER_ACCUMULATOR(pairwise, "pairwise", tags::Pairwise,
                          "cascade (pairwise) sum, base block 32")
FPNA_REGISTER_ACCUMULATOR(vectorized, "vectorized", tags::Vectorized,
                          "4-lane strided partials, like a vectorised loop")
FPNA_REGISTER_ACCUMULATOR(kahan, "kahan", tags::Kahan,
                          "Kahan compensated sum")
FPNA_REGISTER_ACCUMULATOR(neumaier, "neumaier", tags::Neumaier,
                          "Neumaier compensated sum")
FPNA_REGISTER_ACCUMULATOR(klein, "klein", tags::Klein,
                          "Klein second-order compensated sum")
FPNA_REGISTER_ACCUMULATOR(double_double, "double_double", tags::DoubleDoubleTag,
                          "double-double (~106-bit) accumulation")
FPNA_REGISTER_ACCUMULATOR(binned, "binned", tags::Binned,
                          "Demmel-Nguyen binned reproducible sum")
FPNA_REGISTER_ACCUMULATOR(superaccumulator, "superaccumulator", tags::Super,
                          "exact long-accumulator reproducible sum")

}  // namespace fpna::fp
