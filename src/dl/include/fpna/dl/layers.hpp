#pragma once
// GNN layers with explicit (manual) backward passes: Linear, GraphSAGE
// mean-aggregation convolution, ReLU, log-softmax and masked NLL loss.
//
// The single source of non-determinism in the whole stack is the
// index_add used by neighbour aggregation - in the forward direction
// (sum messages into destination nodes) and in the backward direction
// (scatter gradients back to source nodes) - exactly matching the paper's
// statement that "the only source of non-determinism in our
// implementation of this DNN is the index_add operation" (SV.B).

#include <cstdint>
#include <functional>
#include <vector>

#include "fpna/dl/graph.hpp"
#include "fpna/dl/linalg.hpp"
#include "fpna/tensor/op_context.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::dl {

/// Invoked by a layer's backward as a parameter's gradient buffer
/// receives its final contribution - the DDP hook: a data-parallel
/// trainer can hand each finished gradient to a comm::BucketScheduler
/// and overlap the bucket's allreduce with the rest of the backward
/// pass, instead of waiting for every gradient to land. The argument
/// identifies the buffer (compare against the model's parameters()
/// gradient pointers). An empty sink costs one branch per parameter.
using GradientSink = std::function<void(const Matrix* grad)>;

/// Mean neighbour aggregation: out[v] = (1/deg(v)) sum_{u -> v} x[u].
/// Forward of the GraphSAGE aggregator; the sum is an index_add over the
/// edge list (ND when ctx requests it).
Matrix mean_aggregate(const Matrix& x, const Graph& graph,
                      const tensor::OpContext& ctx);

/// Backward of mean_aggregate: dX[u] += dOut[v] / deg(v) over edges
/// u -> v; itself an index_add with the edge roles swapped.
Matrix mean_aggregate_backward(const Matrix& d_out, const Graph& graph,
                               const tensor::OpContext& ctx);

/// Fully connected layer y = x W + b, weights Glorot-uniform initialised.
/// The matmuls run on ctx.pool when one is provided - bitwise identical
/// to serial for every registry accumulator (row-blocked, see linalg.hpp).
class Linear {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features,
         util::Xoshiro256pp& rng);

  Matrix forward(const Matrix& x, const core::EvalContext& ctx = {}) const;

  /// Accumulates dW, db and returns dX. `x` must be the forward input.
  /// `sink` (if set) fires for grad_weight then grad_bias once each holds
  /// its final value - valid only when backward runs once per step.
  Matrix backward(const Matrix& x, const Matrix& d_out,
                  const core::EvalContext& ctx = {},
                  const GradientSink& sink = {});

  void zero_grad();

  Matrix weight;  // [in, out]
  Matrix bias;    // [out]
  Matrix grad_weight;
  Matrix grad_bias;
};

/// GraphSAGE convolution: out = x W_self + mean_agg(x) W_neigh + b.
class SageConv {
 public:
  SageConv(std::int64_t in_features, std::int64_t out_features,
           util::Xoshiro256pp& rng);

  struct Cache {
    Matrix x;        // forward input
    Matrix h_neigh;  // aggregated neighbour features
  };

  Matrix forward(const Matrix& x, const Graph& graph,
                 const tensor::OpContext& ctx, Cache* cache = nullptr) const;

  /// Returns dX (both the self path and the aggregation path). `sink`
  /// fires for lin_self.grad_weight, lin_self.grad_bias and
  /// lin_neigh.grad_weight as each receives its final contribution (the
  /// folded-bias lin_neigh.grad_bias is not a parameter and never fires).
  Matrix backward(const Cache& cache, const Matrix& d_out, const Graph& graph,
                  const tensor::OpContext& ctx,
                  const GradientSink& sink = {});

  void zero_grad();

  std::int64_t in_features() const noexcept { return lin_self.weight.size(0); }
  std::int64_t out_features() const noexcept {
    return lin_self.weight.size(1);
  }

  Linear lin_self;
  Linear lin_neigh;
};

/// Elementwise max(x, 0).
Matrix relu(const Matrix& x);
/// dZ = dOut where z > 0, else 0.
Matrix relu_backward(const Matrix& z, const Matrix& d_out);

/// Row-wise log-softmax (numerically stabilised with the row max).
Matrix log_softmax_rows(const Matrix& logits);

struct LossResult {
  double loss = 0.0;
  /// Gradient w.r.t. the *logits* (combined log-softmax + NLL backward).
  Matrix d_logits;
};

/// Mean negative log-likelihood over masked rows. `log_probs` must be the
/// output of log_softmax_rows on the logits. The loss reduction over rows
/// routes through the context's registry-selected accumulator (the serial
/// default reproduces the historic value bitwise). `grad_scale`
/// multiplies d_logits only - the loss-scaling entry point: the reported
/// loss is never scaled, and the multiply is fused here (after the
/// mean-NLL division, one rounding) so the scaled gradient path starts
/// from a single named operation. grad_scale == 1 is bitwise identity.
LossResult nll_loss_masked(const Matrix& log_probs,
                           const std::vector<std::int64_t>& labels,
                           const std::vector<char>& mask,
                           const core::EvalContext& ctx,
                           float grad_scale = 1.0f);
LossResult nll_loss_masked(const Matrix& log_probs,
                           const std::vector<std::int64_t>& labels,
                           const std::vector<char>& mask);

/// Row-wise argmax (predictions).
std::vector<std::int64_t> argmax_rows(const Matrix& scores);

}  // namespace fpna::dl
