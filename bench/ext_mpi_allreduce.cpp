// Extension experiment (paper SVI, future work): inter-node communication
// as an additional FPNA variability source. Two parts:
//
//  1. Variability of a distributed sum vs rank count, comparing the MPI
//     collective algorithms: ring / recursive doubling (deterministic,
//     but bit-different from each other), arrival-order tree
//     (non-deterministic, like switch-offloaded in-network reduction)
//     and the reproducible superaccumulator exchange.
//
//  2. Data-parallel GNN training with gradient allreduce across simulated
//     ranks - dl::train_data_parallel on the schedule-based comm stack
//     (backward-overlapped bucket firing, ring/butterfly wire schedules):
//     with the arrival-tree collective every training run yields a unique
//     model even though every rank's local computation is deterministic -
//     the distributed analogue of the paper's SV result. Deterministic
//     collectives certify run-to-run stability and the wire schedules'
//     measured O(n)-per-rank traffic against the allgather backend's
//     O(n*P), with final-weight bit fingerprints riding the CI
//     determinism gate.
//
// Flags: --size --runs --ranks --epochs --seed --csv --json=<path>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fpna/collective/allreduce.hpp"
#include "fpna/comm/process_group.hpp"
#include "fpna/comm/schedule.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/dl/data_parallel.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/stats/descriptive.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

// ---------------------------------------------------------------- part 1

void distributed_sum_variability(std::size_t size, std::size_t runs,
                                 std::uint64_t seed, bool csv,
                                 util::Table& table) {
  util::banner(std::cout,
               "Extension 1: distributed-sum variability vs rank count (" +
                   std::to_string(size) + " FP64 elements, " +
                   std::to_string(runs) + " runs)");
  const auto data = bench::uniform_array(size, -1e6, 1e6, seed);
  const double exact = fp::Superaccumulator::sum(data);

  for (const std::size_t ranks : {4u, 16u, 64u, 256u}) {
    for (const auto algorithm :
         {collective::Algorithm::kRing,
          collective::Algorithm::kRecursiveDoubling,
          collective::Algorithm::kArrivalTree,
          collective::Algorithm::kReproducible}) {
      const auto kernel = [&](core::RunContext& ctx) {
        return collective::distributed_sum(data, ranks, algorithm, &ctx);
      };
      const auto cert =
          core::certify_deterministic_scalar(kernel, 10, seed + 1);
      const auto report = core::measure_scalar_variability(
          kernel, kernel, runs, seed + 2, core::Reference::kFirstRun);
      core::RunContext one(seed + 3, 0);
      const double value = kernel(one);
      table.add_row({std::to_string(ranks),
                     collective::to_string(algorithm),
                     cert.deterministic ? "yes" : "NO",
                     util::sci(report.vs_summary.stddev, 2),
                     util::sci(std::fabs(value - exact), 2)});
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

// ---------------------------------------------------------------- part 2

std::string weights_fingerprint(const std::vector<double>& weights) {
  bench::BitFingerprint fp;
  fp.feed(std::span<const double>(weights));
  return fp.hex();
}

void data_parallel_training(std::size_t ranks, int epochs, std::size_t runs,
                            std::uint64_t seed, bool csv,
                            util::Table& table) {
  util::banner(std::cout,
               "Extension 2: data-parallel GraphSAGE "
               "(dl::train_data_parallel, backward-overlapped buckets), "
               "gradient allreduce across " + std::to_string(ranks) +
                   " ranks, " + std::to_string(runs) +
                   " trainings per (collective, wire)");
  const auto ds = dl::make_synthetic_citation_dataset(
      dl::DatasetConfig::small());

  dl::DataParallelConfig reference_config;
  reference_config.base.epochs = epochs;
  reference_config.ranks = ranks;
  reference_config.algorithm = collective::Algorithm::kReproducible;
  core::RunContext ref_run(seed, 0);
  const auto reference =
      dl::train_data_parallel(ds, reference_config, ref_run).final_weights;

  for (const auto algorithm :
       {collective::Algorithm::kReproducible, collective::Algorithm::kRing,
        collective::Algorithm::kArrivalTree}) {
    for (const comm::WirePath wire :
         {comm::WirePath::kAllgather, comm::WirePath::kRing,
          comm::WirePath::kButterfly}) {
      dl::DataParallelConfig config = reference_config;
      config.algorithm = algorithm;
      config.wire = wire;

      comm::SimProcessGroup pg(ranks, wire);
      std::vector<std::vector<double>> finals;
      double vermv_total = 0.0;
      for (std::size_t r = 0; r < runs; ++r) {
        core::RunContext run(seed + 10, r);
        finals.push_back(
            dl::train_data_parallel(ds, config, run, pg).final_weights);
        vermv_total += core::vermv(std::span<const double>(reference),
                                   std::span<const double>(finals.back()));
      }
      const std::size_t unique = core::count_unique_outputs(finals);
      const bool stable = unique == 1;
      // Per-rank gradient traffic of the whole sweep, measured by the
      // group's ledger: the schedule wires move O(n) per rank where the
      // allgather backend moves O(n*P).
      const comm::Traffic traffic = pg.traffic(0);
      table.add_row(
          {collective::to_string(algorithm), comm::to_string(wire),
           std::to_string(unique) + " / " + std::to_string(runs),
           util::sci(vermv_total / static_cast<double>(runs), 2),
           std::to_string(traffic.bytes_sent / 1024) + " KiB",
           stable ? "yes" : "NO",
           stable ? weights_fingerprint(finals.front()) : "-"});
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nReading: with a deterministic collective, the distributed "
           "training is bitwise reproducible on every wire - and the "
           "reproducible collective's fingerprint is identical across "
           "allgather/ring/butterfly (the serialized-superaccumulator "
           "exchange moves traffic, never bits). With arrival-order "
           "combining, every run is a unique model even though every "
           "rank's local computation is deterministic - communication is "
           "an independent FPNA variability source (paper SVI).\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.integer("size", 100000));
  const auto runs = static_cast<std::size_t>(cli.integer("runs", 50));
  const auto ranks = static_cast<std::size_t>(cli.integer("ranks", 8));
  const int epochs = static_cast<int>(cli.integer("epochs", 6));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");
  const std::string json = cli.text("json", "");

  util::Table sum_table({"ranks", "algorithm", "deterministic (measured)",
                         "std(Vs)", "|value - exact|"});
  distributed_sum_variability(size, runs, seed, csv, sum_table);

  util::Table train_table({"collective", "wire", "unique final models",
                           "mean Vermv vs reproducible reference",
                           "gradient traffic/rank", "run-to-run stable",
                           "bits"});
  data_parallel_training(ranks, epochs, std::min<std::size_t>(runs, 8), seed,
                         csv, train_table);

  if (!json.empty()) {
    bench::write_json(json, "ext_mpi_allreduce",
                      {{"distributed_sum", &sum_table},
                       {"data_parallel_training", &train_table}});
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
