#include "fpna/serve/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fpna/obs/clock.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::serve {

InferenceServer::InferenceServer(const InferenceSession& session,
                                 ServerConfig config)
    : session_(session),
      config_(std::move(config)),
      queue_(config_.max_queue == 0 ? 1 : config_.max_queue) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("InferenceServer: max_batch == 0");
  }
  ctx_.accumulator = config_.spec;
  ctx_.pool = config_.pool;
  ctx_.recorder = config_.recorder;
  batcher_ = std::thread([this] { batcher_loop(); });
}

InferenceServer::~InferenceServer() { shutdown(); }

std::future<InferenceResult> InferenceServer::submit(Request request) {
  Submission submission;
  submission.request = std::move(request);
  submission.admitted_ns = obs::now_ns();
  std::future<InferenceResult> future = submission.promise.get_future();
  if (!queue_.push(std::move(submission))) {
    throw std::runtime_error("InferenceServer: submit after shutdown");
  }
  return future;
}

void InferenceServer::shutdown() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  if (batcher_.joinable()) batcher_.join();
}

void InferenceServer::batcher_loop() {
  std::deque<Submission> staged;
  for (;;) {
    if (staged.empty()) {
      queue_.drain(staged, config_.max_wait);
      if (staged.empty()) {
        if (queue_.closed()) {
          // Exit only once no producer still holds an admission slot:
          // a submit() racing close() either lands (approx_size > 0,
          // drained next iteration) or aborts (slot released) - either
          // way no admitted request is ever abandoned.
          if (queue_.approx_size() == 0) return;
          std::this_thread::yield();
        }
        continue;
      }
    }
    // Dynamic coalescing: dispatch at max_batch, or when the oldest
    // staged request has waited max_wait.
    const std::uint64_t deadline =
        staged.front().admitted_ns +
        static_cast<std::uint64_t>(config_.max_wait.count());
    while (staged.size() < config_.max_batch && !queue_.closed()) {
      const std::uint64_t now = obs::now_ns();
      if (now >= deadline) break;
      queue_.drain(staged, std::chrono::nanoseconds(
                               static_cast<std::int64_t>(deadline - now)));
    }
    serve_batch(staged, std::min(config_.max_batch, staged.size()));
  }
}

void InferenceServer::serve_batch(std::deque<Submission>& staged,
                                  std::size_t count) {
  std::vector<Request> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests.push_back(std::move(staged[i].request));
  }

  // Join-and-rethrow containment: row faults come back per-outcome and
  // fail only their own promise; an infrastructure throw (pool
  // submission, allocation) surfaces here after parallel_for's join and
  // fails every promise of this batch - never a dangling future.
  std::vector<RowOutcome> outcomes;
  std::exception_ptr batch_error;
  try {
    outcomes = session_.batch_forward(
        std::span<const Request>(requests.data(), count), ctx_,
        config_.fault_hook);
  } catch (...) {
    batch_error = std::current_exception();
  }

  const std::uint64_t completed = obs::now_ns();
  obs::Recorder* recorder = config_.recorder;
  for (std::size_t i = 0; i < count; ++i) {
    Submission& submission = staged[i];
    if (batch_error != nullptr) {
      submission.promise.set_exception(batch_error);
      continue;
    }
    if (outcomes[i].error != nullptr) {
      submission.promise.set_exception(outcomes[i].error);
      continue;
    }
    InferenceResult result;
    result.log_probs = std::move(outcomes[i].log_probs);
    result.admitted_ns = submission.admitted_ns;
    result.completed_ns = completed;
    if (recorder != nullptr) {
      recorder->metrics()
          .histogram("serve.latency_ns")
          .record(completed - submission.admitted_ns);
    }
    submission.promise.set_value(std::move(result));
  }
  if (recorder != nullptr) {
    recorder->metrics().counter("serve.requests").add(count);
    recorder->metrics().counter("serve.batches").increment();
    recorder->metrics().gauge("serve.queue_depth").set(
        static_cast<double>(queue_.approx_size()));
  }
  staged.erase(staged.begin(),
               staged.begin() + static_cast<std::ptrdiff_t>(count));
}

}  // namespace fpna::serve
