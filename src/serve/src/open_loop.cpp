#include "fpna/serve/open_loop.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "fpna/obs/recorder.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::serve {

namespace {

double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

LatencySummary summarize(std::vector<double>& latencies_us, double duration_s,
                         std::size_t failed) {
  LatencySummary summary;
  summary.completed = latencies_us.size();
  summary.failed = failed;
  summary.duration_s = duration_s;
  summary.throughput_rps =
      duration_s > 0.0 ? static_cast<double>(latencies_us.size()) / duration_s
                       : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  summary.p50_us = sorted_percentile(latencies_us, 0.50);
  summary.p95_us = sorted_percentile(latencies_us, 0.95);
  summary.p99_us = sorted_percentile(latencies_us, 0.99);
  return summary;
}

}  // namespace

std::vector<std::uint64_t> exponential_interarrivals_ns(double rate_per_s,
                                                        std::size_t n,
                                                        std::uint64_t seed) {
  if (rate_per_s <= 0.0) {
    throw std::invalid_argument("exponential_interarrivals_ns: rate <= 0");
  }
  util::Xoshiro256pp rng(seed);
  std::vector<std::uint64_t> gaps(n);
  for (auto& gap : gaps) {
    // Inverse-CDF draw; canonical() < 1 keeps the log finite.
    const double u = util::canonical(rng);
    const double seconds = -std::log1p(-u) / rate_per_s;
    gap = static_cast<std::uint64_t>(seconds * 1e9);
  }
  return gaps;
}

OpenLoopResult run_open_loop(InferenceServer& server,
                             const std::vector<Request>& requests,
                             const std::vector<std::uint64_t>& gaps_ns) {
  if (gaps_ns.size() != requests.size()) {
    throw std::invalid_argument("run_open_loop: gaps/requests size mismatch");
  }
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(requests.size());
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t elapsed_target_ns = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    elapsed_target_ns += gaps_ns[i];
    // sleep_until the absolute schedule: a slow iteration eats into the
    // next gap instead of shifting every later arrival (open loop).
    std::this_thread::sleep_until(
        start + std::chrono::nanoseconds(elapsed_target_ns));
    futures.push_back(server.submit(requests[i]));
  }

  OpenLoopResult result;
  obs::Fingerprint bits;
  std::vector<double> latencies_us;
  latencies_us.reserve(futures.size());
  std::uint64_t first_admitted = ~std::uint64_t{0}, last_completed = 0;
  std::size_t failed = 0;
  for (auto& future : futures) {
    try {
      const InferenceResult r = future.get();
      latencies_us.push_back(
          static_cast<double>(r.completed_ns - r.admitted_ns) * 1e-3);
      first_admitted = std::min(first_admitted, r.admitted_ns);
      last_completed = std::max(last_completed, r.completed_ns);
      bits.feed(std::span<const float>(r.log_probs));
    } catch (...) {
      ++failed;
    }
  }
  const double duration_s =
      latencies_us.empty()
          ? 0.0
          : static_cast<double>(last_completed - first_admitted) * 1e-9;
  result.latency = summarize(latencies_us, duration_s, failed);
  result.bits = bits.value();
  return result;
}

ServiceModel ServiceModel::from_profile(const sim::DeviceProfile& profile,
                                        double bytes_per_row) {
  ServiceModel model;
  // One fused launch per conv layer pair; bytes stream at the effective
  // reduction bandwidth (1 GB/s == 1e3 bytes/us).
  model.dispatch_us = 2.0 * profile.kernel_launch_us;
  model.per_row_us = bytes_per_row / (profile.mem_bandwidth_gb_s * 1e3);
  return model;
}

LatencySummary simulate_open_loop(const ServiceModel& model,
                                  std::size_t max_batch, double max_wait_us,
                                  double rate_per_s, std::size_t num_requests,
                                  std::uint64_t seed) {
  if (max_batch == 0) {
    throw std::invalid_argument("simulate_open_loop: max_batch == 0");
  }
  const auto gaps = exponential_interarrivals_ns(rate_per_s, num_requests,
                                                 seed);
  std::vector<double> arrival_us(num_requests);
  double clock = 0.0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    clock += static_cast<double>(gaps[i]) * 1e-3;
    arrival_us[i] = clock;
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(num_requests);
  double free_at = 0.0;
  std::size_t next = 0;
  double last_completion = 0.0;
  while (next < num_requests) {
    // The batcher stages the oldest pending request and dispatches when
    // the batch fills or the oldest has waited max_wait - the exact
    // policy of InferenceServer::batcher_loop, in virtual time.
    const double oldest = arrival_us[next];
    const double fill_at = next + max_batch - 1 < num_requests
                               ? arrival_us[next + max_batch - 1]
                               : std::numeric_limits<double>::infinity();
    const double dispatch =
        std::max({free_at, oldest,
                  std::min(fill_at, oldest + max_wait_us)});
    std::size_t rows = 0;
    while (next + rows < num_requests && rows < max_batch &&
           arrival_us[next + rows] <= dispatch) {
      ++rows;
    }
    const double done = dispatch + model.batch_us(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      latencies_us.push_back(done - arrival_us[next + r]);
    }
    next += rows;
    free_at = done;
    last_completion = done;
  }
  const double duration_s =
      num_requests == 0 ? 0.0 : (last_completion - arrival_us.front()) * 1e-6;
  return summarize(latencies_us, duration_s, 0);
}

}  // namespace fpna::serve
