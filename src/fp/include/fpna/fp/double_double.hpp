#pragma once
// Double-double ("compensated pair") arithmetic: ~106-bit significand built
// from two doubles. Used as the accuracy ground truth when evaluating the
// summation algorithms (ablation bench) and for the superaccumulator's
// rounding step.

#include "fpna/fp/eft.hpp"

namespace fpna::fp {

class DoubleDouble {
 public:
  constexpr DoubleDouble() noexcept = default;
  constexpr DoubleDouble(double hi, double lo = 0.0) noexcept
      : hi_(hi), lo_(lo) {}

  double hi() const noexcept { return hi_; }
  double lo() const noexcept { return lo_; }
  double to_double() const noexcept { return hi_ + lo_; }

  DoubleDouble& operator+=(double x) noexcept {
    const auto [s, e] = two_sum(hi_, x);
    const auto [hi, lo] = fast_two_sum(s, lo_ + e);
    hi_ = hi;
    lo_ = lo;
    return *this;
  }

  DoubleDouble& operator+=(const DoubleDouble& other) noexcept {
    const auto [s1, e1] = two_sum(hi_, other.hi_);
    const auto [s2, e2] = two_sum(lo_, other.lo_);
    auto [hi, lo] = fast_two_sum(s1, e1 + s2);
    const auto [hi2, lo2] = fast_two_sum(hi, lo + e2);
    hi_ = hi2;
    lo_ = lo2;
    return *this;
  }

  DoubleDouble& operator-=(double x) noexcept { return *this += (-x); }

  DoubleDouble operator-() const noexcept { return {-hi_, -lo_}; }

  friend DoubleDouble operator+(DoubleDouble a, double b) noexcept {
    a += b;
    return a;
  }
  friend DoubleDouble operator+(DoubleDouble a,
                                const DoubleDouble& b) noexcept {
    a += b;
    return a;
  }

  /// Product with a plain double, compensated.
  friend DoubleDouble operator*(const DoubleDouble& a, double b) noexcept {
    const auto [p, e] = two_prod(a.hi_, b);
    const auto [hi, lo] = fast_two_sum(p, a.lo_ * b + e);
    return {hi, lo};
  }

 private:
  double hi_ = 0.0;
  double lo_ = 0.0;
};

}  // namespace fpna::fp
