#include "fpna/stats/normality.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "fpna/stats/descriptive.hpp"
#include "fpna/stats/histogram.hpp"

namespace fpna::stats {

namespace {

/// Asymptotic Kolmogorov distribution complement:
/// P(sqrt(n) D > x) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2).
double kolmogorov_p(double x) noexcept {
  if (x <= 0.0) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace

KsResult ks_test_normal(std::span<const double> samples, double mu,
                        double sigma) {
  if (samples.empty()) {
    throw std::invalid_argument("ks_test_normal: empty sample");
  }
  if (sigma <= 0.0) {
    throw std::invalid_argument("ks_test_normal: sigma <= 0");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double cdf = normal_cdf((sorted[i] - mu) / sigma);
    const double above = static_cast<double>(i + 1) / n - cdf;
    const double below = cdf - static_cast<double>(i) / n;
    d = std::max({d, above, below});
  }

  KsResult result;
  result.statistic = d;
  const double sqrt_n = std::sqrt(n);
  // Stephens' small-sample correction for the asymptotic formula.
  result.p_value = kolmogorov_p((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
  return result;
}

JarqueBeraResult jarque_bera(std::span<const double> samples) {
  if (samples.size() < 4) {
    throw std::invalid_argument("jarque_bera: need at least 4 samples");
  }
  const Summary s = summarize(samples);
  const auto n = static_cast<double>(samples.size());
  const double jb =
      n / 6.0 *
      (s.skewness * s.skewness + s.excess_kurtosis * s.excess_kurtosis / 4.0);

  JarqueBeraResult result;
  result.statistic = jb;
  // Chi-squared(2) survival function is exp(-x/2).
  result.p_value = std::exp(-jb / 2.0);
  return result;
}

}  // namespace fpna::stats
