#include "fpna/reduce/cpu_sum.hpp"

#include <mutex>
#include <vector>

#include "fpna/fp/summation.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/util/permutation.hpp"

namespace fpna::reduce {

namespace {

/// Static chunk boundaries, OpenMP static-schedule style: near-equal
/// contiguous chunks, the first `n % chunks` chunks one element longer.
std::vector<std::pair<std::size_t, std::size_t>> static_chunks(
    std::size_t n, std::size_t chunks) {
  if (chunks == 0) chunks = 1;
  chunks = std::min(chunks, n == 0 ? std::size_t{1} : n);
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(chunks);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

std::vector<double> chunk_partials(std::span<const double> data,
                                   std::size_t chunks) {
  const auto ranges = static_chunks(data.size(), chunks);
  std::vector<double> partials;
  partials.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    partials.push_back(fp::sum_serial(data.subspan(begin, end - begin)));
  }
  return partials;
}

}  // namespace

double cpu_sum_serial(std::span<const double> data) noexcept {
  return fp::sum_serial(data);
}

double cpu_sum_ordered(std::span<const double> data,
                       std::size_t /*num_threads*/) noexcept {
  // The ordered construct serialises the adds in iteration order: the
  // value is the serial sum by definition (threads only overlap the loop
  // body *outside* the ordered region, and here the body is the add).
  return fp::sum_serial(data);
}

double cpu_sum_unordered(std::span<const double> data, core::RunContext& ctx,
                         std::size_t num_threads) {
  std::vector<double> partials = chunk_partials(data, num_threads);
  // Combination happens in completion order; draw it from the run.
  auto rng = ctx.fork(0xCB);
  util::shuffle(partials, rng);
  return fp::sum_serial(partials);
}

double cpu_sum_threads(std::span<const double> data, util::ThreadPool& pool) {
  const auto ranges = static_chunks(data.size(), pool.size());
  double sum = 0.0;
  std::mutex mutex;
  pool.parallel_for(
      ranges.size(),
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t c = begin; c < end; ++c) {
          const auto [lo, hi] = ranges[c];
          const double partial = fp::sum_serial(data.subspan(lo, hi - lo));
          const std::lock_guard lock(mutex);
          sum += partial;  // merge in OS completion order
        }
      },
      ranges.size());
  return sum;
}

double cpu_sum_chunked_deterministic(std::span<const double> data,
                                     std::size_t num_threads) noexcept {
  const std::vector<double> partials = chunk_partials(data, num_threads);
  return fp::sum_serial(partials);
}

double cpu_sum_reproducible(std::span<const double> data,
                            std::size_t num_threads) {
  // Chunked superaccumulators merged in index order. Exactness of the
  // accumulator makes the result independent of both the chunking and the
  // merge order (property-tested).
  const auto ranges = static_chunks(data.size(), num_threads);
  fp::Superaccumulator total;
  for (const auto& [begin, end] : ranges) {
    fp::Superaccumulator partial;
    partial.add(data.subspan(begin, end - begin));
    total.add(partial);
  }
  return total.round();
}

}  // namespace fpna::reduce
