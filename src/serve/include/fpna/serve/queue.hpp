#pragma once
// Lock-light bounded MPSC admission queue.
//
// Producers (submit() callers) push onto a Treiber stack with one CAS -
// no mutex on the hot path - and the single consumer (the batcher)
// drains the whole stack with one exchange, reversing it into global
// FIFO order (the stack holds pushes newest-first; reversal restores the
// linearisation order of the CASes). Capacity is a counting semaphore:
// a full queue *blocks* producers (backpressure never drops a request).
//
// Wakeup is Dekker-style: the consumer publishes consumer_waiting_ with
// seq_cst, then re-checks the stack before sleeping; producers push
// first (the CAS is an RMW, seq_cst-ordered against the flag load that
// follows), then check the flag. Either the producer sees the flag and
// notifies, or the consumer's re-check sees the node - a missed wakeup
// would need both loads to miss both stores, which seq_cst forbids. A
// timed wait backstops the protocol anyway (the batcher has its own
// max_wait deadline to honour).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace fpna::serve {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity) : free_slots_(capacity) {}

  ~MpscQueue() {
    Node* node = head_.exchange(nullptr, std::memory_order_acquire);
    while (node != nullptr) {
      Node* next = node->next;
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Blocks while the queue is at capacity; returns false (without
  /// having moved from `item` - nothing is ever dropped) iff the queue
  /// was closed before a slot freed up.
  bool push(T&& item) {
    while (!try_acquire_slot()) {
      if (closed_.load(std::memory_order_acquire)) return false;
    }
    if (closed_.load(std::memory_order_acquire)) {
      release_slot();
      return false;
    }
    Node* node = new Node{std::move(item), head_.load(std::memory_order_relaxed)};
    while (!head_.compare_exchange_weak(node->next, node,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
    }
    if (consumer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      wake_cv_.notify_one();
    }
    return true;
  }

  /// Consumer only: appends everything pushed so far to `out` in FIFO
  /// order; if nothing is pending, waits up to `wait` for a push (or
  /// close). Returns the number of items appended.
  std::size_t drain(std::deque<T>& out, std::chrono::nanoseconds wait) {
    Node* grabbed = head_.exchange(nullptr, std::memory_order_acquire);
    if (grabbed == nullptr && wait.count() > 0 &&
        !closed_.load(std::memory_order_acquire)) {
      consumer_waiting_.store(true, std::memory_order_seq_cst);
      grabbed = head_.exchange(nullptr, std::memory_order_seq_cst);
      if (grabbed == nullptr) {
        std::unique_lock<std::mutex> lock(wake_mutex_);
        wake_cv_.wait_for(lock, wait, [this] {
          return head_.load(std::memory_order_seq_cst) != nullptr ||
                 closed_.load(std::memory_order_acquire);
        });
        lock.unlock();
        grabbed = head_.exchange(nullptr, std::memory_order_acquire);
      }
      consumer_waiting_.store(false, std::memory_order_seq_cst);
    }
    std::size_t count = 0;
    // Reverse the LIFO grab into FIFO push order.
    Node* fifo = nullptr;
    while (grabbed != nullptr) {
      Node* next = grabbed->next;
      grabbed->next = fifo;
      fifo = grabbed;
      grabbed = next;
    }
    while (fifo != nullptr) {
      out.push_back(std::move(fifo->item));
      Node* next = fifo->next;
      delete fifo;
      fifo = next;
      ++count;
      release_slot();
    }
    return count;
  }

  /// Wakes blocked producers (their push returns false) and the
  /// consumer; already-admitted items stay drainable.
  void close() {
    closed_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      wake_cv_.notify_one();
    }
    {
      std::lock_guard<std::mutex> lock(slot_mutex_);
      slot_cv_.notify_all();
    }
  }

  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  /// Producer-visible backlog (admitted, not yet drained). Approximate
  /// by construction - it races with push/drain - but monotonic within
  /// one observer.
  std::size_t approx_size() const noexcept {
    return approx_size_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    T item;
    Node* next;
  };

  bool try_acquire_slot() {
    std::unique_lock<std::mutex> lock(slot_mutex_);
    slot_cv_.wait(lock, [this] {
      return free_slots_ > 0 || closed_.load(std::memory_order_acquire);
    });
    if (free_slots_ == 0) return false;  // woken by close()
    --free_slots_;
    approx_size_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void release_slot() {
    {
      std::lock_guard<std::mutex> lock(slot_mutex_);
      ++free_slots_;
    }
    approx_size_.fetch_sub(1, std::memory_order_relaxed);
    slot_cv_.notify_one();
  }

  std::atomic<Node*> head_{nullptr};
  std::atomic<bool> closed_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<std::size_t> approx_size_{0};

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  // Capacity accounting. This mutex guards only admission *slots* (the
  // backpressure boundary), never the item hand-off itself: a producer
  // that finds free capacity takes slot_mutex_ once, uncontended with
  // the consumer except at the full/empty edges.
  std::mutex slot_mutex_;
  std::condition_variable slot_cv_;
  std::size_t free_slots_;
};

}  // namespace fpna::serve
