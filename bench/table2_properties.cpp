// Reproduces Table 2: properties of the six parallel-sum implementations.
// Unlike the paper's static table, the "deterministic" column here is
// *measured*: each kernel is certified over many scheduler seeds.
//
// Flags: --seed, --runs (certification runs), --size, --csv

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/reduce/gpu_sum.hpp"
#include "fpna/util/table.hpp"

int main(int argc, char** argv) {
  using namespace fpna;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto runs = static_cast<std::size_t>(cli.integer("runs", 50));
  const auto size = static_cast<std::size_t>(cli.integer("size", 65536));
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Table 2: implementations of the parallel sum (deterministic "
               "column certified over " + std::to_string(runs) + " seeds)");

  const auto data = bench::uniform_array(size, 0.0, 10.0, seed);
  sim::SimDevice device(sim::DeviceProfile::v100());

  util::Table table({"Method", "deterministic (measured)", "# of kernels",
                     "synchronization methods"});
  for (const auto method :
       {sim::SumMethod::kCU, sim::SumMethod::kSPTR, sim::SumMethod::kSPRG,
        sim::SumMethod::kTPRC, sim::SumMethod::kSPA, sim::SumMethod::kAO}) {
    const auto kernel = [&](core::RunContext& ctx) {
      return reduce::gpu_sum(device, data, method, ctx, 256).value;
    };
    const auto cert = core::certify_deterministic_scalar(kernel, runs, seed);
    table.add_row({sim::to_string(method), cert.deterministic ? "Yes" : "No",
                   method == sim::SumMethod::kCU
                       ? "-"
                       : std::to_string(sim::kernel_count(method)),
                   sim::synchronization_method(method)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPaper reference (Table 2): CU/SPTR/SPRG/TPRC "
                 "deterministic; SPA/AO not.\n";
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
