#include "fpna/tensor/conv_transpose.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "fpna/sim/scheduler.hpp"

namespace fpna::tensor {

namespace {

/// One atomic update of the scatter formulation: out[dst] += value, where
/// value = input[i] * weight[w] is computed deterministically (products
/// commute with scheduling; only the accumulation order varies).
template <typename T>
struct AddContribution {
  std::int64_t dst;
  T value;
};

/// Rank-generic transposed convolution. Builds the full contribution list
/// then applies it in commit order (identity for deterministic runs).
template <typename T, std::size_t Rank>
Tensor<T> conv_transpose_impl(const Tensor<T>& input, const Tensor<T>& weight,
                              const Tensor<T>* bias,
                              const ConvTransposeParams<Rank>& params,
                              const OpContext& ctx, const char* op) {
  constexpr auto kRank = static_cast<std::int64_t>(Rank);
  if (input.dim() != kRank + 2) {
    throw std::invalid_argument(std::string(op) + ": input must be rank " +
                                std::to_string(kRank + 2) +
                                " [N, C_in, spatial...]");
  }
  if (weight.dim() != kRank + 2) {
    throw std::invalid_argument(std::string(op) + ": weight must be rank " +
                                std::to_string(kRank + 2) +
                                " [C_in, C_out, kernel...]");
  }
  const std::int64_t batch = input.size(0);
  const std::int64_t c_in = input.size(1);
  const std::int64_t c_out = weight.size(1);
  if (weight.size(0) != c_in) {
    throw std::invalid_argument(std::string(op) +
                                ": weight C_in mismatch with input");
  }
  if (bias != nullptr && bias->numel() != c_out) {
    throw std::invalid_argument(std::string(op) + ": bias size != C_out");
  }

  std::array<std::int64_t, Rank> in_size{};
  std::array<std::int64_t, Rank> kernel{};
  std::array<std::int64_t, Rank> out_size{};
  for (std::size_t d = 0; d < Rank; ++d) {
    in_size[d] = input.size(2 + static_cast<std::int64_t>(d));
    kernel[d] = weight.size(2 + static_cast<std::int64_t>(d));
    out_size[d] = conv_transpose_out_size(in_size[d], kernel[d],
                                          params.stride[d], params.padding[d],
                                          params.output_padding[d],
                                          params.dilation[d]);
    if (out_size[d] <= 0) {
      throw std::invalid_argument(std::string(op) +
                                  ": non-positive output size at spatial dim " +
                                  std::to_string(d));
    }
  }

  Shape out_shape{batch, c_out};
  for (std::size_t d = 0; d < Rank; ++d) out_shape.push_back(out_size[d]);
  Tensor<T> out(out_shape, T{0});
  if (bias != nullptr) {
    // Bias is a per-channel initial value, applied before accumulation
    // (order-independent).
    std::vector<std::int64_t> coords(static_cast<std::size_t>(kRank) + 2, 0);
    for (std::int64_t f = 0; f < out.numel(); ++f) {
      std::int64_t tmp = f;
      for (std::size_t d = 0; d < out.strides().size(); ++d) {
        coords[d] = tmp / out.strides()[d];
        tmp %= out.strides()[d];
      }
      out.flat(f) = bias->flat(coords[1]);
    }
  }

  // Enumerate contributions in the deterministic reference order:
  // (n, c_in, spatial..., c_out, kernel...).
  std::vector<AddContribution<T>> contribs;
  contribs.reserve(static_cast<std::size_t>(input.numel()) *
                   static_cast<std::size_t>(c_out));

  std::array<std::int64_t, Rank> in_pos{};
  std::array<std::int64_t, Rank> tap{};
  std::vector<std::int64_t> in_coords(static_cast<std::size_t>(kRank) + 2, 0);
  std::vector<std::int64_t> w_coords(static_cast<std::size_t>(kRank) + 2, 0);
  std::vector<std::int64_t> out_coords(static_cast<std::size_t>(kRank) + 2, 0);

  const auto advance = [](std::array<std::int64_t, Rank>& idx,
                          const std::array<std::int64_t, Rank>& bound) {
    for (std::size_t d = Rank; d-- > 0;) {
      if (++idx[d] < bound[d]) return true;
      idx[d] = 0;
    }
    return false;
  };

  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t ci = 0; ci < c_in; ++ci) {
      in_pos.fill(0);
      do {
        in_coords[0] = n;
        in_coords[1] = ci;
        for (std::size_t d = 0; d < Rank; ++d) in_coords[2 + d] = in_pos[d];
        const T in_val = input.flat(input.offset(in_coords));
        if (in_val == T{0}) {
          // Zero contributions do not change the accumulation value in
          // any order; skipping them is an exact optimisation.
          continue;
        }
        for (std::int64_t co = 0; co < c_out; ++co) {
          tap.fill(0);
          do {
            bool in_bounds = true;
            for (std::size_t d = 0; d < Rank; ++d) {
              const std::int64_t o = in_pos[d] * params.stride[d] -
                                     params.padding[d] +
                                     tap[d] * params.dilation[d];
              if (o < 0 || o >= out_size[d]) {
                in_bounds = false;
                break;
              }
              out_coords[2 + d] = o;
            }
            if (!in_bounds) continue;
            w_coords[0] = ci;
            w_coords[1] = co;
            for (std::size_t d = 0; d < Rank; ++d) w_coords[2 + d] = tap[d];
            out_coords[0] = n;
            out_coords[1] = co;
            const T w_val = weight.flat(weight.offset(w_coords));
            contribs.push_back(
                {out.offset(out_coords), static_cast<T>(in_val * w_val)});
          } while (advance(tap, kernel));
        }
      } while (advance(in_pos, in_size));
    }
  }

  if (ctx.nondeterministic()) {
    const sim::Scheduler scheduler(ctx.effective_profile());
    const auto order =
        scheduler.atomic_commit_order(contribs.size(), ctx.run->rng());
    for (const std::size_t i : order) {
      out.flat(contribs[i].dst) =
          static_cast<T>(out.flat(contribs[i].dst) + contribs[i].value);
    }
  } else {
    for (const auto& c : contribs) {
      out.flat(c.dst) = static_cast<T>(out.flat(c.dst) + c.value);
    }
  }
  return out;
}

}  // namespace

template <typename T>
Tensor<T> conv_transpose1d(const Tensor<T>& input, const Tensor<T>& weight,
                           const std::type_identity_t<Tensor<T>>* bias,
                           const ConvTransposeParams<1>& params,
                           const OpContext& ctx) {
  return conv_transpose_impl<T, 1>(input, weight, bias, params, ctx,
                                   "conv_transpose1d");
}

template <typename T>
Tensor<T> conv_transpose2d(const Tensor<T>& input, const Tensor<T>& weight,
                           const std::type_identity_t<Tensor<T>>* bias,
                           const ConvTransposeParams<2>& params,
                           const OpContext& ctx) {
  return conv_transpose_impl<T, 2>(input, weight, bias, params, ctx,
                                   "conv_transpose2d");
}

template <typename T>
Tensor<T> conv_transpose3d(const Tensor<T>& input, const Tensor<T>& weight,
                           const std::type_identity_t<Tensor<T>>* bias,
                           const ConvTransposeParams<3>& params,
                           const OpContext& ctx) {
  return conv_transpose_impl<T, 3>(input, weight, bias, params, ctx,
                                   "conv_transpose3d");
}

#define FPNA_INSTANTIATE_CONVT(T)                                             \
  template Tensor<T> conv_transpose1d<T>(const Tensor<T>&, const Tensor<T>&,  \
                                         const Tensor<T>*,                    \
                                         const ConvTransposeParams<1>&,       \
                                         const OpContext&);                   \
  template Tensor<T> conv_transpose2d<T>(const Tensor<T>&, const Tensor<T>&,  \
                                         const Tensor<T>*,                    \
                                         const ConvTransposeParams<2>&,       \
                                         const OpContext&);                   \
  template Tensor<T> conv_transpose3d<T>(const Tensor<T>&, const Tensor<T>&,  \
                                         const Tensor<T>*,                    \
                                         const ConvTransposeParams<3>&,       \
                                         const OpContext&);

FPNA_INSTANTIATE_CONVT(float)
FPNA_INSTANTIATE_CONVT(double)

#undef FPNA_INSTANTIATE_CONVT

}  // namespace fpna::tensor
