#pragma once
// Console table formatter used by every bench harness to print paper-style
// tables (aligned columns, optional CSV emission for plotting).

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fpna::util {

/// Formats a double in the paper's scientific style, e.g.
/// "-1.776356839400250e-15".
std::string sci(double value, int precision = 15);

/// Formats a double with fixed precision.
std::string fixed(double value, int precision = 6);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  /// Structured access for machine-readable emitters (bench --json).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

  /// Pretty-prints with a header rule and aligned columns.
  void print(std::ostream& out) const;

  /// Comma-separated form for downstream plotting.
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner, e.g. "== Table 4: ... ==".
void banner(std::ostream& out, const std::string& title);

}  // namespace fpna::util
