#include "fpna/serve/session.hpp"

#include <stdexcept>
#include <string>

#include "fpna/dl/layers.hpp"
#include "fpna/dl/row_forward.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::serve {

namespace {

std::uint64_t row_bits(std::span<const float> values) {
  obs::Fingerprint print;
  print.feed(values);
  return print.value();
}

}  // namespace

InferenceSession::InferenceSession(const dl::GraphSageModel& model,
                                   const dl::Dataset& dataset,
                                   const core::EvalContext& ctx)
    : model_(model), features_(dataset.features) {
  if (features_.size(0) != dataset.graph.num_nodes) {
    throw std::invalid_argument(
        "InferenceSession: feature rows != deployed nodes");
  }
  // The cache rows are bitwise the offline forward's a1 because they ARE
  // the offline kernels' output (same code path, same spec, and pooled
  // execution is certified bitwise-identical to serial).
  h1_ = dl::relu(model_.conv1.forward(features_, dataset.graph, ctx));
}

std::vector<float> InferenceSession::row_forward(
    const Request& request, const core::EvalContext& ctx) const {
  const std::int64_t f = num_features(), h = hidden(), c = num_classes();
  if (static_cast<std::int64_t>(request.features.size()) != f) {
    throw std::invalid_argument("row_forward: feature width mismatch");
  }

  // Layer 1: z1 = x . W1_self + b1 + mean(neigh features) . W1_neigh.
  // Operation order mirrors SageConv::forward exactly: the self matmul's
  // fresh output, bias +=, then the neighbour matmul folded in with the
  // float add() - each += below is one element of those full-matrix ops.
  std::vector<float> neigh1(static_cast<std::size_t>(f));
  dl::mean_rows_into(features_, request.neighbors, neigh1, ctx);
  std::vector<float> z1(static_cast<std::size_t>(h));
  std::vector<float> tmp1(static_cast<std::size_t>(h));
  dl::linear_row(request.features, model_.conv1.lin_self.weight, z1, ctx);
  for (std::int64_t j = 0; j < h; ++j) {
    z1[static_cast<std::size_t>(j)] += model_.conv1.lin_self.bias.flat(j);
  }
  dl::linear_row(neigh1, model_.conv1.lin_neigh.weight, tmp1, ctx);
  for (std::int64_t j = 0; j < h; ++j) {
    z1[static_cast<std::size_t>(j)] += tmp1[static_cast<std::size_t>(j)];
  }
  dl::relu_row(z1);

  // Layer 2 over the layer-1 activations: the request's own a1 row is
  // the z1 just computed; the neighbours' come from the session cache.
  std::vector<float> neigh2(static_cast<std::size_t>(h));
  dl::mean_rows_into(h1_, request.neighbors, neigh2, ctx);
  std::vector<float> z2(static_cast<std::size_t>(c));
  std::vector<float> tmp2(static_cast<std::size_t>(c));
  dl::linear_row(z1, model_.conv2.lin_self.weight, z2, ctx);
  for (std::int64_t j = 0; j < c; ++j) {
    z2[static_cast<std::size_t>(j)] += model_.conv2.lin_self.bias.flat(j);
  }
  dl::linear_row(neigh2, model_.conv2.lin_neigh.weight, tmp2, ctx);
  for (std::int64_t j = 0; j < c; ++j) {
    z2[static_cast<std::size_t>(j)] += tmp2[static_cast<std::size_t>(j)];
  }
  dl::log_softmax_row(z2);
  return z2;
}

std::vector<RowOutcome> InferenceSession::batch_forward(
    std::span<const Request> batch, const core::EvalContext& ctx,
    const FaultHook& fault_hook) const {
  std::vector<RowOutcome> outcomes(batch.size());
  const auto run_row = [&](std::size_t i) {
    try {
      if (fault_hook) fault_hook(batch[i]);
      outcomes[i].log_probs = row_forward(batch[i], ctx);
    } catch (...) {
      outcomes[i].error = std::current_exception();
    }
  };

  obs::Span span(ctx.recorder, "serve.batch");
  if (ctx.recorder != nullptr) {
    span.arg("rows", static_cast<std::uint64_t>(batch.size()));
    span.arg("spec", fp::to_string(ctx.reduction_in_effect()));
  }
  if (ctx.pool != nullptr && ctx.pool->size() > 1 && batch.size() > 1) {
    // Row-parallel dispatch. Chunk boundaries are irrelevant to the
    // bits (rows share nothing); parallel_for joins every chunk before
    // rethrowing a chunk failure, so `outcomes` never outlives a
    // running worker (the join-and-rethrow contract the server's
    // promise accounting relies on).
    ctx.pool->parallel_for(batch.size(),
                           [&](std::size_t begin, std::size_t end,
                               std::size_t) {
                             for (std::size_t i = begin; i < end; ++i) {
                               run_row(i);
                             }
                           });
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) run_row(i);
  }

  if (ctx.recorder != nullptr) {
    // One record per request, emitted from the calling thread in batch
    // order; the canonical provenance sort keys on the request id, so
    // two runs that served the same request set emit identical streams
    // however the pool interleaved the rows.
    const std::string spec = fp::to_string(ctx.reduction_in_effect());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool failed = outcomes[i].error != nullptr;
      ctx.recorder->provenance(
          {"serve.request", failed ? "error" : "result",
           static_cast<std::int64_t>(batch[i].id), -1, spec,
           failed ? 0 : row_bits(outcomes[i].log_probs),
           static_cast<std::uint64_t>(outcomes[i].log_probs.size())});
    }
  }
  return outcomes;
}

Request InferenceSession::deployed_request(const dl::Dataset& dataset,
                                           std::int64_t node,
                                           std::uint64_t id) {
  if (node < 0 || node >= dataset.num_nodes()) {
    throw std::out_of_range("deployed_request: node out of range");
  }
  Request request;
  request.id = id;
  const std::int64_t f = dataset.features.size(1);
  request.features.resize(static_cast<std::size_t>(f));
  for (std::int64_t j = 0; j < f; ++j) {
    request.features[static_cast<std::size_t>(j)] =
        dataset.features.flat(node * f + j);
  }
  // In-edge sources in edge order: exactly index_add's issue order for
  // destination `node`, so the row-wise mean folds the same stream.
  for (std::size_t e = 0; e < dataset.graph.edge_dst.size(); ++e) {
    if (dataset.graph.edge_dst[e] == node) {
      request.neighbors.push_back(dataset.graph.edge_src[e]);
    }
  }
  return request;
}

}  // namespace fpna::serve
