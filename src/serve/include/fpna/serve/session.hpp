#pragma once
// Inference session: a trained GraphSageModel frozen for serving, plus
// the deployed-graph state a request's forward needs (the feature table
// and the layer-1 activation cache), evaluated one request-row at a time
// through dl's row-wise kernels (dl/row_forward.hpp).
//
// Serving model. A request carries its own feature row and the ids of
// its neighbours among the *deployed* nodes (the standard inductive
// trick: new nodes attach to the frozen graph). Layer 1 aggregates the
// neighbours' raw features; layer 2 aggregates their layer-1 activations
// from a cache precomputed once per session with the full-graph kernels.
// Every reduction involved - per-output-unit dot products, per-column
// neighbour means, the row softmax - is a stream defined entirely by the
// request row, so a batch of requests is just a set of independent rows:
// batch composition, batch size and thread count cannot move any
// request's bits. deployed_request() builds the request that reproduces
// a deployed node's offline forward row bitwise (certified in
// serve_test for every tested ReductionSpec).

#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <vector>

#include "fpna/core/eval_context.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/model.hpp"

namespace fpna::serve {

/// One inference request: a feature row plus the deployed-node ids whose
/// messages it aggregates, in aggregation order (for a deployed node,
/// the graph's edge order - see deployed_request).
struct Request {
  std::uint64_t id = 0;
  std::vector<float> features;
  std::vector<std::int64_t> neighbors;
};

/// What the server hands back through the submit() future.
struct InferenceResult {
  std::vector<float> log_probs;   // [num_classes]
  std::uint64_t admitted_ns = 0;  // admission-queue entry time
  std::uint64_t completed_ns = 0; // batch completion time
};

/// Per-row outcome of a batched forward: exactly one of log_probs /
/// error is meaningful. A row failure (bad neighbour id, injected
/// fault) must fail only its own request, never its batch-mates.
struct RowOutcome {
  std::vector<float> log_probs;
  std::exception_ptr error;
};

/// Test hook: called per request before its row computation; a throw
/// becomes that row's error.
using FaultHook = std::function<void(const Request&)>;

class InferenceSession {
 public:
  /// Freezes `model` + `dataset` for serving under `ctx`'s reduction
  /// spec: copies the weights and feature table and precomputes the
  /// layer-1 activation cache with the full-graph kernels (so cached
  /// rows are bitwise the offline forward's a1). The context's pool (if
  /// any) only affects the cache build's wall clock, not its bits.
  InferenceSession(const dl::GraphSageModel& model,
                   const dl::Dataset& dataset, const core::EvalContext& ctx);

  /// One request's forward through the row-wise kernels. Pure function
  /// of (request, weights, tables, ctx spec) - the reference the batch
  /// paths are certified against.
  std::vector<float> row_forward(const Request& request,
                                 const core::EvalContext& ctx) const;

  /// Batched forward: rows computed independently (pooled over requests
  /// when ctx.pool is set), each with per-row exception containment.
  /// Emits one provenance record per request (site "serve.request",
  /// index = request id) from the calling thread in batch order when
  /// ctx.recorder is set.
  std::vector<RowOutcome> batch_forward(std::span<const Request> batch,
                                        const core::EvalContext& ctx,
                                        const FaultHook& fault_hook = {}) const;

  /// The request whose row_forward reproduces deployed node `node`'s row
  /// of the offline GraphSageModel::forward bitwise: the node's feature
  /// row plus its in-edge sources in edge order (index_add's issue
  /// order).
  static Request deployed_request(const dl::Dataset& dataset,
                                  std::int64_t node, std::uint64_t id);

  std::int64_t num_features() const noexcept { return features_.size(1); }
  std::int64_t hidden() const noexcept { return h1_.size(1); }
  std::int64_t num_classes() const noexcept {
    return model_.num_classes();
  }
  const dl::Matrix& h1_cache() const noexcept { return h1_; }

 private:
  dl::GraphSageModel model_;  // frozen copy (weights only matter)
  dl::Matrix features_;       // deployed feature table [nodes, F]
  dl::Matrix h1_;             // layer-1 activation cache [nodes, H]
};

}  // namespace fpna::serve
