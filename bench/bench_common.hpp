#pragma once
// Shared helpers for the experiment harnesses: seeded data generation and
// the standard CLI contract (--runs, --size, --seed, --full, --csv).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fpna/util/cli.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::bench {

inline std::vector<double> uniform_array(std::size_t n, double lo, double hi,
                                         std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

inline std::vector<double> normal_array(std::size_t n, double mean,
                                        double sigma, std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  util::Normal dist(mean, sigma);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Warns about unknown flags (after all lookups) and returns the count.
inline int warn_unconsumed(const util::Cli& cli) {
  const auto leftover = cli.unconsumed();
  for (const auto& name : leftover) {
    std::cerr << "warning: unknown flag --" << name << "\n";
  }
  return static_cast<int>(leftover.size());
}

}  // namespace fpna::bench
