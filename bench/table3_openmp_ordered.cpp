// Reproduces Table 3: OpenMP-style normal vs ordered CPU reductions over
// 10 trials. The ordered reduction retires adds in iteration order and is
// bitwise stable; the normal reduction combines thread partials in
// completion order and wobbles in the last digits.
//
// Registry-driven: the reduction's inner accumulator comes from
// fp::AlgorithmRegistry (--accumulator=<name>, default serial reproduces
// the paper's table), and a second table runs the normal (completion-
// order) reduction under *every* registered accumulator - showing that
// the exact-merge algorithms make even the unordered reduction bitwise
// stable, the paper's fix at the algorithm level instead of the `ordered`
// clause's serialization.
//
// Flags: --seed, --trials, --size, --threads, --accumulator, --csv

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/reduce/cpu_sum.hpp"
#include "fpna/util/table.hpp"

int main(int argc, char** argv) {
  using namespace fpna;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto trials = static_cast<std::size_t>(cli.integer("trials", 10));
  const auto size = static_cast<std::size_t>(cli.integer("size", 1000000));
  const auto threads = static_cast<std::size_t>(cli.integer("threads", 8));
  const fp::ReductionSpec accumulator =
      fp::parse_reduction_spec(cli.text("accumulator", "serial"));
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Table 3: normal vs ordered reductions (OpenMP-style), " +
                   std::to_string(trials) + " trials, inner accumulator: " +
                   fp::to_string(accumulator));

  // Values chosen so the total lands near the paper's ~2.35e-07 and the
  // last-digit wobble is visible at 17 significant digits.
  const auto data = bench::uniform_array(size, 0.0, 4.7e-13, seed);

  // "Normal": static chunks combined in a completion order drawn from the
  // run. "Ordered": adds retired in iteration order, i.e. the one-shot
  // registry reduction (for serial this is the paper's `ordered` clause).
  const auto normal_sum = [&](core::RunContext& run,
                              const fp::ReductionSpec& spec) {
    const auto ctx =
        core::EvalContext::nondeterministic_on(run).with_accumulator(spec);
    return reduce::cpu_sum(data, ctx, threads);
  };
  const auto ordered_sum = [&](const fp::ReductionSpec& spec) {
    return fp::reduce(spec, std::span<const double>(data));
  };

  util::Table table({"Trial", "Normal Reduction", "Ordered Reduction"});
  bool normal_varied = false;
  double first_normal = 0.0;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    core::RunContext run(seed, trial);
    const double normal = normal_sum(run, accumulator);
    const double ordered = ordered_sum(accumulator);
    if (trial == 0) {
      first_normal = normal;
    } else if (normal != first_normal) {
      normal_varied = true;
    }
    table.add_row({std::to_string(trial + 1), util::sci(normal, 16),
                   util::sci(ordered, 16)});
  }

  // Registry sweep: certification of the completion-order reduction per
  // registered accumulator, and how far it lands from that accumulator's
  // ordered value. Certification uses at least 20 completion orders: the
  // near-uniform data rounds many reorderings identically, so a handful
  // of draws can miss the wobble.
  const std::size_t cert_runs = std::max<std::size_t>(trials, 20);
  util::Table sweep({"accumulator", "normal deterministic (measured)",
                     "|normal - ordered| (ulps)", "exact merge (declared)"});
  for (const auto& entry : fp::AlgorithmRegistry::instance().entries()) {
    const auto kernel = [&](core::RunContext& run) {
      return normal_sum(run, entry.id);
    };
    const auto cert =
        core::certify_deterministic_scalar(kernel, cert_runs, seed + 1);
    core::RunContext probe(seed + 2, 0);
    const auto ulps = fp::ulp_distance(normal_sum(probe, entry.id),
                                       ordered_sum(entry.id));
    sweep.add_row({entry.name, cert.deterministic ? "Yes" : "No",
                   std::to_string(ulps),
                   entry.traits.exact_merge ? "yes" : "no"});
  }

  if (csv) {
    table.print_csv(std::cout);
    sweep.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nMeasured: normal reduction "
              << (normal_varied ? "varied" : "did not vary")
              << " across trials; ordered reduction is bitwise constant.\n"
              << "Paper reference (Table 3): normal varies in the last ~2 "
                 "digits; ordered identical in every trial.\n\n";
    sweep.print(std::cout);
    std::cout << "\nReading: with an exact-merge accumulator "
                 "(superaccumulator, binned) the completion-order reduction "
                 "is already bitwise stable - no ordered clause needed.\n";
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
