// ISSUE 3 tentpole bench: deterministic pool-parallel dense kernels.
//
// Four tables:
//   1. thread sweep   - matmul family at the full shape, serial vs pool
//                       at 1/2/4/8 threads, under the --accumulator spec
//                       (full ReductionSpec grammar, e.g. kahan@bf16:f32).
//                       Speedup is free to move with the host; the "max
//                       ulps vs serial" column must read 0 on every row
//                       (bitwise identity is checked in-process and the
//                       bench exits non-zero if any pooled result
//                       deviates).
//   2. accumulator sweep - every AlgorithmRegistry entry at a reduced
//                       shape, serial vs 4-thread pool. Same 0-ulp gate.
//   3. dtype sweep    - the dtype axis at the reduced shape: native f32,
//                       bf16-storage/f32-accumulate (tensor-core mixed
//                       precision), pure bf16, and f64 accumulate, each
//                       serial vs 4-thread pool (0-ulp gate) with the
//                       ulp distance from the native f32 kernel - the
//                       precision cost the paper's DL dtype setting pays.
//   4. split-k        - matmul_split_k re-associates the inner dimension:
//                       deterministic contexts are run-to-run stable,
//                       shuffled combine orders produce multiple distinct
//                       bit patterns on ill-conditioned inputs (the dense
//                       analogue of the paper's Table 1).
//
// Flags: --size (cube edge, default 512), --reps, --shuffles, --seed,
//        --accumulator=<spec> (thread-sweep reduction spec, default
//        serial), --csv, --json=<path> (machine-readable dump for the CI
//        determinism gate, see scripts/bench_json_diff.py)

#include <algorithm>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/dl/linalg.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/fp/simd.hpp"
#include "fpna/tensor/workload.hpp"
#include "fpna/util/table.hpp"
#include "fpna/util/thread_pool.hpp"
#include "fpna/util/timer.hpp"

using namespace fpna;
using dl::Matrix;

namespace {

std::string fingerprint(const Matrix& m) {
  bench::BitFingerprint fp;
  fp.feed(std::span<const float>(m.data()));
  return fp.hex();
}

std::int64_t max_ulps(const Matrix& a, const Matrix& b) {
  std::int64_t worst = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, fp::ulp_distance32(a.flat(i), b.flat(i)));
  }
  return worst;
}

std::string shape_string(std::int64_t m, std::int64_t k, std::int64_t n) {
  return std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(n);
}

struct Kernel {
  std::string name;
  std::string shape;
  std::function<Matrix(const core::EvalContext&)> run;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size =
      std::max<std::int64_t>(8, cli.integer("size", 512));
  const auto reps = static_cast<std::size_t>(cli.integer("reps", 2));
  const auto shuffles = static_cast<std::size_t>(cli.integer("shuffles", 12));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const fp::ReductionSpec sweep_spec =
      fp::parse_reduction_spec(cli.text("accumulator", "serial"));
  const bool csv = cli.flag("csv");
  const std::string json = cli.text("json", "");
  // --trace / --provenance attach a recorder to the *correctness* passes
  // only; the timing lambdas keep recorder-free contexts so tracing never
  // skews the measured numbers.
  const bench::ObsOptions obs_opts(cli);
  obs::Recorder* const recorder = obs_opts.recorder();

  util::banner(std::cout, "Deterministic pool-parallel dense kernels (" +
                              std::to_string(size) + "^3, " +
                              fp::to_string(sweep_spec) + ")");

  util::Xoshiro256pp rng(seed);
  const auto x = tensor::random_uniform<float>(tensor::Shape{size, size},
                                               -1.0, 1.0, rng);
  const auto y = tensor::random_uniform<float>(tensor::Shape{size, size},
                                               -1.0, 1.0, rng);
  const std::int64_t rm = 2 * size, rk = std::max<std::int64_t>(8, size / 4);
  const auto rx = tensor::random_uniform<float>(tensor::Shape{rm, rk}, -1.0,
                                                1.0, rng);
  const auto ry = tensor::random_uniform<float>(tensor::Shape{rk, rk}, -1.0,
                                                1.0, rng);

  const std::vector<Kernel> kernels{
      {"matmul", shape_string(size, size, size),
       [&](const core::EvalContext& ctx) { return dl::matmul(x, y, ctx); }},
      {"matmul (rect)", shape_string(rm, rk, rk),
       [&](const core::EvalContext& ctx) { return dl::matmul(rx, ry, ctx); }},
      {"matmul_transpose_a", shape_string(size, size, size),
       [&](const core::EvalContext& ctx) {
         return dl::matmul_transpose_a(x, y, ctx);
       }},
      {"matmul_transpose_b", shape_string(size, size, size),
       [&](const core::EvalContext& ctx) {
         return dl::matmul_transpose_b(x, y, ctx);
       }},
      {"add", shape_string(size, size, 1),
       [&](const core::EvalContext& ctx) { return dl::add(x, y, ctx); }},
  };

  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  std::vector<std::unique_ptr<util::ThreadPool>> pools;
  for (const std::size_t t : thread_counts) {
    pools.push_back(std::make_unique<util::ThreadPool>(t));
  }

  bool gate_ok = true;

  // ---- Table 1: thread sweep (--accumulator spec) -----------------------
  util::Table threads_table({"kernel", "shape", "accumulator", "threads",
                             "serial ms", "pool ms", "speedup",
                             "max ulps vs serial", "bits", "reproducible"});
  for (const auto& kernel : kernels) {
    core::EvalContext serial_ctx;
    serial_ctx.accumulator = sweep_spec;
    const Matrix serial = kernel.run(serial_ctx.with_recorder(recorder));
    const auto serial_stats = util::time_repeated(
        [&] { (void)kernel.run(serial_ctx); }, reps, 1);
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
      const core::EvalContext ctx = serial_ctx.with_pool(pools[t].get());
      const Matrix pooled = kernel.run(ctx.with_recorder(recorder));
      const auto pooled_stats =
          util::time_repeated([&] { (void)kernel.run(ctx); }, reps, 1);
      const std::int64_t ulps = max_ulps(serial, pooled);
      if (!pooled.bitwise_equal(serial)) gate_ok = false;
      threads_table.add_row(
          {kernel.name, kernel.shape, fp::to_string(sweep_spec),
           std::to_string(thread_counts[t]),
           util::fixed(serial_stats.mean_ms(), 3),
           util::fixed(pooled_stats.mean_ms(), 3),
           util::fixed(serial_stats.mean_seconds /
                           std::max(1e-12, pooled_stats.mean_seconds),
                       2),
           std::to_string(ulps), fingerprint(pooled), "yes"});
    }
  }

  // ---- Table 2: accumulator sweep (4-thread pool) -----------------------
  const std::int64_t asz = std::max<std::int64_t>(8, size / 4);
  const auto ax = tensor::random_uniform<float>(tensor::Shape{asz, asz},
                                                -1e4, 1e4, rng);
  const auto ay = tensor::random_uniform<float>(tensor::Shape{asz, asz},
                                                -1e4, 1e4, rng);
  util::ThreadPool& pool4 = *pools[2];
  util::Table acc_table({"accumulator", "shape", "serial ms", "pool ms",
                         "max ulps vs serial", "bits", "reproducible"});
  for (const auto& entry : fp::AlgorithmRegistry::instance().entries()) {
    core::EvalContext serial_ctx;
    serial_ctx.accumulator = entry.id;
    const core::EvalContext pool_ctx = serial_ctx.with_pool(&pool4);
    const Matrix serial = dl::matmul(ax, ay, serial_ctx);
    const Matrix pooled = dl::matmul(ax, ay, pool_ctx);
    const auto serial_stats = util::time_repeated(
        [&] { (void)dl::matmul(ax, ay, serial_ctx); }, 1, 0);
    const auto pooled_stats = util::time_repeated(
        [&] { (void)dl::matmul(ax, ay, pool_ctx); }, 1, 0);
    if (!pooled.bitwise_equal(serial)) gate_ok = false;
    acc_table.add_row({entry.name, shape_string(asz, asz, asz),
                       util::fixed(serial_stats.mean_ms(), 3),
                       util::fixed(pooled_stats.mean_ms(), 3),
                       std::to_string(max_ulps(serial, pooled)),
                       fingerprint(pooled), "yes"});
  }

  // ---- Table 2b: lanes sweep (@simd<L>, 4-thread pool) ------------------
  // The SIMD lane axis composes with the pool axis: a lane-blocked spec
  // names ONE re-association, so the pooled kernel must still match the
  // serial kernel bit for bit (same 0-ulp gate as the other sweeps), for
  // the intrinsics dispatch and the forced scalar lane-emulation alike.
  util::Table simd_table({"spec", "shape", "serial ms", "pool ms",
                          "max ulps vs serial", "emul agrees", "bits",
                          "reproducible"});
  for (const std::string& spec_text :
       {"serial", "serial@simd4", "serial@simd8", "kahan", "kahan@simd4",
        "kahan@simd8"}) {
    core::EvalContext serial_ctx;
    serial_ctx.accumulator = fp::parse_reduction_spec(spec_text);
    const core::EvalContext pool_ctx = serial_ctx.with_pool(&pool4);
    const Matrix serial = dl::matmul(ax, ay, serial_ctx);
    const Matrix pooled = dl::matmul(ax, ay, pool_ctx);
    const auto serial_stats = util::time_repeated(
        [&] { (void)dl::matmul(ax, ay, serial_ctx); }, 1, 0);
    const auto pooled_stats = util::time_repeated(
        [&] { (void)dl::matmul(ax, ay, pool_ctx); }, 1, 0);
    fp::set_simd_force_scalar(true);
    const Matrix emulated = dl::matmul(ax, ay, serial_ctx);
    fp::set_simd_force_scalar(std::nullopt);
    const bool emul_agrees = emulated.bitwise_equal(serial);
    if (!pooled.bitwise_equal(serial) || !emul_agrees) gate_ok = false;
    simd_table.add_row({spec_text, shape_string(asz, asz, asz),
                        util::fixed(serial_stats.mean_ms(), 3),
                        util::fixed(pooled_stats.mean_ms(), 3),
                        std::to_string(max_ulps(serial, pooled)),
                        emul_agrees ? "yes" : "NO", fingerprint(serial),
                        "yes"});
  }

  // ---- Table 3: dtype sweep (storage x accumulate, 4-thread pool) -------
  // The dtype axis of the ReductionSpec at the reduced shape. "max ulps
  // vs f32" measures the precision cost of the storage/accumulate choice
  // against the native f32 kernel (deterministic, so it gates run-to-run
  // alongside the bits); "pool ulps" is the serial-vs-pool identity gate,
  // which must hold for every dtype combination.
  const std::vector<fp::ReductionSpec> dtype_specs{
      fp::parse_reduction_spec("serial"),
      fp::parse_reduction_spec("serial@bf16:f32"),
      fp::parse_reduction_spec("serial@bf16:bf16"),
      fp::parse_reduction_spec("serial@f32:f64"),
      fp::parse_reduction_spec("kahan@bf16:f32"),
      fp::parse_reduction_spec("superaccumulator@bf16:f32"),
  };
  const core::EvalContext f32_ctx;
  const Matrix f32_reference = dl::matmul(ax, ay, f32_ctx);
  util::Table dtype_table({"spec", "shape", "serial ms", "pool ms",
                           "max ulps vs f32", "pool ulps", "bits",
                           "reproducible"});
  for (const fp::ReductionSpec& spec : dtype_specs) {
    core::EvalContext serial_ctx;
    serial_ctx.accumulator = spec;
    const core::EvalContext pool_ctx = serial_ctx.with_pool(&pool4);
    const Matrix serial = dl::matmul(ax, ay, serial_ctx);
    const Matrix pooled = dl::matmul(ax, ay, pool_ctx);
    const auto serial_stats = util::time_repeated(
        [&] { (void)dl::matmul(ax, ay, serial_ctx); }, reps, 1);
    const auto pooled_stats = util::time_repeated(
        [&] { (void)dl::matmul(ax, ay, pool_ctx); }, reps, 1);
    if (!pooled.bitwise_equal(serial)) gate_ok = false;
    dtype_table.add_row({fp::to_string(spec), shape_string(asz, asz, asz),
                         util::fixed(serial_stats.mean_ms(), 3),
                         util::fixed(pooled_stats.mean_ms(), 3),
                         std::to_string(max_ulps(f32_reference, serial)),
                         std::to_string(max_ulps(serial, pooled)),
                         fingerprint(serial), "yes"});
  }

  // ---- Table 4: split-k re-association ----------------------------------
  const std::int64_t ssz = std::max<std::int64_t>(16, size / 4);
  const auto ill_a = tensor::random_uniform<float>(tensor::Shape{ssz, ssz},
                                                   -1e8, 1e8, rng);
  const auto ill_b = tensor::random_uniform<float>(tensor::Shape{ssz, ssz},
                                                   -1e8, 1e8, rng);
  util::Table splitk_table({"splits", "combine order", "shuffles",
                            "distinct bit patterns", "max ulps vs chunk order",
                            "bits", "reproducible"});
  for (const std::size_t splits : {2u, 8u, 32u}) {
    core::EvalContext det_ctx;
    det_ctx.pool = &pool4;
    const Matrix det_a = dl::matmul_split_k(ill_a, ill_b, splits,
                                            det_ctx.with_recorder(recorder));
    const Matrix det_b = dl::matmul_split_k(ill_a, ill_b, splits, det_ctx);
    if (!det_a.bitwise_equal(det_b)) gate_ok = false;
    splitk_table.add_row({std::to_string(splits), "chunk order", "2", "1", "0",
                          fingerprint(det_a), "yes"});

    std::set<std::string> patterns;
    std::int64_t worst = 0;
    std::string first_bits;
    for (std::size_t r = 0; r < shuffles; ++r) {
      core::RunContext run(seed + 11, r);
      core::EvalContext nd_ctx = core::EvalContext::nondeterministic_on(run);
      nd_ctx.pool = &pool4;
      nd_ctx.recorder = recorder;  // seeded shuffles: reproducible traces
      const Matrix shuffled =
          dl::matmul_split_k(ill_a, ill_b, splits, nd_ctx);
      const std::string bits = fingerprint(shuffled);
      if (first_bits.empty()) first_bits = bits;
      patterns.insert(bits);
      worst = std::max(worst, max_ulps(det_a, shuffled));
    }
    splitk_table.add_row({std::to_string(splits), "shuffled",
                          std::to_string(shuffles),
                          std::to_string(patterns.size()),
                          std::to_string(worst), first_bits, "no"});
  }

  const util::Table metrics_table = obs_opts.metrics_table();

  if (csv) {
    threads_table.print_csv(std::cout);
    acc_table.print_csv(std::cout);
    simd_table.print_csv(std::cout);
    dtype_table.print_csv(std::cout);
    splitk_table.print_csv(std::cout);
    if (obs_opts.enabled()) metrics_table.print_csv(std::cout);
  } else {
    util::banner(std::cout, "Thread sweep (row-blocked pool, " +
                                fp::to_string(sweep_spec) + ")");
    threads_table.print(std::cout);
    util::banner(std::cout, "Accumulator sweep (4-thread pool)");
    acc_table.print(std::cout);
    util::banner(std::cout, "SIMD lanes sweep (@simd<L>, 4-thread pool)");
    simd_table.print(std::cout);
    util::banner(std::cout, "Dtype sweep (storage x accumulate, 4-thread "
                            "pool)");
    dtype_table.print(std::cout);
    util::banner(std::cout, "split-k re-association (ill-conditioned)");
    splitk_table.print(std::cout);
    std::cout << "\nReading: every reproducible row must show 0 pool ulps "
                 "and a run-to-run stable bits column - the pooled kernels "
                 "are bitwise identical to serial by construction, for "
                 "every registry accumulator, dtype combination and thread "
                 "count. The dtype rows price the storage/accumulate choice "
                 "in ulps against the native f32 kernel (bf16:f32 pays "
                 "quantization only; bf16:bf16 also accumulates in bf16 "
                 "and drifts much further). Only the deliberately "
                 "re-associating split-k shuffle rows move their bits.\n";
    if (obs_opts.enabled()) {
      util::banner(std::cout, "Recorder metrics (traced correctness passes)");
      metrics_table.print(std::cout);
    }
  }

  if (!json.empty()) {
    std::vector<bench::NamedTable> json_tables{{"threads", &threads_table},
                                               {"accumulators", &acc_table},
                                               {"simd_lanes", &simd_table},
                                               {"dtypes", &dtype_table},
                                               {"split_k", &splitk_table}};
    if (obs_opts.enabled()) {
      json_tables.push_back({"metrics", &metrics_table});
    }
    bench::write_json(json, "microbench_matmul", json_tables);
  }
  obs_opts.finish();

  if (!gate_ok) {
    std::cerr << "FAIL: a pooled result deviated from serial (or a "
                 "deterministic split-k was unstable)\n";
    return 1;
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
