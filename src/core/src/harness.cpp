#include "fpna/core/harness.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "fpna/fp/bits.hpp"

namespace fpna::core {

namespace {

// Reference contexts get a fixed, distinct stream; a correct deterministic
// kernel ignores it, and certify_deterministic verifies exactly that.
constexpr std::uint64_t kReferenceRunIndex = 0xffffffffffffffffULL;

}  // namespace

ScalarVariabilityReport measure_scalar_variability(
    const ScalarKernel& d_kernel, const ScalarKernel& nd_kernel,
    std::size_t runs, std::uint64_t master_seed, Reference reference) {
  if (runs == 0) {
    throw std::invalid_argument("measure_scalar_variability: runs == 0");
  }

  ScalarVariabilityReport report;
  report.runs = runs;

  double ref = 0.0;
  std::size_t first_nd_run = 0;
  if (reference == Reference::kDeterministic) {
    RunContext ctx(master_seed, kReferenceRunIndex);
    ref = d_kernel(ctx);
  } else {
    RunContext ctx(master_seed, 0);
    ref = nd_kernel(ctx);
    first_nd_run = 1;
  }
  report.reference_value = ref;

  std::size_t reproducible = 0;
  stats::Welford welford;
  for (std::size_t r = first_nd_run; r < runs + first_nd_run; ++r) {
    RunContext ctx(master_seed, r);
    const double value = nd_kernel(ctx);
    const double v = vs(value, ref);
    report.vs_samples.push_back(v);
    report.differences.push_back(value - ref);
    welford.add(v);
    if (fp::bitwise_equal(value, ref)) ++reproducible;
  }

  report.vs_summary = stats::summarize(report.vs_samples);
  report.reproducible_fraction =
      static_cast<double>(reproducible) / static_cast<double>(runs);
  return report;
}

ArrayVariabilityReport measure_array_variability(
    const ArrayKernel& d_kernel, const ArrayKernel& nd_kernel,
    std::size_t runs, std::uint64_t master_seed, Reference reference) {
  if (runs == 0) {
    throw std::invalid_argument("measure_array_variability: runs == 0");
  }

  ArrayVariabilityReport report;
  report.runs = runs;

  std::vector<double> ref;
  std::size_t first_nd_run = 0;
  if (reference == Reference::kDeterministic) {
    RunContext ctx(master_seed, kReferenceRunIndex);
    ref = d_kernel(ctx);
  } else {
    RunContext ctx(master_seed, 0);
    ref = nd_kernel(ctx);
    first_nd_run = 1;
  }
  report.elements = ref.size();

  std::size_t reproducible = 0;
  for (std::size_t r = first_nd_run; r < runs + first_nd_run; ++r) {
    RunContext ctx(master_seed, r);
    const std::vector<double> out = nd_kernel(ctx);
    if (out.size() != ref.size()) {
      throw std::runtime_error(
          "measure_array_variability: kernel output size changed between "
          "runs");
    }
    report.vermv_samples.push_back(vermv(ref, out));
    report.vc_samples.push_back(vc(ref, out));
    if (bitwise_equal(std::span<const double>(ref),
                      std::span<const double>(out))) {
      ++reproducible;
    }
  }

  report.vermv_summary = stats::summarize(report.vermv_samples);
  report.vc_summary = stats::summarize(report.vc_samples);
  report.reproducible_fraction =
      static_cast<double>(reproducible) / static_cast<double>(runs);
  return report;
}

CertificationResult certify_deterministic(const ArrayKernel& kernel,
                                          std::size_t runs,
                                          std::uint64_t master_seed) {
  if (runs < 2) {
    throw std::invalid_argument("certify_deterministic: need >= 2 runs");
  }
  CertificationResult result;
  result.runs = runs;

  RunContext first_ctx(master_seed, 0);
  const std::vector<double> first = kernel(first_ctx);
  for (std::size_t r = 1; r < runs; ++r) {
    RunContext ctx(master_seed, r);
    const std::vector<double> out = kernel(ctx);
    if (!bitwise_equal(std::span<const double>(first),
                       std::span<const double>(out))) {
      result.deterministic = false;
      result.first_divergence = r;
      return result;
    }
  }
  return result;
}

CertificationResult certify_deterministic_scalar(const ScalarKernel& kernel,
                                                 std::size_t runs,
                                                 std::uint64_t master_seed) {
  return certify_deterministic(
      [&kernel](RunContext& ctx) {
        return std::vector<double>{kernel(ctx)};
      },
      runs, master_seed);
}

std::size_t count_unique_outputs(
    const std::vector<std::vector<double>>& outputs) {
  // Compare bit patterns; sort-based dedup keeps this O(k log k) in the
  // number of runs (each comparison is O(elements)).
  std::vector<const std::vector<double>*> ptrs;
  ptrs.reserve(outputs.size());
  for (const auto& o : outputs) ptrs.push_back(&o);

  const auto bits_less = [](const std::vector<double>* a,
                            const std::vector<double>* b) {
    if (a->size() != b->size()) return a->size() < b->size();
    for (std::size_t i = 0; i < a->size(); ++i) {
      const auto ba = fp::to_bits((*a)[i]);
      const auto bb = fp::to_bits((*b)[i]);
      if (ba != bb) return ba < bb;
    }
    return false;
  };
  std::sort(ptrs.begin(), ptrs.end(), bits_less);

  std::size_t unique = ptrs.empty() ? 0 : 1;
  for (std::size_t i = 1; i < ptrs.size(); ++i) {
    if (bits_less(ptrs[i - 1], ptrs[i])) ++unique;
  }
  return unique;
}

}  // namespace fpna::core
