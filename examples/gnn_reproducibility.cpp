// Scenario: a scientist trains the same GraphSAGE model twice on the same
// machine with the same seed and gets two different models (the paper's
// SV). This example walks the full workflow:
//
//   * train a population of models with non-deterministic aggregation and
//     show every one is unique despite identical initial weights;
//   * show the models nevertheless agree on most predictions - but not
//     all, which is exactly what breaks certification;
//   * flip the determinism switch and recover bitwise-reproducible
//     training.

#include <iostream>
#include <set>

#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/util/table.hpp"

int main() {
  using namespace fpna;

  auto config = dl::DatasetConfig::small();
  const auto ds = dl::make_synthetic_citation_dataset(config);
  std::cout << "dataset: " << ds.num_nodes() << " nodes, "
            << ds.graph.num_edges() << " directed edges, "
            << ds.num_features() << " features, " << ds.num_classes
            << " classes\n\n";

  dl::TrainConfig train_config;
  train_config.epochs = 10;
  train_config.hidden = 16;

  // ------------------------------------------------------------------
  // 1. Non-deterministic training: every model is unique.
  // ------------------------------------------------------------------
  std::cout << "== 1. ND training: " << 10
            << " runs, identical seed and inputs ==\n";
  train_config.deterministic = false;
  std::vector<dl::TrainResult> population;
  for (std::uint64_t r = 0; r < 10; ++r) {
    core::RunContext run(42, r);
    population.push_back(dl::train(ds, train_config, run));
  }
  std::vector<std::vector<double>> weight_sets;
  for (const auto& result : population) {
    weight_sets.push_back(result.final_weights);
  }
  std::cout << "  unique weight vectors: "
            << core::count_unique_outputs(weight_sets) << " / "
            << weight_sets.size() << "\n";
  std::cout << "  final-epoch losses: ";
  for (const auto& result : population) {
    std::cout << util::fixed(result.epoch_losses.back(), 4) << " ";
  }
  std::cout << "\n  (similar losses, different weights - convergence hides "
               "non-reproducibility)\n\n";

  // ------------------------------------------------------------------
  // 2. Prediction disagreement between "the same" model trained twice.
  // ------------------------------------------------------------------
  std::cout << "== 2. Do the unique models predict the same labels? ==\n";
  const tensor::OpContext det_ctx;
  const auto preds_a =
      dl::argmax_rows(dl::infer(population[0].model, ds, det_ctx));
  std::size_t worst_disagreement = 0;
  for (std::size_t m = 1; m < population.size(); ++m) {
    const auto preds_b =
        dl::argmax_rows(dl::infer(population[m].model, ds, det_ctx));
    std::size_t differ = 0;
    for (std::size_t i = 0; i < preds_a.size(); ++i) {
      differ += preds_a[i] != preds_b[i];
    }
    worst_disagreement = std::max(worst_disagreement, differ);
  }
  std::cout << "  worst label disagreement vs run 0: " << worst_disagreement
            << " / " << preds_a.size() << " nodes\n";
  // Raw outputs (log-probabilities) always differ even when argmax labels
  // agree - and certification regimes hash the *outputs*, not the labels.
  const auto out_a = dl::infer(population[0].model, ds, det_ctx);
  const auto out_b = dl::infer(population[1].model, ds, det_ctx);
  std::cout << "  fraction of output log-probabilities differing bitwise "
               "between two runs: "
            << core::vc(out_a.data(), out_b.data()) << "\n"
            << "  (at this small scale the labels may still agree, but the "
               "model artefact and its outputs are different on every "
               "training - hash-based certification and A/B debugging are "
               "already broken; at production scale the paper reports "
               "prediction-level divergence too)\n\n";

  // ------------------------------------------------------------------
  // 3. Deterministic training: bitwise reproducible.
  // ------------------------------------------------------------------
  std::cout << "== 3. Deterministic training ==\n";
  train_config.deterministic = true;
  const auto kernel = [&](core::RunContext& run) {
    return dl::train(ds, train_config, run).final_weights;
  };
  const auto cert = core::certify_deterministic(kernel, 4, 99);
  std::cout << "  4 trainings bitwise identical: "
            << (cert.deterministic ? "yes" : "NO") << "\n"
            << "  (the only changed line: "
               "DeterminismContext-equivalent switch on the aggregation "
               "kernels)\n";
  return 0;
}
