// google-benchmark microbenchmarks for the tensor operations: CPU
// wall-clock of the deterministic vs non-deterministic implementations
// (the ND path pays for drawing and applying the commit order - the
// simulated analogue of atomic-contention cost).

#include <benchmark/benchmark.h>

#include "fpna/core/run_context.hpp"
#include "fpna/tensor/conv_transpose.hpp"
#include "fpna/tensor/indexed_ops.hpp"
#include "fpna/tensor/scan_ops.hpp"
#include "fpna/tensor/workload.hpp"

namespace {

using namespace fpna;

void BM_ScatterReduceSum_D(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  auto w = tensor::make_scatter_workload<float>(state.range(0), 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::scatter_reduce(
        w.self, 0, w.index, w.src, tensor::Reduce::kSum));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ScatterReduceSum_ND(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  auto w = tensor::make_scatter_workload<float>(state.range(0), 0.5, rng);
  std::uint64_t r = 0;
  for (auto _ : state) {
    core::RunContext run(7, r++);
    const auto ctx = tensor::nd_context(run);
    benchmark::DoNotOptimize(tensor::scatter_reduce(
        w.self, 0, w.index, w.src, tensor::Reduce::kSum, true, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_IndexAdd_D(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  auto w = tensor::make_index_add_workload<float>(state.range(0), 0.5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::index_add(w.self, 0, w.index, w.source));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}

void BM_IndexAdd_ND(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  auto w = tensor::make_index_add_workload<float>(state.range(0), 0.5, rng);
  std::uint64_t r = 0;
  for (auto _ : state) {
    core::RunContext run(7, r++);
    const auto ctx = tensor::nd_context(run);
    benchmark::DoNotOptimize(
        tensor::index_add(w.self, 0, w.index, w.source, 1.0f, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0));
}

void BM_Cumsum_D(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  const auto t = tensor::random_uniform<float>(
      tensor::Shape{state.range(0)}, 0.0, 1.0, rng);
  for (auto _ : state) benchmark::DoNotOptimize(tensor::cumsum(t, 0));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_Cumsum_ND(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  const auto t = tensor::random_uniform<float>(
      tensor::Shape{state.range(0)}, 0.0, 1.0, rng);
  std::uint64_t r = 0;
  for (auto _ : state) {
    core::RunContext run(7, r++);
    const auto ctx = tensor::nd_context(run);
    benchmark::DoNotOptimize(tensor::cumsum(t, 0, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ConvTranspose2d_D(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  const auto input = tensor::random_uniform<float>(
      tensor::Shape{1, 8, state.range(0), state.range(0)}, -1, 1, rng);
  const auto weight =
      tensor::random_uniform<float>(tensor::Shape{8, 8, 3, 3}, -1, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::conv_transpose2d(input, weight));
  }
}

void BM_ConvTranspose2d_ND(benchmark::State& state) {
  util::Xoshiro256pp rng(42);
  const auto input = tensor::random_uniform<float>(
      tensor::Shape{1, 8, state.range(0), state.range(0)}, -1, 1, rng);
  const auto weight =
      tensor::random_uniform<float>(tensor::Shape{8, 8, 3, 3}, -1, 1, rng);
  std::uint64_t r = 0;
  for (auto _ : state) {
    core::RunContext run(7, r++);
    const auto ctx = tensor::nd_context(run);
    benchmark::DoNotOptimize(
        tensor::conv_transpose2d(input, weight, nullptr, {}, ctx));
  }
}

}  // namespace

BENCHMARK(BM_ScatterReduceSum_D)->Arg(2000)->Arg(20000);
BENCHMARK(BM_ScatterReduceSum_ND)->Arg(2000)->Arg(20000);
BENCHMARK(BM_IndexAdd_D)->Arg(100)->Arg(300);
BENCHMARK(BM_IndexAdd_ND)->Arg(100)->Arg(300);
BENCHMARK(BM_Cumsum_D)->Arg(65536);
BENCHMARK(BM_Cumsum_ND)->Arg(65536);
BENCHMARK(BM_ConvTranspose2d_D)->Arg(16);
BENCHMARK(BM_ConvTranspose2d_ND)->Arg(16);

BENCHMARK_MAIN();
