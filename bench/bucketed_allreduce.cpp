// Extension bench (paper SVI future work, ISSUE 2 tentpole): bucketed,
// overlap-capable allreduce over a simulated process group. Sweeps bucket
// cap x rank count x collective algorithm, with overlap off and on, over a
// fixed global set of per-sample gradient contributions sharded across the
// ranks (comm::sharded_bucketed_allreduce - the multi-tensor
// generalisation of collective::distributed_sum).
//
// Measured per combination:
//   * wall-clock per reduction and throughput (Melem/s) - the bucketing /
//     overlap speedup;
//   * run-to-run bit-stability (two different RunContexts);
//   * max ulp distance from the exact (superaccumulator) reduction - the
//     reproducibility cost. The kReproducible rows read 0 ulps at *every*
//     rank count and bucket cap - rank-count invariance measured, not
//     asserted - while the rounded algorithms drift as (P, cap) change
//     the association.
//
// Flags: --size (total elements, default 32768), --tensors, --samples,
//        --threads (pool size for overlap), --reps, --seed, --csv,
//        --wire=<allgather|ring|butterfly> (message path of the process
//        groups: the schedule wires move O(n)/rank instead of O(n*P),
//        bits unchanged - certified by the gate),
//        --overlap=backward (adds the backward-overlap table: tensors
//        "arrive" in reverse order and a comm::BucketScheduler fires each
//        bucket at its last arrival, packed-path bits compared per row),
//        --json=<path> (machine-readable dump for the CI determinism
//        gate: run-to-run stable rows must keep identical bit columns
//        across two invocations, see scripts/bench_json_diff.py)

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fpna/comm/bucket_scheduler.hpp"
#include "fpna/comm/bucketed_allreduce.hpp"
#include "fpna/comm/process_group.hpp"
#include "fpna/comm/schedule.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/util/table.hpp"
#include "fpna/util/thread_pool.hpp"
#include "fpna/util/timer.hpp"

using namespace fpna;

namespace {

/// DDP-shaped tensor sizes: a few large tensors and a tail of small ones,
/// summing to ~total.
std::vector<std::size_t> gradient_shaped_sizes(std::size_t total,
                                               std::size_t tensors) {
  std::vector<std::size_t> sizes;
  std::size_t remaining = total;
  for (std::size_t t = 0; t < tensors && remaining > 0; ++t) {
    const std::size_t take =
        t + 1 == tensors ? remaining
                         : std::max<std::size_t>(1, remaining / 2);
    sizes.push_back(take);
    remaining -= take;
  }
  return sizes;
}

std::int64_t max_ulps(const comm::TensorList<double>& a,
                      const comm::TensorList<double>& b) {
  std::int64_t worst = 0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      worst = std::max(worst, fp::ulp_distance(a[t][i], b[t][i]));
    }
  }
  return worst;
}

bool bitwise_equal(const comm::TensorList<double>& a,
                   const comm::TensorList<double>& b) {
  for (std::size_t t = 0; t < a.size(); ++t) {
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      if (!fp::bitwise_equal(a[t][i], b[t][i])) return false;
    }
  }
  return true;
}

std::string fingerprint(const comm::TensorList<double>& tensors) {
  bench::BitFingerprint fp;
  for (const auto& tensor : tensors) {
    fp.feed(std::span<const double>(tensor));
  }
  return fp.hex();
}

/// Backward-overlapped bucket firing over per-rank tensor lists: tensors
/// become ready in reverse order (the gradient-production order of a
/// backward pass) and comm::OverlappedBucketAllreduce - the exact engine
/// dl::train_data_parallel runs - fires each bucket at its last arrival,
/// on the pool. Per-bucket arrival seeds are pre-drawn in bucket order,
/// so the result is a pure function of (data, algorithm, cap, run
/// identity), independent of pool timing.
comm::TensorList<double> backward_overlap_allreduce(
    comm::ProcessGroup& pg,
    const std::vector<comm::TensorList<double>>& rank_tensors,
    collective::Algorithm algorithm, core::RunContext* run,
    std::size_t cap, util::ThreadPool* pool) {
  const std::size_t tensors = rank_tensors.front().size();
  std::vector<std::size_t> tensor_sizes(tensors);
  std::vector<std::size_t> emit_order(tensors);  // reverse tensor order
  for (std::size_t t = 0; t < tensors; ++t) {
    tensor_sizes[t] = rank_tensors.front()[t].size();
    emit_order[t] = tensors - 1 - t;
  }
  core::EvalContext ctx;
  ctx.run = run;
  ctx.pool = pool;
  comm::BucketedConfig config;
  config.bucket_cap_elements = cap;
  config.overlap = true;
  comm::OverlappedBucketAllreduce<double> reducer(
      pg, rank_tensors, tensor_sizes, emit_order, algorithm, ctx, config);
  for (std::size_t s = 0; s < tensors; ++s) reducer.notify_slot_ready(s);
  return reducer.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto total = static_cast<std::size_t>(cli.integer("size", 32768));
  const auto tensors = static_cast<std::size_t>(cli.integer("tensors", 12));
  const auto samples = static_cast<std::size_t>(cli.integer("samples", 16));
  const auto threads = static_cast<std::size_t>(cli.integer("threads", 8));
  const auto reps = static_cast<std::size_t>(cli.integer("reps", 3));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");
  const std::string json = cli.text("json", "");
  // --trace / --provenance attach a recorder to the deterministic passes
  // (the exact reduction and the ring-layout table) - the provenance dump
  // is a pure function of the flags, so two identical invocations must
  // produce byte-identical files (the CI trace gate).
  const bench::ObsOptions obs_opts(cli);
  obs::Recorder* const recorder = obs_opts.recorder();
  const comm::WirePath wire =
      comm::parse_wire_path(cli.text("wire", "allgather"));
  const bool backward_overlap = cli.text("overlap", "") == "backward";

  const auto sizes = gradient_shaped_sizes(total, tensors);
  std::size_t elements = 0;
  for (const std::size_t s : sizes) elements += s;

  util::banner(std::cout,
               "Bucketed allreduce sweep: " + std::to_string(elements) +
                   " elements in " + std::to_string(sizes.size()) +
                   " tensors, " + std::to_string(samples) +
                   " sharded samples");

  // Ill-conditioned per-sample contributions (magnitude spread +
  // cancellation) so every re-association is visible in the low bits.
  std::vector<comm::TensorList<double>> sample_grads(samples);
  {
    std::uint64_t salt = 0;
    for (auto& sample : sample_grads) {
      sample.resize(sizes.size());
      for (std::size_t t = 0; t < sizes.size(); ++t) {
        sample[t] = bench::uniform_array(sizes[t], -1e8, 1e8, seed + salt++);
      }
    }
  }

  util::ThreadPool pool(threads);
  core::EvalContext exact_ctx;
  exact_ctx.recorder = recorder;
  comm::SimProcessGroup exact_group(1);
  const std::vector<std::size_t> exact_owner(samples, 0);
  const auto exact = comm::sharded_bucketed_allreduce(
      exact_group, sample_grads, exact_owner,
      collective::Algorithm::kReproducible, exact_ctx, {});

  util::Table table({"ranks", "bucket cap", "algorithm", "overlap",
                     "ms/reduce", "Melem/s", "run-to-run stable",
                     "max ulps vs exact", "bits"});
  for (const std::size_t ranks : {2u, 8u, 32u}) {
    comm::SimProcessGroup pg(ranks, wire);
    std::vector<std::size_t> owner(samples);
    for (std::size_t s = 0; s < samples; ++s) owner[s] = s % ranks;
    for (const std::size_t cap : {1024u, 16384u, 262144u}) {
      for (const auto algorithm :
           {collective::Algorithm::kRing,
            collective::Algorithm::kRecursiveDoubling,
            collective::Algorithm::kArrivalTree,
            collective::Algorithm::kReproducible}) {
        for (const bool overlap : {false, true}) {
          comm::BucketedConfig config;
          config.bucket_cap_elements = cap;
          config.overlap = overlap;

          const auto reduce_once = [&](core::RunContext& run) {
            core::EvalContext ctx;
            ctx.run = &run;
            ctx.pool = overlap ? &pool : nullptr;
            return comm::sharded_bucketed_allreduce(
                pg, sample_grads, owner, algorithm, ctx, config);
          };

          core::RunContext run_a(seed + 7, 0);
          core::RunContext run_b(seed + 7, 1);
          const auto value_a = reduce_once(run_a);
          const auto value_b = reduce_once(run_b);

          core::RunContext timed_run(seed + 7, 2);
          const auto stats = util::time_repeated(
              [&] { (void)reduce_once(timed_run); }, reps, 1);
          const double ms = stats.mean_seconds * 1e3;
          const double melem_s =
              static_cast<double>(elements) / stats.mean_seconds / 1e6;

          table.add_row({std::to_string(ranks), std::to_string(cap),
                         collective::to_string(algorithm),
                         overlap ? "on" : "off", util::fixed(ms, 3),
                         util::fixed(melem_s, 1),
                         bitwise_equal(value_a, value_b) ? "yes" : "NO",
                         std::to_string(max_ulps(value_a, exact)),
                         fingerprint(value_a)});
        }
      }
    }
  }
  // ---- Ring layout sensitivity (ROADMAP open item) ----------------------
  // comm_test pins the hazard qualitatively: the ring allreduce's
  // combining order for an element is a function of its offset *within
  // its bucket*, so re-bucketing moves bits even though every individual
  // schedule is deterministic. This table quantifies the drift: for each
  // rank count, the finest cap is the baseline and every coarser layout
  // is measured against it (and against the exact reduction) in ulps.
  // All rows are deterministic - run-to-run stable by construction - so
  // the bits and ulp columns ride the CI determinism gate.
  util::Table ring_table({"ranks", "bucket cap", "buckets",
                          "max ulps vs finest cap", "max ulps vs exact",
                          "run-to-run stable", "bits"});
  {
    std::vector<std::size_t> tensor_sizes;
    for (const auto& tensor : sample_grads.front()) {
      tensor_sizes.push_back(tensor.size());
    }
    // Caps whose bucket layouts coincide would reduce to byte-identical
    // rows (above ~total elements every cap yields one bucket): keep one
    // cap per distinct layout and skip the redundant reductions.
    std::vector<std::size_t> caps;
    std::vector<std::size_t> cap_buckets;
    {
      std::vector<std::vector<std::size_t>> seen_layouts;
      for (const std::size_t cap :
           {256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
        const auto buckets =
            comm::BucketAssigner(cap).assign(tensor_sizes);
        std::vector<std::size_t> layout;
        for (const auto& bucket : buckets) {
          layout.push_back(bucket.first_tensor);
          layout.push_back(bucket.tensor_count);
        }
        if (std::find(seen_layouts.begin(), seen_layouts.end(), layout) !=
            seen_layouts.end()) {
          continue;
        }
        seen_layouts.push_back(std::move(layout));
        caps.push_back(cap);
        cap_buckets.push_back(buckets.size());
      }
    }
    for (const std::size_t ranks : {2u, 4u, 8u, 16u, 32u}) {
      comm::SimProcessGroup pg(ranks, wire);
      std::vector<std::size_t> owner(samples);
      for (std::size_t s = 0; s < samples; ++s) owner[s] = s % ranks;
      std::vector<comm::TensorList<double>> per_cap;
      for (const std::size_t cap : caps) {
        comm::BucketedConfig config;
        config.bucket_cap_elements = cap;
        core::EvalContext ctx;  // deterministic, serial local folds
        ctx.recorder = recorder;
        per_cap.push_back(comm::sharded_bucketed_allreduce(
            pg, sample_grads, owner, collective::Algorithm::kRing, ctx,
            config));
      }
      for (std::size_t c = 0; c < caps.size(); ++c) {
        ring_table.add_row(
            {std::to_string(ranks), std::to_string(caps[c]),
             std::to_string(cap_buckets[c]),
             std::to_string(max_ulps(per_cap[c], per_cap.front())),
             std::to_string(max_ulps(per_cap[c], exact)), "yes",
             fingerprint(per_cap[c])});
      }
    }
  }

  // ---- Backward-overlapped bucket firing (--overlap=backward) -----------
  // DDP-style: per-rank tensor lists whose tensors "arrive" in reverse
  // order; a BucketScheduler fires each bucket's allreduce at its last
  // arrival, on the pool. Compared against the packed bucketed_allreduce:
  // the reproducible exchange is bucket-layout-invariant and must match
  // the packed bits exactly; the rounded ring commits to the emission
  // layout (deterministically - its own bits still gate).
  util::Table backward_table({"ranks", "bucket cap", "algorithm",
                              "ms/reduce", "run-to-run stable",
                              "matches packed", "bits"});
  if (backward_overlap) {
    for (const std::size_t ranks : {2u, 8u}) {
      if (ranks > samples) continue;  // rank lists are drawn from samples
      comm::SimProcessGroup pg(ranks, wire);
      std::vector<comm::TensorList<double>> rank_tensors(
          sample_grads.begin(),
          sample_grads.begin() + static_cast<std::ptrdiff_t>(ranks));
      for (const std::size_t cap : {1024u, 16384u}) {
        for (const auto algorithm :
             {collective::Algorithm::kRing,
              collective::Algorithm::kArrivalTree,
              collective::Algorithm::kReproducible}) {
          const auto reduce_once = [&](core::RunContext& run) {
            return backward_overlap_allreduce(pg, rank_tensors, algorithm,
                                              &run, cap, &pool);
          };
          core::RunContext run_a(seed + 11, 0);
          core::RunContext run_b(seed + 11, 1);
          const auto value_a = reduce_once(run_a);
          const auto value_b = reduce_once(run_b);

          core::RunContext packed_run(seed + 11, 0);
          core::EvalContext packed_ctx;
          packed_ctx.run = &packed_run;
          const auto packed = comm::bucketed_allreduce(
              pg, rank_tensors, algorithm, packed_ctx,
              comm::BucketedConfig{.bucket_cap_elements = cap});

          core::RunContext timed_run(seed + 11, 2);
          const auto stats = util::time_repeated(
              [&] { (void)reduce_once(timed_run); }, reps, 1);

          backward_table.add_row(
              {std::to_string(ranks), std::to_string(cap),
               collective::to_string(algorithm),
               util::fixed(stats.mean_seconds * 1e3, 3),
               bitwise_equal(value_a, value_b) ? "yes" : "NO",
               bitwise_equal(value_a, packed) ? "yes" : "no",
               fingerprint(value_a)});
        }
      }
    }
  }

  const util::Table metrics_table = obs_opts.metrics_table();
  if (!json.empty()) {
    std::vector<bench::NamedTable> tables{{"sweep", &table},
                                          {"ring_layout", &ring_table}};
    if (backward_overlap) {
      tables.push_back({"backward_overlap", &backward_table});
    }
    if (obs_opts.enabled()) tables.push_back({"metrics", &metrics_table});
    bench::write_json(json, "bucketed_allreduce", tables);
  }
  if (csv) {
    table.print_csv(std::cout);
    ring_table.print_csv(std::cout);
    if (obs_opts.enabled()) metrics_table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nReading: reproducible rows are bit-stable with 0 ulps at "
           "every rank count, bucket cap and overlap setting; ring / "
           "recursive-doubling are run-to-run stable but drift across "
           "(ranks, cap) re-associations; arrival-tree is unstable run to "
           "run. Overlap changes wall-clock only - identical bits on and "
           "off.\n";
    util::banner(std::cout, "Ring layout sensitivity (ulp drift vs bucket "
                            "cap x ranks)");
    ring_table.print(std::cout);
    std::cout
        << "\nReading: every row is deterministic, yet the bits column "
           "moves down each rank-count block - the bucket cap alone "
           "re-associates the ring's combining order (element offset "
           "within the bucket picks the starting rank). A DDP-style "
           "job that changes its bucketing, world size or both must "
           "expect gradient bits to move unless it pays for the "
           "reproducible exchange.\n";
    if (backward_overlap) {
      util::banner(std::cout,
                   "Backward-overlapped bucket firing (reverse arrival)");
      backward_table.print(std::cout);
      std::cout
          << "\nReading: buckets fire mid-'backward' on the pool; the "
             "reproducible exchange matches the packed path bit for bit "
             "(layout-invariant), the rounded ring commits to the "
             "emission-order layout (stable, but its own bits), and the "
             "arrival tree stays non-deterministic either way.\n";
    }
    if (obs_opts.enabled()) {
      util::banner(std::cout, "Recorder metrics (traced passes)");
      metrics_table.print(std::cout);
    }
  }
  obs_opts.finish();
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
