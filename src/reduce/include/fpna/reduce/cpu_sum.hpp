#pragma once
// CPU parallel reductions (paper SIII.B): the OpenMP-style "normal" (non-
// deterministic) and "ordered" (deterministic) reductions of Listings 2-3,
// plus reproducible alternatives.
//
// The unified entry point is cpu_sum(data, EvalContext, num_threads): the
// context selects the reduction spec (registry algorithm + storage /
// accumulate dtypes - addends quantize to the storage dtype and each
// chunk's stream runs at the accumulate dtype), the combination order
// (deterministic index order vs a completion order drawn from the
// RunContext) and the execution substrate (simulated chunks vs real
// threads on ctx.pool). The historic entry points below are thin,
// bitwise-compatible wrappers over it.

#include <cstddef>
#include <span>

#include "fpna/core/eval_context.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::reduce {

/// Chunked reduction through the context's registry-selected accumulator:
/// one accumulator per static chunk, partial states merged into the total
/// in chunk-index order (deterministic) or in a completion order drawn
/// from ctx.run (when ctx.nondeterministic()). With ctx.pool set the
/// chunks run on real threads; merge order stays chunk-index
/// (deterministic) unless the context opts into non-determinism - by
/// carrying a run identity or explicitly setting deterministic_override =
/// false - in which case the merge happens in genuine OS completion order
/// under a mutex. For exact-merge algorithms (superaccumulator, binned)
/// the result is bitwise independent of the chunking and merge order.
/// `num_threads` always fixes the chunk boundaries (and therefore the
/// bits for non-exact-merge accumulators), whether or not a pool runs
/// them.
double cpu_sum(std::span<const double> data, const core::EvalContext& ctx,
               std::size_t num_threads = 4);

/// Serial left-to-right sum (the reference the paper's Table 3 rows are
/// compared against).
double cpu_sum_serial(std::span<const double> data) noexcept;

/// OpenMP `parallel for ordered reduction(+:sum)` equivalent (Listing 2):
/// the ordered construct forces the adds to retire in iteration order, so
/// the value equals the serial sum regardless of thread count. Computed
/// here by its defining property (deterministic by construction).
double cpu_sum_ordered(std::span<const double> data,
                       std::size_t num_threads = 4) noexcept;

/// OpenMP "normal" reduction equivalent (Listing 2 without `ordered`):
/// static chunks are summed privately, then combined in *completion
/// order*, which the OpenMP specification leaves unspecified. The
/// completion order is drawn from `ctx`.
double cpu_sum_unordered(std::span<const double> data, core::RunContext& ctx,
                         std::size_t num_threads = 4);

/// Same algorithm executed with real threads on `pool`: each worker sums
/// a static chunk and merges into the shared accumulator under a mutex in
/// whatever order the OS schedules - genuine non-determinism where the
/// host has parallelism. Used for wall-clock benches.
double cpu_sum_threads(std::span<const double> data, util::ThreadPool& pool);

/// Deterministic chunked reduction: static chunks, partials combined in
/// chunk-index order (what a deterministic tree reduction runtime does).
/// Parallel-friendly and order-fixed, but its value differs from the
/// serial sum (different association).
double cpu_sum_chunked_deterministic(std::span<const double> data,
                                     std::size_t num_threads = 4) noexcept;

/// Reproducible sum via the superaccumulator: bitwise identical for any
/// permutation of the input and any chunking/thread count.
double cpu_sum_reproducible(std::span<const double> data,
                            std::size_t num_threads = 4);

}  // namespace fpna::reduce
