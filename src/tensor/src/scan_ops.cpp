#include "fpna/tensor/scan_ops.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "fpna/fp/accumulator.hpp"
#include "fpna/util/permutation.hpp"

namespace fpna::tensor {

namespace {

/// Scans one line (stride-accessed) of the tensor.
template <typename T>
void scan_line(std::span<T> data, std::int64_t start, std::int64_t stride,
               std::int64_t length, const OpContext& ctx,
               std::size_t scan_blocks) {
  const auto at = [&](std::int64_t i) -> T& {
    return data[static_cast<std::size_t>(start + i * stride)];
  };

  if (!ctx.nondeterministic() || length <= 2 || scan_blocks <= 1) {
    // Deterministic scan: the running prefix is the context's registry
    // accumulator (at the spec's accumulate dtype, over storage-quantized
    // addends), read after every add. The native serial case keeps the
    // classic in-place loop - an empty accumulator's 0.0 seed would flip
    // the sign of a -0.0 prefix, breaking bitwise compatibility.
    fp::visit_reduction<T>(
        ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
          using A = typename decltype(acc_c)::type;
          using Acc = typename decltype(tag)::template accumulator_t<A>;
          if constexpr (std::is_same_v<Acc, fp::SerialAccumulator<T>> &&
                        decltype(quantize)::is_identity) {
            for (std::int64_t i = 1; i < length; ++i) {
              at(i) = static_cast<T>(at(i) + at(i - 1));
            }
          } else {
            Acc acc;
            acc.add(static_cast<A>(quantize(at(0))));
            for (std::int64_t i = 1; i < length; ++i) {
              acc.add(static_cast<A>(quantize(at(i))));
              at(i) = static_cast<T>(acc.result());
            }
          }
        });
    return;
  }

  // Blocked scan. Aggregate each block, then give block b the offset
  // sum(aggregates[0..b-1]) accumulated in a per-run shuffled order -
  // the association pattern of a decoupled-lookback scan whose partials
  // arrive asynchronously.
  const auto blocks = static_cast<std::int64_t>(
      std::min<std::size_t>(scan_blocks, static_cast<std::size_t>(length)));
  const std::int64_t base = length / blocks;
  const std::int64_t rem = length % blocks;

  std::vector<std::int64_t> begin(static_cast<std::size_t>(blocks) + 1, 0);
  for (std::int64_t b = 0; b < blocks; ++b) {
    begin[static_cast<std::size_t>(b) + 1] =
        begin[static_cast<std::size_t>(b)] + base + (b < rem ? 1 : 0);
  }

  // Block aggregates and per-block offsets route through the context's
  // registry-selected accumulator (serial reproduces the seed bitwise).
  std::vector<T> aggregate(static_cast<std::size_t>(blocks), T{0});
  std::vector<T> offset(static_cast<std::size_t>(blocks), T{0});
  fp::visit_reduction<T>(
      ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        for (std::int64_t b = 0; b < blocks; ++b) {
          Acc acc;
          for (std::int64_t i = begin[static_cast<std::size_t>(b)];
               i < begin[static_cast<std::size_t>(b) + 1]; ++i) {
            acc.add(static_cast<A>(quantize(at(i))));
          }
          aggregate[static_cast<std::size_t>(b)] = static_cast<T>(acc.result());
        }

        auto& rng = ctx.run->rng();
        for (std::int64_t b = 1; b < blocks; ++b) {
          // The b-1 preceding aggregates arrive in scheduler order.
          std::vector<std::size_t> order = util::random_permutation(
              static_cast<std::size_t>(b), rng);
          Acc acc;
          for (const std::size_t j : order) {
            acc.add(static_cast<A>(quantize(aggregate[j])));
          }
          offset[static_cast<std::size_t>(b)] = static_cast<T>(acc.result());
        }
      });

  for (std::int64_t b = 0; b < blocks; ++b) {
    T acc = offset[static_cast<std::size_t>(b)];
    for (std::int64_t i = begin[static_cast<std::size_t>(b)];
         i < begin[static_cast<std::size_t>(b) + 1]; ++i) {
      acc = static_cast<T>(acc + at(i));
      at(i) = acc;
    }
  }
}

}  // namespace

template <typename T>
Tensor<T> cumsum(const Tensor<T>& self, std::int64_t dim, const OpContext& ctx,
                 std::size_t scan_blocks) {
  if (dim < 0 || dim >= self.dim()) {
    throw std::out_of_range("cumsum: dim out of range");
  }
  // One rule regardless of tensor shape or determinism path: the binned
  // accumulator buffers its whole input and re-reduces on every result()
  // call, which would make the streaming prefix O(length^2). Refuse
  // loudly; the superaccumulator gives the same reproducibility in
  // O(length).
  if (ctx.accumulator_in_effect() == fp::AlgorithmId::kBinned) {
    throw std::invalid_argument(
        "cumsum: the binned accumulator cannot stream a prefix scan; "
        "use superaccumulator for a reproducible cumsum");
  }
  Tensor<T> out = self;
  const std::int64_t length = self.size(dim);
  if (length == 0) return out;
  const std::int64_t stride = self.stride(dim);

  // Enumerate all lines along `dim`: outer x inner decomposition.
  std::int64_t outer = 1;
  for (std::int64_t d = 0; d < dim; ++d) outer *= self.size(d);
  std::int64_t inner = 1;
  for (std::int64_t d = dim + 1; d < self.dim(); ++d) inner *= self.size(d);

  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t i = 0; i < inner; ++i) {
      const std::int64_t start = o * length * inner + i;
      scan_line<T>(out.data(), start, stride, length, ctx, scan_blocks);
    }
  }
  return out;
}

template Tensor<float> cumsum<float>(const Tensor<float>&, std::int64_t,
                                     const OpContext&, std::size_t);
template Tensor<double> cumsum<double>(const Tensor<double>&, std::int64_t,
                                       const OpContext&, std::size_t);

}  // namespace fpna::tensor
