// The serving determinism contract, pinned:
//
//  * a deployed node's served row reproduces the offline full-graph
//    forward's row bitwise, per ReductionSpec;
//  * per-request output bits are invariant to batch cap, batch
//    composition, thread count and admission order (the same request set
//    replayed under caps {1,2,8,64} x threads {1,2,8} x 4 specs,
//    including a lane-blocked bf16 spec, yields identical bits);
//  * a seeded overload burst against a tiny queue neither drops nor
//    corrupts a single request (backpressure blocks, never shed);
//  * a worker exception fails exactly the owning requests' futures and
//    deadlocks nothing (the batcher's join-and-rethrow audit).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fpna/dl/dataset.hpp"
#include "fpna/dl/model.hpp"
#include "fpna/dl/row_forward.hpp"
#include "fpna/fp/reduction_spec.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/serve/open_loop.hpp"
#include "fpna/serve/queue.hpp"
#include "fpna/serve/server.hpp"
#include "fpna/serve/session.hpp"
#include "fpna/util/rng.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::serve {
namespace {

// The four specs of the invariance grid: the native default, a
// block-reassociating algorithm (Pairwise's accumulator state depends on
// the element *count*, the easiest thing for a batching bug to corrupt),
// a compensated bf16-storage spec and its lane-blocked SIMD form.
const char* kSpecs[] = {"serial", "pairwise", "klein@bf16:f32",
                        "kahan@simd8:bf16:f32"};

dl::DatasetConfig tiny_config() {
  dl::DatasetConfig config;
  config.num_nodes = 80;
  config.num_undirected_edges = 160;
  config.num_features = 48;
  config.num_classes = 5;
  config.words_per_node = 5;
  config.seed = 7;
  return config;
}

struct ServeWorld {
  dl::Dataset dataset = dl::make_synthetic_citation_dataset(tiny_config());
  dl::GraphSageModel model{48, 12, 5, /*init_seed=*/21};

  InferenceSession session(const fp::ReductionSpec& spec) const {
    core::EvalContext ctx;
    ctx.accumulator = spec;
    return InferenceSession(model, dataset, ctx);
  }
};

/// A mixed request set: deployed nodes plus synthetic never-seen rows
/// (custom features, hand-picked neighbour lists) - batch composition
/// should not matter even across heterogeneous neighbours.
std::vector<Request> make_requests(const dl::Dataset& dataset,
                                   std::size_t count) {
  std::vector<Request> requests;
  util::Xoshiro256pp rng(99);
  const util::UniformReal unit(0.0, 1.0);
  const auto nodes = dataset.num_nodes();
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      requests.push_back(InferenceSession::deployed_request(
          dataset, static_cast<std::int64_t>(i) % nodes, i));
    } else {
      Request request;
      request.id = i;
      request.features.resize(
          static_cast<std::size_t>(dataset.num_features()));
      for (auto& f : request.features) {
        f = static_cast<float>(unit(rng)) * 0.25f;
      }
      const auto degree = 1 + static_cast<std::int64_t>(rng() % 5);
      for (std::int64_t d = 0; d < degree; ++d) {
        request.neighbors.push_back(
            static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(
                                          nodes)));
      }
      requests.push_back(std::move(request));
    }
  }
  return requests;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

// ------------------------------------------------ row == full graph ----

TEST(InferenceSession, DeployedRowsReproduceFullGraphForwardBitwise) {
  const ServeWorld world;
  for (const char* spec_text : kSpecs) {
    core::EvalContext ctx;
    ctx.accumulator = fp::parse_reduction_spec(spec_text);
    const dl::Matrix full = world.model.forward(
        dl::Matrix(world.dataset.features), world.dataset.graph, ctx);
    const InferenceSession session = world.session(*ctx.accumulator);
    const std::int64_t cols = full.size(1);
    for (std::int64_t node = 0; node < world.dataset.num_nodes();
         node += 7) {
      const Request request = InferenceSession::deployed_request(
          world.dataset, node, static_cast<std::uint64_t>(node));
      const std::vector<float> row = session.row_forward(request, ctx);
      ASSERT_EQ(static_cast<std::int64_t>(row.size()), cols);
      for (std::int64_t c = 0; c < cols; ++c) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(
                      row[static_cast<std::size_t>(c)]),
                  std::bit_cast<std::uint32_t>(full.flat(node * cols + c)))
            << "spec=" << spec_text << " node=" << node << " col=" << c;
      }
    }
  }
}

// ---------------------------------------------- the invariance grid ----

TEST(InferenceServer, BitsInvariantToBatchCapThreadsAndComposition) {
  const ServeWorld world;
  const auto requests = make_requests(world.dataset, 32);
  const std::size_t kCaps[] = {1, 2, 8, 64};
  const std::size_t kThreads[] = {1, 2, 8};

  for (const char* spec_text : kSpecs) {
    const fp::ReductionSpec spec = fp::parse_reduction_spec(spec_text);
    const InferenceSession session = world.session(spec);

    // Reference: each request alone, serial, no server in sight.
    core::EvalContext ref_ctx;
    ref_ctx.accumulator = spec;
    std::vector<std::vector<float>> reference;
    reference.reserve(requests.size());
    for (const auto& request : requests) {
      reference.push_back(session.row_forward(request, ref_ctx));
    }

    for (const std::size_t cap : kCaps) {
      for (const std::size_t threads : kThreads) {
        util::ThreadPool pool(threads);
        ServerConfig config;
        config.max_batch = cap;
        config.max_wait = std::chrono::nanoseconds(50'000);
        config.pool = threads > 1 ? &pool : nullptr;
        config.spec = spec;
        InferenceServer server(session, config);
        std::vector<std::future<InferenceResult>> futures;
        futures.reserve(requests.size());
        for (const auto& request : requests) {
          futures.push_back(server.submit(request));
        }
        for (std::size_t i = 0; i < futures.size(); ++i) {
          const InferenceResult result = futures[i].get();
          EXPECT_TRUE(bitwise_equal(result.log_probs, reference[i]))
              << "spec=" << spec_text << " cap=" << cap
              << " threads=" << threads << " request=" << i;
        }
      }
    }
  }
}

TEST(InferenceServer, BitsInvariantToAdmissionOrder) {
  const ServeWorld world;
  const fp::ReductionSpec spec = fp::parse_reduction_spec("pairwise");
  const InferenceSession session = world.session(spec);
  auto requests = make_requests(world.dataset, 24);

  core::EvalContext ref_ctx;
  ref_ctx.accumulator = spec;
  std::map<std::uint64_t, std::vector<float>> reference;
  for (const auto& request : requests) {
    reference[request.id] = session.row_forward(request, ref_ctx);
  }

  util::Xoshiro256pp rng(3);
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    std::shuffle(requests.begin(), requests.end(), rng);
    ServerConfig config;
    config.max_batch = 4;
    config.spec = spec;
    InferenceServer server(session, config);
    std::vector<std::pair<std::uint64_t, std::future<InferenceResult>>>
        futures;
    for (const auto& request : requests) {
      futures.emplace_back(request.id, server.submit(request));
    }
    for (auto& [id, future] : futures) {
      EXPECT_TRUE(bitwise_equal(future.get().log_probs, reference[id]))
          << "shuffle=" << shuffle << " id=" << id;
    }
  }
}

// ------------------------------------------------- overload burst ------

TEST(InferenceServer, OverloadBurstNeverDropsOrCorrupts) {
  const ServeWorld world;
  const fp::ReductionSpec spec = fp::parse_reduction_spec("kahan@simd8:bf16:f32");
  const InferenceSession session = world.session(spec);
  const auto requests = make_requests(world.dataset, 16);

  core::EvalContext ref_ctx;
  ref_ctx.accumulator = spec;
  std::vector<std::vector<float>> reference;
  for (const auto& request : requests) {
    reference.push_back(session.row_forward(request, ref_ctx));
  }

  // Queue of 4 against 4 producers x 50 submissions each: admission
  // backpressure must block producers, never drop, and every future
  // must carry the reference bits.
  ServerConfig config;
  config.max_batch = 8;
  config.max_queue = 4;
  config.spec = spec;
  InferenceServer server(session, config);

  constexpr std::size_t kProducers = 4, kPerProducer = 50;
  std::atomic<std::size_t> correct{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      util::Xoshiro256pp rng(1000 + p);
      for (std::size_t s = 0; s < kPerProducer; ++s) {
        const std::size_t pick = rng() % requests.size();
        auto future = server.submit(requests[pick]);
        if (bitwise_equal(future.get().log_probs, reference[pick])) {
          correct.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(correct.load(), kProducers * kPerProducer);
}

// ----------------------------------------- join-and-rethrow audit ------

TEST(InferenceServer, InjectedRowThrowFailsOnlyOwningRequests) {
  const ServeWorld world;
  const fp::ReductionSpec spec{};
  const InferenceSession session = world.session(spec);
  const auto requests = make_requests(world.dataset, 24);

  core::EvalContext ref_ctx;
  std::vector<std::vector<float>> reference;
  for (const auto& request : requests) {
    reference.push_back(session.row_forward(request, ref_ctx));
  }

  util::ThreadPool pool(4);
  ServerConfig config;
  config.max_batch = 8;
  config.pool = &pool;
  config.fault_hook = [](const Request& request) {
    if (request.id % 5 == 0) {
      throw std::runtime_error("injected fault for request " +
                               std::to_string(request.id));
    }
  };
  InferenceServer server(session, config);
  std::vector<std::future<InferenceResult>> futures;
  for (const auto& request : requests) {
    futures.push_back(server.submit(request));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (requests[i].id % 5 == 0) {
      EXPECT_THROW(futures[i].get(), std::runtime_error) << "request " << i;
    } else {
      // Batch-mates of a throwing row are unharmed, bit for bit.
      EXPECT_TRUE(bitwise_equal(futures[i].get().log_probs, reference[i]))
          << "request " << i;
    }
  }
  // The server survives the faults: a clean batch still serves.
  auto after = server.submit(requests[1]);
  EXPECT_TRUE(bitwise_equal(after.get().log_probs, reference[1]));
}

TEST(InferenceSession, BadNeighbourFailsOnlyItsOwnRow) {
  const ServeWorld world;
  const InferenceSession session = world.session(fp::ReductionSpec{});
  core::EvalContext ctx;
  auto requests = make_requests(world.dataset, 3);
  requests[1].neighbors.push_back(world.dataset.num_nodes() + 5);  // bad id
  const auto outcomes = session.batch_forward(requests, ctx);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].error, nullptr);
  ASSERT_NE(outcomes[1].error, nullptr);
  EXPECT_THROW(std::rethrow_exception(outcomes[1].error), std::out_of_range);
  EXPECT_EQ(outcomes[2].error, nullptr);
}

// --------------------------------------------------- MPSC queue --------

TEST(MpscQueue, FifoPerProducerAndNothingLost) {
  MpscQueue<std::pair<int, int>> queue(64);
  constexpr int kProducers = 4, kItems = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kItems; ++i) {
        ASSERT_TRUE(queue.push({p, i}));
      }
    });
  }
  std::deque<std::pair<int, int>> drained;
  while (drained.size() < kProducers * kItems) {
    queue.drain(drained, std::chrono::nanoseconds(1'000'000));
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(drained.size(), static_cast<std::size_t>(kProducers * kItems));
  // Global FIFO implies per-producer FIFO: each producer's items appear
  // in submission order.
  int last_seen[kProducers];
  std::fill(last_seen, last_seen + kProducers, -1);
  for (const auto& [p, i] : drained) {
    EXPECT_GT(i, last_seen[p]);
    last_seen[p] = i;
  }
}

TEST(MpscQueue, CloseWakesBlockedProducers) {
  MpscQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));  // fills the queue
  std::atomic<bool> returned{false};
  std::thread blocked([&] {
    const bool pushed = queue.push(2);  // blocks: no capacity
    EXPECT_FALSE(pushed);
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.close();
  blocked.join();
  EXPECT_TRUE(returned.load());
  // The admitted item is still drainable after close.
  std::deque<int> drained;
  queue.drain(drained, std::chrono::nanoseconds(0));
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained.front(), 1);
}

// ------------------------------------------------ open-loop driver -----

TEST(OpenLoop, SeededArrivalsAreDeterministic) {
  const auto a = exponential_interarrivals_ns(5000.0, 256, 11);
  const auto b = exponential_interarrivals_ns(5000.0, 256, 11);
  EXPECT_EQ(a, b);
  const auto c = exponential_interarrivals_ns(5000.0, 256, 12);
  EXPECT_NE(a, c);
  // Mean gap should sit near 1/rate = 200us.
  double mean_ns = 0.0;
  for (const auto gap : a) mean_ns += static_cast<double>(gap);
  mean_ns /= static_cast<double>(a.size());
  EXPECT_GT(mean_ns, 100'000.0);
  EXPECT_LT(mean_ns, 400'000.0);
}

TEST(OpenLoop, DrivenServerReproducesReferenceBits) {
  const ServeWorld world;
  const fp::ReductionSpec spec = fp::parse_reduction_spec("pairwise");
  const InferenceSession session = world.session(spec);
  const auto requests = make_requests(world.dataset, 20);

  core::EvalContext ref_ctx;
  ref_ctx.accumulator = spec;
  obs::Fingerprint expected;
  for (const auto& request : requests) {
    const auto row = session.row_forward(request, ref_ctx);
    expected.feed(std::span<const float>(row));
  }

  ServerConfig config;
  config.max_batch = 4;
  config.spec = spec;
  InferenceServer server(session, config);
  const auto gaps = exponential_interarrivals_ns(20'000.0, requests.size(),
                                                 5);
  const OpenLoopResult result = run_open_loop(server, requests, gaps);
  EXPECT_EQ(result.latency.completed, requests.size());
  EXPECT_EQ(result.latency.failed, 0u);
  EXPECT_EQ(result.bits, expected.value());
}

TEST(OpenLoop, SimulatedBatchingAmortisesDispatch) {
  ServiceModel model;
  model.dispatch_us = 10.0;
  model.per_row_us = 1.0;
  // Arrivals at 150k rps = 6.7us mean gaps; unbatched (cap 1) needs
  // 11us of server time per request - past saturation, so its queue and
  // tail grow without bound - while cap 16 amortises the 10us dispatch
  // across whole batches (26us per 16 arrivals) and keeps up.
  const auto unbatched =
      simulate_open_loop(model, 1, 0.0, 150'000.0, 200'000, 31);
  const auto batched =
      simulate_open_loop(model, 16, 100.0, 150'000.0, 200'000, 31);
  EXPECT_GT(batched.throughput_rps, unbatched.throughput_rps);
  EXPECT_LT(batched.p99_us, unbatched.p99_us);
  // Determinism: same seed, same numbers.
  const auto again =
      simulate_open_loop(model, 16, 100.0, 150'000.0, 200'000, 31);
  EXPECT_EQ(batched.p99_us, again.p99_us);
  EXPECT_EQ(batched.throughput_rps, again.throughput_rps);
}

}  // namespace
}  // namespace fpna::serve
