#pragma once
// The paper's variability metrics (SII):
//
//   Vs(f)    = 1 - |f_ND / f_D|                 (scalar outputs)
//   Vermv(f) = (1/D) sum |A_i - B_i| / |A_i|    (elementwise relative mean
//                                                absolute variation, Eq. 1)
//   Vc(f)    = (1/D) sum 1(A_i != B_i)          (count variability, Eq. 2)
//
// All three are zero iff the two outputs are bitwise identical and grow
// with variability. Inequality is *bitwise* (two NaNs with equal payloads
// compare equal; +0.0 differs from -0.0), matching the reproducibility
// notion the paper uses.

#include <cstddef>
#include <span>

namespace fpna::core {

/// Scalar variability Vs = 1 - |nd / d|. Signed, like the paper's Table 1
/// (the magnitude measures variability; the sign records the direction).
/// Conventions for edge cases: returns 0 when both are bitwise equal
/// (including d == nd == 0); +-inf when d == 0 but nd != 0; NaN if either
/// input is NaN and they are not bitwise equal.
double vs(double nd_value, double d_value) noexcept;

/// Elementwise relative mean absolute variation (Eq. 1). `reference` plays
/// the role of A (the deterministic output), `other` of B.
///
/// Zero-denominator policy: a term with A_i == 0 and B_i != 0 has no
/// finite relative size; such terms fall back to |A_i - B_i| / |B_i|
/// (== 1), and A_i == B_i == 0 contributes zero. This keeps the metric
/// finite, keeps "bitwise identical iff zero" true, and penalises
/// disagreements at zero maximally.
double vermv(std::span<const double> reference, std::span<const double> other);
double vermv(std::span<const float> reference, std::span<const float> other);

/// Count variability (Eq. 2): fraction of elements that differ bitwise.
double vc(std::span<const double> reference, std::span<const double> other);
double vc(std::span<const float> reference, std::span<const float> other);

/// True iff the two arrays are bitwise identical (same length, same bits).
bool bitwise_equal(std::span<const double> a, std::span<const double> b) noexcept;
bool bitwise_equal(std::span<const float> a, std::span<const float> b) noexcept;

}  // namespace fpna::core
