#pragma once
// Minimal fixed-size thread pool with a parallel_for convenience wrapper.
// Used by the CPU reduction implementations (src/reduce) both to measure
// real wall-clock costs and to demonstrate genuine (OS-scheduled) run-to-run
// variability where the host exposes it.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fpna::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when the task has run.
  std::future<void> submit(std::function<void()> task);

  /// Splits [0, n) into `chunks` contiguous ranges (default: one per
  /// worker) and runs body(begin, end, chunk_index) on the pool. Blocks
  /// until every chunk completes - including when one throws; the first
  /// failing chunk's exception is rethrown only after the join, so `body`
  /// and the caller's captures never outlive a running chunk.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& body,
                    std::size_t chunks = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fpna::util
