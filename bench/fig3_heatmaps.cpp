// Reproduces Fig. 3: heatmaps of the count variability Vc per run as a
// function of reduction ratio R and input dimension, for the
// non-deterministic scatter_reduce (1-d input) and index_add (2-d square
// input). Printed as aligned grids (rows = input dimension, columns = R)
// ready for plotting.
//
// Flags: --runs --seed --full --csv

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/tensor/indexed_ops.hpp"
#include "fpna/tensor/workload.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

const std::vector<double> kRatios{0.1, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9, 1.0};

double scatter_vc(std::int64_t dim, double ratio, std::size_t runs,
                  std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  auto w = tensor::make_scatter_workload<float>(dim, ratio, rng);
  const auto det =
      tensor::scatter_reduce(w.self, 0, w.index, w.src, tensor::Reduce::kSum);
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    core::RunContext run(seed + 1, r);
    const auto ctx = tensor::nd_context(run);
    const auto out = tensor::scatter_reduce(w.self, 0, w.index, w.src,
                                            tensor::Reduce::kSum, true, ctx);
    total += core::vc(det.data(), out.data());
  }
  return total / static_cast<double>(runs);
}

double index_add_vc(std::int64_t dim, double ratio, std::size_t runs,
                    std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  auto w = tensor::make_index_add_workload<float>(dim, ratio, rng);
  const auto det = tensor::index_add(w.self, 0, w.index, w.source);
  double total = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    core::RunContext run(seed + 1, r);
    const auto ctx = tensor::nd_context(run);
    const auto out = tensor::index_add(w.self, 0, w.index, w.source, 1.0f, ctx);
    total += core::vc(det.data(), out.data());
  }
  return total / static_cast<double>(runs);
}

template <typename CellFn>
void print_heatmap(const std::string& title,
                   const std::vector<std::int64_t>& dims, CellFn&& cell,
                   bool csv) {
  util::banner(std::cout, title);
  std::vector<std::string> headers{"dim \\ R"};
  for (const double r : kRatios) headers.push_back(util::fixed(r, 1));
  util::Table table(headers);
  for (const std::int64_t dim : dims) {
    std::vector<std::string> row{std::to_string(dim)};
    for (const double r : kRatios) row.push_back(util::fixed(cell(dim, r), 4));
    table.add_row(std::move(row));
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const auto runs =
      static_cast<std::size_t>(cli.integer("runs", full ? 200 : 25));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");

  const std::vector<std::int64_t> scatter_dims =
      full ? std::vector<std::int64_t>{1000, 2000, 3000, 4000, 5000, 6000,
                                       7000, 8000, 9000, 10000}
           : std::vector<std::int64_t>{1000, 2000, 4000, 8000};
  const std::vector<std::int64_t> index_add_dims =
      full ? std::vector<std::int64_t>{10, 20, 40, 60, 80, 100, 200, 400}
           : std::vector<std::int64_t>{10, 20, 40, 80, 160};

  print_heatmap(
      "Fig 3 (left): Vc heatmap for scatter_reduce(sum), 1-d input",
      scatter_dims,
      [&](std::int64_t dim, double ratio) {
        return scatter_vc(dim, ratio, runs, seed + static_cast<std::uint64_t>(
                                                       dim * 1000 + ratio * 10));
      },
      csv);
  print_heatmap(
      "Fig 3 (right): Vc heatmap for index_add, 2-d square input",
      index_add_dims,
      [&](std::int64_t dim, double ratio) {
        return index_add_vc(dim, ratio, runs,
                            seed + static_cast<std::uint64_t>(
                                       dim * 1000 + ratio * 10));
      },
      csv);

  std::cout << "\nPaper reference (Fig 3): Vc increases with input dimension "
               "and with R; large inputs approach Vc ~ 1 (every run unique) "
               "- \"the worst case for reproducibility and error "
               "debugging\".\n";
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
