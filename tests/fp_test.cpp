// Unit and property tests for fpna::fp: bit utilities, error-free
// transforms, compensated/pairwise summation, double-double arithmetic,
// and the reproducible superaccumulator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/binned_sum.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/fp/double_double.hpp"
#include "fpna/fp/eft.hpp"
#include "fpna/fp/simd.hpp"
#include "fpna/fp/summation.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::fp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<double> random_values(std::size_t n, double lo, double hi,
                                  std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  const util::UniformReal dist(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

// ---------------------------------------------------------------- bits --

TEST(Bits, RoundTrip) {
  for (const double x : {0.0, -0.0, 1.0, -3.5, 1e300, 5e-324}) {
    EXPECT_EQ(from_bits(to_bits(x)), x);
  }
}

TEST(Bits, BitwiseEqualDistinguishesSignedZero) {
  EXPECT_TRUE(bitwise_equal(0.0, 0.0));
  EXPECT_FALSE(bitwise_equal(0.0, -0.0));
  EXPECT_TRUE(is_negative_zero(-0.0));
  EXPECT_FALSE(is_negative_zero(0.0));
}

TEST(Bits, BitwiseEqualTreatsSameNanAsEqual) {
  EXPECT_TRUE(bitwise_equal(kNaN, kNaN));
  EXPECT_FALSE(kNaN == kNaN);  // contrast with operator==
}

TEST(Bits, UlpDistanceAdjacent) {
  const double x = 1.0;
  const double next = std::nextafter(x, 2.0);
  EXPECT_EQ(ulp_distance(x, next), 1);
  EXPECT_EQ(ulp_distance(next, x), 1);
  EXPECT_EQ(ulp_distance(x, x), 0);
}

TEST(Bits, UlpDistanceAcrossZero) {
  const double tiny = 5e-324;  // smallest denormal
  EXPECT_EQ(ulp_distance(-tiny, tiny), 2);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0);  // zeros collapse
}

TEST(Bits, UlpDistanceNanSaturates) {
  EXPECT_EQ(ulp_distance(kNaN, 1.0), std::numeric_limits<std::int64_t>::max());
}

TEST(Bits, UlpSpacingGrowsWithMagnitude) {
  EXPECT_LT(ulp(1.0), ulp(1e10));
  EXPECT_DOUBLE_EQ(ulp(1.0), std::pow(2.0, -52));
}

// ----------------------------------------------------------------- eft --

TEST(Eft, TwoSumIsExact) {
  util::Xoshiro256pp rng(1);
  const util::UniformReal dist(-1e10, 1e10);
  for (int i = 0; i < 10000; ++i) {
    const double a = dist(rng);
    const double b = dist(rng) * 1e-8;  // widely different magnitudes
    const auto [s, e] = two_sum(a, b);
    // Verify a + b == s + e exactly in double-double.
    DoubleDouble lhs(a);
    lhs += b;
    DoubleDouble rhs(s);
    rhs += e;
    EXPECT_EQ(lhs.to_double(), rhs.to_double());
    EXPECT_EQ(s, a + b);  // s is the rounded sum
  }
}

TEST(Eft, TwoSumRecoversCancellationError) {
  const double a = 1e16;
  const double b = 1.0;
  const auto [s, e] = two_sum(a, b);
  EXPECT_EQ(s, 1e16);  // b vanished from the rounded sum...
  EXPECT_EQ(e, 1.0);   // ...and is exactly the error term
}

TEST(Eft, FastTwoSumAgreesWhenOrdered) {
  const double a = 3.14159e8;
  const double b = 2.71828e-8;
  const auto [s1, e1] = two_sum(a, b);
  const auto [s2, e2] = fast_two_sum(a, b);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(e1, e2);
}

TEST(Eft, TwoProdIsExact) {
  const double a = 1.0 + std::pow(2.0, -30);
  const double b = 1.0 + std::pow(2.0, -29);
  const auto [p, e] = two_prod(a, b);
  EXPECT_EQ(p, a * b);
  // Exact product reconstructed: p + e == a*b in exact arithmetic; verify
  // via long double (80-bit on x86 is enough for 53x2 bits here).
  const long double exact = static_cast<long double>(a) * b;
  EXPECT_EQ(static_cast<long double>(p) + e, exact);
}

// ------------------------------------------------------------ summation --

TEST(Summation, SerialMatchesStdAccumulateOrder) {
  const std::vector<double> v{1.0, 1e-16, 1e-16, 1e-16};
  double expected = 0.0;
  for (const double x : v) expected += x;
  EXPECT_EQ(sum_serial(v), expected);
}

TEST(Summation, EmptyAndSingle) {
  const std::vector<double> empty;
  EXPECT_EQ(sum_serial(empty), 0.0);
  const std::vector<double> one{42.0};
  EXPECT_EQ(sum_serial(one), 42.0);
  EXPECT_EQ(sum_pairwise(one), 42.0);
  EXPECT_EQ(sum_kahan(one), 42.0);
}

TEST(Summation, AllAgreeOnExactlyRepresentableData) {
  // Integers up to 2^20 sum exactly in double: every algorithm must give
  // the identical (exact) result.
  std::vector<double> v;
  for (int i = 1; i <= 1000; ++i) v.push_back(i);
  const double exact = 500500.0;
  EXPECT_EQ(sum_serial(v), exact);
  EXPECT_EQ(sum_pairwise(v), exact);
  EXPECT_EQ(sum_pairwise(v, 1), exact);
  EXPECT_EQ(sum_kahan(v), exact);
  EXPECT_EQ(sum_neumaier(v), exact);
  EXPECT_EQ(sum_klein(v), exact);
  EXPECT_EQ(sum_double_double(v), exact);
  EXPECT_EQ(sum_vectorized(v), exact);
  EXPECT_EQ(Superaccumulator::sum(v), exact);
}

TEST(Summation, NeumaierHandlesLargeThenSmall) {
  // Classic Kahan failure case: the first element is much larger than
  // the running sum at add time.
  const std::vector<double> v{1.0, 1e100, 1.0, -1e100};
  EXPECT_EQ(sum_neumaier(v), 2.0);
  EXPECT_EQ(sum_klein(v), 2.0);
  EXPECT_EQ(Superaccumulator::sum(v), 2.0);
  EXPECT_EQ(sum_serial(v), 0.0);  // naive sum loses both ones
}

TEST(Summation, CompensatedBeatsSerialOnIllConditioned) {
  const auto v = random_values(100000, -1.0, 1.0, 3);
  const double reference = Superaccumulator::sum(v);
  const double serial_err = std::fabs(sum_serial(v) - reference);
  const double kahan_err = std::fabs(sum_kahan(v) - reference);
  const double dd_err = std::fabs(sum_double_double(v) - reference);
  EXPECT_LE(kahan_err, serial_err);
  EXPECT_LE(dd_err, serial_err);
}

TEST(Summation, PairwiseBaseCaseDoesNotChangeExactness) {
  const auto v = random_values(1237, 0.0, 10.0, 5);
  // Different base cases give different (all deterministic) roundings,
  // each within a tight bound of the exact sum.
  const double exact = Superaccumulator::sum(v);
  for (const std::size_t base : {1u, 2u, 8u, 32u, 128u}) {
    EXPECT_NEAR(sum_pairwise(v, base), exact, 1e-9);
  }
}

TEST(Summation, PairwiseStreamingParityWithOneShot) {
  // Pins the PairwiseAccumulator parity contract (see the header): a
  // whole span streamed through add() reproduces one-shot
  // sum_pairwise(v, 32) bit for bit - the one-shot's power-of-two splits
  // fold the same 32-aligned blocks in the same binary-counter order -
  // for every tail length.
  for (const std::size_t n :
       {1u, 5u, 31u, 32u, 33u, 63u, 64u, 96u, 100u, 1237u, 4096u, 100001u}) {
    const auto v = random_values(n, -1e6, 1e6, 11 + n);
    PairwiseAccumulator<double> acc;
    acc.add(std::span<const double>(v));
    EXPECT_TRUE(bitwise_equal(acc.result(), sum_pairwise(v, 32)))
        << "n = " << n;
  }
}

TEST(Summation, PairwiseMergeAssociatesTailDifferently) {
  // The other half of the contract: merge() folds the other cascade's
  // *rounded* result in as a single element, so chunked accumulation
  // associates the chunk boundary differently from the one-shot over the
  // concatenation. On ill-conditioned data the bits move (while staying
  // deterministic for a fixed chunking) - pinned here so a future
  // "fix" that silently changes merge association fails loudly.
  util::Xoshiro256pp rng(99);
  std::size_t diverged = 0;
  constexpr std::size_t kTrials = 32;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::size_t n = 64 + rng() % 4000;
    std::vector<double> v(n);
    for (auto& x : v) {
      const double mag = std::ldexp(1.0, static_cast<int>(rng() % 80) - 40);
      x = ((rng() & 1) ? mag : -mag) *
          (1.0 + static_cast<double>(rng() % 1000) * 1e-3);
    }
    const std::size_t cut = 1 + rng() % n;
    const auto chunked = [&] {
      PairwiseAccumulator<double> a;
      PairwiseAccumulator<double> b;
      a.add(std::span<const double>(v).first(cut));
      b.add(std::span<const double>(v).subspan(cut));
      a.merge(b);
      return a.result();
    };
    const double merged = chunked();
    if (!bitwise_equal(merged, sum_pairwise(v, 32))) ++diverged;
    // Deterministic for the fixed chunking even where it diverges.
    EXPECT_TRUE(bitwise_equal(merged, chunked()));
  }
  // Empirically >half the trials diverge on this distribution; require a
  // healthy fraction so the property cannot rot into vacuity.
  EXPECT_GE(diverged, kTrials / 4);
}

TEST(Summation, VectorizedLanesChangeRounding) {
  // Demonstrates the TPRC compiler-sensitivity the paper mentions: lane
  // count changes association, and may change the rounded value.
  const auto v = random_values(100001, -1.0, 1.0, 7);
  const double s1 = sum_vectorized(v, 1);
  EXPECT_EQ(s1, sum_serial(v));
  const double exact = Superaccumulator::sum(v);
  for (const std::size_t lanes : {2u, 4u, 8u}) {
    EXPECT_NEAR(sum_vectorized(v, lanes), exact, 1e-10);
  }
}

TEST(Summation, DotSerial) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, 5.0, 6.0};
  EXPECT_EQ(dot_serial(a, b), 32.0);
}

// -------------------------------------------------------- double-double --

TEST(DoubleDouble, TracksTinyIncrements) {
  DoubleDouble acc(1e16);
  for (int i = 0; i < 1000; ++i) acc += 1.0;
  acc += -1e16;
  EXPECT_EQ(acc.to_double(), 1000.0);
}

TEST(DoubleDouble, MergeMatchesSequential) {
  const auto v = random_values(10000, -5.0, 5.0, 11);
  DoubleDouble whole;
  for (const double x : v) whole += x;
  DoubleDouble left, right;
  for (std::size_t i = 0; i < v.size() / 2; ++i) left += v[i];
  for (std::size_t i = v.size() / 2; i < v.size(); ++i) right += v[i];
  left += right;
  EXPECT_NEAR(left.to_double(), whole.to_double(), 1e-18);
}

TEST(DoubleDouble, ScalarProduct) {
  DoubleDouble x(1.0, 1e-20);
  const DoubleDouble y = x * 3.0;
  EXPECT_DOUBLE_EQ(y.hi(), 3.0);
  EXPECT_NEAR(y.lo(), 3e-20, 1e-26);
}

// ------------------------------------------------------ superaccumulator --

TEST(Superaccumulator, ExactForSmallIntegers) {
  Superaccumulator acc;
  for (int i = 1; i <= 10000; ++i) acc.add(static_cast<double>(i));
  EXPECT_EQ(acc.round(), 50005000.0);
}

TEST(Superaccumulator, NegativeTotals) {
  Superaccumulator acc;
  acc.add(1.5);
  acc.add(-4.25);
  EXPECT_EQ(acc.round(), -2.75);
}

TEST(Superaccumulator, CancellationIsExact) {
  Superaccumulator acc;
  acc.add(1e308);
  acc.add(-1e308);
  acc.add(3.0);
  EXPECT_EQ(acc.round(), 3.0);
}

TEST(Superaccumulator, WireFormRoundTripsTheExactState) {
  // The serialized form feeding comm's schedule-based reproducible
  // exchange: canonical (same exact value -> same words), lossless (the
  // deserialized state merges and rounds identically), size-checked.
  util::Xoshiro256pp rng(321);
  const util::UniformReal dist(-1e12, 1e12);
  Superaccumulator acc;
  for (int i = 0; i < 500; ++i) acc.add(dist(rng));

  std::vector<std::uint64_t> words(Superaccumulator::kWireWords);
  acc.serialize(words);
  const Superaccumulator restored = Superaccumulator::deserialize(words);
  EXPECT_TRUE(restored.equals(acc));
  EXPECT_EQ(restored.round(), acc.round());

  // Canonical: a different add order reaching the same exact value
  // serializes to the identical words.
  Superaccumulator reordered;
  reordered.add(acc);  // exact merge into a fresh state
  std::vector<std::uint64_t> words2(Superaccumulator::kWireWords);
  reordered.serialize(words2);
  EXPECT_EQ(words, words2);

  // Merging a deserialized state is the exact merge.
  Superaccumulator sum = restored;
  sum.add(Superaccumulator::deserialize(words));
  Superaccumulator twice = acc;
  twice.add(acc);
  EXPECT_TRUE(sum.equals(twice));

  std::vector<std::uint64_t> wrong(Superaccumulator::kWireWords - 1);
  EXPECT_THROW(acc.serialize(wrong), std::invalid_argument);
  EXPECT_THROW(Superaccumulator::deserialize(wrong), std::invalid_argument);
}

TEST(Superaccumulator, WireFormCarriesExceptionalState) {
  Superaccumulator acc;
  acc.add(std::numeric_limits<double>::infinity());
  std::vector<std::uint64_t> words(Superaccumulator::kWireWords);
  acc.serialize(words);
  const Superaccumulator restored = Superaccumulator::deserialize(words);
  EXPECT_TRUE(restored.has_pos_inf());
  EXPECT_EQ(restored.round(), std::numeric_limits<double>::infinity());

  Superaccumulator nan_acc;
  nan_acc.add(std::numeric_limits<double>::quiet_NaN());
  nan_acc.serialize(words);
  EXPECT_TRUE(Superaccumulator::deserialize(words).has_nan());
}

TEST(Superaccumulator, DenormalsAccumulate) {
  const double tiny = 5e-324;
  Superaccumulator acc;
  for (int i = 0; i < 16; ++i) acc.add(tiny);
  EXPECT_EQ(acc.round(), 16 * tiny);
}

TEST(Superaccumulator, HugeAndTinyTogether) {
  Superaccumulator acc;
  acc.add(1e300);
  acc.add(5e-324);
  acc.add(-1e300);
  EXPECT_EQ(acc.round(), 5e-324);
}

TEST(Superaccumulator, InfAndNanSemantics) {
  Superaccumulator pos;
  pos.add(kInf);
  pos.add(1.0);
  EXPECT_EQ(pos.round(), kInf);

  Superaccumulator neg;
  neg.add(-kInf);
  EXPECT_EQ(neg.round(), -kInf);

  Superaccumulator both;
  both.add(kInf);
  both.add(-kInf);
  EXPECT_TRUE(std::isnan(both.round()));

  Superaccumulator nan;
  nan.add(kNaN);
  nan.add(2.0);
  EXPECT_TRUE(std::isnan(nan.round()));
}

TEST(Superaccumulator, MergeEqualsBulkAdd) {
  const auto v = random_values(5000, -100.0, 100.0, 13);
  Superaccumulator whole;
  whole.add(v);

  Superaccumulator a, b;
  a.add(std::span<const double>(v).first(1234));
  b.add(std::span<const double>(v).subspan(1234));
  a.add(b);

  EXPECT_TRUE(a.equals(whole));
  EXPECT_EQ(a.round(), whole.round());
}

TEST(Superaccumulator, RoundIsFaithfulAgainstKlein) {
  const auto v = random_values(50000, -1e6, 1e6, 17);
  const double super = Superaccumulator::sum(v);
  const double klein = sum_klein(v);
  // Klein's result is itself within a couple of ulps of exact; the
  // superaccumulator must land within 1 ulp of it.
  EXPECT_LE(ulp_distance(super, klein), 2);
}

// Property sweep: permutation invariance across sizes and distributions -
// the defining reproducibility property.
struct PermutationCase {
  std::size_t size;
  double lo;
  double hi;
};

class SuperaccumulatorPermutation
    : public ::testing::TestWithParam<PermutationCase> {};

TEST_P(SuperaccumulatorPermutation, BitwiseInvariantUnderShuffles) {
  const auto& param = GetParam();
  auto v = random_values(param.size, param.lo, param.hi, param.size);
  const double reference = Superaccumulator::sum(v);

  util::Xoshiro256pp rng(999);
  for (int trial = 0; trial < 10; ++trial) {
    util::shuffle(v, rng);
    EXPECT_TRUE(bitwise_equal(Superaccumulator::sum(v), reference));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRanges, SuperaccumulatorPermutation,
    ::testing::Values(PermutationCase{10, -1.0, 1.0},
                      PermutationCase{100, 0.0, 10.0},
                      PermutationCase{1000, -1e10, 1e10},
                      PermutationCase{10000, -1e-10, 1e-10},
                      PermutationCase{4096, -1e100, 1e100}));

// ----------------------------------------------------------- binned sum --

TEST(BinnedSum, ExactForSmallIntegers) {
  std::vector<double> v;
  for (int i = 1; i <= 10000; ++i) v.push_back(i);
  EXPECT_EQ(BinnedSum::sum(v), 50005000.0);
}

TEST(BinnedSum, EmptyZerosAndSignedZeros) {
  const std::vector<double> empty;
  EXPECT_EQ(BinnedSum::sum(empty), 0.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_EQ(BinnedSum::sum(zeros), 0.0);
  const std::vector<double> neg_zeros{-0.0, -0.0};
  EXPECT_TRUE(is_negative_zero(BinnedSum::sum(neg_zeros)));
}

TEST(BinnedSum, ExceptionalValues) {
  const std::vector<double> with_nan{1.0, kNaN};
  EXPECT_TRUE(std::isnan(BinnedSum::sum(with_nan)));
  const std::vector<double> with_inf{1.0, kInf};
  EXPECT_EQ(BinnedSum::sum(with_inf), kInf);
  const std::vector<double> with_neg_inf{-kInf, 1.0};
  EXPECT_EQ(BinnedSum::sum(with_neg_inf), -kInf);
  const std::vector<double> both_inf{kInf, -kInf};
  EXPECT_TRUE(std::isnan(BinnedSum::sum(both_inf)));
}

TEST(BinnedSum, FaithfulAgainstSuperaccumulator) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto v = random_values(50000, -1e6, 1e6, seed);
    const double exact = Superaccumulator::sum(v);
    EXPECT_LE(ulp_distance(BinnedSum::sum(v), exact), 2) << "seed " << seed;
  }
}

TEST(BinnedSum, NearOverflowAnchorsFallBackSafely) {
  const std::vector<double> v{1e308, -1e308, 3.0, 4.0};
  EXPECT_EQ(BinnedSum::sum(v), 7.0);
}

TEST(BinnedSum, DistributedBinsMergeExactly) {
  const auto v = random_values(20000, -1e3, 1e3, 4);
  double anchor = 0.0;
  for (const double x : v) anchor = std::max(anchor, std::fabs(x));

  const auto whole = BinnedSum::bin(v, anchor);
  auto left = BinnedSum::bin(std::span<const double>(v).first(7777), anchor);
  const auto right =
      BinnedSum::bin(std::span<const double>(v).subspan(7777), anchor);
  left.merge(right);
  for (int k = 0; k < BinnedSum::kFolds; ++k) {
    EXPECT_TRUE(bitwise_equal(left.total[k], whole.total[k]));
  }
  EXPECT_TRUE(
      bitwise_equal(BinnedSum::round(left), BinnedSum::round(whole)));
}

class BinnedSumPermutation : public ::testing::TestWithParam<PermutationCase> {
};

TEST_P(BinnedSumPermutation, BitwiseInvariantUnderShuffles) {
  const auto& param = GetParam();
  auto v = random_values(param.size, param.lo, param.hi, param.size + 99);
  const double reference = BinnedSum::sum(v);

  util::Xoshiro256pp rng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    util::shuffle(v, rng);
    EXPECT_TRUE(bitwise_equal(BinnedSum::sum(v), reference));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRanges, BinnedSumPermutation,
    ::testing::Values(PermutationCase{10, -1.0, 1.0},
                      PermutationCase{1000, 0.0, 10.0},
                      PermutationCase{10000, -1e10, 1e10},
                      PermutationCase{4096, -1e-10, 1e-10}));

// ---------------------------------------------------------- registry --

TEST(AlgorithmRegistry, AllBuiltinsRegistered) {
  const auto names = AlgorithmRegistry::instance().names();
  // >= so that a linked-in extension algorithm does not fail the suite.
  ASSERT_GE(names.size(), kNumAlgorithms);
  for (const char* expected :
       {"serial", "pairwise", "vectorized", "kahan", "neumaier", "klein",
        "double_double", "binned", "superaccumulator"}) {
    EXPECT_NE(AlgorithmRegistry::instance().find(expected), nullptr)
        << expected;
  }
}

TEST(AlgorithmRegistry, LookupByNameAndIdAgree) {
  for (const auto& entry : AlgorithmRegistry::instance().entries()) {
    EXPECT_EQ(AlgorithmRegistry::instance().at(entry.name).id, entry.id);
    EXPECT_EQ(AlgorithmRegistry::instance().at(entry.id).name, entry.name);
    EXPECT_EQ(entry.name, to_string(entry.id));
  }
}

TEST(AlgorithmRegistry, UnknownNameThrowsWithCatalogue) {
  try {
    AlgorithmRegistry::instance().at("kahansum");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    // The error names the registered algorithms so CLI typos self-explain.
    EXPECT_NE(std::string(error.what()).find("superaccumulator"),
              std::string::npos);
  }
}

TEST(AlgorithmRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(AlgorithmRegistry::instance().register_algorithm(
                   {"serial", AlgorithmId::kSerial, "dup", {}, nullptr}),
               std::invalid_argument);
}

TEST(AlgorithmRegistry, OneShotMatchesHistoricFreeFunctions) {
  const auto v = random_values(10000, -1e6, 1e6, 77);
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("serial", v),
                            sum_serial(v)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("pairwise", v),
                            sum_pairwise(v, 32)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("kahan", v),
                            sum_kahan(v)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("neumaier", v),
                            sum_neumaier(v)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("klein", v),
                            sum_klein(v)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("double_double", v),
                            sum_double_double(v)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("vectorized", v),
                            sum_vectorized(v, 4)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("binned", v),
                            BinnedSum::sum(v)));
  EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum("superaccumulator", v),
                            Superaccumulator::sum(v)));
}

// The property test of the registry contract: every registered algorithm
// is deterministic for a fixed input order; the ones declaring
// permutation invariance are bitwise invariant under shuffles, and the
// ones declaring exact merges are bitwise independent of chunking.
TEST(AlgorithmRegistry, EveryEntryHonoursItsDeclaredContract) {
  const auto v = random_values(20000, -1e8, 1e8, 321);
  for (const auto& entry : AlgorithmRegistry::instance().entries()) {
    SCOPED_TRACE(entry.name);
    EXPECT_TRUE(entry.traits.deterministic_fixed_order);
    // The registry entry and the tag agree on the declared contract.
    const AlgorithmTraits& declared = traits_of(entry.id);
    EXPECT_EQ(declared.permutation_invariant,
              entry.traits.permutation_invariant);
    EXPECT_EQ(declared.exact_merge, entry.traits.exact_merge);

    // Deterministic for fixed order: one-shot and streaming evaluations
    // both reproduce themselves bitwise.
    const double one_shot = entry.reduce(v);
    EXPECT_TRUE(bitwise_equal(entry.reduce(v), one_shot));
    const double streamed = visit_algorithm(entry.id, [&](auto tag) {
      typename decltype(tag)::template accumulator_t<double> acc;
      for (const double x : v) acc.add(x);
      return acc.result();
    });
    const double streamed_again = visit_algorithm(entry.id, [&](auto tag) {
      typename decltype(tag)::template accumulator_t<double> acc;
      for (const double x : v) acc.add(x);
      return acc.result();
    });
    EXPECT_TRUE(bitwise_equal(streamed, streamed_again));

    // Accuracy sanity: within a loose relative band of the exact sum.
    const double exact = Superaccumulator::sum(v);
    EXPECT_NEAR(one_shot, exact, 1e-6 * std::fabs(exact) + 1e-6);

    // Permutation invariance exactly as declared.
    auto copy = v;
    util::Xoshiro256pp rng(entry.name.size() * 7919 + 3);
    bool any_different = false;
    for (int trial = 0; trial < 8; ++trial) {
      util::shuffle(copy, rng);
      if (!bitwise_equal(entry.reduce(copy), one_shot)) any_different = true;
    }
    if (entry.traits.permutation_invariant) {
      EXPECT_FALSE(any_different)
          << "declared permutation-invariant but a shuffle moved the bits";
    } else if (entry.id == AlgorithmId::kSerial ||
               entry.id == AlgorithmId::kPairwise ||
               entry.id == AlgorithmId::kVectorized) {
      // The first-order algorithms visibly wobble on this data. The
      // compensated family is *declared* order-sensitive but often rounds
      // correctly on benign inputs, so no converse assertion for them.
      EXPECT_TRUE(any_different)
          << "declared order-sensitive but 8 shuffles never moved the bits";
    }

    // Exact merge: chunked accumulators merged in order reproduce the
    // one-shot result bitwise for any chunking.
    if (entry.traits.exact_merge) {
      const double chunked = visit_algorithm(entry.id, [&](auto tag) {
        typename decltype(tag)::template accumulator_t<double> total;
        for (std::size_t begin = 0; begin < v.size(); begin += 1237) {
          typename decltype(tag)::template accumulator_t<double> part;
          part.add(std::span<const double>(v).subspan(
              begin, std::min<std::size_t>(1237, v.size() - begin)));
          total.merge(part);
        }
        return total.result();
      });
      EXPECT_TRUE(bitwise_equal(chunked, one_shot));
    }
  }
}

TEST(AlgorithmRegistry, StreamingAccumulatorsWorkInFloat) {
  util::Xoshiro256pp rng(9);
  const util::UniformReal dist(-100.0, 100.0);
  std::vector<float> v(5000);
  double exact = 0.0;
  for (auto& x : v) {
    x = static_cast<float>(dist(rng));
    exact += static_cast<double>(x);
  }
  for (const auto& entry : AlgorithmRegistry::instance().entries()) {
    SCOPED_TRACE(entry.name);
    const float value = visit_algorithm(entry.id, [&](auto tag) {
      typename decltype(tag)::template accumulator_t<float> acc;
      acc.add(std::span<const float>(v));
      return acc.result();
    });
    EXPECT_NEAR(static_cast<double>(value), exact,
                1e-2 * std::fabs(exact) + 1e-2);
  }
}

// ---------------------------------------------------- bf16 & dtype axis --

TEST(Bf16, RoundTripThroughFloatIsExact) {
  // Every non-NaN bf16 bit pattern survives bf16 -> float -> bf16
  // untouched: the widening is exact and the RNE rounding of an exact
  // value is the identity. (NaN payloads are quieted, tested below.)
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    if ((bits & 0x7FFFu) > 0x7F80u) continue;  // NaN patterns
    const bf16 v = bf16::from_bits(static_cast<std::uint16_t>(bits));
    EXPECT_EQ(bf16(static_cast<float>(v)).to_bits(), bits) << bits;
  }
}

TEST(Bf16, RoundsToNearestEvenOnTies) {
  // Spacing at 1.0 is 2^-7. 1 + 2^-8 sits exactly between 1.0 (even
  // significand) and 1 + 2^-7 (odd): ties go to 1.0. 1 + 3*2^-8 sits
  // between 1 + 2^-7 (odd) and 1 + 2^-6 (even): ties go up.
  EXPECT_EQ(bf16(1.0f + std::ldexp(1.0f, -8)).to_bits(), 0x3F80u);
  EXPECT_EQ(bf16(1.0f + 3.0f * std::ldexp(1.0f, -8)).to_bits(), 0x3F82u);
  // Just below / above the tie round to the nearer neighbour.
  EXPECT_EQ(bf16(std::nextafter(1.0f + std::ldexp(1.0f, -8), 0.0f)).to_bits(),
            0x3F80u);
  EXPECT_EQ(bf16(std::nextafter(1.0f + std::ldexp(1.0f, -8), 2.0f)).to_bits(),
            0x3F81u);
}

TEST(Bf16, SubnormalsRoundExactly) {
  // bf16 shares binary32's exponent range, so float subnormals land on
  // bf16 subnormals through the same carry chain. 2^-133 is the smallest
  // bf16 subnormal.
  const float tiny = std::ldexp(1.0f, -133);
  EXPECT_EQ(bf16(tiny).to_bits(), 0x0001u);
  EXPECT_EQ(static_cast<float>(bf16(tiny)), tiny);
  EXPECT_EQ(bf16(std::ldexp(1.0f, -126)).to_bits(), 0x0080u);  // min normal
  // Halfway between 0 and the smallest subnormal ties to even (zero).
  EXPECT_EQ(bf16(std::ldexp(1.0f, -134)).to_bits(), 0x0000u);
}

TEST(Bf16, OverflowInfNanAndSignedZero) {
  // FLT_MAX exceeds the bf16 RNE overflow threshold (2 - 2^-8) * 2^127.
  EXPECT_TRUE(std::isinf(
      static_cast<float>(bf16(std::numeric_limits<float>::max()))));
  // Infinities and their signs are preserved exactly.
  EXPECT_EQ(bf16(std::numeric_limits<float>::infinity()).to_bits(), 0x7F80u);
  EXPECT_EQ(bf16(-std::numeric_limits<float>::infinity()).to_bits(), 0xFF80u);
  // The largest finite bf16 is preserved, not rounded to inf.
  EXPECT_EQ(bf16(static_cast<float>(bf16::from_bits(0x7F7Fu))).to_bits(),
            0x7F7Fu);
  // NaN stays NaN (quieted), never an infinity.
  EXPECT_TRUE(std::isnan(static_cast<float>(bf16(std::nanf("")))));
  // Signed zero keeps its sign bit.
  EXPECT_EQ(bf16(-0.0f).to_bits(), 0x8000u);
  EXPECT_EQ(bf16(0.0f).to_bits(), 0x0000u);
  EXPECT_EQ(ulp_distance_bf16(bf16(-0.0f), bf16(0.0f)), 0);
}

TEST(Dtype, ParseToStringAndErrors) {
  EXPECT_EQ(parse_dtype("f64"), Dtype::kF64);
  EXPECT_EQ(parse_dtype("double"), Dtype::kF64);
  EXPECT_EQ(parse_dtype("f32"), Dtype::kF32);
  EXPECT_EQ(parse_dtype("float"), Dtype::kF32);
  EXPECT_EQ(parse_dtype("bf16"), Dtype::kBf16);
  EXPECT_EQ(parse_dtype("native"), Dtype::kNative);
  for (const Dtype d :
       {Dtype::kNative, Dtype::kF64, Dtype::kF32, Dtype::kBf16}) {
    EXPECT_EQ(parse_dtype(to_string(d)), d);
  }
  try {
    parse_dtype("fp8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    // The error lists the valid dtype keys.
    EXPECT_NE(std::string(error.what()).find("bf16"), std::string::npos);
  }
}

TEST(ReductionSpec, GrammarRoundTripsAndDefaults) {
  const ReductionSpec bare = parse_reduction_spec("kahan");
  EXPECT_EQ(bare.algorithm, AlgorithmId::kKahan);
  EXPECT_TRUE(bare.native());
  EXPECT_EQ(to_string(bare), "kahan");

  const ReductionSpec mixed = parse_reduction_spec("kahan@bf16:f32");
  EXPECT_EQ(mixed.algorithm, AlgorithmId::kKahan);
  EXPECT_EQ(mixed.storage, Dtype::kBf16);
  EXPECT_EQ(mixed.accumulate, Dtype::kF32);
  EXPECT_EQ(parse_reduction_spec(to_string(mixed)), mixed);

  // Omitted accumulate dtype defaults to the storage dtype.
  const ReductionSpec pure = parse_reduction_spec("serial@bf16");
  EXPECT_EQ(pure.storage, Dtype::kBf16);
  EXPECT_EQ(pure.accumulate, Dtype::kBf16);

  // kNative resolves against the calling kernel's element type.
  const ReductionSpec resolved = bare.resolved(Dtype::kF32);
  EXPECT_EQ(resolved.storage, Dtype::kF32);
  EXPECT_EQ(resolved.accumulate, Dtype::kF32);

  // The implicit AlgorithmId shim means what it always meant.
  const ReductionSpec shimmed = AlgorithmId::kKlein;
  EXPECT_EQ(shimmed, ReductionSpec(AlgorithmId::kKlein, Dtype::kNative,
                                   Dtype::kNative));
}

TEST(ReductionSpec, UnknownKeysThrowListingCatalogues) {
  try {
    parse_reduction_spec("kahansum@bf16:f32");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("superaccumulator"),
              std::string::npos);
  }
  try {
    parse_reduction_spec("kahan@fp8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("bf16"), std::string::npos);
  }
  try {
    parse_reduction_spec("kahan@bf16:int8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("f32"), std::string::npos);
  }
}

TEST(ReductionSpec, NativeSpecIsBitwiseTheScalarApi) {
  const auto v = random_values(10000, -1e6, 1e6, 404);
  for (const auto& entry : AlgorithmRegistry::instance().entries()) {
    SCOPED_TRACE(entry.name);
    const ReductionSpec spec{entry.id};
    EXPECT_TRUE(bitwise_equal(reduce(spec, std::span<const double>(v)),
                              reduce(entry.id, std::span<const double>(v))));
    EXPECT_TRUE(bitwise_equal(AlgorithmRegistry::sum(entry.name, v),
                              AlgorithmRegistry::sum(entry.id, v)));
  }
}

TEST(ReductionSpec, Bf16StorageMatchesReferenceFp32Accumulate) {
  // The satellite property: `reduce` over bf16 storage must equal the
  // hand-built reference - quantize every addend to bf16, stream the
  // exact widened values through the algorithm's fp32 accumulator.
  const auto v = random_values(5000, -100.0, 100.0, 505);
  for (const auto& entry : AlgorithmRegistry::instance().entries()) {
    SCOPED_TRACE(entry.name);
    const ReductionSpec spec{entry.id, Dtype::kBf16, Dtype::kF32};
    const double via_spec = reduce(spec, std::span<const double>(v));
    const float reference = visit_algorithm(entry.id, [&](auto tag) {
      typename decltype(tag)::template accumulator_t<float> acc;
      for (const double x : v) {
        acc.add(static_cast<float>(bf16(static_cast<float>(x))));
      }
      return acc.result();
    });
    EXPECT_TRUE(bitwise_equal(via_spec, static_cast<double>(reference)));

    // And the registry's dedicated bf16 surface agrees with the same
    // reference on a bf16 buffer.
    std::vector<bf16> quantized;
    quantized.reserve(v.size());
    for (const double x : v) quantized.emplace_back(static_cast<float>(x));
    ASSERT_NE(entry.reduce_bf16_f32, nullptr);
    EXPECT_TRUE(bitwise_equal32(
        entry.reduce_bf16_f32(std::span<const bf16>(quantized)), reference));
  }
}

TEST(AlgorithmRegistry, PerDtypeSurfacesRegistered) {
  util::Xoshiro256pp rng(11);
  const util::UniformReal dist(-50.0, 50.0);
  std::vector<float> v(4096);
  for (auto& x : v) x = static_cast<float>(dist(rng));
  for (const auto& entry : AlgorithmRegistry::instance().entries()) {
    SCOPED_TRACE(entry.name);
    ASSERT_NE(entry.reduce, nullptr);
    ASSERT_NE(entry.reduce_f32, nullptr);
    ASSERT_NE(entry.reduce_bf16_f32, nullptr);
    // The f32 surface is the streaming float accumulator - the same
    // value reduce<float>(id) computes.
    EXPECT_TRUE(bitwise_equal32(entry.reduce_f32(std::span<const float>(v)),
                                reduce<float>(entry.id, v)));
    // Dtype axes do not change the declared contract.
    EXPECT_EQ(traits_of(ReductionSpec{entry.id, Dtype::kBf16, Dtype::kF32})
                  .exact_merge,
              entry.traits.exact_merge);
  }
}

TEST(ReductionSpec, Bf16AccumulateDriftsFurtherThanMixedPrecision) {
  // The motivating inequality of the mixed-precision setting: on a long
  // ill-scaled stream, bf16 storage with fp32 accumulate stays close to
  // the exact quantized sum, while accumulating *in* bf16 drifts.
  const auto v = random_values(20000, 0.0, 1.0, 606);
  const double exact_quantized =
      reduce(ReductionSpec{AlgorithmId::kSuperaccumulator, Dtype::kBf16,
                           Dtype::kF64},
             std::span<const double>(v));
  const double mixed = reduce(
      ReductionSpec{AlgorithmId::kSerial, Dtype::kBf16, Dtype::kF32},
      std::span<const double>(v));
  const double pure = reduce(
      ReductionSpec{AlgorithmId::kSerial, Dtype::kBf16, Dtype::kBf16},
      std::span<const double>(v));
  EXPECT_LT(std::fabs(mixed - exact_quantized),
            std::fabs(pure - exact_quantized));
  // bf16's 8-bit significand saturates a serial accumulation once the
  // running sum dwarfs the addends; fp32 accumulation does not.
  EXPECT_GT(std::fabs(pure - exact_quantized), 1.0);
}

// ------------------------------------------------- SIMD lane blocking --

// Restores the force-scalar override (and therefore the dispatch tier)
// however a test exits.
struct ForceScalarGuard {
  ~ForceScalarGuard() { set_simd_force_scalar(std::nullopt); }
};

TEST(Simd, SupportAndForceScalarRoundTrip) {
  ForceScalarGuard guard;
  const SimdSupport& support = simd_support();
  // AVX-512F implies AVX2 on every real CPU; the detector preserves it.
  if (support.avx512f) EXPECT_TRUE(support.avx2);
  const std::string isa = simd_active_isa();
  EXPECT_TRUE(isa == "avx512f" || isa == "avx2" || isa == "scalar");

  set_simd_force_scalar(true);
  EXPECT_TRUE(simd_force_scalar());
  EXPECT_STREQ(simd_active_isa(), "scalar");
  set_simd_force_scalar(false);
  EXPECT_FALSE(simd_force_scalar());
  set_simd_force_scalar(std::nullopt);  // back to the environment's answer
  EXPECT_TRUE(isa == simd_active_isa());
}

// The certification property behind the whole tier: for every lane
// count, the intrinsics dispatch and the portable scalar lane-emulation
// are the SAME re-association, bit for bit - including when the stream
// arrives in ragged pieces that leave the round-robin cursor mid-phase.
template <typename Base, std::size_t L, typename T>
void expect_intrinsics_match_emulation(std::span<const T> values) {
  ForceScalarGuard guard;
  // Reference: the always-compiled element loop (force-scalar on), fed
  // the same ragged pieces.
  const std::vector<std::size_t> cuts{0, 1, L - 1, L, 3 * L + 1,
                                      values.size()};
  const auto run = [&](bool force) {
    set_simd_force_scalar(force);
    LaneBlockedAccumulator<Base, L> acc;
    std::size_t begin = 0;
    for (const std::size_t cut : cuts) {
      const std::size_t end = std::min(values.size(), std::max(cut, begin));
      acc.add(values.subspan(begin, end - begin));
      begin = end;
    }
    acc.add(values.subspan(begin));
    return acc.result();
  };
  const auto emulated = run(true);
  const auto dispatched = run(false);
  EXPECT_EQ(to_bits(static_cast<double>(emulated)),
            to_bits(static_cast<double>(dispatched)));
}

TEST(Simd, IntrinsicsMatchLaneEmulationBitwise) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000},
                              std::size_t{4097}}) {
    SCOPED_TRACE(n);
    const auto v = random_values(n, -1e12, 1e12, 0xC0FFEE + n);
    std::vector<float> vf(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      vf[i] = static_cast<float>(v[i]);
    }
    const std::span<const double> d(v);
    const std::span<const float> f(vf);

    expect_intrinsics_match_emulation<SerialAccumulator<double>, 4>(d);
    expect_intrinsics_match_emulation<SerialAccumulator<double>, 8>(d);
    expect_intrinsics_match_emulation<SerialAccumulator<double>, 16>(d);
    expect_intrinsics_match_emulation<KahanAccumulator<double>, 4>(d);
    expect_intrinsics_match_emulation<KahanAccumulator<double>, 8>(d);
    expect_intrinsics_match_emulation<KahanAccumulator<double>, 16>(d);
    expect_intrinsics_match_emulation<NeumaierAccumulator<double>, 4>(d);
    expect_intrinsics_match_emulation<NeumaierAccumulator<double>, 8>(d);
    expect_intrinsics_match_emulation<KleinAccumulator<double>, 4>(d);
    expect_intrinsics_match_emulation<KleinAccumulator<double>, 8>(d);
    expect_intrinsics_match_emulation<KleinAccumulator<double>, 16>(d);
    expect_intrinsics_match_emulation<PairwiseAccumulator<double>, 4>(d);
    expect_intrinsics_match_emulation<PairwiseAccumulator<double>, 8>(d);
    expect_intrinsics_match_emulation<SerialAccumulator<float>, 8>(f);
    expect_intrinsics_match_emulation<KahanAccumulator<float>, 8>(f);
    expect_intrinsics_match_emulation<KahanAccumulator<float>, 16>(f);
    expect_intrinsics_match_emulation<NeumaierAccumulator<float>, 16>(f);
    expect_intrinsics_match_emulation<KleinAccumulator<float>, 8>(f);
    expect_intrinsics_match_emulation<PairwiseAccumulator<float>, 16>(f);
  }
}

TEST(Simd, LaneEmulationMatchesHandFoldedLanes) {
  // Pin the reference re-association itself: element i goes to lane
  // i mod L, lanes fold in ascending index order at result().
  const auto v = random_values(1003, -1e6, 1e6, 77);
  constexpr std::size_t kL = 4;
  ForceScalarGuard guard;
  set_simd_force_scalar(true);
  LaneBlockedAccumulator<KahanAccumulator<double>, kL> acc;
  acc.add(std::span<const double>(v));

  std::array<KahanAccumulator<double>, kL> lanes;
  for (std::size_t i = 0; i < v.size(); ++i) lanes[i % kL].add(v[i]);
  KahanAccumulator<double> total = lanes[0];
  for (std::size_t l = 1; l < kL; ++l) total.merge(lanes[l]);
  EXPECT_TRUE(bitwise_equal(acc.result(), total.result()));
}

TEST(Simd, EverySpecInTheLaneGridRunsOnThisHost) {
  // The portability half of the certificate: every registry algorithm
  // composed with every lane count (and a dtype axis for good measure)
  // evaluates on ANY host - intrinsics where the CPU has them, the
  // emulation elsewhere - with force-scalar toggling never moving bits.
  ForceScalarGuard guard;
  const auto v = random_values(2048, -1e3, 1e3, 88);
  const std::span<const double> values(v);
  for (const auto& entry : AlgorithmRegistry::instance().entries()) {
    for (const std::size_t lanes : kSimdLaneCounts) {
      SCOPED_TRACE(entry.name + "@simd" + std::to_string(lanes));
      const ReductionSpec spec{entry.id, Dtype::kNative, Dtype::kNative,
                               static_cast<std::uint8_t>(lanes)};
      set_simd_force_scalar(false);
      const double fast = reduce(spec, values);
      set_simd_force_scalar(true);
      const double emulated = reduce(spec, values);
      EXPECT_TRUE(bitwise_equal(fast, emulated));

      const ReductionSpec mixed{entry.id, Dtype::kBf16, Dtype::kF32,
                                static_cast<std::uint8_t>(lanes)};
      set_simd_force_scalar(false);
      const double fast_mixed = reduce(mixed, values);
      set_simd_force_scalar(true);
      const double emulated_mixed = reduce(mixed, values);
      EXPECT_TRUE(bitwise_equal(fast_mixed, emulated_mixed));
    }
  }
}

TEST(Simd, Simd1IsBitwiseTheBaseScalar) {
  // @simd1 is the base algorithm by construction: the grammar accepts
  // it, the spec normalises back to the bare name, and the bits agree.
  const ReductionSpec one = parse_reduction_spec("kahan@simd1");
  EXPECT_EQ(one.lanes, 1);
  EXPECT_FALSE(one.lane_blocked());
  EXPECT_EQ(one, parse_reduction_spec("kahan"));
  EXPECT_EQ(to_string(one), "kahan");

  const auto v = random_values(4096, -1e9, 1e9, 99);
  EXPECT_TRUE(bitwise_equal(reduce(one, std::span<const double>(v)),
                            reduce(AlgorithmId::kKahan,
                                   std::span<const double>(v))));
}

TEST(Simd, GrammarRoundTripsWithLanes) {
  const ReductionSpec full = parse_reduction_spec("kahan@simd8:bf16:f32");
  EXPECT_EQ(full.algorithm, AlgorithmId::kKahan);
  EXPECT_EQ(full.lanes, 8);
  EXPECT_EQ(full.storage, Dtype::kBf16);
  EXPECT_EQ(full.accumulate, Dtype::kF32);
  EXPECT_EQ(to_string(full), "kahan@simd8:bf16:f32");
  EXPECT_EQ(parse_reduction_spec(to_string(full)), full);

  const ReductionSpec bare = parse_reduction_spec("serial@simd4");
  EXPECT_EQ(bare.lanes, 4);
  EXPECT_TRUE(bare.native());
  EXPECT_EQ(to_string(bare), "serial@simd4");
  EXPECT_EQ(parse_reduction_spec(to_string(bare)), bare);

  // with_lanes is the programmatic spelling of the same axis.
  EXPECT_EQ(parse_reduction_spec("klein").with_lanes(16),
            parse_reduction_spec("klein@simd16"));
}

TEST(Simd, UnsupportedLaneTokensThrowListingTheValidSet) {
  for (const char* bad : {"kahan@simd3", "kahan@simd0", "kahan@simd32",
                          "kahan@simdx", "kahan@simd"}) {
    SCOPED_TRACE(bad);
    try {
      parse_reduction_spec(bad);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find('4'), std::string::npos);
      EXPECT_NE(what.find("16"), std::string::npos);
    }
  }
  EXPECT_THROW(
      visit_lane_algorithm(AlgorithmId::kKahan, 3, [](auto) { return 0; }),
      std::invalid_argument);
}

TEST(Simd, RegistryCatalogueErrorMentionsTheLaneAxis) {
  try {
    AlgorithmRegistry::instance().at("no-such-algorithm");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("@simd"), std::string::npos);
  }
}

TEST(Simd, AddI64MatchesScalarLoop) {
  ForceScalarGuard guard;
  std::vector<std::int64_t> a(137), b(137), reference;
  util::Xoshiro256pp rng(3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int64_t>(rng()) >> 8;
    b[i] = static_cast<std::int64_t>(rng()) >> 8;
  }
  reference = a;
  for (std::size_t i = 0; i < a.size(); ++i) reference[i] += b[i];
  set_simd_force_scalar(false);
  simd_add_i64(a.data(), b.data(), a.size());
  EXPECT_EQ(a, reference);
}

TEST(Superaccumulator, AddWireMatchesDeserializeAdd) {
  const auto v = random_values(512, -1e30, 1e30, 1234);
  Superaccumulator incoming;
  incoming.add(std::span<const double>(v).subspan(0, 256));
  std::vector<std::uint64_t> words(Superaccumulator::kWireWords);
  incoming.serialize(words);

  Superaccumulator via_wire, via_deserialize;
  via_wire.add(std::span<const double>(v).subspan(256));
  via_deserialize.add(std::span<const double>(v).subspan(256));
  via_wire.add_wire(words);
  via_deserialize.add(Superaccumulator::deserialize(words));
  EXPECT_TRUE(via_wire.equals(via_deserialize));
  EXPECT_TRUE(bitwise_equal(via_wire.round(), via_deserialize.round()));

  std::vector<std::uint64_t> wrong(Superaccumulator::kWireWords - 1);
  EXPECT_THROW(via_wire.add_wire(wrong), std::invalid_argument);
}

// Contrast property: the serial sum is NOT permutation invariant on the
// same data (this is the premise of the whole paper).
TEST(Summation, SerialSumIsOrderSensitive) {
  auto v = random_values(100000, -1e10, 1e10, 23);
  const double first = sum_serial(v);
  util::Xoshiro256pp rng(5);
  bool any_different = false;
  for (int trial = 0; trial < 10 && !any_different; ++trial) {
    util::shuffle(v, rng);
    any_different = !bitwise_equal(sum_serial(v), first);
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace fpna::fp
