#include "fpna/reduce/block_sum.hpp"

#include <stdexcept>

namespace fpna::reduce {

double tree_sum(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::size_t m = 1;
  while (m < values.size()) m *= 2;
  std::vector<double> v(m, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) v[i] = values[i];
  for (std::size_t offset = m / 2; offset > 0; offset /= 2) {
    for (std::size_t i = 0; i < offset; ++i) v[i] += v[i + offset];
  }
  return v[0];
}

double block_partial_sum(std::span<const double> data, std::size_t block_id,
                         std::size_t nt, std::size_t nb,
                         fp::AlgorithmId accumulator) {
  if (nt == 0 || nb == 0) {
    throw std::invalid_argument("block_partial_sum: empty launch");
  }
  const std::size_t stride = nt * nb;
  return fp::visit_algorithm(accumulator, [&](auto tag) -> double {
    using Acc = typename decltype(tag)::template accumulator_t<double>;
    std::vector<double> thread_vals(nt, 0.0);
    for (std::size_t t = 0; t < nt; ++t) {
      Acc acc;
      for (std::size_t i = block_id * nt + t; i < data.size(); i += stride) {
        acc.add(data[i]);
      }
      thread_vals[t] = acc.result();
    }
    return tree_sum(thread_vals);
  });
}

std::vector<double> all_block_partials(std::span<const double> data,
                                       std::size_t nt, std::size_t nb,
                                       fp::AlgorithmId accumulator) {
  std::vector<double> partials(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    partials[b] = block_partial_sum(data, b, nt, nb, accumulator);
  }
  return partials;
}

}  // namespace fpna::reduce
