#include "fpna/dl/trainer.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "fpna/dl/adam.hpp"
#include "fpna/obs/metrics.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/sim/cost_model.hpp"
#include "fpna/tensor/op_context.hpp"
#include "fpna/tensor/workload.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::dl {

TrainResult train(const Dataset& dataset, const TrainConfig& config,
                  core::RunContext& run) {
  if (config.epochs <= 0) throw std::invalid_argument("train: epochs <= 0");

  // The model must live at its final address before the optimizer takes
  // parameter pointers (moving it later would leave Adam updating
  // moved-from storage).
  TrainResult result{GraphSageModel(dataset.num_features(), config.hidden,
                                    dataset.num_classes, config.init_seed),
                     {},
                     {},
                     {},
                     0.0,
                     {},
                     0};

  const core::EvalContext ctx = config.eval_context(run);

  Adam optimizer(AdamConfig{.lr = config.lr});
  const auto parameters = result.model.parameters();
  for (const auto& [param, grad] : parameters) {
    optimizer.add_parameter(param, grad);
  }

  LossScaler scaler(config.loss_scale);
  obs::Gauge* const scale_gauge =
      ctx.recorder != nullptr && config.loss_scale.enabled()
          ? &ctx.recorder->metrics().gauge("dl.loss_scale.scale")
          : nullptr;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    GraphSageModel::ForwardCache cache;
    const Matrix log_probs =
        result.model.forward(dataset.features, dataset.graph, ctx, &cache);
    // The reported loss is never scaled; the scale multiplies only the
    // gradient (folded into the d_logits constant inside the loss
    // backward, the same fusion real mixed-precision trainers use).
    const float scale = scaler.scale();
    const LossResult loss = nll_loss_masked(
        log_probs, dataset.labels, dataset.train_mask, ctx, scale);
    result.epoch_losses.push_back(loss.loss);
    result.epoch_loss_scale.push_back(scale);
    if (scale_gauge != nullptr) scale_gauge->set(static_cast<double>(scale));

    result.model.zero_grad();
    result.model.backward(cache, loss.d_logits, dataset.graph, ctx);

    // Finiteness is checked on the *scaled* gradients (an overflowed
    // step must be caught before the unscale multiply can turn its infs
    // into NaNs); the scan is skipped entirely when scaling is off, so
    // the historic path stays untouched.
    bool grads_finite = true;
    if (config.loss_scale.enabled()) {
      for (const auto& pg : parameters) {
        if (!all_finite(*pg.second)) {
          grads_finite = false;
          break;
        }
      }
    }
    if (scaler.update(grads_finite)) {
      if (config.loss_scale.enabled()) {
        for (const auto& pg : parameters) {
          unscale_gradient(*pg.second, scale, config.accumulator);
        }
      }
      optimizer.step();
    } else if (ctx.recorder != nullptr) {
      ctx.recorder->metrics().counter("dl.loss_scale.skipped_steps")
          .increment();
    }

    if (config.snapshot_epochs) {
      result.epoch_weights.push_back(result.model.flattened_weights());
    }
  }
  result.skipped_steps = scaler.skipped_steps();

  result.final_weights = result.model.flattened_weights();

  // Accuracy evaluated with the deterministic forward so it reflects the
  // trained weights, not inference noise. The pool changes wall-clock
  // only, never bits.
  core::EvalContext det_ctx;
  det_ctx.accumulator = config.accumulator;
  det_ctx.pool = config.pool;
  const Matrix final_probs =
      result.model.forward(dataset.features, dataset.graph, det_ctx, nullptr);
  result.train_accuracy =
      accuracy(final_probs, dataset.labels, &dataset.train_mask);
  return result;
}

Matrix infer(const GraphSageModel& model, const Dataset& dataset,
             const tensor::OpContext& ctx) {
  return model.forward(dataset.features, dataset.graph, ctx, nullptr);
}

double accuracy(const Matrix& log_probs,
                const std::vector<std::int64_t>& labels,
                const std::vector<char>* mask) {
  const auto predictions = argmax_rows(log_probs);
  if (predictions.size() != labels.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  std::int64_t correct = 0;
  std::int64_t total = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (mask != nullptr && !(*mask)[i]) continue;
    ++total;
    if (predictions[i] == labels[i]) ++correct;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

double measured_dense_forward_us(const ModelDims& dims,
                                 const core::EvalContext& ctx, int reps) {
  // One measurement per (shape, pool width, reduction spec): the timing
  // tables query the same dims many times and must not re-run the
  // kernels on every call.
  const fp::ReductionSpec spec = ctx.reduction_in_effect();
  using Key = std::tuple<std::int64_t, std::int64_t, std::int64_t,
                         std::int64_t, std::size_t, fp::AlgorithmId,
                         fp::Dtype, fp::Dtype>;
  static std::mutex mutex;
  static std::map<Key, double> cache;
  const Key key{dims.nodes, dims.features, dims.hidden, dims.classes,
                ctx.pool != nullptr ? ctx.pool->size() : std::size_t{0},
                spec.algorithm, spec.storage, spec.accumulate};
  {
    const std::lock_guard lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }

  // Dense random operands (no exploitable sparsity) at the model's
  // shapes: one SAGEConv layer is two GEMMs per width.
  util::Xoshiro256pp rng(0x5eedfull);
  const auto x = tensor::random_uniform<float>(
      tensor::Shape{dims.nodes, dims.features}, -1.0, 1.0, rng);
  const auto w1 = tensor::random_uniform<float>(
      tensor::Shape{dims.features, dims.hidden}, -1.0, 1.0, rng);
  const auto a1 = tensor::random_uniform<float>(
      tensor::Shape{dims.nodes, dims.hidden}, -1.0, 1.0, rng);
  const auto w2 = tensor::random_uniform<float>(
      tensor::Shape{dims.hidden, dims.classes}, -1.0, 1.0, rng);

  // Timed through the run-wide monotonic clock (obs::ScopedTimer), so
  // these measurements and every traced span share one time base. With a
  // recorder attached the per-rep samples also land in its
  // "dl.trainer.dense_forward" timer stat.
  obs::TimerStat local_stat;
  obs::TimerStat* stat =
      ctx.recorder != nullptr
          ? &ctx.recorder->metrics().timer("dl.trainer.dense_forward")
          : &local_stat;
  double best_us = 0.0;
  for (int rep = 0; rep < std::max(1, reps); ++rep) {
    double us = 0.0;
    {
      const obs::ScopedTimer timer(stat);
      for (int branch = 0; branch < 2; ++branch) {  // self + neighbour
        (void)matmul(x, w1, ctx);
        (void)matmul(a1, w2, ctx);
      }
      us = static_cast<double>(timer.elapsed_ns()) * 1e-3;
    }
    if (rep == 0 || us < best_us) best_us = us;
  }
  // On a first-call race the first emplace wins and every caller returns
  // the cached value, keeping equal-argument calls idempotent.
  const std::lock_guard lock(mutex);
  return cache.emplace(key, best_us).first->second;
}

ModelDims ModelDims::of(const Dataset& dataset, std::int64_t hidden) {
  ModelDims dims;
  dims.nodes = dataset.num_nodes();
  dims.edges = dataset.graph.num_edges();
  dims.features = dataset.num_features();
  dims.hidden = hidden;
  dims.classes = dataset.num_classes;
  return dims;
}

double modeled_gpu_inference_ms(const sim::DeviceProfile& profile,
                                const ModelDims& dims, bool deterministic) {
  // Framework dispatch overhead: the PyTorch(-Geometric) stack issues
  // ~15 small kernels per SAGEConv layer; each costs roughly the launch
  // overhead plus scheduling slack. Calibrated to put the ND Cora forward
  // pass at the paper's ~2.17 ms.
  constexpr double kKernelsPerLayer = 15.0;
  constexpr double kDispatchUsPerKernel = 72.0;
  const double framework_us = 2.0 * kKernelsPerLayer * kDispatchUsPerKernel;

  // Aggregation kernels: one index_add per layer over edges x feature
  // contributions. Layer 1 operates at input width, layer 2 at hidden.
  const auto layer1 =
      static_cast<std::size_t>(dims.edges * dims.features);
  const auto layer2 = static_cast<std::size_t>(dims.edges * dims.hidden);
  double agg_us = 0.0;
  for (const auto n : {layer1, layer2}) {
    const auto t = sim::estimated_indexed_op_time_us(
        profile, sim::IndexedOpKind::kIndexAdd, n, deterministic);
    agg_us += t.value();  // index_add has both paths on every profile
  }

  // Dense matmuls are tensor-core work on the device. Instead of a
  // hand-modeled flop count over a magic throughput, the host *measures*
  // the real kernels at the model's shapes (the same code path the
  // trainer runs) and projects onto the device through the calibrated
  // host->device dense speedup. The measurement deliberately uses the
  // serial context: the speedup constant is calibrated as scalar-host vs
  // H100, so a pooled measurement here would double-count parallelism.
  // (Benches wanting the pooled host number call measured_dense_forward_us
  // with their own ctx.) Best-of-3 bounds one-off scheduler stalls, since
  // the first sample is cached for the process lifetime.
  constexpr double kHostToDeviceDenseSpeedup = 1.2e4;  // scalar host vs H100
  const double matmul_us =
      measured_dense_forward_us(dims, core::EvalContext{}, /*reps=*/3) /
      kHostToDeviceDenseSpeedup;

  return (framework_us + agg_us + matmul_us) * 1e-3;
}

double modeled_gpu_training_s(const sim::DeviceProfile& profile,
                              const ModelDims& dims, int epochs,
                              bool deterministic) {
  // One epoch = forward + backward + optimizer. The backward pass runs
  // the aggregation index_add twice more (gradient scatter per layer) and
  // roughly doubles the dense work; the calibrated multipliers reproduce
  // the paper's 0.48 s (D) vs 0.18 s (ND) for 10 Cora epochs.
  const double forward_ms = modeled_gpu_inference_ms(profile, dims, deterministic);
  const double factor = deterministic ? 12.2 : 8.3;
  return forward_ms * factor * static_cast<double>(epochs) * 1e-3;
}

double lpu_inference_ms(const sim::LpuDevice& lpu, const ModelDims& dims) {
  // The statically scheduled graph executes as one fused program; its
  // cycle count scales with the streamed work (edges x features dominate).
  const auto work = static_cast<std::size_t>(
      dims.edges * (dims.features + dims.hidden) +
      dims.nodes * (dims.features * dims.hidden + dims.hidden * dims.classes) /
          512);
  return lpu.op_time_us(sim::LpuOp::kSageConvInference, work) * 1e-3;
}

}  // namespace fpna::dl
