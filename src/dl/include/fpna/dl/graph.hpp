#pragma once
// Graph substrate for the GNN experiments (paper SV): edge-list storage
// with the in-degree information mean aggregation needs. Undirected
// graphs store both edge directions so message passing is symmetric.

#include <cstdint>
#include <vector>

namespace fpna::dl {

struct Graph {
  std::int64_t num_nodes = 0;
  /// Directed message edges: messages flow src[i] -> dst[i].
  std::vector<std::int64_t> edge_src;
  std::vector<std::int64_t> edge_dst;

  std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(edge_src.size());
  }

  /// Adds the directed edge u -> v (bounds-checked).
  void add_edge(std::int64_t u, std::int64_t v);

  /// Adds both directions.
  void add_undirected_edge(std::int64_t u, std::int64_t v) {
    add_edge(u, v);
    add_edge(v, u);
  }

  /// Number of incoming edges per node (the mean-aggregation denominator).
  std::vector<std::int64_t> in_degrees() const;

  /// Structural validation: all endpoints in range.
  bool valid() const noexcept;
};

}  // namespace fpna::dl
