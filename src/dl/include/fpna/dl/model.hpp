#pragma once
// The paper's evaluation model (SV.B): a two-layer GraphSAGE network
// (SAGEConv -> ReLU -> SAGEConv -> log_softmax) trained with masked NLL.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fpna/dl/dataset.hpp"
#include "fpna/dl/layers.hpp"
#include "fpna/tensor/op_context.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::dl {

class GraphSageModel {
 public:
  /// Weight initialisation is a pure function of `init_seed` (it must NOT
  /// depend on the run identity: the paper's point is that even with
  /// identical initialisation, ND kernels make every trained model
  /// unique).
  GraphSageModel(std::int64_t in_features, std::int64_t hidden,
                 std::int64_t num_classes, std::uint64_t init_seed);

  struct ForwardCache {
    SageConv::Cache conv1;
    Matrix z1;  // pre-activation of layer 1
    Matrix a1;  // relu(z1)
    SageConv::Cache conv2;
    Matrix logits;
  };

  /// Returns row-wise log-probabilities [nodes, classes].
  Matrix forward(const Matrix& features, const Graph& graph,
                 const tensor::OpContext& ctx,
                 ForwardCache* cache = nullptr) const;

  /// Backward from d_logits; fills the layers' gradient buffers. `sink`
  /// (if set) fires as each parameter's gradient becomes final, in
  /// *reverse layer order* (conv2's parameters before conv1's - gradients
  /// are produced output-to-input), the readiness signal a DDP-style
  /// trainer feeds into comm::BucketScheduler to overlap gradient
  /// reduction with the rest of this very backward pass.
  void backward(const ForwardCache& cache, const Matrix& d_logits,
                const Graph& graph, const tensor::OpContext& ctx,
                const GradientSink& sink = {});

  /// The parameters() indices in the order backward() finalises their
  /// gradients: {3, 4, 5, 0, 1, 2} (conv2 then conv1, each layer in
  /// self-weight, self-bias, neigh-weight production order). Pinned by a
  /// dl_test property against an instrumented backward.
  std::vector<std::size_t> backward_gradient_order() const;

  void zero_grad();

  /// All parameters flattened to doubles in a fixed order, the vector the
  /// weight-variability metrics (Vermv, Vc) are evaluated on.
  std::vector<double> flattened_weights() const;

  /// Parameter/gradient pairs in registration order (for the optimizer).
  std::vector<std::pair<Matrix*, Matrix*>> parameters();

  std::int64_t hidden() const noexcept { return conv1.out_features(); }
  std::int64_t num_classes() const noexcept { return conv2.out_features(); }

  SageConv conv1;
  SageConv conv2;
};

}  // namespace fpna::dl
