#include "fpna/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpna::stats {

void Welford::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const auto n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * (n - 1.0);
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Welford::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

double Welford::skewness() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const auto n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double Welford::excess_kurtosis() const noexcept {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const auto n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

Summary summarize(std::span<const double> samples) noexcept {
  Welford w;
  for (double x : samples) w.add(x);
  Summary s;
  s.count = w.count();
  s.mean = w.mean();
  s.stddev = w.stddev();
  s.min = w.min();
  s.max = w.max();
  s.skewness = w.skewness();
  s.excess_kurtosis = w.excess_kurtosis();
  return s;
}

double quantile(std::span<const double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> samples,
                              std::size_t resamples, double confidence,
                              util::Xoshiro256pp& rng) {
  if (samples.empty()) {
    throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    throw std::invalid_argument("bootstrap_mean_ci: confidence not in (0,1)");
  }
  const std::size_t n = samples.size();
  const util::UniformInt pick(0, static_cast<std::int64_t>(n) - 1);

  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += samples[static_cast<std::size_t>(pick(rng))];
    }
    means.push_back(sum / static_cast<double>(n));
  }

  BootstrapCi ci;
  const double alpha = 1.0 - confidence;
  ci.lower = quantile(means, alpha / 2.0);
  ci.upper = quantile(means, 1.0 - alpha / 2.0);
  double total = 0.0;
  for (double x : samples) total += x;
  ci.point = total / static_cast<double>(n);
  return ci;
}

}  // namespace fpna::stats
