#include "fpna/reduce/cpu_sum.hpp"

#include <mutex>
#include <numeric>
#include <vector>

#include "fpna/core/chunking.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/util/permutation.hpp"

namespace fpna::reduce {

namespace {

/// Fingerprint of one partial's current value (widened to double - exact
/// for every storage dtype in the registry). Read-only on the
/// accumulator: tracing can never move bits.
template <typename Acc>
std::uint64_t partial_bits(const Acc& partial) {
  obs::Fingerprint print;
  print.feed(static_cast<double>(partial.result()));
  return print.value();
}

/// Static chunk boundaries, OpenMP static-schedule style. The rule
/// itself lives in core/chunking.hpp (shared with collective's shard
/// split and pinned against ThreadPool::parallel_for by core_test);
/// cpu_sum's policy on top of it: never more chunks than elements, and
/// an empty input still yields one (empty) chunk.
std::vector<std::pair<std::size_t, std::size_t>> static_chunks(
    std::size_t n, std::size_t chunks) {
  if (chunks == 0) chunks = 1;
  chunks = std::min(chunks, n == 0 ? std::size_t{1} : n);
  return core::even_chunks(n, chunks);
}

/// Real-thread execution on ctx.pool: by default (and whenever
/// determinism is in effect) the per-chunk accumulator states merge in
/// index order after a barrier. Merging in OS completion order under a
/// mutex - the genuine non-determinism the paper's Listing 2 exhibits -
/// is opt-in: the context must carry a run identity or explicitly set
/// deterministic_override = false (OS scheduling needs no entropy source,
/// so cpu_sum_threads opts in via the override). `num_threads` fixes the
/// chunk boundaries - and therefore the bits for non-exact-merge
/// accumulators - independently of how many workers the pool happens to
/// have.
/// One chunk's partial: every addend enters in storage precision
/// (`quantize`), the accumulator runs at the spec's accumulate dtype. The
/// native spec (identity quantize, double accumulate) reproduces the
/// historic span add bit for bit - add(span) is defined as the same
/// element loop.
template <typename Acc, typename Quant>
void add_chunk(Acc& acc, std::span<const double> chunk, Quant quantize) {
  using A = typename Acc::value_type;
  if constexpr (Quant::is_identity && std::same_as<A, double>) {
    // Bulk add: defined as the same element loop for every accumulator,
    // and the entry point where lane-blocked accumulators engage their
    // intrinsics fast path (bitwise-certified against that loop).
    acc.add(chunk);
  } else {
    for (const double x : chunk) acc.add(static_cast<A>(quantize(x)));
  }
}

template <typename Acc, typename Quant>
double pool_sum(std::span<const double> data, const core::EvalContext& ctx,
                std::size_t num_threads, Quant quantize) {
  util::ThreadPool& pool = *ctx.pool;
  const auto ranges = static_chunks(data.size(), num_threads);

  // Chunk provenance: workers drop each partial's fingerprint into its
  // pre-sized slot; the *calling* thread emits them in chunk order after
  // the barrier, so per-thread provenance seq is pool-schedule-invariant.
  obs::Recorder* recorder = ctx.recorder;
  std::vector<std::uint64_t> chunk_bits(recorder != nullptr ? ranges.size()
                                                            : 0);

  const bool os_completion_order =
      !ctx.deterministic_in_effect() &&
      (ctx.run != nullptr || ctx.deterministic_override.has_value());
  double result = 0.0;
  if (!os_completion_order) {
    std::vector<Acc> partials(ranges.size());
    pool.parallel_for(
        ranges.size(),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t c = begin; c < end; ++c) {
            const auto [lo, hi] = ranges[c];
            add_chunk(partials[c], data.subspan(lo, hi - lo), quantize);
          }
        },
        ranges.size());
    Acc total;
    for (const Acc& partial : partials) total.merge(partial);
    if (recorder != nullptr) {
      for (std::size_t c = 0; c < ranges.size(); ++c) {
        chunk_bits[c] = partial_bits(partials[c]);
      }
    }
    result = static_cast<double>(total.result());
  } else {
    Acc total;
    std::mutex mutex;
    pool.parallel_for(
        ranges.size(),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t c = begin; c < end; ++c) {
            const auto [lo, hi] = ranges[c];
            Acc partial;
            add_chunk(partial, data.subspan(lo, hi - lo), quantize);
            if (recorder != nullptr) chunk_bits[c] = partial_bits(partial);
            const std::lock_guard lock(mutex);
            total.merge(partial);  // merge in OS completion order
          }
        },
        ranges.size());
    result = static_cast<double>(total.result());
  }

  if (recorder != nullptr) {
    const std::string spec = fp::to_string(ctx.reduction_in_effect());
    for (std::size_t c = 0; c < ranges.size(); ++c) {
      recorder->provenance({"reduce.cpu_sum", "chunk",
                            static_cast<std::int64_t>(c), -1, spec,
                            chunk_bits[c], ranges[c].second - ranges[c].first});
    }
  }
  return result;
}

}  // namespace

double cpu_sum(std::span<const double> data, const core::EvalContext& ctx,
               std::size_t num_threads) {
  obs::Span span(ctx.recorder, "reduce.cpu_sum");
  if (ctx.recorder != nullptr) {
    span.arg("n", static_cast<std::uint64_t>(data.size()));
    span.arg("num_threads", static_cast<std::uint64_t>(num_threads));
    span.arg("spec", fp::to_string(ctx.reduction_in_effect()));
    ctx.recorder->metrics().counter("reduce.cpu_sum.calls").increment();
    ctx.recorder->metrics()
        .counter("reduce.cpu_sum.elements")
        .add(data.size());
  }

  const double result = fp::visit_reduction<double>(
      ctx.reduction_in_effect(),
      [&](auto tag, auto acc_c, auto quantize) -> double {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        if (ctx.pool != nullptr) {
          return pool_sum<Acc>(data, ctx, num_threads, quantize);
        }

        const auto ranges = static_chunks(data.size(), num_threads);
        std::vector<Acc> partials(ranges.size());
        for (std::size_t c = 0; c < ranges.size(); ++c) {
          const auto [begin, end] = ranges[c];
          add_chunk(partials[c], data.subspan(begin, end - begin), quantize);
        }
        if (ctx.recorder != nullptr) {
          const std::string spec = fp::to_string(ctx.reduction_in_effect());
          for (std::size_t c = 0; c < ranges.size(); ++c) {
            ctx.recorder->provenance(
                {"reduce.cpu_sum", "chunk", static_cast<std::int64_t>(c), -1,
                 spec, partial_bits(partials[c]),
                 ranges[c].second - ranges[c].first});
          }
        }

        // Combination happens in chunk-index order unless the context
        // selects the non-deterministic path, in which case the completion
        // order is drawn from the run (same stream the seed's unordered
        // sum used).
        std::vector<std::size_t> order(ranges.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        if (ctx.nondeterministic()) {
          auto rng = ctx.run->fork(0xCB);
          util::shuffle(order, rng);
        }
        Acc total;
        for (const std::size_t c : order) total.merge(partials[c]);
        return static_cast<double>(total.result());
      });

  if (ctx.recorder != nullptr) {
    obs::Fingerprint print;
    print.feed(result);
    ctx.recorder->provenance({"reduce.cpu_sum", "result", -1, -1,
                              fp::to_string(ctx.reduction_in_effect()),
                              print.value(), data.size()});
  }
  return result;
}

double cpu_sum_serial(std::span<const double> data) noexcept {
  return fp::reduce(fp::AlgorithmId::kSerial, data);
}

double cpu_sum_ordered(std::span<const double> data,
                       std::size_t /*num_threads*/) noexcept {
  // The ordered construct serialises the adds in iteration order: the
  // value is the serial sum by definition (threads only overlap the loop
  // body *outside* the ordered region, and here the body is the add).
  return fp::reduce(fp::AlgorithmId::kSerial, data);
}

double cpu_sum_unordered(std::span<const double> data, core::RunContext& ctx,
                         std::size_t num_threads) {
  return cpu_sum(data, core::EvalContext::nondeterministic_on(ctx),
                 num_threads);
}

double cpu_sum_threads(std::span<const double> data, util::ThreadPool& pool) {
  core::EvalContext ctx;
  ctx.pool = &pool;
  ctx.deterministic_override = false;
  return cpu_sum(data, ctx, pool.size());
}

double cpu_sum_chunked_deterministic(std::span<const double> data,
                                     std::size_t num_threads) noexcept {
  return cpu_sum(data, core::EvalContext{}, num_threads);
}

double cpu_sum_reproducible(std::span<const double> data,
                            std::size_t num_threads) {
  // Chunked superaccumulators merged in index order. Exactness of the
  // accumulator makes the result independent of both the chunking and the
  // merge order (property-tested).
  core::EvalContext ctx;
  ctx.accumulator = fp::AlgorithmId::kSuperaccumulator;
  return cpu_sum(data, ctx, num_threads);
}

}  // namespace fpna::reduce
