#pragma once
// Wall-clock measurement helpers. The paper reports kernel timings as
// mean(std) over repeated runs (Tables 4, 6, 8); TimingStats mirrors that
// presentation. Timer reads obs::now_ns() - the process-wide monotonic
// clock all tracing uses - so a Timer interval and a trace span measured
// over the same region agree to the tick.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "fpna/obs/clock.hpp"

namespace fpna::util {

class Timer {
 public:
  Timer() : start_ns_(obs::now_ns()) {}
  void reset() { start_ns_ = obs::now_ns(); }

  double elapsed_seconds() const {
    return static_cast<double>(obs::now_ns() - start_ns_) * 1e-9;
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  std::uint64_t start_ns_;
};

struct TimingStats {
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::size_t repetitions = 0;

  double mean_ms() const { return mean_seconds * 1e3; }
  double stddev_ms() const { return stddev_seconds * 1e3; }
  double mean_us() const { return mean_seconds * 1e6; }
  double stddev_us() const { return stddev_seconds * 1e6; }

  /// Formats "mean(std)" with the given unit scale, e.g. "6.456(0.008)".
  std::string mean_std_string(double unit_scale, int precision = 3) const;
};

/// Runs `fn` `reps` times (after `warmup` unmeasured runs) and returns the
/// timing distribution.
TimingStats time_repeated(const std::function<void()>& fn, std::size_t reps,
                          std::size_t warmup = 1);

}  // namespace fpna::util
