#pragma once
// A block-granular execution engine for the simulated GPU.
//
// Kernels are C++ callables executed once per thread block, in the commit
// order drawn by the Scheduler. That is the level of abstraction at which
// FPNA variability arises on real GPUs: the arithmetic inside a block is a
// fixed program over fixed data (deterministic), while the *interleaving
// of blocks' updates to shared global state* is scheduler-dependent. The
// engine therefore executes block bodies sequentially-but-reordered, and
// routes all cross-block communication through explicit objects
// (AtomicDouble, RetirementCounter, global buffers) so the dependence on
// commit order is visible and testable.

#include <cstddef>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

#include "fpna/sim/device_profile.hpp"
#include "fpna/sim/scheduler.hpp"
#include "fpna/util/rng.hpp"

namespace fpna::sim {

/// Global-memory double cell updated with atomicAdd semantics. The engine
/// applies the adds in block commit order; the accumulated value is the
/// serial sum in that order (exactly the paper's "random permutation +
/// serial sum" model of an asynchronous reduction).
class AtomicDouble {
 public:
  explicit AtomicDouble(double initial = 0.0) noexcept : value_(initial) {}
  double fetch_add(double x) noexcept {
    const double old = value_;
    value_ += x;
    return old;
  }
  double load() const noexcept { return value_; }
  void store(double v) noexcept { value_ = v; }

 private:
  double value_;
};

/// CUDA-style atomicInc: returns the previous value, wrapping at `wrap`.
/// Used for the retirement-counter ("am I the last block?") pattern of the
/// SPTR/SPRG kernels (paper Listing 1).
class RetirementCounter {
 public:
  explicit RetirementCounter(unsigned wrap) noexcept : wrap_(wrap) {}
  unsigned fetch_inc() noexcept {
    const unsigned old = value_;
    value_ = (value_ >= wrap_) ? 0 : value_ + 1;
    return old;
  }
  unsigned load() const noexcept { return value_; }

 private:
  unsigned value_ = 0;
  unsigned wrap_;
};

struct LaunchConfig {
  std::size_t grid_blocks = 1;
  std::size_t threads_per_block = 256;
  std::size_t shared_doubles = 0;  // shared memory per block, in doubles
};

/// Per-block execution context handed to kernels.
class BlockCtx {
 public:
  BlockCtx(std::size_t block_id, std::size_t commit_position,
           const LaunchConfig& config, std::span<double> shared,
           util::Xoshiro256pp& rng) noexcept
      : block_id_(block_id), commit_position_(commit_position),
        config_(&config), shared_(shared), rng_(&rng) {}

  std::size_t block_id() const noexcept { return block_id_; }
  std::size_t grid_blocks() const noexcept { return config_->grid_blocks; }
  std::size_t threads_per_block() const noexcept {
    return config_->threads_per_block;
  }
  /// Position of this block in the run's commit order (0 = first).
  std::size_t commit_position() const noexcept { return commit_position_; }

  /// Shared-memory scratch, zeroed at block start.
  std::span<double> shared() noexcept { return shared_; }

  /// Entropy for intra-block interleaving decisions (e.g. the order in
  /// which a block's threads win same-address atomics).
  util::Xoshiro256pp& rng() noexcept { return *rng_; }

  /// __syncthreads(): a barrier for the block's threads. Block bodies are
  /// data-parallel loops here, so the barrier is a semantic marker; we
  /// count them so tests can assert kernels synchronise where the real
  /// implementation must.
  void syncthreads() noexcept { ++sync_count_; }
  std::size_t sync_count() const noexcept { return sync_count_; }

  /// __threadfence(): publishes this block's global writes to the other
  /// blocks. The engine tracks it so the retirement-counter pattern can be
  /// checked: consuming other blocks' partials without a fence is a race.
  void threadfence() noexcept { fenced_ = true; }
  bool fenced() const noexcept { return fenced_; }

 private:
  std::size_t block_id_;
  std::size_t commit_position_;
  const LaunchConfig* config_;
  std::span<double> shared_;
  util::Xoshiro256pp* rng_;
  std::size_t sync_count_ = 0;
  bool fenced_ = false;
};

using BlockKernel = std::function<void(BlockCtx&)>;

struct LaunchRecord {
  std::size_t blocks = 0;
  std::size_t fenced_blocks = 0;
  std::vector<std::size_t> commit_order;
};

/// The simulated device. Launches execute synchronously (one in-order
/// stream, matching the paper's single-stream setup); run-to-run
/// variability enters only through the scheduler's commit orders, drawn
/// from the generator passed to launch().
class SimDevice {
 public:
  explicit SimDevice(DeviceProfile profile)
      : profile_(std::move(profile)), scheduler_(profile_) {}

  const DeviceProfile& profile() const noexcept { return profile_; }
  const Scheduler& scheduler() const noexcept { return scheduler_; }

  /// Runs `kernel` once per block in scheduler commit order and returns a
  /// record of the launch (order used, fence accounting).
  LaunchRecord launch(const LaunchConfig& config, util::Xoshiro256pp& rng,
                      const BlockKernel& kernel);

 private:
  DeviceProfile profile_;
  Scheduler scheduler_;
};

}  // namespace fpna::sim
