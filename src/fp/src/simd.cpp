#include "fpna/fp/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "fpna/fp/accumulator.hpp"
#include "simd_kernels.hpp"

namespace fpna::fp {

namespace {

/// FPNA_FORCE_SCALAR_SIMD, read once: set (and not "0" or empty) forces
/// the scalar lane-emulation everywhere - the cross-host reference CI
/// pins the intrinsics tier against.
bool env_force_scalar() noexcept {
  static const bool value = [] {
    const char* v = std::getenv("FPNA_FORCE_SCALAR_SIMD");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return value;
}

/// -1: follow the environment; 0/1: programmatic override (test hook).
std::atomic<int> g_force_scalar_override{-1};

}  // namespace

const SimdSupport& simd_support() noexcept {
  static const SimdSupport support = [] {
    SimdSupport s;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    __builtin_cpu_init();
    s.avx2 = __builtin_cpu_supports("avx2") != 0;
    s.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
    return s;
  }();
  return support;
}

bool simd_force_scalar() noexcept {
  const int override = g_force_scalar_override.load(std::memory_order_relaxed);
  if (override >= 0) return override != 0;
  return env_force_scalar();
}

void set_simd_force_scalar(std::optional<bool> force) noexcept {
  g_force_scalar_override.store(force.has_value() ? (*force ? 1 : 0) : -1,
                                std::memory_order_relaxed);
}

const char* simd_active_isa() noexcept {
  if (simd_force_scalar()) return "scalar";
  const SimdSupport& s = simd_support();
  if (s.avx512f) return "avx512f";
  if (s.avx2) return "avx2";
  return "scalar";
}

void simd_add_i64(std::int64_t* dst, const std::int64_t* src,
                  std::size_t n) noexcept {
  if (!simd_force_scalar() && simd_support().avx2 &&
      simd_detail::avx2::add_i64(dst, src, n)) {
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

namespace detail {

namespace {

/// One dispatch for every (accumulator, dtype) pair: widest certified
/// tier first, each tier declining lane counts it has no kernel for, the
/// caller's emulation as the final fallback. Tiny spans skip the state
/// gather/scatter entirely - a pure heuristic, since every tier is
/// bitwise identical by contract.
template <typename Base, typename T>
bool dispatch_span(Base* lanes, std::size_t lane_count, std::size_t& next,
                   const T* x, std::size_t n) noexcept {
  if (n < 2 * lane_count) return false;
  if (simd_force_scalar()) return false;
  const SimdSupport& s = simd_support();
  if (s.avx512f &&
      simd_detail::avx512::add_span(lanes, lane_count, next, x, n)) {
    return true;
  }
  if (s.avx2 && simd_detail::avx2::add_span(lanes, lane_count, next, x, n)) {
    return true;
  }
  return false;
}

}  // namespace

bool simd_add_span(SerialAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x,
                   std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(SerialAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(KahanAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x,
                   std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(KahanAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(NeumaierAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x,
                   std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(NeumaierAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(KleinAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x,
                   std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(KleinAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(PairwiseAccumulator<double>* lanes, std::size_t lane_count,
                   std::size_t& next, const double* x,
                   std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}
bool simd_add_span(PairwiseAccumulator<float>* lanes, std::size_t lane_count,
                   std::size_t& next, const float* x, std::size_t n) noexcept {
  return dispatch_span(lanes, lane_count, next, x, n);
}

}  // namespace detail

}  // namespace fpna::fp
