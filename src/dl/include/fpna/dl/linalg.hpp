#pragma once
// Dense FP32 linear algebra for the GNN stack. Deterministic by
// construction: fixed loop orders, no threading, accumulation in float
// (matching the FP32 arithmetic of the framework kernels the paper
// studies). Shapes are [rows, cols] rank-2 tensors.

#include "fpna/tensor/tensor.hpp"

namespace fpna::dl {

using Matrix = tensor::Tensor<float>;

/// C = A[m,k] * B[k,n].
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T[m,k] * B[m,n] -> [k,n] (used for weight gradients).
Matrix matmul_transpose_a(const Matrix& a, const Matrix& b);

/// C = A[m,k] * B^T[n,k] -> [m,n] (used for input gradients).
Matrix matmul_transpose_b(const Matrix& a, const Matrix& b);

/// C = A + B (shape-checked).
Matrix add(const Matrix& a, const Matrix& b);

/// Adds row vector `bias` [1,n] or [n] to every row of `a` in place.
void add_bias_rows(Matrix& a, const Matrix& bias);

/// Column sums -> [n] (bias gradient).
Matrix column_sums(const Matrix& a);

/// Gathers rows: out[i, :] = x[indices[i], :]. Deterministic.
Matrix gather_rows(const Matrix& x, const std::vector<std::int64_t>& indices);

}  // namespace fpna::dl
