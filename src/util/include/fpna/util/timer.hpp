#pragma once
// Wall-clock measurement helpers. The paper reports kernel timings as
// mean(std) over repeated runs (Tables 4, 6, 8); TimingStats mirrors that
// presentation.

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>

namespace fpna::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

struct TimingStats {
  double mean_seconds = 0.0;
  double stddev_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  std::size_t repetitions = 0;

  double mean_ms() const { return mean_seconds * 1e3; }
  double stddev_ms() const { return stddev_seconds * 1e3; }
  double mean_us() const { return mean_seconds * 1e6; }
  double stddev_us() const { return stddev_seconds * 1e6; }

  /// Formats "mean(std)" with the given unit scale, e.g. "6.456(0.008)".
  std::string mean_std_string(double unit_scale, int precision = 3) const;
};

/// Runs `fn` `reps` times (after `warmup` unmeasured runs) and returns the
/// timing distribution.
TimingStats time_repeated(const std::function<void()>& fn, std::size_t reps,
                          std::size_t warmup = 1);

}  // namespace fpna::util
