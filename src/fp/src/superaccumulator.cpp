#include "fpna/fp/superaccumulator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "fpna/fp/double_double.hpp"
#include "fpna/fp/simd.hpp"

namespace fpna::fp {

void Superaccumulator::add(double x) noexcept {
  if (x == 0.0) return;
  if (std::isnan(x)) {
    nan_ = true;
    return;
  }
  if (std::isinf(x)) {
    (x > 0 ? pos_inf_ : neg_inf_) = true;
    return;
  }

  if (++pending_ >= kMaxPendingAdds) normalize();

  int exp = 0;
  const double frac = std::frexp(x, &exp);  // x = frac * 2^exp, |frac| in [0.5, 1)
  // 53-bit signed integer mantissa: x = m * 2^(exp - 53), exactly.
  const auto m = static_cast<std::int64_t>(std::ldexp(frac, 53));
  const int shifted = exp - 53 - kMinExponent;  // bit position of mantissa LSB
  const int limb = shifted / kLimbBits;
  const int offset = shifted % kLimbBits;

  const std::int64_t sign = m < 0 ? -1 : 1;
  const auto mag = static_cast<unsigned __int128>(m < 0 ? -m : m);
  const unsigned __int128 t = mag << offset;  // <= 84 bits
  constexpr std::uint64_t kMask = 0xffffffffULL;
  limbs_[limb] += sign * static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(t) & kMask);
  limbs_[limb + 1] += sign * static_cast<std::int64_t>(
                                 static_cast<std::uint64_t>(t >> 32) & kMask);
  limbs_[limb + 2] +=
      sign * static_cast<std::int64_t>(static_cast<std::uint64_t>(t >> 64));
}

void Superaccumulator::add(const Superaccumulator& other) noexcept {
  // Normalising both sides first bounds each limb below 2^33, so the
  // limb-wise sum cannot overflow int64.
  normalize();
  Superaccumulator rhs = other;
  rhs.normalize();
  simd_add_i64(limbs_.data(), rhs.limbs_.data(), kNumLimbs);
  pending_ = 2;
  nan_ = nan_ || rhs.nan_;
  pos_inf_ = pos_inf_ || rhs.pos_inf_;
  neg_inf_ = neg_inf_ || rhs.neg_inf_;
}

void Superaccumulator::add_wire(std::span<const std::uint64_t> words) {
  if (words.size() != kWireWords) {
    throw std::invalid_argument(
        "Superaccumulator::add_wire: need exactly kWireWords words");
  }
  // Same op sequence as add(deserialize(words)): the rhs normalize that
  // path performs is the identity on the already-canonical wire limbs
  // (every limb in [0, 2^32) except the sign-carrying top limb, which
  // the floor-div carry chain maps to itself), so only this side
  // normalises. Limb words reinterpret as the two's-complement int64s
  // serialize() wrote.
  normalize();
  static_assert(sizeof(std::uint64_t) == sizeof(std::int64_t));
  simd_add_i64(limbs_.data(),
               reinterpret_cast<const std::int64_t*>(words.data()), kNumLimbs);
  pending_ = 2;
  const std::uint64_t flags = words[kNumLimbs];
  nan_ = nan_ || (flags & 1u) != 0;
  pos_inf_ = pos_inf_ || (flags & 2u) != 0;
  neg_inf_ = neg_inf_ || (flags & 4u) != 0;
}

void Superaccumulator::normalize() noexcept {
  std::int64_t carry = 0;
  constexpr std::int64_t kBase = std::int64_t{1} << kLimbBits;
  for (int i = 0; i < kNumLimbs; ++i) {
    std::int64_t v = limbs_[i] + carry;
    // Floor division/modulo so remainders land in [0, 2^32) even for
    // negative partials; the sign is pushed into the carry chain and ends
    // up in the (conceptually infinite) top limb.
    std::int64_t r = v % kBase;
    if (r < 0) r += kBase;
    carry = (v - r) >> kLimbBits;
    limbs_[i] = r;
  }
  // A nonzero final carry means the true value's sign/overflow lives above
  // the top limb. For sums of finite doubles that stayed in range this is
  // only the sign of a negative total; fold it into the top limb so the
  // representation stays finite. (Magnitudes beyond DBL_MAX round to inf.)
  limbs_[kNumLimbs - 1] += carry << kLimbBits;
  pending_ = 0;
}

void Superaccumulator::serialize(std::span<std::uint64_t> out) const {
  if (out.size() != kWireWords) {
    throw std::invalid_argument(
        "Superaccumulator::serialize: need exactly kWireWords words");
  }
  Superaccumulator tmp = *this;
  tmp.normalize();
  for (int i = 0; i < kNumLimbs; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint64_t>(tmp.limbs_[i]);
  }
  out[kNumLimbs] = (tmp.nan_ ? 1u : 0u) | (tmp.pos_inf_ ? 2u : 0u) |
                   (tmp.neg_inf_ ? 4u : 0u);
}

Superaccumulator Superaccumulator::deserialize(
    std::span<const std::uint64_t> words) {
  if (words.size() != kWireWords) {
    throw std::invalid_argument(
        "Superaccumulator::deserialize: need exactly kWireWords words");
  }
  Superaccumulator acc;
  for (int i = 0; i < kNumLimbs; ++i) {
    acc.limbs_[i] =
        static_cast<std::int64_t>(words[static_cast<std::size_t>(i)]);
  }
  const std::uint64_t flags = words[kNumLimbs];
  acc.nan_ = (flags & 1u) != 0;
  acc.pos_inf_ = (flags & 2u) != 0;
  acc.neg_inf_ = (flags & 4u) != 0;
  // The wire form is normalised; the next merge re-normalises anyway.
  acc.pending_ = 1;
  return acc;
}

bool Superaccumulator::equals(const Superaccumulator& other) const noexcept {
  Superaccumulator a = *this;
  Superaccumulator b = other;
  a.normalize();
  b.normalize();
  if (a.nan_ != b.nan_ || a.pos_inf_ != b.pos_inf_ ||
      a.neg_inf_ != b.neg_inf_) {
    return false;
  }
  return a.limbs_ == b.limbs_;
}

double Superaccumulator::round() const noexcept {
  if (nan_ || (pos_inf_ && neg_inf_)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (pos_inf_) return std::numeric_limits<double>::infinity();
  if (neg_inf_) return -std::numeric_limits<double>::infinity();

  Superaccumulator tmp = *this;
  tmp.normalize();

  // Accumulate limbs from most to least significant in double-double.
  // After normalisation every limb below the top is in [0, 2^32), so the
  // running (hi, lo) pair always has >= 106 bits of headroom over the next
  // limb's contribution: the result is faithfully rounded.
  DoubleDouble acc;
  for (int i = kNumLimbs - 1; i >= 0; --i) {
    if (tmp.limbs_[i] == 0) continue;
    const double scaled = std::ldexp(static_cast<double>(tmp.limbs_[i]),
                                     i * kLimbBits + kMinExponent);
    acc += scaled;
  }
  return acc.to_double();
}

}  // namespace fpna::fp
