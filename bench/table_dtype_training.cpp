// Loss-scaled bf16 training study (ISSUE 8 tentpole): sweeps the
// storage:accumulate dtype axis of the ReductionSpec over the full
// seeded GNN training run, with and without gradient loss scaling, and
// prices every regime in epoch-loss trajectory and final-weight ulp
// drift against the native f32 run of the same accumulator.
//
// One table, one row per (accumulator x regime):
//   regimes: f32 (native), bf16:f32 (tensor-core mixed precision),
//            bf16:bf16 unscaled (pure bf16), bf16:bf16 @ a power-of-two
//            static scale, bf16:bf16 @ the pinned non-power-of-two
//            static scale, bf16:bf16 under the dynamic scaler.
//
// Three in-binary gates (exit non-zero on violation):
//   1. run-to-run: every row's training is executed twice and the final
//      weights must match bit for bit (every row is deterministic - the
//      "reproducible: yes" contract the CI json diff leans on).
//   2. pow-2 neutrality: the power-of-two-scaled run and the dynamic run
//      (whose scale only ever moves by factors of 2) must reproduce the
//      unscaled pure-bf16 weights bit for bit, for every accumulator.
//      Binary FP is exactly homogeneous under 2^k, so a pow-2 loss scale
//      is a *named no-op* - the certified floor under the whole study.
//   3. the pinned non-pow-2 scale (default 1536 = 3 * 2^9, tuned on the
//      seeded run) must reach a *lower* final loss than unscaled pure
//      bf16 under the serial accumulator: the scale's mantissa is a
//      bit-level hyperparameter, and this row documents the tuned win.
//      (Skipped under --full or a non-default --epochs/--scale: the pin
//      belongs to the default seeded configuration.)
//
// Flags: --epochs (default 30), --seed (init seed, default 42), --scale
//        (pinned non-pow-2 scale, default 1536), --full (Cora-sized
//        dataset), --csv, --json=<path> (CI determinism gate dump),
//        --trace=<path> / --provenance=<path> (attach an obs::Recorder
//        to the designated scaled run; the dl.loss_scale.* metrics land
//        in the metrics table).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/trainer.hpp"
#include "fpna/fp/bits.hpp"
#include "fpna/fp/reduction_spec.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

std::string fingerprint(const std::vector<double>& weights) {
  bench::BitFingerprint fp;
  fp.feed(std::span<const double>(weights));
  return fp.hex();
}

/// Max ulp distance between two flattened weight vectors. The model's
/// weights are binary32; the double flattening is exact, so the float
/// casts below recover the stored bits.
std::int64_t max_ulps(const std::vector<double>& a,
                      const std::vector<double>& b) {
  std::int64_t worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, fp::ulp_distance32(static_cast<float>(a[i]),
                                               static_cast<float>(b[i])));
  }
  return worst;
}

struct Regime {
  std::string name;
  std::string spec;  // reduction-spec dtype suffix, e.g. "@bf16:bf16"
  dl::LossScaleConfig loss_scale;
};

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  bench::BitFingerprint fa, fb;
  fa.feed(std::span<const double>(a));
  fb.feed(std::span<const double>(b));
  return fa.value() == fb.value();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool full = cli.flag("full");
  const int epochs = static_cast<int>(cli.integer("epochs", 30));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const float pinned_scale =
      static_cast<float>(cli.integer("scale", 1536));
  const bool csv = cli.flag("csv");
  const std::string json = cli.text("json", "");
  const bench::ObsOptions obs_opts(cli);

  // The tuned-win gate is pinned to the default seeded configuration.
  const bool pinned_config = !full && epochs == 30 && seed == 42 &&
                             pinned_scale == 1536.0f;

  const auto ds = dl::make_synthetic_citation_dataset(
      full ? dl::DatasetConfig::cora() : dl::DatasetConfig::small());

  util::banner(std::cout,
               "Dtype x loss-scale training study (" +
                   std::to_string(ds.num_nodes()) + " nodes, " +
                   std::to_string(epochs) + " epochs, pinned scale " +
                   util::fixed(pinned_scale, 0) + ")");

  const std::vector<std::string> accumulators{"serial", "kahan",
                                              "superaccumulator"};
  const std::vector<Regime> regimes{
      {"f32", "", dl::LossScaleConfig::none()},
      {"bf16:f32", "@bf16:f32", dl::LossScaleConfig::none()},
      {"bf16 unscaled", "@bf16:bf16", dl::LossScaleConfig::none()},
      {"bf16 static 2^10", "@bf16:bf16",
       dl::LossScaleConfig::static_scale(1024.0f)},
      {"bf16 static pinned", "@bf16:bf16",
       dl::LossScaleConfig::static_scale(pinned_scale)},
      {"bf16 dynamic", "@bf16:bf16",
       dl::LossScaleConfig::dynamic(1024.0f)},
  };

  bool gate_ok = true;
  const auto gate_fail = [&gate_ok](const std::string& why) {
    std::cerr << "GATE FAIL: " << why << "\n";
    gate_ok = false;
  };

  util::Table table({"accumulator", "regime", "scale", "loss e1",
                     "loss mid", "final loss", "skipped",
                     "final-weight ulps vs f32", "bits", "reproducible"});

  const std::size_t mid = static_cast<std::size_t>(epochs) / 2;
  for (const auto& acc : accumulators) {
    std::vector<double> f32_weights;        // same-accumulator baseline
    std::vector<double> unscaled_weights;   // pure-bf16 baseline
    double unscaled_final_loss = 0.0;
    for (const auto& regime : regimes) {
      dl::TrainConfig config;
      config.epochs = epochs;
      config.init_seed = seed;
      config.accumulator = fp::parse_reduction_spec(acc + regime.spec);
      config.loss_scale = regime.loss_scale;
      // The recorder rides the designated pinned run only, so a trace
      // holds one training's spans and the loss-scale gauge is
      // unambiguous.
      if (acc == "serial" && regime.name == "bf16 static pinned") {
        config.recorder = obs_opts.recorder();
      }
      core::RunContext run_a(seed, 0);
      const auto result = dl::train(ds, config, run_a);
      config.recorder = nullptr;
      core::RunContext run_b(seed, 1);
      const auto repeat = dl::train(ds, config, run_b);
      if (!bitwise_equal(result.final_weights, repeat.final_weights)) {
        gate_fail(acc + " / " + regime.name +
                  ": two seeded trainings disagree bitwise");
      }

      if (regime.name == "f32") f32_weights = result.final_weights;
      if (regime.name == "bf16 unscaled") {
        unscaled_weights = result.final_weights;
        unscaled_final_loss = result.epoch_losses.back();
      }
      // Pow-2 neutrality: static 2^10 and the dynamic scaler (pow-2
      // moves only) must reproduce the unscaled bf16 weights bitwise.
      if (regime.name == "bf16 static 2^10" ||
          regime.name == "bf16 dynamic") {
        if (!bitwise_equal(result.final_weights, unscaled_weights)) {
          gate_fail(acc + " / " + regime.name +
                    ": power-of-two scaling moved bits vs unscaled");
        }
      }
      if (pinned_config && acc == "serial" &&
          regime.name == "bf16 static pinned" &&
          !(result.epoch_losses.back() < unscaled_final_loss)) {
        gate_fail("pinned scale " + util::fixed(pinned_scale, 0) +
                  " did not beat unscaled pure bf16 (final loss " +
                  util::fixed(result.epoch_losses.back(), 9) + " vs " +
                  util::fixed(unscaled_final_loss, 9) + ")");
      }

      const float scale_now = result.epoch_loss_scale.back();
      table.add_row(
          {acc, regime.name,
           regime.loss_scale.enabled() ? util::fixed(scale_now, 0) : "-",
           util::fixed(result.epoch_losses.front(), 6),
           util::fixed(result.epoch_losses[mid], 6),
           util::fixed(result.epoch_losses.back(), 6),
           std::to_string(result.skipped_steps),
           std::to_string(max_ulps(f32_weights, result.final_weights)),
           fingerprint(result.final_weights), "yes"});
    }
  }

  const util::Table metrics_table = obs_opts.metrics_table();

  if (csv) {
    table.print_csv(std::cout);
    if (obs_opts.enabled()) metrics_table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nReading: every row is deterministic (trained twice in-process, "
           "bitwise compared - a differing rerun fails the bench). The "
           "power-of-two and dynamic rows carry the *same bits* as the "
           "unscaled bf16 row: binary FP is exactly homogeneous under 2^k, "
           "so those scales are certified no-ops and only the scale's "
           "mantissa can move the trajectory. The pinned non-pow-2 row "
           "re-rounds every bf16 quantization in the backward pass and - at "
           "the tuned scale - lands at a lower final loss than unscaled "
           "pure bf16 (serial row; compensated accumulators are largely "
           "insensitive to the re-rounding, which is itself the point: "
           "better accumulators shrink the rounding lottery). The ulps "
           "column prices each regime's final weights against the native "
           "f32 run of the same accumulator.\n";
    if (obs_opts.enabled()) {
      util::banner(std::cout, "Recorder metrics (designated scaled run)");
      metrics_table.print(std::cout);
    }
  }

  if (!json.empty()) {
    std::vector<bench::NamedTable> json_tables{{"dtype_training", &table}};
    if (obs_opts.enabled()) {
      json_tables.push_back({"metrics", &metrics_table});
    }
    bench::write_json(json, "table_dtype_training", json_tables);
  }
  obs_opts.finish();

  if (!gate_ok) return 1;
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
