#include "fpna/dl/model.hpp"

namespace fpna::dl {

namespace {

SageConv make_conv(std::int64_t in_features, std::int64_t out_features,
                   std::uint64_t seed) {
  util::Xoshiro256pp rng(seed);
  return SageConv(in_features, out_features, rng);
}

}  // namespace

GraphSageModel::GraphSageModel(std::int64_t in_features, std::int64_t hidden,
                               std::int64_t num_classes,
                               std::uint64_t init_seed)
    : conv1(make_conv(in_features, hidden, init_seed)),
      conv2(make_conv(hidden, num_classes,
                      init_seed ^ 0x9e3779b97f4a7c15ULL)) {}

Matrix GraphSageModel::forward(const Matrix& features, const Graph& graph,
                               const tensor::OpContext& ctx,
                               ForwardCache* cache) const {
  SageConv::Cache c1;
  Matrix z1 = conv1.forward(features, graph, ctx, &c1);
  Matrix a1 = relu(z1);
  SageConv::Cache c2;
  Matrix logits = conv2.forward(a1, graph, ctx, &c2);
  Matrix log_probs = log_softmax_rows(logits);

  if (cache != nullptr) {
    cache->conv1 = std::move(c1);
    cache->z1 = std::move(z1);
    cache->a1 = std::move(a1);
    cache->conv2 = std::move(c2);
    cache->logits = std::move(logits);
  }
  return log_probs;
}

void GraphSageModel::backward(const ForwardCache& cache,
                              const Matrix& d_logits, const Graph& graph,
                              const tensor::OpContext& ctx,
                              const GradientSink& sink) {
  const Matrix d_a1 = conv2.backward(cache.conv2, d_logits, graph, ctx, sink);
  const Matrix d_z1 = relu_backward(cache.z1, d_a1);
  conv1.backward(cache.conv1, d_z1, graph, ctx, sink);
}

std::vector<std::size_t> GraphSageModel::backward_gradient_order() const {
  // conv2 (the output layer) finalises first; within a SageConv the
  // gradients land self-weight, self-bias, neigh-weight (the layer
  // backward's computation order). Indices follow parameters().
  return {3, 4, 5, 0, 1, 2};
}

void GraphSageModel::zero_grad() {
  conv1.zero_grad();
  conv2.zero_grad();
}

std::vector<double> GraphSageModel::flattened_weights() const {
  std::vector<double> out;
  const auto append = [&out](const Matrix& m) {
    for (const float v : m.data()) out.push_back(static_cast<double>(v));
  };
  append(conv1.lin_self.weight);
  append(conv1.lin_self.bias);
  append(conv1.lin_neigh.weight);
  append(conv2.lin_self.weight);
  append(conv2.lin_self.bias);
  append(conv2.lin_neigh.weight);
  return out;
}

std::vector<std::pair<Matrix*, Matrix*>> GraphSageModel::parameters() {
  return {
      {&conv1.lin_self.weight, &conv1.lin_self.grad_weight},
      {&conv1.lin_self.bias, &conv1.lin_self.grad_bias},
      {&conv1.lin_neigh.weight, &conv1.lin_neigh.grad_weight},
      {&conv2.lin_self.weight, &conv2.lin_self.grad_weight},
      {&conv2.lin_self.bias, &conv2.lin_self.grad_bias},
      {&conv2.lin_neigh.weight, &conv2.lin_neigh.grad_weight},
  };
}

}  // namespace fpna::dl
