#pragma once
// Deterministic, portable random number generation.
//
// The standard library's distributions (std::normal_distribution, ...) are
// implementation-defined: the same seed yields different streams across
// libstdc++/libc++/MSVC. Every experiment in this toolkit must be exactly
// replayable from a 64-bit seed, on any platform, so we implement both the
// generator (xoshiro256++) and all distributions ourselves.

#include <cstdint>
#include <cmath>
#include <limits>

namespace fpna::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Passes BigCrush when used directly; here it only seeds xoshiro.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ (Blackman & Vigna). Satisfies uniform_random_bit_generator,
/// so it can be handed to <algorithm> facilities as well.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// 2^128 decorrelated steps; use to derive independent per-run streams.
  void jump() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Uniform double in [0, 1): uses the top 53 bits, the canonical mapping.
inline double canonical(Xoshiro256pp& rng) noexcept {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
class UniformReal {
 public:
  UniformReal(double lo, double hi) noexcept : lo_(lo), span_(hi - lo) {}
  double operator()(Xoshiro256pp& rng) const noexcept {
    return lo_ + span_ * canonical(rng);
  }

 private:
  double lo_;
  double span_;
};

/// Unbiased uniform integer in [lo, hi] (Lemire's multiply-shift rejection).
class UniformInt {
 public:
  UniformInt(std::int64_t lo, std::int64_t hi) noexcept
      : lo_(lo), range_(static_cast<std::uint64_t>(hi - lo) + 1) {}
  std::int64_t operator()(Xoshiro256pp& rng) const noexcept;

 private:
  std::int64_t lo_;
  std::uint64_t range_;  // == 0 encodes the full 2^64 range
};

/// Normal(mean, sigma) via Box-Muller; caches the second variate so the
/// consumed stream length is deterministic (2 uint64 per pair).
class Normal {
 public:
  Normal(double mean, double sigma) noexcept : mean_(mean), sigma_(sigma) {}
  double operator()(Xoshiro256pp& rng) noexcept;

 private:
  double mean_;
  double sigma_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

/// Exponential(lambda) via inversion; the paper's "Boltzmann" distribution.
class Exponential {
 public:
  explicit Exponential(double lambda) noexcept : inv_lambda_(1.0 / lambda) {}
  double operator()(Xoshiro256pp& rng) const noexcept {
    // 1 - canonical() is in (0, 1], so the log argument never hits zero.
    return -inv_lambda_ * std::log(1.0 - canonical(rng));
  }

 private:
  double inv_lambda_;
};

}  // namespace fpna::util
