// Reproduces Table 2: properties of the six parallel-sum implementations.
// Unlike the paper's static table, the "deterministic" column here is
// *measured*: each kernel is certified over many scheduler seeds.
//
// Registry-driven: the inner accumulation algorithm of every kernel comes
// from fp::AlgorithmRegistry (--accumulator=<name>, default serial, typos
// print the catalogue), and a second table certifies one deterministic
// (SPTR) and one non-deterministic (SPA) kernel under *every* registered
// accumulator - so a newly registered algorithm appears here with zero
// bench changes.
//
// Flags: --seed, --runs (certification runs), --size, --accumulator, --csv

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/reduce/gpu_sum.hpp"
#include "fpna/util/table.hpp"

int main(int argc, char** argv) {
  using namespace fpna;
  const util::Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const auto runs = static_cast<std::size_t>(cli.integer("runs", 50));
  const auto size = static_cast<std::size_t>(cli.integer("size", 65536));
  const fp::ReductionSpec accumulator =
      fp::parse_reduction_spec(cli.text("accumulator", "serial"));
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Table 2: implementations of the parallel sum (deterministic "
               "column certified over " + std::to_string(runs) +
               " seeds, inner accumulator: " + fp::to_string(accumulator) + ")");

  const auto data = bench::uniform_array(size, 0.0, 10.0, seed);
  sim::SimDevice device(sim::DeviceProfile::v100());

  const auto certify = [&](sim::SumMethod method,
                           const fp::ReductionSpec& spec) {
    const auto kernel = [&](core::RunContext& run) {
      const auto ctx =
          core::EvalContext::nondeterministic_on(run).with_accumulator(spec);
      return reduce::gpu_sum(device, data, method, ctx, 256).value;
    };
    return core::certify_deterministic_scalar(kernel, runs, seed);
  };

  util::Table table({"Method", "deterministic (measured)", "# of kernels",
                     "synchronization methods"});
  for (const auto method :
       {sim::SumMethod::kCU, sim::SumMethod::kSPTR, sim::SumMethod::kSPRG,
        sim::SumMethod::kTPRC, sim::SumMethod::kSPA, sim::SumMethod::kAO}) {
    const auto cert = certify(method, accumulator);
    table.add_row({sim::to_string(method), cert.deterministic ? "Yes" : "No",
                   method == sim::SumMethod::kCU
                       ? "-"
                       : std::to_string(sim::kernel_count(method)),
                   sim::synchronization_method(method)});
  }

  // Registry sweep: the kernel's determinism class under each registered
  // inner accumulator. SPTR's fixed tree stays deterministic for all of
  // them; SPA's atomic combine of block partials stays racy unless the
  // partial exchange itself is permutation-invariant.
  util::Table sweep({"accumulator", "SPTR deterministic", "SPA deterministic",
                     "perm-invariant (declared)"});
  for (const auto& entry : fp::AlgorithmRegistry::instance().entries()) {
    sweep.add_row(
        {entry.name,
         certify(sim::SumMethod::kSPTR, entry.id).deterministic ? "Yes" : "No",
         certify(sim::SumMethod::kSPA, entry.id).deterministic ? "Yes" : "No",
         entry.traits.permutation_invariant ? "yes" : "no"});
  }

  if (csv) {
    table.print_csv(std::cout);
    sweep.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout << "\nPaper reference (Table 2): CU/SPTR/SPRG/TPRC "
                 "deterministic; SPA/AO not.\n\n";
    sweep.print(std::cout);
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
