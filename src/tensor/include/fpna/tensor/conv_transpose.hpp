#pragma once
// Transposed convolutions (ConvTranspose1d/2d/3d), the remaining ops in
// the paper's Table 5. A transposed convolution is inherently a
// *scatter*: every input element distributes stride-spaced contributions
// into the output, which is why cuDNN's implementations use atomicAdd and
// appear in PyTorch's non-deterministic list. The ND path here commits
// the input-tap contributions in scheduler order; the D path fixes the
// loop order.
//
// Layouts follow PyTorch: input [N, C_in, spatial...], weight
// [C_in, C_out, kernel...], bias [C_out], output [N, C_out, spatial_out...]
// with spatial_out = (in-1)*stride - 2*padding + dilation*(kernel-1)
//                    + output_padding + 1.

#include <array>
#include <cstdint>
#include <type_traits>

#include "fpna/tensor/op_context.hpp"
#include "fpna/tensor/tensor.hpp"

namespace fpna::tensor {

template <std::size_t Rank>
struct ConvTransposeParams {
  std::array<std::int64_t, Rank> stride;
  std::array<std::int64_t, Rank> padding;
  std::array<std::int64_t, Rank> output_padding;
  std::array<std::int64_t, Rank> dilation;

  ConvTransposeParams() {
    stride.fill(1);
    padding.fill(0);
    output_padding.fill(0);
    dilation.fill(1);
  }
};

template <typename T>
Tensor<T> conv_transpose1d(const Tensor<T>& input, const Tensor<T>& weight,
                           const std::type_identity_t<Tensor<T>>* bias = nullptr,
                           const ConvTransposeParams<1>& params = {},
                           const OpContext& ctx = {});

template <typename T>
Tensor<T> conv_transpose2d(const Tensor<T>& input, const Tensor<T>& weight,
                           const std::type_identity_t<Tensor<T>>* bias = nullptr,
                           const ConvTransposeParams<2>& params = {},
                           const OpContext& ctx = {});

template <typename T>
Tensor<T> conv_transpose3d(const Tensor<T>& input, const Tensor<T>& weight,
                           const std::type_identity_t<Tensor<T>>* bias = nullptr,
                           const ConvTransposeParams<3>& params = {},
                           const OpContext& ctx = {});

/// Output spatial extent for one dimension.
inline std::int64_t conv_transpose_out_size(std::int64_t in,
                                            std::int64_t kernel,
                                            std::int64_t stride,
                                            std::int64_t padding,
                                            std::int64_t output_padding,
                                            std::int64_t dilation) {
  return (in - 1) * stride - 2 * padding + dilation * (kernel - 1) +
         output_padding + 1;
}

}  // namespace fpna::tensor
