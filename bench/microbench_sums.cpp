// google-benchmark microbenchmarks for the summation kernels: the real
// wall-clock complement to the Table 4 cost model.
//
// One benchmark per *registered* accumulation algorithm (so a newly
// registered algorithm appears here with zero bench changes), plus:
//  * BM_FreeFunctionSerial - the pre-refactor free function, the baseline
//    the registry-dispatched serial sum is compared against (the dispatch
//    is one switch per call; the acceptance bar is <5% regression);
//  * the CPU reduction strategies, routed through the unified
//    reduce::cpu_sum(data, EvalContext) entry point.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fpna/core/eval_context.hpp"
#include "fpna/core/run_context.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/fp/summation.hpp"
#include "fpna/reduce/cpu_sum.hpp"

namespace {

const std::vector<double>& data_of_size(std::int64_t n) {
  static std::vector<std::vector<double>> cache;
  for (auto& v : cache) {
    if (static_cast<std::int64_t>(v.size()) == n) return v;
  }
  cache.push_back(
      fpna::bench::uniform_array(static_cast<std::size_t>(n), 0.0, 10.0, 42));
  return cache.back();
}

void BM_FreeFunctionSerial(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(fpna::fp::sum_serial(v));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_RegistrySum(benchmark::State& state,
                    const fpna::fp::AlgorithmRegistry::Entry* entry) {
  const auto& v = data_of_size(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fpna::fp::reduce(entry->id, std::span<const double>(v)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CpuSumChunkedDeterministic(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  const fpna::core::EvalContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpna::reduce::cpu_sum(v, ctx, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CpuSumUnordered(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  std::uint64_t run = 0;
  for (auto _ : state) {
    fpna::core::RunContext rc(7, run++);
    benchmark::DoNotOptimize(fpna::reduce::cpu_sum(
        v, fpna::core::EvalContext::nondeterministic_on(rc), 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_CpuSumReproducible(benchmark::State& state) {
  const auto& v = data_of_size(state.range(0));
  fpna::core::EvalContext ctx;
  ctx.accumulator = fpna::fp::AlgorithmId::kSuperaccumulator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fpna::reduce::cpu_sum(v, ctx, 8));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

constexpr std::int64_t kSmall = 1 << 12;
constexpr std::int64_t kLarge = 1 << 20;

}  // namespace

BENCHMARK(BM_FreeFunctionSerial)->Arg(kSmall)->Arg(kLarge);
BENCHMARK(BM_CpuSumChunkedDeterministic)->Arg(kLarge);
BENCHMARK(BM_CpuSumUnordered)->Arg(kLarge);
BENCHMARK(BM_CpuSumReproducible)->Arg(kLarge);

int main(int argc, char** argv) {
  // One benchmark per registered algorithm, by name: the registry drives
  // the bench list, not a private table.
  for (const auto& entry :
       fpna::fp::AlgorithmRegistry::instance().entries()) {
    benchmark::RegisterBenchmark(("BM_Sum/" + entry.name).c_str(),
                                 BM_RegistrySum, &entry)
        ->Arg(kSmall)
        ->Arg(kLarge);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
