// Ablation (DESIGN.md SS4.1): how the scheduler policy shapes the
// variability distribution. The same SPA-style reduction is run under
// each commit-order policy; the resulting Vs distributions differ in
// spread and normality, mirroring how the paper's measured PDFs differ
// between GPU families ("means and standard deviations of Vs are
// different between the GPU types") and between SPA and AO.
//
// Flags: --size --runs --seed --csv

#include <iostream>

#include "bench_common.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/fp/summation.hpp"
#include "fpna/reduce/block_sum.hpp"
#include "fpna/sim/scheduler.hpp"
#include "fpna/stats/histogram.hpp"
#include "fpna/stats/normality.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.integer("size", 65536));
  const auto runs = static_cast<std::size_t>(cli.integer("runs", 1500));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Ablation: scheduler policy vs variability distribution "
               "(SPA-style sum of " + std::to_string(size) + " FP64, " +
                   std::to_string(runs) + " runs per policy)");

  const auto data = bench::uniform_array(size, 0.0, 10.0, seed);
  constexpr std::size_t kNt = 64;
  const std::size_t nb = (size + kNt - 1) / kNt;
  const auto partials = reduce::all_block_partials(data, kNt, nb);
  const double reference = reduce::tree_sum(partials);

  struct PolicyCase {
    const char* name;
    sim::SchedulerPolicy policy;
    std::size_t wave;
  };
  const std::vector<PolicyCase> cases{
      {"uniform shuffle (idealised)", sim::SchedulerPolicy::kUniformShuffle, 0},
      {"wave shuffle, wave=64", sim::SchedulerPolicy::kWaveShuffle, 64},
      {"wave shuffle, wave=640 (V100-like)", sim::SchedulerPolicy::kWaveShuffle,
       640},
      {"contention mixture (AO-like)",
       sim::SchedulerPolicy::kContentionMixture, 0},
  };

  util::Table table({"policy", "std(Vs) x1e-16", "excess kurtosis",
                     "KL vs normal", "JB stat"});
  for (const auto& c : cases) {
    sim::DeviceProfile profile = sim::DeviceProfile::v100();
    if (c.wave != 0) profile.max_concurrent_blocks = c.wave;
    const sim::Scheduler scheduler(profile);

    std::vector<double> samples;
    samples.reserve(runs);
    for (std::uint64_t r = 0; r < runs; ++r) {
      core::RunContext ctx(seed + 1, r);
      auto rng = ctx.fork(3);
      const auto order = scheduler.commit_order(nb, c.policy, rng);
      double sum = 0.0;
      for (const std::size_t b : order) sum += partials[b];
      samples.push_back(core::vs(sum, reference));
    }
    const auto summary = stats::summarize(samples);
    const auto hist = stats::Histogram::from_samples(samples, 50);
    const double kl =
        stats::kl_divergence_vs_normal(hist, summary.mean, summary.stddev);
    const auto jb = stats::jarque_bera(samples);
    table.add_row({c.name, util::fixed(summary.stddev / 1e-16, 3),
                   util::fixed(summary.excess_kurtosis, 3),
                   util::fixed(kl, 4), util::fixed(jb.statistic, 1)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nExpected: wider waves and uniform shuffles give Gaussian Vs "
           "(low KL/JB); the contention mixture is leptokurtic and "
           "clearly non-normal - the mechanism behind Fig 2's AO shape "
           "and the family-dependent PDFs of Fig 1.\n";
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
