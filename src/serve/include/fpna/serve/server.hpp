#pragma once
// The batch-invariant inference server.
//
// submit() admits a request into the MPSC queue and returns a future;
// one batcher thread drains the queue in admission order and coalesces
// requests into dynamic batches under a (max_batch, max_wait) policy: a
// batch dispatches as soon as it holds max_batch requests, or when
// max_wait has elapsed since its oldest member was staged - classic
// latency/throughput knobs, and both are *free* to vary because the
// per-request bits are batch-invariant by construction (session.hpp).
//
// Failure containment follows comm::BucketScheduler's join-and-rethrow
// discipline. Per-row faults surface as that row's exception_ptr and
// fail only the owning request's promise. If the batch *infrastructure*
// throws (pool submission, allocation), the pool's parallel_for joins
// every worker before rethrowing, and the batcher catches the rethrow
// and fails every still-unfulfilled promise of that batch - a worker
// exception can never leave a submitted future dangling (pinned by
// serve_test's injected-throw case).

#include <cstddef>
#include <chrono>
#include <future>
#include <thread>

#include "fpna/core/eval_context.hpp"
#include "fpna/serve/queue.hpp"
#include "fpna/serve/session.hpp"

namespace fpna::util {
class ThreadPool;
}

namespace fpna::serve {

struct ServerConfig {
  /// Largest batch one forward pass may coalesce.
  std::size_t max_batch = 8;
  /// Longest a staged request may wait for batch-mates.
  std::chrono::nanoseconds max_wait{100'000};
  /// Admission-queue capacity; a full queue blocks submit() (requests
  /// are never dropped).
  std::size_t max_queue = 1024;
  /// Pool for intra-batch row parallelism (nullptr: rows run serially
  /// on the batcher thread).
  util::ThreadPool* pool = nullptr;
  /// Reduction spec every request's forward routes through.
  fp::ReductionSpec spec{};
  /// Observability sink (spans, counters, the latency histogram);
  /// nullptr is the certified-identical default.
  obs::Recorder* recorder = nullptr;
  /// Test-only per-row fault injection (see FaultHook).
  FaultHook fault_hook;
};

class InferenceServer {
 public:
  /// `session` must outlive the server.
  InferenceServer(const InferenceSession& session, ServerConfig config);
  ~InferenceServer();  // drains admitted requests, then stops

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Admits one request. Blocks while the queue is full; throws
  /// std::runtime_error if the server is already shut down.
  std::future<InferenceResult> submit(Request request);

  /// Closes admission, serves everything already admitted, joins the
  /// batcher. Idempotent; the destructor calls it.
  void shutdown();

  /// Instantaneous admission backlog (approximate by nature).
  std::size_t approx_queue_depth() const noexcept {
    return queue_.approx_size();
  }

 private:
  struct Submission {
    Request request;
    std::promise<InferenceResult> promise;
    std::uint64_t admitted_ns = 0;
  };

  void batcher_loop();
  void serve_batch(std::deque<Submission>& staged, std::size_t count);

  const InferenceSession& session_;
  ServerConfig config_;
  core::EvalContext ctx_;
  MpscQueue<Submission> queue_;
  std::thread batcher_;
  bool stopped_ = false;
};

}  // namespace fpna::serve
