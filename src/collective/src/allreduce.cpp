#include "fpna/collective/allreduce.hpp"

#include <algorithm>
#include <stdexcept>

#include "fpna/core/chunking.hpp"
#include "fpna/fp/accumulator.hpp"
#include "fpna/util/permutation.hpp"

namespace fpna::collective {

template <typename T>
void validate(const RankDataT<T>& contributions) {
  if (contributions.empty()) {
    throw std::invalid_argument("allreduce: no ranks");
  }
  const std::size_t n = contributions.front().size();
  for (const auto& rank : contributions) {
    if (rank.size() != n) {
      throw std::invalid_argument("allreduce: rank vector length mismatch");
    }
  }
}

std::pair<std::size_t, std::size_t> ring_chunk(std::size_t total,
                                               std::size_t ranks,
                                               std::size_t chunk_index) {
  if (ranks == 0) throw std::invalid_argument("ring_chunk: zero ranks");
  // The ceil-stride rule shared through core/chunking.hpp: every rank
  // derives chunk boundaries from (total, ranks) alone, so no boundary
  // metadata travels the wire. Deliberately distinct from the near-even
  // shard_sizes rule below - see the core header for the invariant.
  return core::ceil_chunk(total, ranks, chunk_index);
}

template <typename T>
std::vector<T> allreduce_ring(const RankDataT<T>& contributions) {
  validate(contributions);
  const std::size_t ranks = contributions.size();
  const std::size_t n = contributions.front().size();

  // Reduce-scatter: chunk c travels the ring starting after its owner;
  // the accumulation order for chunk c is ranks (c+1)%P, (c+2)%P, ...,
  // c%P - fixed by topology, independent of timing.
  std::vector<T> result(n, T{0});
  for (std::size_t c = 0; c < ranks; ++c) {
    const auto [begin, end] = ring_chunk(n, ranks, c);
    for (std::size_t i = begin; i < end; ++i) {
      T acc = contributions[(c + 1) % ranks][i];
      for (std::size_t hop = 2; hop <= ranks; ++hop) {
        acc = static_cast<T>(acc + contributions[(c + hop) % ranks][i]);
      }
      result[i] = acc;
    }
  }
  // Allgather distributes identical chunks: every rank sees `result`.
  return result;
}

template <typename T>
std::vector<T> allreduce_recursive_doubling(const RankDataT<T>& contributions) {
  validate(contributions);
  const std::size_t ranks = contributions.size();
  const std::size_t n = contributions.front().size();

  // Butterfly: at stage s, rank r combines with rank r ^ 2^s. For
  // non-power-of-two counts the remainder ranks fold in first (the usual
  // MPICH pre-step), still in a fixed order.
  RankDataT<T> buffers = contributions;
  std::size_t active = 1;
  while (active * 2 <= ranks) active *= 2;

  // Fold extras into their partner in the active set.
  for (std::size_t r = active; r < ranks; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      buffers[r - active][i] =
          static_cast<T>(buffers[r - active][i] + buffers[r][i]);
    }
  }
  for (std::size_t stage = 1; stage < active; stage *= 2) {
    for (std::size_t r = 0; r < active; ++r) {
      const std::size_t partner = r ^ stage;
      if (partner < r) continue;  // combine each pair once per stage
      for (std::size_t i = 0; i < n; ++i) {
        buffers[r][i] = static_cast<T>(buffers[r][i] + buffers[partner][i]);
      }
      buffers[partner] = buffers[r];
    }
  }
  return buffers[0];
}

template <typename T>
std::vector<T> allreduce_arrival_tree(const RankDataT<T>& contributions,
                                      core::RunContext& ctx,
                                      std::size_t block_elements) {
  validate(contributions);
  const std::size_t ranks = contributions.size();
  const std::size_t n = contributions.front().size();
  if (block_elements == 0) block_elements = 1;

  // Advance the run's own stream so successive collectives in one run see
  // fresh arrival orders, then decorrelate through a fork.
  auto rng = util::Xoshiro256pp(ctx.rng()());
  std::vector<T> result(n, T{0});
  // The switch reduces each network block in the order rank messages
  // arrive; arrival order is redrawn per block (independent flows).
  for (std::size_t begin = 0; begin < n; begin += block_elements) {
    const std::size_t end = std::min(n, begin + block_elements);
    const auto arrival = util::random_permutation(ranks, rng);
    for (std::size_t i = begin; i < end; ++i) {
      T acc = contributions[arrival[0]][i];
      for (std::size_t k = 1; k < ranks; ++k) {
        acc = static_cast<T>(acc + contributions[arrival[k]][i]);
      }
      result[i] = acc;
    }
  }
  return result;
}

template <typename T>
std::vector<T> allreduce_reproducible(const RankDataT<T>& contributions) {
  validate(contributions);
  const std::size_t ranks = contributions.size();
  const std::size_t n = contributions.front().size();

  // Each rank contributes to the registry's exact long accumulator; the
  // merge is exact, so the rounded result is bitwise independent of
  // arrival order, rank count and sharding.
  std::vector<T> result(n, T{0});
  for (std::size_t i = 0; i < n; ++i) {
    fp::LongAccumulator<double> acc;
    for (std::size_t r = 0; r < ranks; ++r) {
      acc.add(static_cast<double>(contributions[r][i]));
    }
    // The exact double-rounded value, narrowed once: still order- and
    // rank-count-invariant for T = float (single final rounding).
    result[i] = static_cast<T>(acc.result());
  }
  return result;
}

template <typename T>
std::vector<T> allreduce(const RankDataT<T>& contributions,
                         Algorithm algorithm, const core::EvalContext& ctx,
                         std::size_t block_elements) {
  switch (algorithm) {
    case Algorithm::kRing:
      return allreduce_ring(contributions);
    case Algorithm::kRecursiveDoubling:
      return allreduce_recursive_doubling(contributions);
    case Algorithm::kArrivalTree:
      if (ctx.run == nullptr) {
        throw std::invalid_argument(
            "allreduce: arrival-tree needs EvalContext.run");
      }
      return allreduce_arrival_tree(contributions, *ctx.run, block_elements);
    case Algorithm::kReproducible:
      return allreduce_reproducible(contributions);
  }
  throw std::invalid_argument("allreduce: unknown algorithm");
}

// Explicit instantiations for the wire types the experiments use.
#define FPNA_INSTANTIATE_ALLREDUCE(T)                                         \
  template void validate<T>(const RankDataT<T>&);                             \
  template std::vector<T> allreduce_ring<T>(const RankDataT<T>&);             \
  template std::vector<T> allreduce_recursive_doubling<T>(                    \
      const RankDataT<T>&);                                                   \
  template std::vector<T> allreduce_arrival_tree<T>(const RankDataT<T>&,      \
                                                    core::RunContext&,        \
                                                    std::size_t);             \
  template std::vector<T> allreduce_reproducible<T>(const RankDataT<T>&);     \
  template std::vector<T> allreduce<T>(const RankDataT<T>&, Algorithm,        \
                                       const core::EvalContext&,              \
                                       std::size_t);

FPNA_INSTANTIATE_ALLREDUCE(double)
FPNA_INSTANTIATE_ALLREDUCE(float)

#undef FPNA_INSTANTIATE_ALLREDUCE

const char* to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kRing: return "ring";
    case Algorithm::kRecursiveDoubling: return "recursive-doubling";
    case Algorithm::kArrivalTree: return "arrival-tree";
    case Algorithm::kReproducible: return "reproducible";
  }
  return "?";
}

bool is_deterministic(Algorithm algorithm) noexcept {
  return algorithm != Algorithm::kArrivalTree;
}

double distributed_sum(std::span<const double> data, std::size_t ranks,
                       Algorithm algorithm, const core::EvalContext& ctx) {
  if (ranks == 0) throw std::invalid_argument("distributed_sum: zero ranks");
  const RankData shards = shard(data, ranks);

  if (algorithm == Algorithm::kReproducible) {
    // Exact local accumulation, exact merge through the registry's long
    // accumulator: independent of the sharding and of the merge order.
    fp::LongAccumulator<double> total;
    for (const auto& local : shards) {
      fp::LongAccumulator<double> partial;
      partial.add(std::span<const double>(local));
      total.merge(partial);
    }
    return total.result();
  }

  // Local partial per rank through the context's registry-selected
  // reduction spec (storage quantization + accumulate dtype + algorithm),
  // then a P-element collective over the rounded partials.
  RankData partials(ranks, std::vector<double>(1, 0.0));
  for (std::size_t r = 0; r < ranks; ++r) {
    partials[r][0] = fp::reduce(ctx.reduction_in_effect(),
                                std::span<const double>(shards[r]));
  }
  switch (algorithm) {
    case Algorithm::kRing:
      return allreduce_ring(partials)[0];
    case Algorithm::kRecursiveDoubling:
      return allreduce_recursive_doubling(partials)[0];
    case Algorithm::kArrivalTree: {
      if (ctx.run == nullptr) {
        throw std::invalid_argument(
            "distributed_sum: arrival-tree needs a RunContext");
      }
      return allreduce_arrival_tree(partials, *ctx.run)[0];
    }
    case Algorithm::kReproducible:
      break;  // handled above
  }
  throw std::invalid_argument("distributed_sum: unknown algorithm");
}

double distributed_sum(std::span<const double> data, std::size_t ranks,
                       Algorithm algorithm, core::RunContext* ctx) {
  core::EvalContext ec;
  ec.run = ctx;
  ec.deterministic_override = false;
  return distributed_sum(data, ranks, algorithm, ec);
}

std::vector<std::size_t> shard_sizes(std::size_t total, std::size_t ranks) {
  if (ranks == 0) throw std::invalid_argument("shard_sizes: zero ranks");
  // Near-even rule from core/chunking.hpp (the same split cpu_sum and
  // ThreadPool::parallel_for use); with ranks > total trailing shards
  // are empty.
  std::vector<std::size_t> sizes(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    sizes[r] = core::even_chunk_size(total, ranks, r);
  }
  return sizes;
}

RankData shard(std::span<const double> data, std::size_t ranks) {
  const auto sizes = shard_sizes(data.size(), ranks);
  RankData shards(ranks);
  std::size_t begin = 0;
  for (std::size_t r = 0; r < ranks; ++r) {
    shards[r].assign(data.begin() + static_cast<std::ptrdiff_t>(begin),
                     data.begin() + static_cast<std::ptrdiff_t>(begin +
                                                                sizes[r]));
    begin += sizes[r];
  }
  return shards;
}

}  // namespace fpna::collective
