#pragma once
// Run-wide observability: structured trace events (Chrome trace_event
// JSON, Perfetto-loadable), bit-provenance records (deterministic
// provenance.jsonl for the first-divergence localizer) and the metrics
// registry, behind one Recorder that rides core::EvalContext as a
// nullable pointer. Null recorder == today's bits: every instrumentation
// site is a branch on `ctx.recorder != nullptr` and nothing else.
//
// Threading model. Each (recorder, thread) pair owns a shard; appends
// take only that shard's uncontended mutex, so pool workers never
// serialise against each other. Trace timestamps come from obs::now_ns()
// (one process-wide monotonic epoch), so spans from different threads
// land on one timeline.
//
// Provenance determinism. Trace events carry wall-clock and thread ids -
// two identical runs produce *different* trace files, and that is fine;
// traces are for humans. Provenance records are the diffable artifact:
// each carries a logical coordinate (site, kind, index, sub_index), the
// reduction spec string, the result fingerprint, plus recorder-stamped
// (frame, scope, per-thread seq). The canonical order sorts on
// (frame, scope, site, kind, index, sub_index, seq, bits) - every field
// is logical, none is wall-clock or OS-thread-id - so two bit-identical
// runs emit byte-identical provenance.jsonl no matter how the pool
// scheduled the work. Instrumentation keeps seq deterministic by
// emitting pooled-chunk records from the calling thread in chunk order
// (workers hand fingerprints back through pre-sized caller storage).

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fpna/obs/metrics.hpp"

namespace fpna::obs {

// ------------------------------------------------- bit fingerprints -----

/// FNV-1a 64-bit over value bit patterns - the same stream definition as
/// bench::BitFingerprint, so a provenance "bits" field and a bench table
/// "bits" cell computed over the same buffer agree exactly.
class Fingerprint {
 public:
  void feed(std::uint64_t word) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (word >> (8 * byte)) & 0xffu;
      hash_ *= 1099511628211ull;
    }
  }
  void feed(double x) noexcept;
  void feed(float x) noexcept;
  template <typename T>
  void feed(std::span<const T> values) noexcept {
    for (const T v : values) feed(v);
  }
  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV offset basis
};

/// 16-digit lowercase hex - the form provenance.jsonl carries.
std::string hex64(std::uint64_t bits);

// ------------------------------------------------------ trace events ----

/// One typed payload entry ("rows": 512). Numbers are pre-formatted but
/// emitted unquoted so Perfetto can aggregate them.
struct TraceArg {
  std::string key;
  std::string text;
  bool is_number = false;
};

struct TraceEvent {
  enum class Phase : std::uint8_t { kComplete, kInstant };
  std::string name;
  Phase phase = Phase::kComplete;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;  // instants: 0
  std::vector<TraceArg> args;
};

// ------------------------------------------------- provenance records ---

/// The caller-supplied part: a logical coordinate plus the bits observed
/// there. index/sub_index give each record a stable address inside its
/// site (chunk index, bucket id, (wire step, receiver), ...); -1 marks
/// an unused axis.
struct ProvenanceRecord {
  std::string site;  // "reduce.cpu_sum", "comm.wire", ...
  std::string kind;  // "chunk", "result", "bucket", "wire_step", ...
  std::int64_t index = -1;
  std::int64_t sub_index = -1;
  std::string spec;  // fp::to_string(ReductionSpec) when one applies
  std::uint64_t bits = 0;
  std::uint64_t elements = 0;
};

/// A record plus the recorder-stamped logical position.
struct StampedProvenance {
  std::uint64_t frame = 0;
  std::string scope;
  std::uint64_t seq = 0;  // per-(thread, frame) emission index
  ProvenanceRecord record;
};

/// Canonical provenance order: (frame, scope, site, kind, index,
/// sub_index, seq, bits). Strict-weak; used for the jsonl and by tests.
bool provenance_less(const StampedProvenance& a, const StampedProvenance& b);

// ------------------------------------------------------------ recorder --

class Recorder;

/// RAII span: captures start on construction, appends a complete event
/// on destruction. Null recorder makes every member a no-op.
class Span {
 public:
  Span(Recorder* recorder, std::string_view name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(std::string_view key, std::int64_t value);
  void arg(std::string_view key, std::uint64_t value);
  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::string_view value);

 private:
  Recorder* recorder_;
  TraceEvent event_;
};

/// Pushes a logical scope segment ("bucket/3") onto this thread's scope
/// stack for the guard's lifetime. Provenance emitted concurrently from
/// two bucket firings lands under distinct scopes, which is what keeps
/// the canonical sort collision-free.
class ScopeGuard {
 public:
  explicit ScopeGuard(std::string_view segment);
  ~ScopeGuard();
  ScopeGuard(const ScopeGuard&) = delete;
  ScopeGuard& operator=(const ScopeGuard&) = delete;
};

/// Joined current scope stack for this thread ("a/b"); "" at top level.
std::string current_scope();

class Recorder {
 public:
  Recorder();
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // ---- trace --------------------------------------------------------
  void emit(TraceEvent&& event);
  void instant(std::string_view name, std::vector<TraceArg> args = {});

  // ---- provenance ---------------------------------------------------
  void provenance(ProvenanceRecord record);

  /// Starts a new logical frame (per-thread seq counters restart at the
  /// next emission). Call between repeated invocations of the same
  /// kernel so their records don't collide on every sort key.
  void advance_frame() noexcept;
  std::uint64_t frame() const noexcept;

  // ---- metrics ------------------------------------------------------
  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }

  // ---- reports ------------------------------------------------------
  std::size_t event_count() const;
  std::size_t provenance_count() const;
  std::vector<TraceEvent> events() const;
  /// All stamped records in canonical order.
  std::vector<StampedProvenance> sorted_provenance() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}) - load in
  /// chrome://tracing or https://ui.perfetto.dev.
  void write_chrome_trace(const std::string& path) const;
  /// One record per line, canonical order - the localizer's input.
  void write_provenance_jsonl(const std::string& path) const;

 private:
  struct Shard;
  Shard& local_shard();

  const std::uint64_t id_;  // distinguishes recorders in the TLS cache
  mutable std::mutex shards_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> frame_{0};
  Metrics metrics_;
};

}  // namespace fpna::obs
