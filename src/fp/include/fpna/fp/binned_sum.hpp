#pragma once
// Reproducible summation by pre-rounding into exponent bins - the
// Demmel-Nguyen / ReproBLAS technique behind the paper's reference [2]
// (Ahrens, Demmel, Nguyen, "Algorithms for efficient reproducible
// floating point summation").
//
// Idea: pick K bin boundaries b_0 > b_1 > ... anchored at the exponent of
// max|x_i|, each W bits apart. The Dekker-style extraction
//
//     t = fl(b_k + x);  slice = fl(t - b_k);  x -= slice
//
// rounds x to a multiple of ulp(b_k)/2 *exactly* (no error), and slices
// of different summands are multiples of the same quantum with bounded
// magnitude - so their floating-point sum commits no rounding error at
// all while fewer than 2^(52 - W - 1) terms are accumulated. Summation of
// every bin is therefore exact, hence bitwise independent of ordering,
// chunking and thread count; only the final combination of the K bin
// totals rounds, and it is a fixed-order operation.
//
// Compared to the Superaccumulator (exact but ~70 limbs of state and
// decomposition per add), the binned sum is a light-weight two-pass
// streaming algorithm: pass 1 finds max|x|, pass 2 does K extractions per
// element. Accuracy is ~K*W bits below the top magnitude (faithful for
// condition numbers up to ~2^(K*W - 53)); reproducibility is exact.

#include <cstddef>
#include <span>

namespace fpna::fp {

class BinnedSum {
 public:
  static constexpr int kBinBits = 26;   // W: bits per bin
  static constexpr int kFolds = 3;      // K: number of bins
  /// Max additions per bin before exactness could be lost.
  static constexpr std::size_t kMaxTerms = std::size_t{1}
                                           << (52 - kBinBits - 1);

  /// Two-pass reproducible sum. Bitwise invariant under any permutation
  /// or chunking of `values` (property-tested). Propagates NaN/inf like
  /// IEEE addition. Inputs longer than kMaxTerms are processed in
  /// renormalised batches (still reproducible: batch boundaries are a
  /// pure function of the length).
  static double sum(std::span<const double> values);

  /// The primitive underneath: sums `values` given the anchor magnitude
  /// (the max |x| over the *global* data set). Exposing it lets
  /// distributed callers reproduce the single-node result exactly: ranks
  /// agree on the global max, bin locally, and add the per-rank bin sums
  /// (exact, order-free). `anchor` must satisfy anchor >= max|values[i]|
  /// and be finite.
  struct Bins {
    double total[kFolds] = {0.0, 0.0, 0.0};

    /// Exact merge of two bin sets computed against the same anchor.
    void merge(const Bins& other) noexcept {
      for (int k = 0; k < kFolds; ++k) total[k] += other.total[k];
    }
  };
  static Bins bin(std::span<const double> values, double anchor);

  /// Rounds a bin set to the final double (fixed high-to-low order).
  static double round(const Bins& bins) noexcept;
};

}  // namespace fpna::fp
