#pragma once
// The toolkit's chunk-boundary rules, in ONE place. In a codebase whose
// whole point is that the association of a sum is an observable part of
// an algorithm's identity, chunk boundaries are load-bearing: they decide
// where partial accumulations split and merge, and therefore which bits
// a deterministic chunked reduction produces. Before this header, three
// layers hand-rolled the same near-even rule (reduce::cpu_sum's static
// chunks, collective::shard_sizes, util::ThreadPool::parallel_for) and
// the ring collectives used a second, ceil-based rule - four chances for
// an off-by-one to silently move certified bits.
//
// THE INVARIANT each rule pins: boundaries are a pure function of
// (total, parts) - never of pool width, scheduling, or timing - so a
// reduction that fixes its chunk count fixes its bits, whether the
// chunks run serially, on a pool, or across ranks.
//
// Two distinct rules exist on purpose (they are NOT interchangeable -
// they place boundaries differently and certified bit patterns depend on
// each where it is used):
//
//  * even_chunk: near-even contiguous split, the first total % parts
//    chunks one element longer ("OpenMP static schedule"). Used by
//    reduce::cpu_sum, collective::shard_sizes / the data-parallel
//    trainer, and util::ThreadPool::parallel_for (which cannot include
//    this header - util sits below core in the module graph - but
//    implements the identical rule; core_test pins the agreement).
//
//  * ceil_chunk: fixed stride ceil(total/parts), trailing chunks may be
//    empty. The ring collective / wire reduce-scatter rule, where every
//    rank must agree on chunk c's boundaries WITHOUT knowing who owns
//    which element - the stride depends only on (total, parts), so it
//    travels the wire implicitly.
//
// dl's row-blocked kernels derive their chunk COUNT from the problem
// size (size_derived_parts) and then split with parallel_for's even
// rule: boundaries stay a pure function of the problem shape.

#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fpna::core {

/// Near-even contiguous split: chunk `index` of `total` items over
/// `parts` chunks. The first total % parts chunks are one item longer;
/// with parts > total the trailing chunks are empty. Preconditions:
/// parts >= 1, index < parts (checked).
constexpr std::pair<std::size_t, std::size_t> even_chunk(
    std::size_t total, std::size_t parts, std::size_t index) {
  if (parts == 0) throw std::invalid_argument("even_chunk: zero parts");
  if (index >= parts) throw std::invalid_argument("even_chunk: index >= parts");
  const std::size_t base = total / parts;
  const std::size_t rem = total % parts;
  // begin = index*base + min(index, rem): closed form of "the first rem
  // chunks are one longer", so chunk boundaries need no running scan.
  const std::size_t begin = index * base + (index < rem ? index : rem);
  const std::size_t len = base + (index < rem ? 1 : 0);
  return {begin, begin + len};
}

/// Chunk `index`'s length under the even rule.
constexpr std::size_t even_chunk_size(std::size_t total, std::size_t parts,
                                      std::size_t index) {
  const auto [begin, end] = even_chunk(total, parts, index);
  return end - begin;
}

/// All `parts` [begin, end) ranges under the even rule, in order.
inline std::vector<std::pair<std::size_t, std::size_t>> even_chunks(
    std::size_t total, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("even_chunks: zero parts");
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(parts);
  for (std::size_t c = 0; c < parts; ++c) {
    ranges.push_back(even_chunk(total, parts, c));
  }
  return ranges;
}

/// Ceil-stride split: chunk `index` is [min(total, index * s),
/// min(total, (index + 1) * s)) with s = ceil(total / parts). Chunks
/// past the data are empty. This is the ring/wire rule - see the header
/// comment for why it differs from even_chunk and must stay distinct.
constexpr std::pair<std::size_t, std::size_t> ceil_chunk(
    std::size_t total, std::size_t parts, std::size_t index) {
  if (parts == 0) throw std::invalid_argument("ceil_chunk: zero parts");
  const std::size_t stride = (total + parts - 1) / parts;
  const std::size_t begin = std::min(total, index * stride);
  const std::size_t end = std::min(total, begin + stride);
  return {begin, end};
}

/// Size-derived chunk count for a row-blocked parallel loop (PR 3's
/// rule, moved here from dl): enough rows per chunk to target
/// `target_work_per_chunk` scalar operations, never fewer than one row.
/// The count depends only on the problem shape - pair it with the even
/// rule and pooled bits match serial bits by construction.
constexpr std::size_t size_derived_parts(
    std::size_t items, std::size_t work_per_item,
    std::size_t target_work_per_chunk = std::size_t{1} << 16) {
  const std::size_t work = work_per_item == 0 ? 1 : work_per_item;
  std::size_t per_chunk = target_work_per_chunk / work;
  if (per_chunk == 0) per_chunk = 1;
  return (items + per_chunk - 1) / per_chunk;
}

}  // namespace fpna::core
