#include "fpna/tensor/indexed_ops.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "fpna/fp/accumulator.hpp"
#include "fpna/obs/recorder.hpp"
#include "fpna/sim/scheduler.hpp"
#include "fpna/util/permutation.hpp"
#include "fpna/util/thread_pool.hpp"

namespace fpna::tensor {

const char* to_string(Reduce reduce) noexcept {
  switch (reduce) {
    case Reduce::kSum: return "sum";
    case Reduce::kMean: return "mean";
    case Reduce::kProd: return "prod";
    case Reduce::kAmax: return "amax";
    case Reduce::kAmin: return "amin";
  }
  return "?";
}

namespace {

/// One atomic update: source element `src` lands on destination element
/// `dst` (both flat offsets).
struct Contribution {
  std::int64_t dst;
  std::int64_t src;
};

/// The commit order of the contributions: identity for the deterministic
/// path, a contention-aware scheduler draw for the non-deterministic one.
///
/// Contention model: same-address atomics funnel through a per-address
/// queue. When an address is heavily contended (c contributions), the
/// queue saturates and drains in issue order - back-pressure serialises
/// the pipeline - so with probability 1 - 1/c^2 the address's
/// contributions commit FIFO this run. Lightly contended addresses
/// (c = 2, 3) are races between a few in-flight requests whose winner is
/// scheduler/latency jitter, i.e. effectively random order.
///
/// This reproduces the paper's Fig. 3/4 phenomenology: variability
/// *grows* with the reduction ratio R, because small R means high
/// per-address contention and therefore near-FIFO (reproducible) commit
/// despite the many collisions, while R near 1 leaves exactly the racy
/// two-way collisions that reorder run to run.
std::vector<std::size_t> commit_order(const std::vector<Contribution>& contribs,
                                      std::int64_t out_numel,
                                      const OpContext& ctx,
                                      bool is_store = false) {
  const std::size_t n = contribs.size();
  if (!ctx.nondeterministic()) {
    std::vector<std::size_t> identity(n);
    for (std::size_t i = 0; i < n; ++i) identity[i] = i;
    return identity;
  }
  auto& rng = ctx.run->rng();

  // Global scheduler jitter: any interleaving of distinct addresses is
  // fair game (it cannot change accumulation values; it exists so the
  // write-race ops see realistic cross-address orders too).
  std::vector<std::size_t> order = util::random_permutation(n, rng);

  // Per-destination contention counts.
  std::vector<std::uint32_t> count(static_cast<std::size_t>(out_numel), 0);
  for (const auto& c : contribs) ++count[static_cast<std::size_t>(c.dst)];

  // Mean queue depth g = contributions per output element. The race
  // probability falls as 1/g^2: once the atomic pipeline is saturated,
  // back-pressure drains queues in issue order and the jitter window that
  // lets two requests swap shrinks with the queue depth (calibrated
  // against the paper's Fig. 4 index_add curve, which is ~linear in R).
  const double g = std::max(
      1.0, static_cast<double>(n) /
               static_cast<double>(std::max<std::int64_t>(1, out_numel)));
  double race_probability = std::min(1.0, 1.0 / (g * g));
  // Stores only flip their winner when the final two writes race; see
  // OpContext::store_race_scale.
  if (is_store) race_probability *= ctx.store_race_scale;

  // Decide per destination whether its queue drains FIFO this run.
  std::vector<char> fifo(static_cast<std::size_t>(out_numel), 0);
  for (std::int64_t d = 0; d < out_numel; ++d) {
    if (count[static_cast<std::size_t>(d)] < 2) continue;
    fifo[static_cast<std::size_t>(d)] =
        util::canonical(rng) >= race_probability;
  }

  // Restore issue order among each FIFO destination's contributions while
  // keeping their commit *slots* (stable within the global interleaving).
  std::vector<std::vector<std::size_t>> slots_of(
      static_cast<std::size_t>(out_numel));
  for (std::size_t pos = 0; pos < n; ++pos) {
    const auto d = static_cast<std::size_t>(contribs[order[pos]].dst);
    if (fifo[d]) slots_of[d].push_back(pos);
  }
  for (std::int64_t d = 0; d < out_numel; ++d) {
    auto& slots = slots_of[static_cast<std::size_t>(d)];
    if (slots.size() < 2) continue;
    std::vector<std::size_t> members;
    members.reserve(slots.size());
    for (const std::size_t pos : slots) members.push_back(order[pos]);
    std::sort(members.begin(), members.end());  // issue order
    for (std::size_t i = 0; i < slots.size(); ++i) {
      order[slots[i]] = members[i];
    }
  }
  return order;
}

void check_dim(std::int64_t dim, std::int64_t rank, const char* op) {
  if (dim < 0 || dim >= rank) {
    throw std::out_of_range(std::string(op) + ": dim " + std::to_string(dim) +
                            " out of range for rank " + std::to_string(rank));
  }
}

/// Decomposes a flat offset of `t` into coordinates (row-major).
template <typename T>
void unravel(const Tensor<T>& t, std::int64_t flat,
             std::vector<std::int64_t>& coords) {
  const auto& strides = t.strides();
  coords.resize(strides.size());
  for (std::size_t d = 0; d < strides.size(); ++d) {
    coords[d] = flat / strides[d];
    flat %= strides[d];
  }
}

/// Builds the contribution list of index_add / index_copy: source slice k
/// (along `dim`) maps onto destination slice index[k].
template <typename T>
std::vector<Contribution> slice_contributions(
    const Tensor<T>& out, std::int64_t dim,
    const Tensor<std::int64_t>& index, const Tensor<T>& source,
    const char* op) {
  if (source.dim() != out.dim()) {
    throw std::invalid_argument(std::string(op) + ": rank mismatch between "
                                "self and source");
  }
  for (std::int64_t d = 0; d < out.dim(); ++d) {
    if (d != dim && out.shape()[static_cast<std::size_t>(d)] !=
                        source.shape()[static_cast<std::size_t>(d)]) {
      throw std::invalid_argument(std::string(op) +
                                  ": self/source shape mismatch outside dim");
    }
  }
  if (index.numel() != source.size(dim)) {
    throw std::invalid_argument(std::string(op) +
                                ": index length must equal source.size(dim)");
  }

  std::vector<Contribution> contribs;
  contribs.reserve(static_cast<std::size_t>(source.numel()));
  std::vector<std::int64_t> coords;
  const std::int64_t out_dim_size = out.size(dim);
  for (std::int64_t s = 0; s < source.numel(); ++s) {
    unravel(source, s, coords);
    const std::int64_t k = coords[static_cast<std::size_t>(dim)];
    const std::int64_t target = index.flat(k);
    if (target < 0 || target >= out_dim_size) {
      throw std::out_of_range(std::string(op) + ": index value " +
                              std::to_string(target) + " out of range [0, " +
                              std::to_string(out_dim_size) + ")");
    }
    coords[static_cast<std::size_t>(dim)] = target;
    contribs.push_back({out.offset(coords), s});
  }
  return contribs;
}

/// Builds the contribution list of scatter / scatter_reduce: every element
/// p of src maps onto p with its `dim` coordinate replaced by index[p].
template <typename T>
std::vector<Contribution> elementwise_contributions(
    const Tensor<T>& out, std::int64_t dim,
    const Tensor<std::int64_t>& index, const Tensor<T>& src, const char* op) {
  if (src.dim() != out.dim()) {
    throw std::invalid_argument(std::string(op) +
                                ": rank mismatch between self and src");
  }
  if (index.shape() != src.shape()) {
    throw std::invalid_argument(std::string(op) +
                                ": index must have the shape of src");
  }
  for (std::int64_t d = 0; d < out.dim(); ++d) {
    if (d != dim && src.shape()[static_cast<std::size_t>(d)] >
                        out.shape()[static_cast<std::size_t>(d)]) {
      throw std::invalid_argument(std::string(op) +
                                  ": src exceeds self outside dim");
    }
  }

  std::vector<Contribution> contribs;
  contribs.reserve(static_cast<std::size_t>(src.numel()));
  std::vector<std::int64_t> coords;
  const std::int64_t out_dim_size = out.size(dim);
  for (std::int64_t s = 0; s < src.numel(); ++s) {
    unravel(src, s, coords);
    const std::int64_t target = index.flat(s);
    if (target < 0 || target >= out_dim_size) {
      throw std::out_of_range(std::string(op) + ": index value " +
                              std::to_string(target) + " out of range [0, " +
                              std::to_string(out_dim_size) + ")");
    }
    coords[static_cast<std::size_t>(dim)] = target;
    contribs.push_back({out.offset(coords), s});
  }
  return contribs;
}

/// Deterministic accumulation of `contribs` into `out` through the
/// context's registry-selected accumulator: per destination, the self
/// value seeds the accumulator (unless `seed_self` is false, the
/// scatter_reduce include_self=false case), then contributions fold in
/// issue order. The serial algorithm is special-cased to the classic
/// in-place loop - bitwise identical to the seed implementation and free
/// of the per-destination grouping cost.
/// Destination-grouped parallel execution of the deterministic reduction:
/// contributions are bucketed per destination (stable counting sort keeps
/// issue order within a destination), and the destinations split across
/// ctx.pool with parallel_for. Each destination's fold is exactly the
/// stream the serial path produces - seed with self, contributions in
/// issue order - and destinations never alias, so the result is bitwise
/// identical to the serial deterministic path for every accumulator and
/// every thread count / OS schedule, by construction.
template <typename T, typename ValueOf>
void accumulate_deterministic_pooled(Tensor<T>& out,
                                     const std::vector<Contribution>& contribs,
                                     const OpContext& ctx, bool seed_self,
                                     const ValueOf& value_of) {
  const auto numel = static_cast<std::size_t>(out.numel());
  std::vector<std::size_t> offsets(numel + 1, 0);
  for (const auto& c : contribs) {
    ++offsets[static_cast<std::size_t>(c.dst) + 1];
  }
  for (std::size_t d = 0; d < numel; ++d) offsets[d + 1] += offsets[d];
  std::vector<std::size_t> grouped(contribs.size());
  {
    std::vector<std::size_t> fill(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < contribs.size(); ++k) {
      grouped[fill[static_cast<std::size_t>(contribs[k].dst)]++] = k;
    }
  }
  std::vector<std::size_t> destinations;
  for (std::size_t d = 0; d < numel; ++d) {
    if (offsets[d + 1] > offsets[d]) destinations.push_back(d);
  }
  fp::visit_reduction<T>(
      ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        ctx.pool->parallel_for(
            destinations.size(),
            [&](std::size_t begin, std::size_t end, std::size_t) {
              for (std::size_t j = begin; j < end; ++j) {
                const std::size_t d = destinations[j];
                if constexpr (std::is_same_v<Acc, fp::SerialAccumulator<T>> &&
                              decltype(quantize)::is_identity) {
                  if (seed_self) {
                    // The classic in-place fold, not a +0.0-seeded
                    // accumulator: preserves the serial path's signed-zero
                    // bits ((-0.0) + (-0.0) stays -0.0).
                    T value = out.flat(static_cast<std::int64_t>(d));
                    for (std::size_t g = offsets[d]; g < offsets[d + 1];
                         ++g) {
                      value = static_cast<T>(value +
                                             value_of(contribs[grouped[g]]));
                    }
                    out.flat(static_cast<std::int64_t>(d)) = value;
                    continue;
                  }
                }
                Acc acc;
                if (seed_self) {
                  acc.add(static_cast<A>(
                      quantize(out.flat(static_cast<std::int64_t>(d)))));
                }
                for (std::size_t g = offsets[d]; g < offsets[d + 1]; ++g) {
                  acc.add(static_cast<A>(
                      quantize(value_of(contribs[grouped[g]]))));
                }
                out.flat(static_cast<std::int64_t>(d)) =
                    static_cast<T>(acc.result());
              }
            });
      });
}

template <typename T, typename ValueOf>
void accumulate_deterministic(Tensor<T>& out,
                              const std::vector<Contribution>& contribs,
                              const OpContext& ctx, bool seed_self,
                              ValueOf&& value_of) {
  if (ctx.pool != nullptr && ctx.pool->size() > 1 && contribs.size() > 1) {
    accumulate_deterministic_pooled(out, contribs, ctx, seed_self, value_of);
    return;
  }
  fp::visit_reduction<T>(
      ctx.reduction_in_effect(), [&](auto tag, auto acc_c, auto quantize) {
        using A = typename decltype(acc_c)::type;
        using Acc = typename decltype(tag)::template accumulator_t<A>;
        if constexpr (std::is_same_v<Acc, fp::SerialAccumulator<T>> &&
                      decltype(quantize)::is_identity) {
          if (seed_self) {
            for (const auto& c : contribs) {
              out.flat(c.dst) = static_cast<T>(out.flat(c.dst) + value_of(c));
            }
            return;
          }
        }
        std::unordered_map<std::int64_t, Acc> per_destination;
        per_destination.reserve(contribs.size());
        for (const auto& c : contribs) {
          auto [it, inserted] = per_destination.try_emplace(c.dst);
          if (inserted && seed_self) {
            it->second.add(static_cast<A>(quantize(out.flat(c.dst))));
          }
          it->second.add(static_cast<A>(quantize(value_of(c))));
        }
        for (const auto& [dst, acc] : per_destination) {
          out.flat(dst) = static_cast<T>(acc.result());
        }
      });
}

/// scatter_reduce's mean epilogue: one PyTorch denominator rule for both
/// the registry-accumulator path and the commit-order path. Destinations
/// with no contribution (count 0) keep the self value untouched.
template <typename T>
void divide_mean_destinations(Tensor<T>& out,
                              const std::vector<std::int64_t>& counts,
                              bool include_self) {
  for (std::int64_t f = 0; f < out.numel(); ++f) {
    const std::int64_t count = counts[static_cast<std::size_t>(f)];
    if (count == 0) continue;
    const auto denom = static_cast<T>(count + (include_self ? 1 : 0));
    out.flat(f) = static_cast<T>(out.flat(f) / denom);
  }
}

template <typename T>
T reduce_identity(Reduce reduce) {
  switch (reduce) {
    case Reduce::kSum: return T{0};
    case Reduce::kMean: return T{0};
    case Reduce::kProd: return T{1};
    case Reduce::kAmax: return std::numeric_limits<T>::lowest();
    case Reduce::kAmin: return std::numeric_limits<T>::max();
  }
  return T{0};
}

/// Whole-tensor result fingerprint (read-only; emitted from the calling
/// thread so provenance order never depends on pool scheduling).
template <typename T>
std::uint64_t tensor_bits(const Tensor<T>& t) {
  obs::Fingerprint print;
  for (std::int64_t i = 0; i < t.numel(); ++i) print.feed(t.flat(i));
  return print.value();
}

template <typename T>
T reduce_combine(Reduce reduce, T acc, T value) {
  switch (reduce) {
    case Reduce::kSum:
    case Reduce::kMean:
      return static_cast<T>(acc + value);
    case Reduce::kProd: return static_cast<T>(acc * value);
    case Reduce::kAmax: return value > acc ? value : acc;
    case Reduce::kAmin: return value < acc ? value : acc;
  }
  return acc;
}

}  // namespace

template <typename T>
Tensor<T> index_add(const Tensor<T>& self, std::int64_t dim,
                    const Tensor<std::int64_t>& index,
                    const Tensor<T>& source, T alpha, const OpContext& ctx) {
  check_dim(dim, self.dim(), "index_add");
  obs::Span span(ctx.recorder, "tensor.index_add");
  Tensor<T> out = self;
  const auto contribs =
      slice_contributions(out, dim, index, source, "index_add");
  if (ctx.recorder != nullptr) {
    span.arg("contributions", static_cast<std::uint64_t>(contribs.size()));
    span.arg("numel", static_cast<std::int64_t>(out.numel()));
    span.arg("deterministic", ctx.nondeterministic() ? "no" : "yes");
    ctx.recorder->metrics().counter("tensor.index_add.calls").increment();
  }
  if (!ctx.nondeterministic()) {
    // Deterministic path: per-destination reduction through the registry
    // accumulator, contributions in issue order.
    accumulate_deterministic(out, contribs, ctx, /*seed_self=*/true,
                             [&](const Contribution& c) {
                               return static_cast<T>(alpha *
                                                     source.flat(c.src));
                             });
  } else {
    // Atomic adds commit in scheduler order; each add is out[dst] += a*src,
    // evaluated in T precision exactly as the device would (hardware
    // atomics are plain serial adds, so the accumulator selection does not
    // apply).
    for (const std::size_t i : commit_order(contribs, out.numel(), ctx)) {
      const auto& c = contribs[i];
      out.flat(c.dst) =
          static_cast<T>(out.flat(c.dst) + alpha * source.flat(c.src));
    }
  }
  if (ctx.recorder != nullptr) {
    ctx.recorder->provenance({"tensor.index_add", "result", dim, -1,
                              fp::to_string(ctx.reduction_in_effect()),
                              tensor_bits(out),
                              static_cast<std::uint64_t>(out.numel())});
  }
  return out;
}

template <typename T>
Tensor<T> index_copy(const Tensor<T>& self, std::int64_t dim,
                     const Tensor<std::int64_t>& index,
                     const Tensor<T>& source, const OpContext& ctx) {
  check_dim(dim, self.dim(), "index_copy");
  Tensor<T> out = self;
  const auto contribs =
      slice_contributions(out, dim, index, source, "index_copy");
  // Plain stores: for duplicate destinations the last committed store
  // wins, so the result depends on the order for the ND path.
  for (const std::size_t i :
       commit_order(contribs, out.numel(), ctx, /*is_store=*/true)) {
    const auto& c = contribs[i];
    out.flat(c.dst) = source.flat(c.src);
  }
  return out;
}

template <typename T>
Tensor<T> index_put(const Tensor<T>& self, const Tensor<std::int64_t>& indices,
                    const Tensor<T>& values, bool accumulate,
                    const OpContext& ctx) {
  if (accumulate) {
    return index_add(self, 0, indices, values, T{1}, ctx);
  }
  return index_copy(self, 0, indices, values, ctx);
}

template <typename T>
Tensor<T> scatter(const Tensor<T>& self, std::int64_t dim,
                  const Tensor<std::int64_t>& index, const Tensor<T>& src,
                  const OpContext& ctx) {
  check_dim(dim, self.dim(), "scatter");
  Tensor<T> out = self;
  const auto contribs =
      elementwise_contributions(out, dim, index, src, "scatter");
  for (const std::size_t i :
       commit_order(contribs, out.numel(), ctx, /*is_store=*/true)) {
    const auto& c = contribs[i];
    out.flat(c.dst) = src.flat(c.src);
  }
  return out;
}

template <typename T>
Tensor<T> scatter_reduce(const Tensor<T>& self, std::int64_t dim,
                         const Tensor<std::int64_t>& index,
                         const Tensor<T>& src, Reduce reduce,
                         bool include_self, const OpContext& ctx) {
  check_dim(dim, self.dim(), "scatter_reduce");
  obs::Span span(ctx.recorder, "tensor.scatter_reduce");
  Tensor<T> out = self;
  const auto contribs =
      elementwise_contributions(out, dim, index, src, "scatter_reduce");
  if (ctx.recorder != nullptr) {
    span.arg("contributions", static_cast<std::uint64_t>(contribs.size()));
    span.arg("numel", static_cast<std::int64_t>(out.numel()));
    span.arg("reduce", to_string(reduce));
    span.arg("deterministic", ctx.nondeterministic() ? "no" : "yes");
    ctx.recorder->metrics()
        .counter("tensor.scatter_reduce.calls")
        .increment();
  }
  const auto emit_result = [&]() {
    if (ctx.recorder != nullptr) {
      ctx.recorder->provenance({"tensor.scatter_reduce", "result", dim, -1,
                                fp::to_string(ctx.reduction_in_effect()),
                                tensor_bits(out),
                                static_cast<std::uint64_t>(out.numel())});
    }
  };

  // Sum-family reductions on the deterministic path route through the
  // registry accumulator (non-sum modes - prod/amax/amin - have no
  // accumulation to re-associate and keep the direct combine loop). A
  // non-native dtype spec or a lane-blocked (@simd<L>) spec takes this
  // path even for the serial algorithm: the direct combine loop below
  // never quantizes and never lane-blocks, so those axes would otherwise
  // be silently dropped.
  const bool sum_family = reduce == Reduce::kSum || reduce == Reduce::kMean;
  if (sum_family && !ctx.nondeterministic() &&
      (ctx.accumulator_in_effect() != fp::AlgorithmId::kSerial ||
       !ctx.reduction_in_effect().native() ||
       ctx.reduction_in_effect().lane_blocked())) {
    accumulate_deterministic(out, contribs, ctx, /*seed_self=*/include_self,
                             [&](const Contribution& c) {
                               return src.flat(c.src);
                             });
    if (reduce == Reduce::kMean) {
      std::vector<std::int64_t> counts(static_cast<std::size_t>(out.numel()),
                                       0);
      for (const auto& c : contribs) ++counts[static_cast<std::size_t>(c.dst)];
      divide_mean_destinations(out, counts, include_self);
    }
    emit_result();
    return out;
  }

  // Per-destination bookkeeping: whether it received any contribution
  // (controls include_self seeding) and, for mean, how many.
  std::vector<char> touched(static_cast<std::size_t>(out.numel()), 0);
  std::vector<std::int64_t> counts;
  if (reduce == Reduce::kMean) {
    counts.assign(static_cast<std::size_t>(out.numel()), 0);
  }

  for (const std::size_t i : commit_order(contribs, out.numel(), ctx)) {
    const auto& c = contribs[i];
    const auto d = static_cast<std::size_t>(c.dst);
    const T value = src.flat(c.src);
    if (!touched[d] && !include_self) {
      out.flat(c.dst) = value;  // first commit replaces the self value
    } else {
      out.flat(c.dst) = reduce_combine(reduce, out.flat(c.dst), value);
    }
    touched[d] = 1;
    if (reduce == Reduce::kMean) ++counts[d];
  }

  // touched[d] implies counts[d] > 0 under kMean, so the shared epilogue
  // divides exactly the touched destinations.
  if (reduce == Reduce::kMean) {
    divide_mean_destinations(out, counts, include_self);
  }
  emit_result();
  return out;
}

// Explicit instantiations for the floating-point element types the
// experiments use (float mirrors PyTorch's default dtype).
#define FPNA_INSTANTIATE_INDEXED_OPS(T)                                        \
  template Tensor<T> index_add<T>(const Tensor<T>&, std::int64_t,             \
                                  const Tensor<std::int64_t>&,                \
                                  const Tensor<T>&, T, const OpContext&);     \
  template Tensor<T> index_copy<T>(const Tensor<T>&, std::int64_t,            \
                                   const Tensor<std::int64_t>&,               \
                                   const Tensor<T>&, const OpContext&);       \
  template Tensor<T> index_put<T>(const Tensor<T>&,                           \
                                  const Tensor<std::int64_t>&,                \
                                  const Tensor<T>&, bool, const OpContext&);  \
  template Tensor<T> scatter<T>(const Tensor<T>&, std::int64_t,               \
                                const Tensor<std::int64_t>&,                  \
                                const Tensor<T>&, const OpContext&);          \
  template Tensor<T> scatter_reduce<T>(const Tensor<T>&, std::int64_t,        \
                                       const Tensor<std::int64_t>&,           \
                                       const Tensor<T>&, Reduce, bool,        \
                                       const OpContext&);

FPNA_INSTANTIATE_INDEXED_OPS(float)
FPNA_INSTANTIATE_INDEXED_OPS(double)

#undef FPNA_INSTANTIATE_INDEXED_OPS

}  // namespace fpna::tensor
