#include "fpna/util/rng.hpp"

namespace fpna::util {

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

std::int64_t UniformInt::operator()(Xoshiro256pp& rng) const noexcept {
  if (range_ == 0) return static_cast<std::int64_t>(rng());
  // Lemire 2019: multiply-shift with rejection of the biased low region.
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * range_;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range_) {
    const std::uint64_t threshold = (0 - range_) % range_;
    while (low < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * range_;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo_ + static_cast<std::int64_t>(m >> 64);
}

double Normal::operator()(Xoshiro256pp& rng) noexcept {
  if (has_cached_) {
    has_cached_ = false;
    return mean_ + sigma_ * cached_;
  }
  // Box-Muller on (0,1] x [0,1): u1 > 0 guarantees a finite log.
  const double u1 = 1.0 - canonical(rng);
  const double u2 = canonical(rng);
  const double radius = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  cached_ = radius * std::sin(kTwoPi * u2);
  has_cached_ = true;
  return mean_ + sigma_ * radius * std::cos(kTwoPi * u2);
}

}  // namespace fpna::util
