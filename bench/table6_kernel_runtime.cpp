// Reproduces Table 6: average kernel runtime for scatter_reduce (sum and
// mean; input dim 1000, R = 0.5) and index_add (1000 x 1000, R = 0.5) on
// the H100 profile (deterministic and non-deterministic implementations)
// and on the Groq LPU model (deterministic by construction).
//
// "N/A" entries match the paper: scatter_reduce has no deterministic GPU
// kernel (PyTorch raises a runtime error when one is requested - see
// SIV), and the LPU has no non-deterministic mode at all.
//
// Flags: --csv

#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "fpna/sim/cost_model.hpp"
#include "fpna/sim/lpu.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

std::string us_or_na(const std::optional<double>& us) {
  return us.has_value() ? util::fixed(*us, 1) : "N/A";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool csv = cli.flag("csv");

  util::banner(std::cout,
               "Table 6: kernel runtime for scatter_reduce and index_add, "
               "H100 profile vs Groq LPU model (us)");

  const auto h100 = sim::DeviceProfile::h100();
  const sim::LpuDevice lpu;

  // Paper workloads: scatter_reduce over 1000 elements (R = 0.5);
  // index_add over a 1000 x 1000 source (1e6 contributions).
  constexpr std::size_t kScatterN = 1000;
  constexpr std::size_t kIndexAddN = 1000ull * 1000ull;

  util::Table table({"Operation", "Implementation", "H100 (us)", "Groq (us)"});
  table.add_row({"scatter_reduce (sum)", "D",
                 us_or_na(sim::estimated_indexed_op_time_us(
                     h100, sim::IndexedOpKind::kScatterReduceSum, kScatterN,
                     true)),
                 util::fixed(
                     lpu.op_time_us(sim::LpuOp::kScatterReduceSum, kScatterN),
                     1)});
  table.add_row({"scatter_reduce (sum)", "ND",
                 us_or_na(sim::estimated_indexed_op_time_us(
                     h100, sim::IndexedOpKind::kScatterReduceSum, kScatterN,
                     false)),
                 "N/A"});
  table.add_row({"scatter_reduce (mean)", "D",
                 us_or_na(sim::estimated_indexed_op_time_us(
                     h100, sim::IndexedOpKind::kScatterReduceMean, kScatterN,
                     true)),
                 util::fixed(
                     lpu.op_time_us(sim::LpuOp::kScatterReduceMean, kScatterN),
                     1)});
  table.add_row({"scatter_reduce (mean)", "ND",
                 us_or_na(sim::estimated_indexed_op_time_us(
                     h100, sim::IndexedOpKind::kScatterReduceMean, kScatterN,
                     false)),
                 "N/A"});
  table.add_row(
      {"index_add", "D",
       us_or_na(sim::estimated_indexed_op_time_us(
           h100, sim::IndexedOpKind::kIndexAdd, kIndexAddN, true)),
       util::fixed(lpu.op_time_us(sim::LpuOp::kIndexAdd, kIndexAddN), 1)});
  table.add_row(
      {"index_add", "ND",
       us_or_na(sim::estimated_indexed_op_time_us(
           h100, sim::IndexedOpKind::kIndexAdd, kIndexAddN, false)),
       "N/A"});

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
    std::cout
        << "\nPaper reference (Table 6): scatter_reduce sum ND 30.2 us / "
           "mean ND 74.9 us on H100 with no deterministic option; "
           "index_add D 161 us vs ND 12.8 us; Groq LPU 10.5 / 28.9 / 12.0 "
           "us, deterministic and faster than every GPU implementation "
           "for these ops.\n";
  }
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
