// Unit tests for fpna::sim: device profiles, scheduler policies, the
// block execution engine, the cost model and the LPU model.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "fpna/core/run_context.hpp"
#include "fpna/sim/cost_model.hpp"
#include "fpna/sim/device.hpp"
#include "fpna/sim/device_profile.hpp"
#include "fpna/sim/lpu.hpp"
#include "fpna/sim/scheduler.hpp"
#include "fpna/stats/descriptive.hpp"

namespace fpna::sim {
namespace {

bool is_permutation_of_iota(const std::vector<std::size_t>& perm) {
  std::set<std::size_t> seen(perm.begin(), perm.end());
  return seen.size() == perm.size() && (perm.empty() || *seen.rbegin() == perm.size() - 1);
}

// ------------------------------------------------------------ profiles --

TEST(DeviceProfile, PresetsAreDistinctAndNamed) {
  const auto v100 = DeviceProfile::v100();
  const auto gh200 = DeviceProfile::gh200();
  const auto h100 = DeviceProfile::h100();
  const auto mi = DeviceProfile::mi250x();
  EXPECT_EQ(v100.name, "V100");
  EXPECT_EQ(gh200.name, "GH200");
  EXPECT_EQ(h100.name, "H100");
  EXPECT_EQ(mi.name, "Mi250X");
  EXPECT_GT(gh200.mem_bandwidth_gb_s, v100.mem_bandwidth_gb_s);
  // AMD FP64 atomics are the expensive CAS path.
  EXPECT_GT(mi.atomic_same_address_ns, v100.atomic_same_address_ns);
}

// ----------------------------------------------------------- scheduler --

TEST(Scheduler, AllPoliciesProducePermutations) {
  const auto profile = DeviceProfile::v100();
  const Scheduler scheduler(profile);
  util::Xoshiro256pp rng(1);
  for (const auto policy :
       {SchedulerPolicy::kUniformShuffle, SchedulerPolicy::kWaveShuffle,
        SchedulerPolicy::kContentionMixture}) {
    for (const std::size_t n : {1u, 2u, 100u, 1000u}) {
      EXPECT_TRUE(is_permutation_of_iota(scheduler.commit_order(n, policy, rng)))
          << "policy " << static_cast<int>(policy) << " n " << n;
    }
  }
}

TEST(Scheduler, SameSeedSameOrder) {
  const auto profile = DeviceProfile::gh200();
  const Scheduler scheduler(profile);
  util::Xoshiro256pp a(7), b(7);
  EXPECT_EQ(scheduler.block_commit_order(500, a),
            scheduler.block_commit_order(500, b));
}

TEST(Scheduler, DifferentSeedsUsuallyDiffer) {
  const auto profile = DeviceProfile::gh200();
  const Scheduler scheduler(profile);
  util::Xoshiro256pp a(7), b(8);
  EXPECT_NE(scheduler.block_commit_order(500, a),
            scheduler.block_commit_order(500, b));
}

TEST(Scheduler, WaveShuffleRespectsResidencyBound) {
  auto profile = DeviceProfile::v100();
  profile.max_concurrent_blocks = 32;
  const Scheduler scheduler(profile);
  util::Xoshiro256pp rng(3);
  const auto order =
      scheduler.commit_order(4096, SchedulerPolicy::kWaveShuffle, rng);
  double total_displacement = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    // A block cannot commit before it becomes resident: at commit step i
    // at most i + window blocks have been admitted.
    EXPECT_LT(order[i], i + 32);
    total_displacement += order[i] > i ? static_cast<double>(order[i] - i)
                                       : static_cast<double>(i - order[i]);
  }
  // Mean displacement is on the order of the resident-set size.
  EXPECT_LT(total_displacement / 4096.0, 4.0 * 32.0);
  EXPECT_GT(total_displacement / 4096.0, 2.0);
}

TEST(Scheduler, ContentionMixtureHasRegimes) {
  // Across many runs the contention policy should sometimes stay nearly
  // in-order and sometimes scramble heavily - that bimodality is its
  // defining feature.
  const auto profile = DeviceProfile::v100();
  const Scheduler scheduler(profile);
  std::vector<double> mean_displacements;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    util::Xoshiro256pp rng(seed);
    const auto order =
        scheduler.commit_order(2048, SchedulerPolicy::kContentionMixture, rng);
    double total = 0.0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      total += order[i] > i ? static_cast<double>(order[i] - i)
                            : static_cast<double>(i - order[i]);
    }
    mean_displacements.push_back(total / 2048.0);
  }
  const auto [mn, mx] = std::minmax_element(mean_displacements.begin(),
                                            mean_displacements.end());
  EXPECT_GT(*mx, *mn * 5.0);  // regimes differ by a large factor
}

// -------------------------------------------------------------- device --

TEST(SimDevice, ExecutesEveryBlockExactlyOnce) {
  SimDevice device(DeviceProfile::v100());
  util::Xoshiro256pp rng(5);
  std::vector<int> visits(100, 0);
  const auto record = device.launch({100, 32, 0}, rng, [&](BlockCtx& ctx) {
    ++visits[ctx.block_id()];
    EXPECT_EQ(ctx.grid_blocks(), 100u);
    EXPECT_EQ(ctx.threads_per_block(), 32u);
  });
  EXPECT_EQ(record.blocks, 100u);
  for (const int v : visits) EXPECT_EQ(v, 1);
  EXPECT_TRUE(is_permutation_of_iota(record.commit_order));
}

TEST(SimDevice, CommitPositionsMatchOrder) {
  SimDevice device(DeviceProfile::v100());
  util::Xoshiro256pp rng(6);
  std::vector<std::size_t> position_of_block(50);
  const auto record = device.launch({50, 1, 0}, rng, [&](BlockCtx& ctx) {
    position_of_block[ctx.block_id()] = ctx.commit_position();
  });
  for (std::size_t pos = 0; pos < record.commit_order.size(); ++pos) {
    EXPECT_EQ(position_of_block[record.commit_order[pos]], pos);
  }
}

TEST(SimDevice, SharedMemoryZeroedPerBlock) {
  SimDevice device(DeviceProfile::v100());
  util::Xoshiro256pp rng(7);
  device.launch({10, 4, 8}, rng, [&](BlockCtx& ctx) {
    for (const double v : ctx.shared()) EXPECT_EQ(v, 0.0);
    ctx.shared()[0] = 123.0;  // must not leak into the next block
  });
}

TEST(SimDevice, AtomicAddAccumulatesInCommitOrder) {
  SimDevice device(DeviceProfile::v100());
  util::Xoshiro256pp rng(8);
  AtomicDouble acc(0.0);
  std::vector<double> observed_old;
  const auto record = device.launch({5, 1, 0}, rng, [&](BlockCtx& ctx) {
    observed_old.push_back(acc.fetch_add(static_cast<double>(ctx.block_id())));
  });
  // The k-th fetch_add must observe the sum of the first k scheduled
  // blocks' contributions.
  double expected = 0.0;
  for (std::size_t k = 0; k < record.commit_order.size(); ++k) {
    EXPECT_EQ(observed_old[k], expected);
    expected += static_cast<double>(record.commit_order[k]);
  }
  EXPECT_EQ(acc.load(), 0.0 + 1 + 2 + 3 + 4);
}

TEST(SimDevice, RetirementCounterIdentifiesLastBlock) {
  SimDevice device(DeviceProfile::gh200());
  util::Xoshiro256pp rng(9);
  RetirementCounter counter(64);
  std::size_t last_block = 9999;
  const auto record = device.launch({64, 1, 0}, rng, [&](BlockCtx& ctx) {
    if (counter.fetch_inc() == 63) last_block = ctx.block_id();
  });
  EXPECT_EQ(last_block, record.commit_order.back());
}

TEST(RetirementCounter, WrapsLikeAtomicInc) {
  RetirementCounter counter(3);
  EXPECT_EQ(counter.fetch_inc(), 0u);
  EXPECT_EQ(counter.fetch_inc(), 1u);
  EXPECT_EQ(counter.fetch_inc(), 2u);
  EXPECT_EQ(counter.fetch_inc(), 3u);  // old value at wrap boundary
  EXPECT_EQ(counter.load(), 0u);
}

TEST(SimDevice, FenceAccounting) {
  SimDevice device(DeviceProfile::v100());
  util::Xoshiro256pp rng(10);
  const auto record = device.launch({8, 1, 0}, rng, [&](BlockCtx& ctx) {
    if (ctx.block_id() % 2 == 0) ctx.threadfence();
  });
  EXPECT_EQ(record.fenced_blocks, 4u);
}

TEST(SimDevice, RejectsEmptyLaunches) {
  SimDevice device(DeviceProfile::v100());
  util::Xoshiro256pp rng(11);
  EXPECT_THROW(device.launch({0, 32, 0}, rng, [](BlockCtx&) {}),
               std::invalid_argument);
  EXPECT_THROW(device.launch({1, 0, 0}, rng, [](BlockCtx&) {}),
               std::invalid_argument);
}

// ---------------------------------------------------------- cost model --

TEST(CostModel, Table2Properties) {
  EXPECT_TRUE(is_deterministic(SumMethod::kCU));
  EXPECT_TRUE(is_deterministic(SumMethod::kSPTR));
  EXPECT_TRUE(is_deterministic(SumMethod::kSPRG));
  EXPECT_TRUE(is_deterministic(SumMethod::kTPRC));
  EXPECT_FALSE(is_deterministic(SumMethod::kSPA));
  EXPECT_FALSE(is_deterministic(SumMethod::kAO));
  EXPECT_STREQ(synchronization_method(SumMethod::kSPTR), "__threadfence");
  EXPECT_STREQ(synchronization_method(SumMethod::kTPRC),
               "stream synchronization");
  EXPECT_STREQ(synchronization_method(SumMethod::kAO), "atomicAdd");
  EXPECT_EQ(kernel_count(SumMethod::kTPRC), 2);
  EXPECT_EQ(kernel_count(SumMethod::kSPA), 1);
}

TEST(CostModel, AoIsTwoOrdersSlower) {
  // The paper's headline performance result (Table 4).
  constexpr std::size_t kN = 4194304;
  for (const auto& profile : {DeviceProfile::v100(), DeviceProfile::gh200()}) {
    const double ao = estimated_sum_time_us(profile, SumMethod::kAO, kN, 512, 128);
    const double spa =
        estimated_sum_time_us(profile, SumMethod::kSPA, kN, 512, 128);
    EXPECT_GT(ao / spa, 100.0) << profile.name;
    EXPECT_LT(ao / spa, 500.0) << profile.name;
  }
}

TEST(CostModel, DeterministicPenaltyIsMarginalOnV100) {
  constexpr std::size_t kN = 4194304;
  const auto v100 = DeviceProfile::v100();
  const double spa = estimated_sum_time_us(v100, SumMethod::kSPA, kN, 512, 128);
  const double sptr =
      estimated_sum_time_us(v100, SumMethod::kSPTR, kN, 512, 128);
  const double tprc =
      estimated_sum_time_us(v100, SumMethod::kTPRC, kN, 512, 128);
  EXPECT_GT(sptr, spa);
  EXPECT_LT((sptr - spa) / spa, 0.02);  // well under 2%
  EXPECT_LT((tprc - spa) / spa, 0.02);
}

TEST(CostModel, TprcWinsOnMi250x) {
  constexpr std::size_t kN = 4194304;
  const auto mi = DeviceProfile::mi250x();
  const double tprc = estimated_sum_time_us(mi, SumMethod::kTPRC, kN, 512, 256);
  const double spa = estimated_sum_time_us(mi, SumMethod::kSPA, kN, 512, 256);
  const double sptr = estimated_sum_time_us(mi, SumMethod::kSPTR, kN, 256, 512);
  EXPECT_LT(tprc, spa);
  EXPECT_LT(tprc, sptr);
}

TEST(CostModel, ZeroSizedLaunchThrows) {
  EXPECT_THROW(estimated_sum_time_us(DeviceProfile::v100(), SumMethod::kSPA, 0,
                                     512, 128),
               std::invalid_argument);
}

TEST(CostModel, IndexedOpsMatchTable6Shape) {
  const auto h100 = DeviceProfile::h100();
  // scatter_reduce has no deterministic GPU kernel.
  EXPECT_FALSE(estimated_indexed_op_time_us(
                   h100, IndexedOpKind::kScatterReduceSum, 1000, true)
                   .has_value());
  const auto sum_nd = estimated_indexed_op_time_us(
      h100, IndexedOpKind::kScatterReduceSum, 1000, false);
  const auto mean_nd = estimated_indexed_op_time_us(
      h100, IndexedOpKind::kScatterReduceMean, 1000, false);
  ASSERT_TRUE(sum_nd && mean_nd);
  EXPECT_GT(*mean_nd, *sum_nd * 2.0);  // mean is the two-pass kernel

  const auto ia_nd = estimated_indexed_op_time_us(
      h100, IndexedOpKind::kIndexAdd, 1000000, false);
  const auto ia_d = estimated_indexed_op_time_us(
      h100, IndexedOpKind::kIndexAdd, 1000000, true);
  ASSERT_TRUE(ia_nd && ia_d);
  // Table 6: deterministic index_add is ~12x slower than the atomic one.
  EXPECT_GT(*ia_d / *ia_nd, 5.0);
  EXPECT_LT(*ia_d / *ia_nd, 30.0);
}

// ----------------------------------------------------------------- LPU --

TEST(Lpu, ProgramsAreDeterministic) {
  const LpuDevice lpu;
  const auto p1 = lpu.compile(LpuOp::kScatterReduceSum, 1000);
  const auto p2 = lpu.compile(LpuOp::kScatterReduceSum, 1000);
  EXPECT_EQ(p1.total_cycles(), p2.total_cycles());
  ASSERT_EQ(p1.stages.size(), p2.stages.size());
  for (std::size_t i = 0; i < p1.stages.size(); ++i) {
    EXPECT_EQ(p1.stages[i].cycles, p2.stages[i].cycles);
    EXPECT_EQ(p1.stages[i].unit, p2.stages[i].unit);
  }
}

TEST(Lpu, CyclesGrowWithWork) {
  const LpuDevice lpu;
  EXPECT_LT(lpu.op_time_us(LpuOp::kIndexAdd, 1000),
            lpu.op_time_us(LpuOp::kIndexAdd, 1000000));
}

TEST(Lpu, Table6Magnitudes) {
  const LpuDevice lpu;
  // scatter_reduce(sum), n=1000 -> ~10.5 us; mean -> ~28.9 us;
  // index_add over 1000x1000 -> ~12 us (paper Table 6).
  EXPECT_NEAR(lpu.op_time_us(LpuOp::kScatterReduceSum, 1000), 10.5, 1.0);
  EXPECT_NEAR(lpu.op_time_us(LpuOp::kScatterReduceMean, 1000), 28.9, 2.0);
  EXPECT_NEAR(lpu.op_time_us(LpuOp::kIndexAdd, 1000000), 12.0, 2.0);
}

TEST(Lpu, FasterThanGpuForIndexedOps) {
  const LpuDevice lpu;
  const auto h100 = DeviceProfile::h100();
  const auto gpu_nd = estimated_indexed_op_time_us(
      h100, IndexedOpKind::kScatterReduceSum, 1000, false);
  EXPECT_LT(lpu.op_time_us(LpuOp::kScatterReduceSum, 1000), *gpu_nd);
}

TEST(Lpu, StageNamesExposeStaticSchedule) {
  const LpuDevice lpu;
  const auto program = lpu.compile(LpuOp::kCumsum, 512);
  ASSERT_FALSE(program.stages.empty());
  EXPECT_EQ(program.stages.front().unit, "ICU.dispatch");
}

}  // namespace
}  // namespace fpna::sim
