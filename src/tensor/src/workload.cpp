#include "fpna/tensor/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fpna::tensor {

template <typename T>
Tensor<T> random_uniform(Shape shape, double lo, double hi,
                         util::Xoshiro256pp& rng) {
  Tensor<T> t(std::move(shape));
  const util::UniformReal dist(lo, hi);
  for (auto& x : t.vec()) x = static_cast<T>(dist(rng));
  return t;
}

template <typename T>
Tensor<T> random_normal(Shape shape, double mean, double sigma,
                        util::Xoshiro256pp& rng) {
  Tensor<T> t(std::move(shape));
  util::Normal dist(mean, sigma);
  for (auto& x : t.vec()) x = static_cast<T>(dist(rng));
  return t;
}

Tensor<std::int64_t> random_index(std::int64_t count, std::int64_t out_size,
                                  util::Xoshiro256pp& rng) {
  if (out_size <= 0) {
    throw std::invalid_argument("random_index: out_size must be positive");
  }
  Tensor<std::int64_t> index(Shape{count});
  const util::UniformInt dist(0, out_size - 1);
  for (auto& x : index.vec()) x = dist(rng);
  return index;
}

std::int64_t output_dim_for_ratio(std::int64_t input_dim, double ratio) {
  if (input_dim <= 0) {
    throw std::invalid_argument("output_dim_for_ratio: input_dim <= 0");
  }
  if (ratio <= 0.0 || ratio > 1.0) {
    throw std::invalid_argument(
        "output_dim_for_ratio: ratio must be in (0, 1]");
  }
  const auto out = static_cast<std::int64_t>(
      std::llround(ratio * static_cast<double>(input_dim)));
  return std::max<std::int64_t>(1, out);
}

template <typename T>
ScatterWorkload<T> make_scatter_workload(std::int64_t input_dim, double ratio,
                                         util::Xoshiro256pp& rng) {
  const std::int64_t out_dim = output_dim_for_ratio(input_dim, ratio);
  ScatterWorkload<T> w{
      random_uniform<T>(Shape{out_dim}, 0.0, 1.0, rng),
      random_uniform<T>(Shape{input_dim}, 0.0, 1.0, rng),
      Tensor<std::int64_t>(Shape{input_dim}),
  };
  const util::UniformInt dist(0, out_dim - 1);
  for (auto& x : w.index.vec()) x = dist(rng);
  return w;
}

template <typename T>
IndexAddWorkload<T> make_index_add_workload(std::int64_t input_dim,
                                            double ratio,
                                            util::Xoshiro256pp& rng) {
  const std::int64_t out_dim = output_dim_for_ratio(input_dim, ratio);
  IndexAddWorkload<T> w{
      random_uniform<T>(Shape{out_dim, input_dim}, 0.0, 1.0, rng),
      random_uniform<T>(Shape{input_dim, input_dim}, 0.0, 1.0, rng),
      Tensor<std::int64_t>(Shape{input_dim}),
  };
  const util::UniformInt dist(0, out_dim - 1);
  for (auto& x : w.index.vec()) x = dist(rng);
  return w;
}

#define FPNA_INSTANTIATE_WORKLOAD(T)                                          \
  template Tensor<T> random_uniform<T>(Shape, double, double,                 \
                                       util::Xoshiro256pp&);                  \
  template Tensor<T> random_normal<T>(Shape, double, double,                  \
                                      util::Xoshiro256pp&);                   \
  template ScatterWorkload<T> make_scatter_workload<T>(std::int64_t, double,  \
                                                       util::Xoshiro256pp&);  \
  template IndexAddWorkload<T> make_index_add_workload<T>(                    \
      std::int64_t, double, util::Xoshiro256pp&);

FPNA_INSTANTIATE_WORKLOAD(float)
FPNA_INSTANTIATE_WORKLOAD(double)

#undef FPNA_INSTANTIATE_WORKLOAD

}  // namespace fpna::tensor
