#include "fpna/dl/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "fpna/fp/accumulator.hpp"
#include "fpna/tensor/indexed_ops.hpp"
#include "parallel_blocks.hpp"

namespace fpna::dl {

namespace {

/// Scales row r of m by factors[r]. Rows are independent, so the pooled
/// path is trivially bitwise identical to serial.
void scale_rows(Matrix& m, const std::vector<float>& factors,
                const core::EvalContext& ctx) {
  const std::int64_t cols = m.size(1);
  detail::for_each_row_block(
      ctx, m.size(0), cols, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const float f = factors[static_cast<std::size_t>(r)];
          for (std::int64_t c = 0; c < cols; ++c) m.flat(r * cols + c) *= f;
        }
      });
}

std::vector<float> inverse_degrees(const Graph& graph) {
  const auto degrees = graph.in_degrees();
  std::vector<float> inv(degrees.size(), 0.0f);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    inv[v] = degrees[v] > 0 ? 1.0f / static_cast<float>(degrees[v]) : 0.0f;
  }
  return inv;
}

tensor::Tensor<std::int64_t> to_index_tensor(
    const std::vector<std::int64_t>& values) {
  return tensor::Tensor<std::int64_t>::from_data(
      tensor::Shape{static_cast<std::int64_t>(values.size())},
      std::vector<std::int64_t>(values));
}

}  // namespace

Matrix mean_aggregate(const Matrix& x, const Graph& graph,
                      const tensor::OpContext& ctx) {
  if (x.size(0) != graph.num_nodes) {
    throw std::invalid_argument("mean_aggregate: feature row count != nodes");
  }
  const Matrix messages = gather_rows(
      x, graph.edge_src, ctx);  // deterministic gather of source features
  Matrix acc(tensor::Shape{graph.num_nodes, x.size(1)}, 0.0f);
  acc = tensor::index_add(acc, 0, to_index_tensor(graph.edge_dst), messages,
                          1.0f, ctx);
  scale_rows(acc, inverse_degrees(graph), ctx);
  return acc;
}

Matrix mean_aggregate_backward(const Matrix& d_out, const Graph& graph,
                               const tensor::OpContext& ctx) {
  if (d_out.size(0) != graph.num_nodes) {
    throw std::invalid_argument(
        "mean_aggregate_backward: gradient row count != nodes");
  }
  Matrix scaled = d_out;
  scale_rows(scaled, inverse_degrees(graph), ctx);
  const Matrix messages = gather_rows(scaled, graph.edge_dst, ctx);
  Matrix d_x(tensor::Shape{graph.num_nodes, d_out.size(1)}, 0.0f);
  return tensor::index_add(d_x, 0, to_index_tensor(graph.edge_src), messages,
                           1.0f, ctx);
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               util::Xoshiro256pp& rng)
    : weight(tensor::Shape{in_features, out_features}, 0.0f),
      bias(tensor::Shape{out_features}, 0.0f),
      grad_weight(tensor::Shape{in_features, out_features}, 0.0f),
      grad_bias(tensor::Shape{out_features}, 0.0f) {
  // Glorot/Xavier uniform.
  const double bound =
      std::sqrt(6.0 / static_cast<double>(in_features + out_features));
  const util::UniformReal dist(-bound, bound);
  for (auto& w : weight.vec()) w = static_cast<float>(dist(rng));
}

Matrix Linear::forward(const Matrix& x, const core::EvalContext& ctx) const {
  Matrix y = matmul(x, weight, ctx);
  add_bias_rows(y, bias, ctx);
  return y;
}

Matrix Linear::backward(const Matrix& x, const Matrix& d_out,
                        const core::EvalContext& ctx,
                        const GradientSink& sink) {
  grad_weight = add(grad_weight, matmul_transpose_a(x, d_out, ctx), ctx);
  if (sink) sink(&grad_weight);
  grad_bias = add(grad_bias, column_sums(d_out, ctx), ctx);
  if (sink) sink(&grad_bias);
  return matmul_transpose_b(d_out, weight, ctx);
}

void Linear::zero_grad() {
  for (auto& g : grad_weight.vec()) g = 0.0f;
  for (auto& g : grad_bias.vec()) g = 0.0f;
}

SageConv::SageConv(std::int64_t in_features, std::int64_t out_features,
                   util::Xoshiro256pp& rng)
    : lin_self(in_features, out_features, rng),
      lin_neigh(in_features, out_features, rng) {}

Matrix SageConv::forward(const Matrix& x, const Graph& graph,
                         const tensor::OpContext& ctx, Cache* cache) const {
  Matrix h_neigh = mean_aggregate(x, graph, ctx);
  Matrix out = lin_self.forward(x, ctx);
  // lin_neigh's bias is folded into lin_self's (one bias per output unit,
  // like PyG's SAGEConv); apply only the matmul here.
  out = add(out, matmul(h_neigh, lin_neigh.weight, ctx), ctx);
  if (cache != nullptr) {
    cache->x = x;
    cache->h_neigh = std::move(h_neigh);
  }
  return out;
}

Matrix SageConv::backward(const Cache& cache, const Matrix& d_out,
                          const Graph& graph, const tensor::OpContext& ctx,
                          const GradientSink& sink) {
  // Self path.
  Matrix d_x = lin_self.backward(cache.x, d_out, ctx, sink);
  // Neighbour path: through the matmul, then back through aggregation.
  lin_neigh.grad_weight = add(
      lin_neigh.grad_weight, matmul_transpose_a(cache.h_neigh, d_out, ctx),
      ctx);
  if (sink) sink(&lin_neigh.grad_weight);
  const Matrix d_h_neigh = matmul_transpose_b(d_out, lin_neigh.weight, ctx);
  const Matrix d_x_agg = mean_aggregate_backward(d_h_neigh, graph, ctx);
  return add(d_x, d_x_agg, ctx);
}

void SageConv::zero_grad() {
  lin_self.zero_grad();
  lin_neigh.zero_grad();
}

Matrix relu(const Matrix& x) {
  Matrix out = x;
  for (auto& v : out.vec()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Matrix relu_backward(const Matrix& z, const Matrix& d_out) {
  if (!z.same_shape(d_out)) {
    throw std::invalid_argument("relu_backward: shape mismatch");
  }
  Matrix d_z = d_out;
  for (std::int64_t i = 0; i < d_z.numel(); ++i) {
    if (z.flat(i) <= 0.0f) d_z.flat(i) = 0.0f;
  }
  return d_z;
}

Matrix log_softmax_rows(const Matrix& logits) {
  if (logits.dim() != 2) {
    throw std::invalid_argument("log_softmax_rows: expected rank-2");
  }
  Matrix out = logits;
  const std::int64_t cols = logits.size(1);
  for (std::int64_t r = 0; r < logits.size(0); ++r) {
    float row_max = out.flat(r * cols);
    for (std::int64_t c = 1; c < cols; ++c) {
      row_max = std::max(row_max, out.flat(r * cols + c));
    }
    float sum = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) {
      sum += std::exp(out.flat(r * cols + c) - row_max);
    }
    const float log_z = row_max + std::log(sum);
    for (std::int64_t c = 0; c < cols; ++c) out.flat(r * cols + c) -= log_z;
  }
  return out;
}

LossResult nll_loss_masked(const Matrix& log_probs,
                           const std::vector<std::int64_t>& labels,
                           const std::vector<char>& mask,
                           const core::EvalContext& ctx, float grad_scale) {
  const std::int64_t rows = log_probs.size(0);
  const std::int64_t cols = log_probs.size(1);
  if (static_cast<std::int64_t>(labels.size()) != rows ||
      static_cast<std::int64_t>(mask.size()) != rows) {
    throw std::invalid_argument("nll_loss_masked: label/mask size mismatch");
  }

  std::int64_t count = 0;
  for (const char m : mask) count += m;
  if (count == 0) throw std::invalid_argument("nll_loss_masked: empty mask");

  LossResult result;
  result.d_logits = Matrix(tensor::Shape{rows, cols}, 0.0f);
  const float inv_count = 1.0f / static_cast<float>(count);

  // Gradient pass (accumulator-independent); the masked per-row loss
  // terms are gathered and folded through the registry afterwards, so the
  // rows*cols softmax loop monomorphises once, not per algorithm.
  std::vector<double> loss_terms;
  loss_terms.reserve(static_cast<std::size_t>(count));
  for (std::int64_t r = 0; r < rows; ++r) {
    if (!mask[static_cast<std::size_t>(r)]) continue;
    const std::int64_t y = labels[static_cast<std::size_t>(r)];
    if (y < 0 || y >= cols) {
      throw std::out_of_range("nll_loss_masked: label out of range");
    }
    loss_terms.push_back(-static_cast<double>(log_probs.flat(r * cols + y)));
    // d(logits) of mean-NLL(log_softmax): (softmax - onehot) / count. The
    // loss scale multiplies last, as its own rounding: a power-of-two
    // grad_scale shifts the exponent without touching the mantissa, so
    // the scaled gradient is exactly 2^k times the unscaled one, and
    // grad_scale == 1 is a bitwise no-op on this line.
    for (std::int64_t c = 0; c < cols; ++c) {
      const float softmax = std::exp(log_probs.flat(r * cols + c));
      const float onehot = c == y ? 1.0f : 0.0f;
      result.d_logits.flat(r * cols + c) =
          ((softmax - onehot) * inv_count) * grad_scale;
    }
  }
  const double loss = fp::reduce(ctx.reduction_in_effect(),
                                 std::span<const double>(loss_terms));
  result.loss = loss / static_cast<double>(count);
  return result;
}

LossResult nll_loss_masked(const Matrix& log_probs,
                           const std::vector<std::int64_t>& labels,
                           const std::vector<char>& mask) {
  return nll_loss_masked(log_probs, labels, mask, core::EvalContext{});
}

std::vector<std::int64_t> argmax_rows(const Matrix& scores) {
  const std::int64_t cols = scores.size(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(scores.size(0)), 0);
  for (std::int64_t r = 0; r < scores.size(0); ++r) {
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < cols; ++c) {
      if (scores.flat(r * cols + c) > scores.flat(r * cols + best)) best = c;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

}  // namespace fpna::dl
