// Extension experiment (paper SVI, future work): inter-node communication
// as an additional FPNA variability source. Two parts:
//
//  1. Variability of a distributed sum vs rank count, comparing the MPI
//     collective algorithms: ring / recursive doubling (deterministic,
//     but bit-different from each other), arrival-order tree
//     (non-deterministic, like switch-offloaded in-network reduction)
//     and the reproducible superaccumulator exchange.
//
//  2. Data-parallel GNN training with gradient allreduce across simulated
//     ranks: with the arrival-tree collective every training run yields a
//     unique model even though every rank's local computation is
//     deterministic - the distributed analogue of the paper's SV result.
//
// Flags: --size --runs --ranks --epochs --seed --csv

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fpna/collective/allreduce.hpp"
#include "fpna/core/harness.hpp"
#include "fpna/core/metrics.hpp"
#include "fpna/dl/adam.hpp"
#include "fpna/dl/dataset.hpp"
#include "fpna/dl/layers.hpp"
#include "fpna/dl/model.hpp"
#include "fpna/fp/superaccumulator.hpp"
#include "fpna/stats/descriptive.hpp"
#include "fpna/util/table.hpp"

using namespace fpna;

namespace {

// ---------------------------------------------------------------- part 1

void distributed_sum_variability(std::size_t size, std::size_t runs,
                                 std::uint64_t seed, bool csv) {
  util::banner(std::cout,
               "Extension 1: distributed-sum variability vs rank count (" +
                   std::to_string(size) + " FP64 elements, " +
                   std::to_string(runs) + " runs)");
  const auto data = bench::uniform_array(size, -1e6, 1e6, seed);
  const double exact = fp::Superaccumulator::sum(data);

  util::Table table({"ranks", "algorithm", "deterministic (measured)",
                     "std(Vs)", "|value - exact|"});
  for (const std::size_t ranks : {4u, 16u, 64u, 256u}) {
    for (const auto algorithm :
         {collective::Algorithm::kRing,
          collective::Algorithm::kRecursiveDoubling,
          collective::Algorithm::kArrivalTree,
          collective::Algorithm::kReproducible}) {
      const auto kernel = [&](core::RunContext& ctx) {
        return collective::distributed_sum(data, ranks, algorithm, &ctx);
      };
      const auto cert =
          core::certify_deterministic_scalar(kernel, 10, seed + 1);
      const auto report = core::measure_scalar_variability(
          kernel, kernel, runs, seed + 2, core::Reference::kFirstRun);
      core::RunContext one(seed + 3, 0);
      const double value = kernel(one);
      table.add_row({std::to_string(ranks),
                     collective::to_string(algorithm),
                     cert.deterministic ? "yes" : "NO",
                     util::sci(report.vs_summary.stddev, 2),
                     util::sci(std::fabs(value - exact), 2)});
    }
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

// ---------------------------------------------------------------- part 2

std::vector<float> flatten_gradients(dl::GraphSageModel& model) {
  std::vector<float> flat;
  for (auto& [param, grad] : model.parameters()) {
    (void)param;
    for (const float g : grad->data()) flat.push_back(g);
  }
  return flat;
}

void write_gradients(dl::GraphSageModel& model,
                     const std::vector<float>& flat) {
  std::size_t offset = 0;
  for (auto& [param, grad] : model.parameters()) {
    (void)param;
    for (float& g : grad->data()) {
      g = flat[offset++];
    }
  }
}

/// One data-parallel training: `ranks` workers share identical weights;
/// each computes the loss gradient over its own shard of training nodes
/// (deterministic kernels); gradients are combined with the chosen
/// collective every epoch. Returns the final flattened weights.
std::vector<double> train_data_parallel(const dl::Dataset& ds,
                                        std::size_t ranks, int epochs,
                                        collective::Algorithm algorithm,
                                        core::RunContext& run) {
  dl::GraphSageModel model(ds.num_features(), 16, ds.num_classes, 42);
  dl::Adam optimizer(dl::AdamConfig{.lr = 0.01f});
  for (auto& [param, grad] : model.parameters()) {
    optimizer.add_parameter(param, grad);
  }

  // Static shard assignment: training node i belongs to rank i % ranks.
  std::vector<std::vector<char>> rank_masks(
      ranks, std::vector<char>(ds.train_mask.size(), 0));
  std::size_t next = 0;
  for (std::size_t v = 0; v < ds.train_mask.size(); ++v) {
    if (ds.train_mask[v]) rank_masks[next++ % ranks][v] = 1;
  }

  const tensor::OpContext det_ctx;  // every rank's local math: deterministic
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // FP32 gradient buffers combined in FP32, as NCCL/MPI would.
    collective::RankDataF rank_grads;
    rank_grads.reserve(ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      dl::GraphSageModel::ForwardCache cache;
      const dl::Matrix log_probs =
          model.forward(ds.features, ds.graph, det_ctx, &cache);
      const auto loss =
          dl::nll_loss_masked(log_probs, ds.labels, rank_masks[r]);
      model.zero_grad();
      model.backward(cache, loss.d_logits, ds.graph, det_ctx);
      rank_grads.push_back(flatten_gradients(model));
    }

    std::vector<float> combined;
    switch (algorithm) {
      case collective::Algorithm::kRing:
        combined = collective::allreduce_ring(rank_grads);
        break;
      case collective::Algorithm::kArrivalTree:
        combined = collective::allreduce_arrival_tree(rank_grads, run);
        break;
      case collective::Algorithm::kReproducible:
        combined = collective::allreduce_reproducible(rank_grads);
        break;
      case collective::Algorithm::kRecursiveDoubling:
        combined = collective::allreduce_recursive_doubling(rank_grads);
        break;
    }
    for (float& g : combined) g /= static_cast<float>(ranks);

    model.zero_grad();
    write_gradients(model, combined);
    optimizer.step();
  }
  return model.flattened_weights();
}

void data_parallel_training(std::size_t ranks, int epochs, std::size_t runs,
                            std::uint64_t seed) {
  util::banner(std::cout,
               "Extension 2: data-parallel GraphSAGE, gradient allreduce "
               "across " + std::to_string(ranks) + " ranks, " +
                   std::to_string(runs) + " trainings per collective");
  const auto ds = dl::make_synthetic_citation_dataset(
      dl::DatasetConfig::small());

  util::Table table({"collective", "unique final models", "mean Vermv vs "
                     "reproducible-collective reference"});
  core::RunContext ref_run(seed, 0);
  const auto reference = train_data_parallel(
      ds, ranks, epochs, collective::Algorithm::kReproducible, ref_run);

  for (const auto algorithm :
       {collective::Algorithm::kReproducible, collective::Algorithm::kRing,
        collective::Algorithm::kArrivalTree}) {
    std::vector<std::vector<double>> finals;
    double vermv_total = 0.0;
    for (std::size_t r = 0; r < runs; ++r) {
      core::RunContext run(seed + 10, r);
      finals.push_back(train_data_parallel(ds, ranks, epochs, algorithm, run));
      vermv_total += core::vermv(std::span<const double>(reference),
                                 std::span<const double>(finals.back()));
    }
    table.add_row({collective::to_string(algorithm),
                   std::to_string(core::count_unique_outputs(finals)) + " / " +
                       std::to_string(runs),
                   util::sci(vermv_total / static_cast<double>(runs), 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: with a deterministic collective, the distributed "
               "training is bitwise reproducible; with arrival-order "
               "combining, every run is a unique model even though every "
               "rank's local computation is deterministic - communication "
               "is an independent FPNA variability source (paper SVI).\n";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto size = static_cast<std::size_t>(cli.integer("size", 100000));
  const auto runs = static_cast<std::size_t>(cli.integer("runs", 50));
  const auto ranks = static_cast<std::size_t>(cli.integer("ranks", 8));
  const int epochs = static_cast<int>(cli.integer("epochs", 6));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 42));
  const bool csv = cli.flag("csv");

  distributed_sum_variability(size, runs, seed, csv);
  data_parallel_training(ranks, epochs, std::min<std::size_t>(runs, 8), seed);
  return bench::warn_unconsumed(cli) == 0 ? 0 : 1;
}
