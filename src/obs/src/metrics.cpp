#include "fpna/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <thread>
#include <tuple>

#include "fpna/obs/clock.hpp"

namespace fpna::obs {

namespace {

std::string format_u64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

std::size_t Counter::shard_index() noexcept {
  // A thread's slot only needs to be stable for that thread; the hash of
  // the id spreads distinct threads across slots well enough that the
  // pool's workers rarely share a line.
  static thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return slot;
}

void TimerStat::record_ns(std::uint64_t ns) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  while (ns < seen &&
         !min_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
  seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t TimerStat::min_ns() const noexcept {
  const std::uint64_t seen = min_ns_.load(std::memory_order_relaxed);
  return seen == ~std::uint64_t{0} ? 0 : seen;
}

void Histogram::record(std::uint64_t value) noexcept {
  const std::size_t bucket = static_cast<std::size_t>(std::bit_width(value));
  shards_[Counter::shard_index()].buckets[bucket].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    for (const auto& bucket : shard.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts()
    const noexcept {
  std::array<std::uint64_t, kBuckets> folded{};
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      folded[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return folded;
}

double Histogram::percentile(double p) const noexcept {
  const auto folded = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : folded) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // The value whose rank is p * (total - 1) (nearest-rank with
  // interpolation), located by walking the cumulative bucket counts and
  // interpolating linearly inside the covering bucket's value range.
  const double target = p * static_cast<double>(total - 1);
  double before = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double in_bucket = static_cast<double>(folded[b]);
    if (in_bucket == 0.0) continue;
    if (target < before + in_bucket) {
      if (b == 0) return 0.0;  // bucket 0 holds only the value 0
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      const double frac =
          in_bucket <= 1.0
              ? 0.0
              : std::max(0.0, (target - before) / (in_bucket - 1.0));
      return lo + lo * std::min(1.0, frac);  // range [lo, 2*lo)
    }
    before += in_bucket;
  }
  // target <= total - 1 < the full cumulative count, so the walk always
  // lands in a bucket; this line is unreachable.
  return 0.0;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

template <typename T>
T& Metrics::named(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                  std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

Counter& Metrics::counter(std::string_view name) {
  return named(counters_, name);
}

Gauge& Metrics::gauge(std::string_view name) { return named(gauges_, name); }

TimerStat& Metrics::timer(std::string_view name) {
  return named(timers_, name);
}

Histogram& Metrics::histogram(std::string_view name) {
  return named(histograms_, name);
}

std::vector<MetricRow> Metrics::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + timers_.size() +
               histograms_.size());
  for (const auto& [name, counter] : counters_) {
    rows.push_back({name, "counter", format_u64(counter->value()), ""});
  }
  for (const auto& [name, gauge] : gauges_) {
    rows.push_back({name, "gauge", format_double(gauge->value()), ""});
  }
  for (const auto& [name, timer] : timers_) {
    rows.push_back({name, "timer", format_double(timer->mean_us()),
                    format_u64(timer->count())});
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string value = "p50=" + format_double(histogram->percentile(0.50)) +
                        "/p95=" + format_double(histogram->percentile(0.95)) +
                        "/p99=" + format_double(histogram->percentile(0.99));
    rows.push_back({name, "histogram", std::move(value),
                    format_u64(histogram->count())});
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return std::tie(a.type, a.name) < std::tie(b.type, b.name);
            });
  return rows;
}

void Metrics::reset_counters() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->reset();
  }
}

ScopedTimer::ScopedTimer(TimerStat* stat) noexcept
    : stat_(stat), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  if (stat_ != nullptr) {
    stat_->record_ns(now_ns() - start_ns_);
  }
}

std::uint64_t ScopedTimer::elapsed_ns() const noexcept {
  return now_ns() - start_ns_;
}

}  // namespace fpna::obs
